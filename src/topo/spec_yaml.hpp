// YAML hardware calibration tables.
//
// The built-in SystemRegistry carries the seven paper systems (Table I +
// fitted calibration knobs). A calibration table lets a user override those
// knobs — or describe an entirely new system — from a YAML file:
//
//   systems:
//     - tag: A100
//       device: {tdp_watts: 400, max_mfu_gemm: 0.52}
//       node: {devices_per_node: 4}
//       links:
//         peer: {bandwidth: 600.0e9, latency_s: 2.0e-6}
//
// Known tags start from the registry entry and apply overrides on top;
// unknown tags start from an empty NodeSpec (and must therefore supply every
// load-bearing field). The field tables below are the single source of truth
// for the schema: the loader and the `caraml lint` sim rules both iterate
// them, so a new knob added here is automatically loadable *and* linted.
#pragma once

#include <string>
#include <vector>

#include "topo/specs.hpp"
#include "yaml/yaml.hpp"

namespace caraml::topo {

/// Schema entry for a double-typed field. `required_positive` marks
/// quantities that make the performance/power model meaningless when <= 0
/// (peak FLOP/s, memory capacity/bandwidth, TDP) — lint reports those as
/// errors; other fields merely have to be finite and non-negative.
template <typename Owner>
struct DoubleField {
  const char* name;
  double Owner::* member;
  bool required_positive = false;
};

/// Schema entry for an int-typed field.
template <typename Owner>
struct IntField {
  const char* name;
  int Owner::* member;
  bool required_positive = false;
};

const std::vector<DoubleField<DeviceSpec>>& device_double_fields();
const std::vector<IntField<DeviceSpec>>& device_int_fields();
const std::vector<DoubleField<NodeSpec>>& node_double_fields();
const std::vector<IntField<NodeSpec>>& node_int_fields();
const std::vector<DoubleField<LinkSpec>>& link_double_fields();

/// String-valued keys accepted in each section (for unknown-field lint).
const std::vector<std::string>& device_string_fields();
const std::vector<std::string>& node_string_fields();

/// A parsed calibration table.
struct SpecTable {
  std::vector<NodeSpec> systems;
};

/// True when the root node looks like a calibration table ("systems" list).
bool is_spec_table(const yaml::Node& root);

/// Build one NodeSpec from a `systems:` entry. Starts from the registry spec
/// when the tag is known, from a zeroed NodeSpec otherwise. Unknown keys are
/// ignored here (lint reports them); malformed values throw ParseError.
NodeSpec node_spec_from_yaml(const yaml::Node& entry);

SpecTable load_spec_table(const yaml::Node& root);
SpecTable load_spec_table_file(const std::string& path);

}  // namespace caraml::topo
