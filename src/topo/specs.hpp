// Hardware descriptions for the seven systems the paper evaluates
// (paper Fig. 1 and Table I).
//
// Every quantity with a datasheet source is taken verbatim from the paper.
// In addition each DeviceSpec carries *calibration knobs* for the performance
// and power models (max achievable model-FLOPs-utilization, batch saturation,
// idle power, power curve shape). Those are fitted against the paper's
// measured anchor points; see DESIGN.md §4 and EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace caraml::topo {

enum class Vendor { kNvidia, kAmd, kGraphcore };

std::string vendor_name(Vendor vendor);

/// Architecture family of the accelerator, per Flynn's taxonomy discussion in
/// the paper (GPUs: SIMD shared-memory hierarchy; IPU: MIMD distributed
/// per-core memory).
enum class ArchClass { kGpuSimd, kIpuMimd };

/// One accelerator device (paper Fig. 1).
struct DeviceSpec {
  std::string name;          // e.g. "NVIDIA A100 (SXM4)"
  Vendor vendor = Vendor::kNvidia;
  ArchClass arch = ArchClass::kGpuSimd;

  int compute_units = 0;           // SMs / CUs / IPU-cores
  double peak_fp16_flops = 0.0;    // FLOP/s, dense (no sparsity)
  double mem_capacity_bytes = 0.0; // HBM (GPU) or streaming DRAM budget (IPU)
  double mem_bandwidth = 0.0;      // bytes/s to device memory
  double sram_bytes = 0.0;         // on-chip SRAM (IPU: 900 MB; GPU: L2)
  double tdp_watts = 0.0;          // per device (GH200: full package)

  // --- calibration knobs (fitted, not datasheet) ---------------------------
  double idle_watts = 0.0;         // power at zero utilization
  double max_mfu_gemm = 0.0;       // achievable MFU for transformer GEMMs
  double max_mfu_conv = 0.0;       // achievable MFU for conv workloads
  double batch_half_mfu = 0.0;     // per-device batch at which MFU = max/2
  double power_floor_frac = 0.0;   // busy power at util->0, as fraction of TDP
  double launch_overhead_s = 0.0;  // fixed per-kernel launch latency
  /// Absolute utilization (achieved FLOP/s / peak) at which dynamic power
  /// reaches TDP: P = idle + (TDP-idle) * min(1, u/util_at_tdp)^1.3.
  double util_at_tdp = 1.0;
  /// Conv kernels draw more power per achieved FLOP than GEMMs (memory
  /// traffic, low tensor-core occupancy); multiplies u for conv workloads.
  double conv_power_boost = 1.0;
  /// For MCM devices (MI250): package power shared between the two GCDs,
  /// attributed to a lone active GCD when its sibling idles.
  double mcm_shared_watts = 0.0;
  /// Facility power cap per device (W); 0 = uncapped. A layout whose
  /// predicted sustained power exceeds the cap is statically infeasible
  /// (checked by `caraml lint` layout/power-infeasible).
  double power_cap_watts = 0.0;
};

/// Exponent of the power-vs-utilization curve (DVFS makes power superlinear
/// in delivered throughput).
inline constexpr double kPowerCurveExponent = 1.3;

/// A point-to-point or shared interconnect (paper Table I rows
/// "CPU-Acc. Connect", "Acc.-Acc. Connect", "Interconnect internode").
struct LinkSpec {
  std::string name;           // "NVLink4", "PCIe Gen 5", "IPU-Link", ...
  double bandwidth = 0.0;     // bytes/s, bidirectional per device
  double latency_s = 0.0;     // per-message latency
  /// Achievable fraction of the datasheet bandwidth (protocol overhead,
  /// congestion); must lie in (0, 1]. Both the simulator's hop model and the
  /// static layout analyzer divide by bandwidth * efficiency.
  double efficiency = 1.0;

  /// Bandwidth the cost models may actually use.
  double effective_bandwidth() const { return bandwidth * efficiency; }
};

/// A full node configuration (one column of paper Table I).
struct NodeSpec {
  std::string platform;       // "JEDI", "JURECA", "WestAI"
  std::string jube_tag;       // the tag used in `jube run ... --tag <tag>`
  std::string display_name;   // e.g. "GH200 (JEDI)"

  DeviceSpec device;
  int devices_per_node = 0;

  std::string cpu_model;
  int cpu_cores = 0;                 // total per node
  double cpu_mem_bytes = 0.0;        // total per node
  double cpu_mem_bw = 0.0;           // bytes/s

  LinkSpec host_link;                // CPU <-> accelerator
  LinkSpec peer_link;                // accelerator <-> accelerator intra-node
  LinkSpec inter_node;               // InfiniBand; bandwidth 0 => single node
  int max_nodes = 1;                 // nodes available for Fig. 4 scaling

  // --- calibration knobs ----------------------------------------------------
  /// Per-extra-active-device MFU degradation from shared host resources:
  /// mfu_eff = mfu / (1 + host_contention * (active_devices - 1)).
  /// Explains GH200-JEDI (4 devices) running ~20% below GH200-JRDC (1 device)
  /// per device (paper §IV-A).
  double host_contention = 0.0;
  /// How "busy" the device looks (for power) during contention-induced
  /// stalls: 0 = stalls idle at low power (GH200's host-memory stalls, which
  /// make JEDI *cheaper* per device than JRDC, §IV-A), >1 = busy-wait
  /// communication drawing extra power (MI250 at dp=8 consumes *more* energy
  /// per device than dp=4, §IV-A).
  double contention_power_frac = 0.0;
  /// Fixed per-iteration host time (optimizer launch storm, data prep,
  /// logging). Amortized over micro-steps; produces the rising-saturating
  /// throughput-vs-global-batch curves of Fig. 2.
  double fixed_iter_overhead_s = 0.0;
  /// Peak host input-pipeline rate per device for image workloads (before the
  /// page-cache factor). Models the "faster data loading with 4x CPU memory"
  /// effect of paper §IV-B.
  double host_pipeline_images_per_s = 0.0;

  /// Facility power cap for the whole node (W); 0 = uncapped. Compared
  /// against predicted sustained power x devices_per_node by the static
  /// layout analyzer.
  double node_power_cap_watts = 0.0;

  /// CPU host memory available per accelerator (drives the data-staging
  /// model that explains GH200-JEDI vs GH200-JRDC, paper §IV-A/B).
  double cpu_mem_per_device() const {
    return devices_per_node > 0 ? cpu_mem_bytes / devices_per_node
                                : cpu_mem_bytes;
  }
};

/// Registry of all systems from Table I, addressable by JUBE tag
/// (A100, H100, WAIH100, GH200, JEDI, MI250, GC200).
class SystemRegistry {
 public:
  static const SystemRegistry& instance();

  const NodeSpec& by_tag(const std::string& tag) const;
  bool has_tag(const std::string& tag) const;
  std::vector<std::string> tags() const;
  const std::vector<NodeSpec>& all() const { return nodes_; }

  /// All GPU systems (everything except GC200) in the order the paper plots
  /// them in Fig. 2 / Fig. 3.
  std::vector<std::string> gpu_tags() const;

 private:
  SystemRegistry();
  std::vector<NodeSpec> nodes_;
};

/// Device spec builders (paper Fig. 1), exposed for tests.
DeviceSpec make_a100_sxm4();
DeviceSpec make_h100_pcie();
DeviceSpec make_h100_sxm5();
DeviceSpec make_gh200();
DeviceSpec make_mi250_gcd();  // one GCD = one logical GPU (half an MI250)
DeviceSpec make_gc200_ipu();

}  // namespace caraml::topo
