#include "topo/specs.hpp"

#include "util/error.hpp"

namespace caraml::topo {

std::string vendor_name(Vendor vendor) {
  switch (vendor) {
    case Vendor::kNvidia: return "NVIDIA";
    case Vendor::kAmd: return "AMD";
    case Vendor::kGraphcore: return "Graphcore";
  }
  return "unknown";
}

namespace {
constexpr double GB = 1e9;
constexpr double TFLOPS = 1e12;
constexpr double GBs = 1e9;  // bytes/s
}  // namespace

// ---------------------------------------------------------------------------
// Device specs — datasheet numbers from paper Fig. 1; calibration knobs fitted
// against the paper's measured anchors (see EXPERIMENTS.md "Calibration").
// ---------------------------------------------------------------------------

DeviceSpec make_a100_sxm4() {
  DeviceSpec d;
  d.name = "NVIDIA A100 (SXM4)";
  d.vendor = Vendor::kNvidia;
  d.arch = ArchClass::kGpuSimd;
  d.compute_units = 108;
  d.peak_fp16_flops = 312.0 * TFLOPS;
  d.mem_capacity_bytes = 40.0 * GB;
  d.mem_bandwidth = 1555.0 * GBs;
  d.sram_bytes = 40.0e6;  // 40 MB L2
  d.tdp_watts = 400.0;
  // Calibration: best-case 800M-GPT throughput anchor 19.4k tokens/s/GPU
  // (= 47505 / 2.45, paper §IV-A).
  d.idle_watts = 60.0;
  d.max_mfu_gemm = 0.405;
  d.max_mfu_conv = 0.1651;
  d.batch_half_mfu = 24.0;
  d.power_floor_frac = 0.0;
  d.launch_overhead_s = 6e-6;
  d.util_at_tdp = 0.419;
  d.conv_power_boost = 2.065;
  return d;
}

DeviceSpec make_h100_pcie() {
  DeviceSpec d;
  d.name = "NVIDIA H100 (PCIe)";
  d.vendor = Vendor::kNvidia;
  d.arch = ArchClass::kGpuSimd;
  d.compute_units = 114;
  d.peak_fp16_flops = 756.0 * TFLOPS;
  d.mem_capacity_bytes = 80.0 * GB;
  d.mem_bandwidth = 2000.0 * GBs;
  d.sram_bytes = 50.0e6;
  d.tdp_watts = 350.0;
  // Calibration: GH200 throughput is ~2x H100-PCIe and PCIe is the most
  // energy-efficient device by up to 25% (paper §IV-A) — the 350 W power cap
  // pushes the card to an efficient operating point (low util_at_tdp).
  d.idle_watts = 50.0;
  d.max_mfu_gemm = 0.205;
  d.max_mfu_conv = 0.0974;
  d.batch_half_mfu = 24.0;
  d.power_floor_frac = 0.0;
  d.launch_overhead_s = 5e-6;
  d.util_at_tdp = 0.2516;
  d.conv_power_boost = 2.515;
  return d;
}

DeviceSpec make_h100_sxm5() {
  DeviceSpec d;
  d.name = "NVIDIA H100 (SXM5)";
  d.vendor = Vendor::kNvidia;
  d.arch = ArchClass::kGpuSimd;
  d.compute_units = 132;
  d.peak_fp16_flops = 990.0 * TFLOPS;
  d.mem_capacity_bytes = 94.0 * GB;
  d.mem_bandwidth = 2400.0 * GBs;
  d.sram_bytes = 50.0e6;
  d.tdp_watts = 700.0;
  // Calibration: WestAI H100 processes 1.3x the tokens of the PCIe variant
  // (paper §IV-A).
  d.idle_watts = 70.0;
  d.max_mfu_gemm = 0.200;
  d.max_mfu_conv = 0.0967;
  d.batch_half_mfu = 24.0;
  d.power_floor_frac = 0.0;
  d.launch_overhead_s = 5e-6;
  d.util_at_tdp = 0.2427;
  d.conv_power_boost = 2.068;
  return d;
}

DeviceSpec make_gh200() {
  DeviceSpec d;
  d.name = "NVIDIA GH200 (Hopper H100 + Grace)";
  d.vendor = Vendor::kNvidia;
  d.arch = ArchClass::kGpuSimd;
  d.compute_units = 132;
  d.peak_fp16_flops = 990.0 * TFLOPS;
  d.mem_capacity_bytes = 96.0 * GB;
  d.mem_bandwidth = 4000.0 * GBs;  // HBM3 at 4 TB/s (paper Fig. 1)
  d.sram_bytes = 60.0e6;
  d.tdp_watts = 690.0;  // full package incl. Grace CPU (paper Table I: 680/700)
  // Calibration: 47,505 tokens/s/GPU anchor on a single-device node
  // (paper §IV-A) => MFU 0.293 on 990 TFLOP/s.
  d.idle_watts = 100.0;
  d.max_mfu_gemm = 0.298;
  d.max_mfu_conv = 0.1115;
  d.batch_half_mfu = 24.0;
  d.power_floor_frac = 0.0;
  d.launch_overhead_s = 4e-6;
  d.util_at_tdp = 0.3147;
  d.conv_power_boost = 2.202;
  return d;
}

DeviceSpec make_mi250_gcd() {
  DeviceSpec d;
  // One MI250 is an MCM of two GCDs; the OS sees each GCD as a GPU
  // (paper Fig. 1 / §II-C). We model at GCD granularity.
  d.name = "AMD MI250 GCD (1/2 MCM)";
  d.vendor = Vendor::kAmd;
  d.arch = ArchClass::kGpuSimd;
  d.compute_units = 104;
  d.peak_fp16_flops = 362.1 / 2.0 * TFLOPS;
  d.mem_capacity_bytes = 64.0 * GB;
  d.mem_bandwidth = 1600.0 * GBs;
  d.sram_bytes = 16.0e6;
  d.tdp_watts = 280.0;  // 560 W per MCM
  d.idle_watts = 45.0;
  d.max_mfu_gemm = 0.32;
  d.max_mfu_conv = 0.1762;
  d.batch_half_mfu = 48.0;  // steeper small-batch falloff (paper §IV-B:
                            // MI250 only wins images/Wh at larger batches)
  d.power_floor_frac = 0.0;
  d.launch_overhead_s = 8e-6;
  d.util_at_tdp = 0.3846;
  d.conv_power_boost = 0.75;
  // Shared MCM package power attributed to a lone active GCD (paper §IV-B:
  // using both GCDs of an MI250 is slightly more energy-efficient).
  d.mcm_shared_watts = 10.0;
  return d;
}

DeviceSpec make_gc200_ipu() {
  DeviceSpec d;
  d.name = "Graphcore GC200 IPU";
  d.vendor = Vendor::kGraphcore;
  d.arch = ArchClass::kIpuMimd;
  d.compute_units = 1472;
  d.peak_fp16_flops = 250.0 * TFLOPS;
  // 900 MB on-chip SRAM; chip-external streaming DRAM in the M2000 chassis.
  d.mem_capacity_bytes = 448.0 * GB / 4.0;  // M2000 streaming memory per IPU
  d.mem_bandwidth = 1.136 * GBs;  // effective DRAM streaming bw (calibrated
                                  // against Table II stage time, see models/)
  d.sram_bytes = 900.0e6;
  d.tdp_watts = 300.0;
  d.idle_watts = 25.0;
  d.max_mfu_gemm = 0.05;    // DRAM-streaming bound for GPT (Table II)
  d.max_mfu_conv = 0.18565;  // ResNet50 fits in SRAM: 1890 img/s (Table III)
  d.batch_half_mfu = 8.0;
  d.power_floor_frac = 0.0;
  d.launch_overhead_s = 2e-5;
  d.util_at_tdp = 0.3095;
  d.conv_power_boost = 1.0;
  return d;
}

// ---------------------------------------------------------------------------
// Node specs — paper Table I.
// ---------------------------------------------------------------------------

namespace {

LinkSpec nvlink_c2c() { return {"NVLink-C2C", 900.0 * GBs, 2e-6}; }
LinkSpec pcie_gen5() { return {"PCIe Gen 5", 128.0 * GBs, 5e-6}; }
LinkSpec pcie_gen4() { return {"PCIe Gen 4", 64.0 * GBs, 5e-6}; }
LinkSpec nvlink4_900() { return {"NVLink4", 900.0 * GBs, 3e-6}; }
LinkSpec nvlink4_600() { return {"NVLink4 (bridge)", 600.0 * GBs, 3e-6}; }
LinkSpec nvlink3_600() { return {"NVLink3", 600.0 * GBs, 3e-6}; }
LinkSpec infinity_fabric() { return {"Infinity Fabric", 500.0 * GBs, 4e-6}; }
LinkSpec ipu_link() { return {"IPU-Link", 256.0 * GBs, 4e-6}; }
LinkSpec no_link() { return {"none", 0.0, 0.0}; }
LinkSpec ib_ndr_4x200() { return {"4x IB NDR", 4 * 25.0 * GBs, 2e-5}; }
LinkSpec ib_ndr_2x400() { return {"2x IB NDR", 2 * 50.0 * GBs, 2e-5}; }
LinkSpec ib_hdr_2x200() { return {"2x IB HDR", 2 * 25.0 * GBs, 2e-5}; }

}  // namespace

SystemRegistry::SystemRegistry() {
  {
    NodeSpec n;
    n.platform = "JEDI";
    n.jube_tag = "JEDI";
    n.display_name = "GH200 (JEDI)";
    n.device = make_gh200();
    n.devices_per_node = 4;
    n.cpu_model = "NVIDIA Grace (4x 72c)";
    n.cpu_cores = 4 * 72;
    n.cpu_mem_bytes = 4 * 120.0 * GB;
    n.cpu_mem_bw = 4 * 512.0 * GBs;
    n.host_link = nvlink_c2c();
    n.peer_link = nvlink4_900();
    n.inter_node = ib_ndr_4x200();
    n.max_nodes = 16;
    n.host_contention = 0.07;
    n.contention_power_frac = 0.0;
    n.fixed_iter_overhead_s = 0.5;
    n.host_pipeline_images_per_s = 5200.0;
    nodes_.push_back(n);
  }
  {
    NodeSpec n;
    n.platform = "JURECA";
    n.jube_tag = "GH200";
    n.display_name = "GH200 (JRDC)";
    n.device = make_gh200();
    n.devices_per_node = 1;
    n.cpu_model = "NVIDIA Grace (72c)";
    n.cpu_cores = 72;
    n.cpu_mem_bytes = 480.0 * GB;
    n.cpu_mem_bw = 512.0 * GBs;
    n.host_link = nvlink_c2c();
    n.peer_link = no_link();
    n.inter_node = no_link();
    n.max_nodes = 1;
    n.host_contention = 0.07;
    n.contention_power_frac = 0.0;
    n.fixed_iter_overhead_s = 0.5;
    n.host_pipeline_images_per_s = 5200.0;
    nodes_.push_back(n);
  }
  {
    NodeSpec n;
    n.platform = "JURECA";
    n.jube_tag = "H100";
    n.display_name = "H100 (JRDC)";
    n.device = make_h100_pcie();
    n.devices_per_node = 4;
    n.cpu_model = "2x 72c Intel Xeon Platinum 8452Y";
    n.cpu_cores = 144;
    n.cpu_mem_bytes = 512.0 * GB;
    n.cpu_mem_bw = 2 * 307.0 * GBs;
    n.host_link = pcie_gen5();
    n.peer_link = nvlink4_600();
    n.inter_node = no_link();
    n.max_nodes = 1;
    n.host_contention = 0.02;
    n.contention_power_frac = 0.3;
    n.fixed_iter_overhead_s = 0.7;
    n.host_pipeline_images_per_s = 8000.0;
    nodes_.push_back(n);
  }
  {
    NodeSpec n;
    n.platform = "WestAI";
    n.jube_tag = "WAIH100";
    n.display_name = "H100 (WestAI)";
    n.device = make_h100_sxm5();
    n.devices_per_node = 4;
    n.cpu_model = "2x 32c Intel Xeon Platinum 8462Y";
    n.cpu_cores = 64;
    n.cpu_mem_bytes = 512.0 * GB;
    n.cpu_mem_bw = 2 * 307.0 * GBs;
    n.host_link = pcie_gen5();
    n.peer_link = nvlink4_900();
    n.inter_node = ib_ndr_2x400();
    n.max_nodes = 8;
    n.host_contention = 0.02;
    n.contention_power_frac = 0.3;
    n.fixed_iter_overhead_s = 0.7;
    n.host_pipeline_images_per_s = 8000.0;
    nodes_.push_back(n);
  }
  {
    NodeSpec n;
    n.platform = "JURECA";
    n.jube_tag = "MI250";
    n.display_name = "AMD MI250";
    n.device = make_mi250_gcd();
    n.devices_per_node = 8;  // 4 MI250 MCMs = 8 GCDs visible to the OS
    n.cpu_model = "2x 48c AMD EPYC 7443";
    n.cpu_cores = 96;
    n.cpu_mem_bytes = 512.0 * GB;
    n.cpu_mem_bw = 2 * 204.0 * GBs;
    n.host_link = pcie_gen4();
    n.peer_link = infinity_fabric();
    n.inter_node = ib_hdr_2x200();
    n.max_nodes = 2;
    n.host_contention = 0.02;
    n.contention_power_frac = 1.3;
    n.fixed_iter_overhead_s = 0.9;
    n.host_pipeline_images_per_s = 6000.0;
    nodes_.push_back(n);
  }
  {
    NodeSpec n;
    n.platform = "JURECA";
    n.jube_tag = "GC200";
    n.display_name = "IPU-M2000 (GC200)";
    n.device = make_gc200_ipu();
    n.devices_per_node = 4;  // IPU-POD4
    n.cpu_model = "2x 48c AMD EPYC 7413";
    n.cpu_cores = 96;
    n.cpu_mem_bytes = 512.0 * GB;
    n.cpu_mem_bw = 2 * 204.0 * GBs;
    n.host_link = pcie_gen4();
    n.peer_link = ipu_link();
    n.inter_node = no_link();
    n.max_nodes = 1;
    n.host_contention = 0.01;
    n.contention_power_frac = 0.0;
    n.fixed_iter_overhead_s = 0.3;
    n.host_pipeline_images_per_s = 4000.0;
    nodes_.push_back(n);
  }
  {
    NodeSpec n;
    n.platform = "JURECA";
    n.jube_tag = "A100";
    n.display_name = "A100";
    n.device = make_a100_sxm4();
    n.devices_per_node = 4;
    n.cpu_model = "2x 64c AMD EPYC 7742";
    n.cpu_cores = 128;
    n.cpu_mem_bytes = 512.0 * GB;
    n.cpu_mem_bw = 2 * 204.0 * GBs;
    n.host_link = pcie_gen4();
    n.peer_link = nvlink3_600();
    n.inter_node = ib_hdr_2x200();
    n.max_nodes = 4;
    n.host_contention = 0.02;
    n.contention_power_frac = 0.3;
    n.fixed_iter_overhead_s = 0.7;
    n.host_pipeline_images_per_s = 8000.0;
    nodes_.push_back(n);
  }
}

const SystemRegistry& SystemRegistry::instance() {
  static SystemRegistry registry;
  return registry;
}

const NodeSpec& SystemRegistry::by_tag(const std::string& tag) const {
  for (const auto& node : nodes_) {
    if (node.jube_tag == tag) return node;
  }
  throw NotFound("unknown system tag: " + tag);
}

bool SystemRegistry::has_tag(const std::string& tag) const {
  for (const auto& node : nodes_) {
    if (node.jube_tag == tag) return true;
  }
  return false;
}

std::vector<std::string> SystemRegistry::tags() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) out.push_back(node.jube_tag);
  return out;
}

std::vector<std::string> SystemRegistry::gpu_tags() const {
  return {"JEDI", "GH200", "H100", "WAIH100", "MI250", "A100"};
}

}  // namespace caraml::topo
