#include "topo/spec_yaml.hpp"

#include "util/error.hpp"

namespace caraml::topo {

const std::vector<DoubleField<DeviceSpec>>& device_double_fields() {
  static const std::vector<DoubleField<DeviceSpec>> fields = {
      {"peak_fp16_flops", &DeviceSpec::peak_fp16_flops, true},
      {"mem_capacity_bytes", &DeviceSpec::mem_capacity_bytes, true},
      {"mem_bandwidth", &DeviceSpec::mem_bandwidth, true},
      {"sram_bytes", &DeviceSpec::sram_bytes, false},
      {"tdp_watts", &DeviceSpec::tdp_watts, true},
      {"idle_watts", &DeviceSpec::idle_watts, false},
      {"max_mfu_gemm", &DeviceSpec::max_mfu_gemm, false},
      {"max_mfu_conv", &DeviceSpec::max_mfu_conv, false},
      {"batch_half_mfu", &DeviceSpec::batch_half_mfu, false},
      {"power_floor_frac", &DeviceSpec::power_floor_frac, false},
      {"launch_overhead_s", &DeviceSpec::launch_overhead_s, false},
      {"util_at_tdp", &DeviceSpec::util_at_tdp, true},
      {"conv_power_boost", &DeviceSpec::conv_power_boost, false},
      {"mcm_shared_watts", &DeviceSpec::mcm_shared_watts, false},
      {"power_cap_watts", &DeviceSpec::power_cap_watts, false},
  };
  return fields;
}

const std::vector<IntField<DeviceSpec>>& device_int_fields() {
  static const std::vector<IntField<DeviceSpec>> fields = {
      {"compute_units", &DeviceSpec::compute_units, true},
  };
  return fields;
}

const std::vector<DoubleField<NodeSpec>>& node_double_fields() {
  static const std::vector<DoubleField<NodeSpec>> fields = {
      {"cpu_mem_bytes", &NodeSpec::cpu_mem_bytes, false},
      {"cpu_mem_bw", &NodeSpec::cpu_mem_bw, false},
      {"host_contention", &NodeSpec::host_contention, false},
      {"contention_power_frac", &NodeSpec::contention_power_frac, false},
      {"fixed_iter_overhead_s", &NodeSpec::fixed_iter_overhead_s, false},
      {"host_pipeline_images_per_s", &NodeSpec::host_pipeline_images_per_s,
       false},
      {"node_power_cap_watts", &NodeSpec::node_power_cap_watts, false},
  };
  return fields;
}

const std::vector<IntField<NodeSpec>>& node_int_fields() {
  static const std::vector<IntField<NodeSpec>> fields = {
      {"devices_per_node", &NodeSpec::devices_per_node, true},
      {"cpu_cores", &NodeSpec::cpu_cores, false},
      {"max_nodes", &NodeSpec::max_nodes, true},
  };
  return fields;
}

const std::vector<DoubleField<LinkSpec>>& link_double_fields() {
  static const std::vector<DoubleField<LinkSpec>> fields = {
      {"bandwidth", &LinkSpec::bandwidth, false},
      {"latency_s", &LinkSpec::latency_s, false},
      {"efficiency", &LinkSpec::efficiency, false},
  };
  return fields;
}

const std::vector<std::string>& device_string_fields() {
  static const std::vector<std::string> fields = {"name", "vendor", "arch"};
  return fields;
}

const std::vector<std::string>& node_string_fields() {
  static const std::vector<std::string> fields = {"platform", "display_name",
                                                  "cpu_model"};
  return fields;
}

bool is_spec_table(const yaml::Node& root) {
  return root.is_map() && root.has("systems");
}

namespace {

// Dispatch helpers so apply_fields can be written once per owner type.
template <typename Owner>
struct DoubleFieldsOf;
template <>
struct DoubleFieldsOf<DeviceSpec> {
  static const std::vector<DoubleField<DeviceSpec>>& get() {
    return device_double_fields();
  }
};
template <>
struct DoubleFieldsOf<NodeSpec> {
  static const std::vector<DoubleField<NodeSpec>>& get() {
    return node_double_fields();
  }
};

template <typename Owner>
struct IntFieldsOf;
template <>
struct IntFieldsOf<DeviceSpec> {
  static const std::vector<IntField<DeviceSpec>>& get() {
    return device_int_fields();
  }
};
template <>
struct IntFieldsOf<NodeSpec> {
  static const std::vector<IntField<NodeSpec>>& get() {
    return node_int_fields();
  }
};

template <typename Owner>
void apply_fields(const yaml::Node& section, Owner& out) {
  for (const auto& field : DoubleFieldsOf<Owner>::get()) {
    if (const yaml::NodePtr value = section.find(field.name);
        value && value->is_scalar()) {
      out.*(field.member) = value->as_double();
    }
  }
  for (const auto& field : IntFieldsOf<Owner>::get()) {
    if (const yaml::NodePtr value = section.find(field.name);
        value && value->is_scalar()) {
      out.*(field.member) = static_cast<int>(value->as_int());
    }
  }
}

void apply_link(const yaml::Node& section, LinkSpec& out) {
  for (const auto& field : link_double_fields()) {
    if (const yaml::NodePtr value = section.find(field.name);
        value && value->is_scalar()) {
      out.*(field.member) = value->as_double();
    }
  }
  if (section.has("name")) out.name = section.get_or("name", out.name);
}

Vendor vendor_from_string(const std::string& s) {
  if (s == "nvidia") return Vendor::kNvidia;
  if (s == "amd") return Vendor::kAmd;
  if (s == "graphcore") return Vendor::kGraphcore;
  throw ParseError("unknown vendor '" + s +
                   "' (expected nvidia|amd|graphcore)");
}

ArchClass arch_from_string(const std::string& s) {
  if (s == "gpu") return ArchClass::kGpuSimd;
  if (s == "ipu") return ArchClass::kIpuMimd;
  throw ParseError("unknown arch '" + s + "' (expected gpu|ipu)");
}

}  // namespace

NodeSpec node_spec_from_yaml(const yaml::Node& entry) {
  if (!entry.is_map()) throw ParseError("calibration entry is not a mapping");
  const std::string tag = entry.get_or("tag", "");
  if (tag.empty()) throw ParseError("calibration entry is missing 'tag'");

  NodeSpec spec;
  const auto& registry = SystemRegistry::instance();
  if (registry.has_tag(tag)) spec = registry.by_tag(tag);
  spec.jube_tag = tag;

  if (const yaml::NodePtr device = entry.find("device");
      device && device->is_map()) {
    apply_fields(*device, spec.device);
    if (device->has("name")) spec.device.name = device->get_or("name", "");
    if (device->has("vendor")) {
      spec.device.vendor = vendor_from_string(device->get_or("vendor", ""));
    }
    if (device->has("arch")) {
      spec.device.arch = arch_from_string(device->get_or("arch", ""));
    }
  }
  if (const yaml::NodePtr node = entry.find("node"); node && node->is_map()) {
    apply_fields(*node, spec);
    spec.platform = node->get_or("platform", spec.platform);
    spec.display_name = node->get_or("display_name", spec.display_name);
    spec.cpu_model = node->get_or("cpu_model", spec.cpu_model);
  }
  if (const yaml::NodePtr links = entry.find("links");
      links && links->is_map()) {
    if (const yaml::NodePtr host = links->find("host"); host && host->is_map())
      apply_link(*host, spec.host_link);
    if (const yaml::NodePtr peer = links->find("peer"); peer && peer->is_map())
      apply_link(*peer, spec.peer_link);
    if (const yaml::NodePtr inter = links->find("inter");
        inter && inter->is_map())
      apply_link(*inter, spec.inter_node);
  }
  if (spec.display_name.empty()) spec.display_name = tag;
  return spec;
}

SpecTable load_spec_table(const yaml::Node& root) {
  if (!is_spec_table(root)) {
    throw ParseError("calibration table has no top-level 'systems' list");
  }
  const yaml::NodePtr systems = root.at("systems");
  if (!systems->is_sequence()) {
    throw ParseError("'systems' must be a sequence of calibration entries");
  }
  SpecTable table;
  for (const auto& entry : systems->items()) {
    table.systems.push_back(node_spec_from_yaml(*entry));
  }
  return table;
}

SpecTable load_spec_table_file(const std::string& path) {
  return load_spec_table(*yaml::parse_file(path));
}

}  // namespace caraml::topo
