// An in-process reimplementation of the JUBE workflow engine's core
// semantics (paper §III-A3, references [29], [30]):
//
//  * parameter sets whose parameters carry value *lists*; a benchmark run
//    expands the cartesian product into workpackages,
//  * tag filtering: parameters and steps can be restricted to tags passed at
//    run time (`jube run ... --tag A100` in the paper),
//  * steps with dependencies, executed per workpackage with ${param}
//    substitution,
//  * analyser patterns (regex) that extract figures of merit from step
//    output, and
//  * a compact tabular result view (`jube result`).
//
// Where the real JUBE shells out to Slurm, this engine invokes registered
// C++ actions in-process — the scheduling layer is incidental to CARAML's
// results (DESIGN.md §2).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "util/table.hpp"
#include "yaml/yaml.hpp"

namespace caraml::jube {

/// Execution context of one workpackage: parameter name -> value.
using Context = std::map<std::string, std::string>;

/// One parameter: a name and one or more values. A non-empty `tag` makes the
/// parameter active only when that tag is passed ("!tag" = active unless).
struct Parameter {
  std::string name;
  std::vector<std::string> values;
  std::string tag;

  bool active(const std::set<std::string>& tags) const;
};

struct ParameterSet {
  std::string name;
  std::vector<Parameter> parameters;
};

/// A step action: receives the substituted context, returns its "output"
/// text (stdout of the job in real JUBE).
using Action = std::function<std::string(const Context&)>;

struct Step {
  std::string name;
  std::vector<std::string> depends;
  std::string action_name;  // looked up in the ActionRegistry
  std::string tag;          // optional tag filter, as for parameters

  bool active(const std::set<std::string>& tags) const;
};

/// Regex pattern extracting a figure of merit from step outputs; the last
/// match of capture group 1 wins (JUBE's default reduce).
struct Pattern {
  std::string name;
  std::string regex;
};

/// Registered C++ actions steps can invoke.
class ActionRegistry {
 public:
  void register_action(const std::string& name, Action action);
  bool has(const std::string& name) const;
  const Action& at(const std::string& name) const;

 private:
  std::map<std::string, Action> actions_;
};

/// How one step execution ended under the resilient run() overload.
struct StepOutcome {
  std::string step;
  std::string status = "ok";  // ok | retried | failed | skipped
  int attempts = 1;           // 0 when skipped
  double backoff_s = 0.0;     // total retry backoff spent on the step
  std::string error;          // last error / skip reason
};

struct Workpackage {
  Context context;                          // expanded parameters
  std::map<std::string, std::string> outputs;  // step name -> output text
  Context analysed;                         // pattern name -> extracted value
  std::string status = "ok";                // ok | degraded | failed | skipped
  std::vector<StepOutcome> step_outcomes;   // resilient run() only
  /// True when the workpackage was served from a sweep result cache instead
  /// of executing its steps (step_outcomes stay empty in that case).
  bool from_cache = false;
};

/// Resilience knobs for the fault-tolerant run() overload — the simulated
/// counterpart of CARAML's Slurm-level requeue/timeout handling.
struct RunOptions {
  fault::RetryPolicy retry;   // per-step bounded retry with backoff
  double step_timeout_s = 0.0;  // 0 = no timeout; else each attempt is bounded
  /// Keep going after a step exhausts its retries: mark the step failed,
  /// skip its transitive dependents, and still analyse/tabulate the
  /// workpackage (annotated status column). When false, the first exhausted
  /// step aborts the run with an exception, like the strict overload.
  bool harvest_partial = true;
  std::function<void(double)> sleeper;  // test seam for backoff sleeps
};

/// Sweep-level execution knobs shared by both run() overloads: workpackage
/// parallelism and a persistent result cache (see sweep.hpp). Workpackage
/// results always land in deterministic expansion order regardless of
/// completion order, and per-workpackage retry jitter streams are derived
/// from (retry seed, workpackage index) so fault/backoff schedules are
/// byte-identical between sequential and parallel sweeps.
struct SweepOptions {
  /// Concurrent workpackages: 1 = sequential (default), N > 1 = a dedicated
  /// pool of N workers, 0 = one worker per hardware thread. Workpackages run
  /// on their own pool (not ThreadPool::global()) so actions remain free to
  /// use the global pool internally without starving the sweep.
  int jobs = 1;
  /// JSONL result-cache file ("" = caching off). Completed (non-failed)
  /// workpackages are appended as they finish; a re-run skips every
  /// fingerprint hit and reports hit/miss counts on the RunResult.
  std::string cache_path;
  /// Extra fingerprint material (typically the active fault plan's
  /// fingerprint) so cached results are never reused across different fault
  /// schedules.
  std::string fault_fingerprint;
  /// Static pre-dispatch gate (`caraml run --skip-doomed`): called with each
  /// expanded context and the active step actions *before* cache lookup or
  /// execution. A non-empty return is the reason the workpackage is
  /// statically doomed; it is marked status "skipped" (skip_reason in the
  /// analysed columns) without running or caching anything. Unset = run all.
  std::function<std::string(const Context&, const std::vector<std::string>&)>
      static_gate;
};

struct RunResult {
  std::vector<Workpackage> workpackages;
  std::size_t cache_hits = 0;    // workpackages served from the sweep cache
  std::size_t cache_misses = 0;  // workpackages that had to execute
  std::size_t skipped = 0;       // statically-doomed workpackages gated out

  /// JUBE-style result table over parameter/pattern columns.
  TextTable table(const std::vector<std::string>& columns) const;
};

class Benchmark {
 public:
  explicit Benchmark(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_parameter_set(ParameterSet set);
  void add_step(Step step);
  void add_pattern(Pattern pattern);

  /// Expand parameters (cartesian product of all active parameters) into
  /// workpackage contexts, without running steps.
  std::vector<Context> expand(const std::set<std::string>& tags) const;

  /// Full run: expand, execute steps in dependency order, apply patterns.
  /// Strict: the first step error propagates as an exception.
  RunResult run(const ActionRegistry& registry,
                const std::set<std::string>& tags) const;

  /// Strict run with sweep-level parallelism and result caching. With
  /// jobs > 1 the first error (in expansion order) is rethrown after every
  /// in-flight workpackage has finished.
  RunResult run(const ActionRegistry& registry,
                const std::set<std::string>& tags,
                const SweepOptions& sweep) const;

  /// Resilient run: each step attempt is bounded by `options.step_timeout_s`
  /// and retried per `options.retry`; exhausted steps are harvested as
  /// failed rows (their dependents skipped) instead of aborting the whole
  /// benchmark. Workpackage/step statuses land in the analysed "status"
  /// column so degraded rows are visible in result tables.
  RunResult run(const ActionRegistry& registry,
                const std::set<std::string>& tags,
                const RunOptions& options) const;

  /// Resilient run with sweep-level parallelism and result caching.
  RunResult run(const ActionRegistry& registry,
                const std::set<std::string>& tags,
                const RunOptions& options, const SweepOptions& sweep) const;

  /// Load benchmark structure (parametersets, steps, patterns) from a JUBE
  /// YAML script. Step "do" entries name registered actions.
  static Benchmark from_yaml(const yaml::NodePtr& root);
  static Benchmark from_yaml_file(const std::string& path);

 private:
  std::vector<std::string> step_order() const;  // topological
  /// Active (step, action) pairs in execution order — the step material of
  /// the workpackage fingerprint.
  std::vector<std::pair<std::string, std::string>> active_steps(
      const std::vector<std::string>& order,
      const std::set<std::string>& tags) const;
  /// Apply patterns to the outputs, concatenated in `order` (execution)
  /// sequence so the last-match reduce sees steps in dependency order.
  void analyse(Workpackage& wp, const std::vector<std::string>& order) const;
  /// Execute one workpackage. `options == nullptr` selects strict semantics
  /// (first error throws); otherwise the resilient retry/timeout/harvest
  /// path runs with a retry jitter stream derived from
  /// (options->retry.seed, index).
  Workpackage run_workpackage(const ActionRegistry& registry,
                              const std::set<std::string>& tags,
                              const std::vector<std::string>& order,
                              const Context& context,
                              const RunOptions* options,
                              std::size_t index) const;
  RunResult run_sweep(const ActionRegistry& registry,
                      const std::set<std::string>& tags,
                      const RunOptions* options,
                      const SweepOptions& sweep) const;

  std::string name_;
  std::vector<ParameterSet> parameter_sets_;
  std::vector<Step> steps_;
  std::vector<Pattern> patterns_;
};

/// Substitute ${param} placeholders from the context (iteratively, so
/// parameters may reference other parameters). Throws caraml::Error, naming
/// the offending parameter(s), when references cannot be resolved — either
/// because a parameter is missing from the context or because parameters
/// reference each other in a cycle.
std::string substitute_context(const std::string& text, const Context& context);

}  // namespace caraml::jube
