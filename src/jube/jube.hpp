// An in-process reimplementation of the JUBE workflow engine's core
// semantics (paper §III-A3, references [29], [30]):
//
//  * parameter sets whose parameters carry value *lists*; a benchmark run
//    expands the cartesian product into workpackages,
//  * tag filtering: parameters and steps can be restricted to tags passed at
//    run time (`jube run ... --tag A100` in the paper),
//  * steps with dependencies, executed per workpackage with ${param}
//    substitution,
//  * analyser patterns (regex) that extract figures of merit from step
//    output, and
//  * a compact tabular result view (`jube result`).
//
// Where the real JUBE shells out to Slurm, this engine invokes registered
// C++ actions in-process — the scheduling layer is incidental to CARAML's
// results (DESIGN.md §2).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "util/table.hpp"
#include "yaml/yaml.hpp"

namespace caraml::jube {

/// Execution context of one workpackage: parameter name -> value.
using Context = std::map<std::string, std::string>;

/// One parameter: a name and one or more values. A non-empty `tag` makes the
/// parameter active only when that tag is passed ("!tag" = active unless).
struct Parameter {
  std::string name;
  std::vector<std::string> values;
  std::string tag;

  bool active(const std::set<std::string>& tags) const;
};

struct ParameterSet {
  std::string name;
  std::vector<Parameter> parameters;
};

/// A step action: receives the substituted context, returns its "output"
/// text (stdout of the job in real JUBE).
using Action = std::function<std::string(const Context&)>;

struct Step {
  std::string name;
  std::vector<std::string> depends;
  std::string action_name;  // looked up in the ActionRegistry
  std::string tag;          // optional tag filter, as for parameters

  bool active(const std::set<std::string>& tags) const;
};

/// Regex pattern extracting a figure of merit from step outputs; the last
/// match of capture group 1 wins (JUBE's default reduce).
struct Pattern {
  std::string name;
  std::string regex;
};

/// Registered C++ actions steps can invoke.
class ActionRegistry {
 public:
  void register_action(const std::string& name, Action action);
  bool has(const std::string& name) const;
  const Action& at(const std::string& name) const;

 private:
  std::map<std::string, Action> actions_;
};

/// How one step execution ended under the resilient run() overload.
struct StepOutcome {
  std::string step;
  std::string status = "ok";  // ok | retried | failed | skipped
  int attempts = 1;           // 0 when skipped
  double backoff_s = 0.0;     // total retry backoff spent on the step
  std::string error;          // last error / skip reason
};

struct Workpackage {
  Context context;                          // expanded parameters
  std::map<std::string, std::string> outputs;  // step name -> output text
  Context analysed;                         // pattern name -> extracted value
  std::string status = "ok";                // ok | degraded | failed
  std::vector<StepOutcome> step_outcomes;   // resilient run() only
};

/// Resilience knobs for the fault-tolerant run() overload — the simulated
/// counterpart of CARAML's Slurm-level requeue/timeout handling.
struct RunOptions {
  fault::RetryPolicy retry;   // per-step bounded retry with backoff
  double step_timeout_s = 0.0;  // 0 = no timeout; else each attempt is bounded
  /// Keep going after a step exhausts its retries: mark the step failed,
  /// skip its transitive dependents, and still analyse/tabulate the
  /// workpackage (annotated status column). When false, the first exhausted
  /// step aborts the run with an exception, like the strict overload.
  bool harvest_partial = true;
  std::function<void(double)> sleeper;  // test seam for backoff sleeps
};

struct RunResult {
  std::vector<Workpackage> workpackages;

  /// JUBE-style result table over parameter/pattern columns.
  TextTable table(const std::vector<std::string>& columns) const;
};

class Benchmark {
 public:
  explicit Benchmark(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void add_parameter_set(ParameterSet set);
  void add_step(Step step);
  void add_pattern(Pattern pattern);

  /// Expand parameters (cartesian product of all active parameters) into
  /// workpackage contexts, without running steps.
  std::vector<Context> expand(const std::set<std::string>& tags) const;

  /// Full run: expand, execute steps in dependency order, apply patterns.
  /// Strict: the first step error propagates as an exception.
  RunResult run(const ActionRegistry& registry,
                const std::set<std::string>& tags) const;

  /// Resilient run: each step attempt is bounded by `options.step_timeout_s`
  /// and retried per `options.retry`; exhausted steps are harvested as
  /// failed rows (their dependents skipped) instead of aborting the whole
  /// benchmark. Workpackage/step statuses land in the analysed "status"
  /// column so degraded rows are visible in result tables.
  RunResult run(const ActionRegistry& registry,
                const std::set<std::string>& tags,
                const RunOptions& options) const;

  /// Load benchmark structure (parametersets, steps, patterns) from a JUBE
  /// YAML script. Step "do" entries name registered actions.
  static Benchmark from_yaml(const yaml::NodePtr& root);
  static Benchmark from_yaml_file(const std::string& path);

 private:
  std::vector<std::string> step_order() const;  // topological
  void analyse(Workpackage& wp) const;          // apply patterns to outputs

  std::string name_;
  std::vector<ParameterSet> parameter_sets_;
  std::vector<Step> steps_;
  std::vector<Pattern> patterns_;
};

/// Substitute ${param} placeholders from the context (iteratively, so
/// parameters may reference other parameters).
std::string substitute_context(const std::string& text, const Context& context);

}  // namespace caraml::jube
