#include "jube/sweep.hpp"

#include <cstdio>
#include <filesystem>

#include "telemetry/json.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace caraml::jube {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Hash one field followed by a unit separator, so adjacent fields cannot
/// alias ("ab" + "c" vs "a" + "bc").
void feed(std::uint64_t& hash, const std::string& field) {
  for (const unsigned char c : field) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  hash ^= 0x1F;
  hash *= kFnvPrime;
}

constexpr int kCacheSchemaVersion = 1;

telemetry::json::Value to_json_object(
    const std::map<std::string, std::string>& entries) {
  telemetry::json::Value object{telemetry::json::Object{}};
  for (const auto& [key, value] : entries) object.set(key, value);
  return object;
}

std::string cache_line(const std::string& fingerprint,
                       const std::string& benchmark, const Workpackage& wp) {
  telemetry::json::Value root{telemetry::json::Object{}};
  root.set("schema_version", kCacheSchemaVersion);
  root.set("fingerprint", fingerprint);
  root.set("benchmark", benchmark);
  root.set("status", wp.status);
  root.set("context", to_json_object(wp.context));
  root.set("outputs", to_json_object(wp.outputs));
  root.set("analysed", to_json_object(wp.analysed));
  return telemetry::json::dump(root);
}

Workpackage parse_cache_line(const std::string& line,
                             std::string& fingerprint) {
  const telemetry::json::Value root = telemetry::json::parse(line);
  const int version = static_cast<int>(root.at("schema_version").as_int());
  if (version < 1 || version > kCacheSchemaVersion) {
    throw Error("sweep-cache schema_version " + std::to_string(version) +
                " not supported");
  }
  fingerprint = root.at("fingerprint").as_string();
  Workpackage wp;
  wp.status = root.at("status").as_string();
  for (const auto& [key, value] : root.at("context").as_object()) {
    wp.context[key] = value.as_string();
  }
  for (const auto& [key, value] : root.at("outputs").as_object()) {
    wp.outputs[key] = value.as_string();
  }
  for (const auto& [key, value] : root.at("analysed").as_object()) {
    wp.analysed[key] = value.as_string();
  }
  return wp;
}

}  // namespace

std::string workpackage_fingerprint(
    const std::string& benchmark, const Context& context,
    const std::vector<std::pair<std::string, std::string>>& steps,
    const std::string& extra) {
  std::uint64_t hash = kFnvOffset;
  feed(hash, benchmark);
  for (const auto& [name, value] : context) {
    feed(hash, name);
    feed(hash, value);
  }
  for (const auto& [step, action] : steps) {
    feed(hash, step);
    feed(hash, action);
  }
  feed(hash, extra);
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

void SweepCache::open(const std::string& path) {
  CARAML_CHECK_MSG(!path.empty(), "sweep-cache path must not be empty");
  std::lock_guard<std::mutex> lock(mutex_);
  const std::filesystem::path file(path);
  if (file.has_parent_path()) {
    std::filesystem::create_directories(file.parent_path());
  }
  entries_.clear();
  std::size_t skipped = 0;
  {
    std::ifstream in(path);
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        std::string fingerprint;
        Workpackage wp = parse_cache_line(line, fingerprint);
        entries_[fingerprint] = std::move(wp);  // last line wins
      } catch (const std::exception&) {
        ++skipped;  // e.g. a line truncated by a crashed writer
      }
    }
  }
  if (skipped > 0) {
    log::warn() << "sweep cache " << path << ": skipped " << skipped
                << " malformed line(s)";
  }
  out_.open(path, std::ios::app);
  if (!out_) throw Error("cannot open sweep cache for append: " + path);
  path_ = path;
  enabled_ = true;
}

std::size_t SweepCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool SweepCache::lookup(const std::string& fingerprint,
                        Workpackage& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return false;
  out = it->second;
  out.from_cache = true;
  return true;
}

void SweepCache::append(const std::string& fingerprint,
                        const std::string& benchmark, const Workpackage& wp) {
  const std::string line = cache_line(fingerprint, benchmark, wp);
  std::lock_guard<std::mutex> lock(mutex_);
  CARAML_CHECK_MSG(enabled_, "append on a closed sweep cache");
  out_ << line << "\n";
  out_.flush();  // a crashed sweep keeps every completed workpackage
  entries_[fingerprint] = wp;
}

}  // namespace caraml::jube
