// Sweep-level result caching for the JUBE engine.
//
// The paper's JUBE sweeps expand into dozens of workpackages per benchmark;
// re-running a sweep after a crash, a config tweak, or on a second system
// should not re-execute configurations whose results are already known.
// Each workpackage is fingerprinted from (benchmark name, expanded context,
// active step/action names in execution order, fault/retry provenance), and
// completed results are appended as single JSON lines to a cache file. A
// later run with the same cache skips every fingerprint hit — MLPerf-Power-
// style turnaround economics for the harness itself.
//
// Cache line format (one JSON object per line):
//   {"schema_version":1,"fingerprint":"<hex16>","benchmark":"<name>",
//    "status":"ok","context":{...},"outputs":{...},"analysed":{...}}
//
// Failed workpackages are never cached (a re-run retries them), and
// malformed lines — e.g. a line truncated by a crashed writer — are skipped
// with a warning rather than aborting the sweep.
#pragma once

#include <cstddef>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "jube/jube.hpp"

namespace caraml::jube {

/// Stable FNV-1a fingerprint (hex16) of one workpackage's identity:
/// benchmark name, expanded context, the active (step, action) pairs in
/// execution order, and `extra` provenance (fault plan fingerprint, retry /
/// timeout options). Equal fingerprints mean the workpackage would execute
/// identically.
std::string workpackage_fingerprint(
    const std::string& benchmark, const Context& context,
    const std::vector<std::pair<std::string, std::string>>& steps,
    const std::string& extra);

/// JSONL-backed workpackage result cache. Loads every existing line on
/// open() (last line wins per fingerprint); append() is thread-safe so
/// concurrent workpackages can record results as they finish.
class SweepCache {
 public:
  SweepCache() = default;
  explicit SweepCache(const std::string& path) { open(path); }

  /// Load `path` (created, along with parent directories, when missing) and
  /// open it for appending. Throws caraml::Error when the file cannot be
  /// opened for writing.
  void open(const std::string& path);

  bool enabled() const { return enabled_; }
  const std::string& path() const { return path_; }
  std::size_t size() const;

  /// Fetch a cached result into `out` (status, outputs, analysed, context;
  /// `out.from_cache` is set). Returns false on a miss.
  bool lookup(const std::string& fingerprint, Workpackage& out) const;

  /// Append one completed workpackage under `fingerprint`. Thread-safe.
  void append(const std::string& fingerprint, const std::string& benchmark,
              const Workpackage& wp);

 private:
  bool enabled_ = false;
  std::string path_;
  mutable std::mutex mutex_;
  std::map<std::string, Workpackage> entries_;
  std::ofstream out_;
};

}  // namespace caraml::jube
