#include "jube/jube.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <regex>
#include <thread>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml::jube {

bool Parameter::active(const std::set<std::string>& tags) const {
  if (tag.empty()) return true;
  if (str::starts_with(tag, "!")) return tags.count(tag.substr(1)) == 0;
  return tags.count(tag) > 0;
}

bool Step::active(const std::set<std::string>& tags) const {
  if (tag.empty()) return true;
  if (str::starts_with(tag, "!")) return tags.count(tag.substr(1)) == 0;
  return tags.count(tag) > 0;
}

void ActionRegistry::register_action(const std::string& name, Action action) {
  CARAML_CHECK_MSG(!actions_.count(name), "duplicate action: " + name);
  actions_[name] = std::move(action);
}

bool ActionRegistry::has(const std::string& name) const {
  return actions_.count(name) > 0;
}

const Action& ActionRegistry::at(const std::string& name) const {
  const auto it = actions_.find(name);
  if (it == actions_.end()) throw NotFound("no registered action: " + name);
  return it->second;
}

std::string substitute_context(const std::string& text,
                               const Context& context) {
  std::string out = text;
  // Iterate so parameters may reference other parameters; bail out after a
  // bounded number of passes to survive accidental cycles.
  for (int pass = 0; pass < 8; ++pass) {
    std::string next = out;
    for (const auto& [name, value] : context) {
      next = str::replace_all(next, "${" + name + "}", value);
    }
    if (next == out) break;
    out = std::move(next);
  }
  return out;
}

void Benchmark::add_parameter_set(ParameterSet set) {
  parameter_sets_.push_back(std::move(set));
}

void Benchmark::add_step(Step step) { steps_.push_back(std::move(step)); }

void Benchmark::add_pattern(Pattern pattern) {
  patterns_.push_back(std::move(pattern));
}

std::vector<Context> Benchmark::expand(
    const std::set<std::string>& tags) const {
  // Gather active parameters; a later parameter set overrides an earlier
  // parameter of the same name (JUBE's override semantics).
  std::vector<Parameter> active;
  for (const auto& set : parameter_sets_) {
    for (const auto& parameter : set.parameters) {
      if (!parameter.active(tags)) continue;
      const auto it = std::find_if(
          active.begin(), active.end(),
          [&](const Parameter& p) { return p.name == parameter.name; });
      if (it != active.end()) {
        *it = parameter;
      } else {
        active.push_back(parameter);
      }
    }
  }

  std::vector<Context> contexts = {Context{}};
  for (const auto& parameter : active) {
    CARAML_CHECK_MSG(!parameter.values.empty(),
                     "parameter '" + parameter.name + "' has no values");
    std::vector<Context> expanded;
    expanded.reserve(contexts.size() * parameter.values.size());
    for (const auto& base : contexts) {
      for (const auto& value : parameter.values) {
        Context next = base;
        next[parameter.name] = value;
        expanded.push_back(std::move(next));
      }
    }
    contexts = std::move(expanded);
  }

  // Resolve ${...} references inside parameter values.
  for (auto& context : contexts) {
    for (auto& [name, value] : context) {
      value = substitute_context(value, context);
    }
  }
  return contexts;
}

std::vector<std::string> Benchmark::step_order() const {
  // Kahn's algorithm over step dependencies.
  std::map<std::string, std::vector<std::string>> successors;
  std::map<std::string, int> in_degree;
  for (const auto& step : steps_) {
    if (!in_degree.count(step.name)) in_degree[step.name] = 0;
    for (const auto& dep : step.depends) {
      const bool known = std::any_of(
          steps_.begin(), steps_.end(),
          [&](const Step& s) { return s.name == dep; });
      CARAML_CHECK_MSG(known, "step '" + step.name + "' depends on unknown '" +
                                  dep + "'");
      successors[dep].push_back(step.name);
      ++in_degree[step.name];
    }
  }
  std::vector<std::string> ready;
  for (const auto& step : steps_) {
    if (in_degree[step.name] == 0) ready.push_back(step.name);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    const std::string current = ready.front();
    ready.erase(ready.begin());
    order.push_back(current);
    for (const auto& succ : successors[current]) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  CARAML_CHECK_MSG(order.size() == steps_.size(),
                   "cyclic step dependencies in benchmark '" + name_ + "'");
  return order;
}

void Benchmark::analyse(Workpackage& wp) const {
  // Run every pattern over the concatenated step outputs, keep the last
  // match of group 1 (JUBE's default reduce).
  std::string all_output;
  for (const auto& [step, output] : wp.outputs) {
    all_output += output;
    all_output += "\n";
  }
  for (const auto& pattern : patterns_) {
    const std::regex re(pattern.regex);
    std::string last;
    for (auto it =
             std::sregex_iterator(all_output.begin(), all_output.end(), re);
         it != std::sregex_iterator(); ++it) {
      if (it->size() >= 2) last = (*it)[1].str();
    }
    if (!last.empty()) wp.analysed[pattern.name] = last;
  }
}

RunResult Benchmark::run(const ActionRegistry& registry,
                         const std::set<std::string>& tags) const {
  RunResult result;
  const auto order = step_order();
  for (const auto& context : expand(tags)) {
    Workpackage wp;
    wp.context = context;
    for (const auto& step_name : order) {
      const auto it = std::find_if(
          steps_.begin(), steps_.end(),
          [&](const Step& s) { return s.name == step_name; });
      const Step& step = *it;
      if (!step.active(tags)) continue;
      const Action& action = registry.at(step.action_name);
      wp.outputs[step.name] = action(wp.context);
    }
    analyse(wp);
    result.workpackages.push_back(std::move(wp));
  }
  return result;
}

namespace {

/// Run one step attempt, bounded by `timeout_s` when positive. The action
/// runs on a worker thread; on timeout the worker is abandoned (detached —
/// in-process actions cannot be killed, like a hung Slurm job that outlives
/// its sbatch timeout) and the attempt fails.
std::string run_action_bounded(Action action, const Context& context,
                               double timeout_s) {
  if (timeout_s <= 0.0) return action(context);
  auto promise = std::make_shared<std::promise<std::string>>();
  auto future = promise->get_future();
  std::thread([promise, action = std::move(action), context]() {
    try {
      promise->set_value(action(context));
    } catch (...) {
      try {
        promise->set_exception(std::current_exception());
      } catch (...) {
      }
    }
  }).detach();
  if (future.wait_for(std::chrono::duration<double>(timeout_s)) ==
      std::future_status::timeout) {
    throw Error("step timed out after " + std::to_string(timeout_s) + "s");
  }
  return future.get();
}

}  // namespace

RunResult Benchmark::run(const ActionRegistry& registry,
                         const std::set<std::string>& tags,
                         const RunOptions& options) const {
  RunResult result;
  const auto order = step_order();
  for (const auto& context : expand(tags)) {
    Workpackage wp;
    wp.context = context;
    std::set<std::string> broken;  // failed or skipped steps
    for (const auto& step_name : order) {
      const auto it = std::find_if(
          steps_.begin(), steps_.end(),
          [&](const Step& s) { return s.name == step_name; });
      const Step& step = *it;
      if (!step.active(tags)) continue;

      StepOutcome outcome;
      outcome.step = step_name;

      // Transitive skip: a dependent of a failed step can never run.
      const bool blocked = std::any_of(
          step.depends.begin(), step.depends.end(),
          [&](const std::string& dep) { return broken.count(dep) > 0; });
      if (blocked) {
        outcome.status = "skipped";
        outcome.attempts = 0;
        outcome.error = "dependency failed";
        broken.insert(step_name);
        wp.step_outcomes.push_back(std::move(outcome));
        continue;
      }

      // A missing action is a configuration error, not a transient fault —
      // fail the step immediately instead of burning retries.
      if (!registry.has(step.action_name)) {
        outcome.status = "failed";
        outcome.error = "no registered action: " + step.action_name;
        if (!options.harvest_partial) throw NotFound(outcome.error);
        broken.insert(step_name);
        wp.step_outcomes.push_back(std::move(outcome));
        continue;
      }

      const Action& action = registry.at(step.action_name);
      std::string output;
      const fault::RetryOutcome retried = fault::retry_with_backoff(
          name_ + "/" + step_name, options.retry,
          [&]() {
            output =
                run_action_bounded(action, wp.context, options.step_timeout_s);
          },
          options.sleeper);
      outcome.attempts = retried.attempts;
      outcome.backoff_s = retried.total_backoff_s;
      if (retried.succeeded) {
        outcome.status = retried.attempts > 1 ? "retried" : "ok";
        wp.outputs[step_name] = std::move(output);
      } else {
        outcome.status = "failed";
        outcome.error = retried.last_error;
        if (!options.harvest_partial) {
          throw Error("step '" + step_name + "' failed after " +
                      std::to_string(retried.attempts) +
                      " attempts: " + retried.last_error);
        }
        broken.insert(step_name);
      }
      wp.step_outcomes.push_back(std::move(outcome));
    }

    for (const auto& outcome : wp.step_outcomes) {
      if (outcome.status == "failed" || outcome.status == "skipped") {
        wp.status = "failed";
        break;
      }
      if (outcome.status == "retried") wp.status = "degraded";
    }

    analyse(wp);
    // Surface the workpackage status in result tables: an action may have
    // reported its own (pattern-extracted) status, but step-level failures
    // and retries outrank a clean-looking output.
    if (wp.status != "ok" || !wp.analysed.count("status")) {
      wp.analysed["status"] = wp.status;
    }
    result.workpackages.push_back(std::move(wp));
  }
  return result;
}

TextTable RunResult::table(const std::vector<std::string>& columns) const {
  TextTable table(columns);
  for (const auto& wp : workpackages) {
    std::vector<std::string> row;
    row.reserve(columns.size());
    for (const auto& column : columns) {
      const auto analysed = wp.analysed.find(column);
      if (analysed != wp.analysed.end()) {
        row.push_back(analysed->second);
        continue;
      }
      const auto param = wp.context.find(column);
      row.push_back(param != wp.context.end() ? param->second : "");
    }
    table.add_row(std::move(row));
  }
  return table;
}

namespace {

Parameter parse_parameter(const yaml::NodePtr& node) {
  Parameter parameter;
  parameter.name = node->at("name")->as_string();
  parameter.tag = node->get_or("tag", "");
  const yaml::NodePtr values = node->find("values");
  if (values && values->is_sequence()) {
    for (const auto& value : values->items()) {
      parameter.values.push_back(value->as_string());
    }
  } else if (values && values->is_scalar()) {
    // Comma-separated scalar, as JUBE allows: "16,32,64".
    for (const auto& piece : str::split(values->as_string(), ',')) {
      parameter.values.push_back(str::trim(piece));
    }
  } else {
    throw ParseError("parameter '" + parameter.name + "' needs values");
  }
  return parameter;
}

}  // namespace

Benchmark Benchmark::from_yaml(const yaml::NodePtr& root) {
  CARAML_CHECK_MSG(root && root->is_map(), "JUBE YAML root must be a map");
  const yaml::NodePtr bench_node = root->find("benchmark");
  CARAML_CHECK_MSG(bench_node != nullptr, "missing 'benchmark' key");
  Benchmark benchmark(bench_node->is_map()
                          ? bench_node->get_or("name", "unnamed")
                          : bench_node->as_string());

  if (const yaml::NodePtr sets = root->find("parametersets")) {
    for (const auto& set_node : sets->items()) {
      ParameterSet set;
      set.name = set_node->at("name")->as_string();
      for (const auto& p : set_node->at("parameters")->items()) {
        set.parameters.push_back(parse_parameter(p));
      }
      benchmark.add_parameter_set(std::move(set));
    }
  }
  if (const yaml::NodePtr steps = root->find("steps")) {
    for (const auto& step_node : steps->items()) {
      Step step;
      step.name = step_node->at("name")->as_string();
      step.action_name = step_node->get_or("do", step.name);
      step.tag = step_node->get_or("tag", "");
      if (const yaml::NodePtr deps = step_node->find("depend")) {
        if (deps->is_sequence()) {
          for (const auto& d : deps->items()) step.depends.push_back(d->as_string());
        } else {
          step.depends.push_back(deps->as_string());
        }
      }
      benchmark.add_step(std::move(step));
    }
  }
  if (const yaml::NodePtr patterns = root->find("patterns")) {
    for (const auto& p : patterns->items()) {
      benchmark.add_pattern(
          Pattern{p->at("name")->as_string(), p->at("regex")->as_string()});
    }
  }
  return benchmark;
}

Benchmark Benchmark::from_yaml_file(const std::string& path) {
  return from_yaml(yaml::parse_file(path));
}

}  // namespace caraml::jube
