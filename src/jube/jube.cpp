#include "jube/jube.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <future>
#include <memory>
#include <regex>
#include <thread>

#include "jube/sweep.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/threadpool.hpp"

namespace caraml::jube {

bool Parameter::active(const std::set<std::string>& tags) const {
  if (tag.empty()) return true;
  if (str::starts_with(tag, "!")) return tags.count(tag.substr(1)) == 0;
  return tags.count(tag) > 0;
}

bool Step::active(const std::set<std::string>& tags) const {
  if (tag.empty()) return true;
  if (str::starts_with(tag, "!")) return tags.count(tag.substr(1)) == 0;
  return tags.count(tag) > 0;
}

void ActionRegistry::register_action(const std::string& name, Action action) {
  CARAML_CHECK_MSG(!actions_.count(name), "duplicate action: " + name);
  actions_[name] = std::move(action);
}

bool ActionRegistry::has(const std::string& name) const {
  return actions_.count(name) > 0;
}

const Action& ActionRegistry::at(const std::string& name) const {
  const auto it = actions_.find(name);
  if (it == actions_.end()) throw NotFound("no registered action: " + name);
  return it->second;
}

namespace {

/// Names of every ${...} placeholder remaining in `text`.
std::set<std::string> placeholder_names(const std::string& text) {
  std::set<std::string> names;
  std::size_t pos = 0;
  while ((pos = text.find("${", pos)) != std::string::npos) {
    const std::size_t close = text.find('}', pos + 2);
    if (close == std::string::npos) break;
    names.insert(text.substr(pos + 2, close - pos - 2));
    pos = close + 1;
  }
  return names;
}

std::string join_names(const std::set<std::string>& names) {
  std::vector<std::string> decorated;
  decorated.reserve(names.size());
  for (const auto& name : names) decorated.push_back("${" + name + "}");
  return str::join(decorated, ", ");
}

}  // namespace

std::string substitute_context(const std::string& text,
                               const Context& context) {
  std::string out = text;
  // Iterate so parameters may reference other parameters; the pass count is
  // bounded so a reference cycle cannot loop forever.
  bool converged = false;
  for (int pass = 0; pass < 8; ++pass) {
    std::string next = out;
    for (const auto& [name, value] : context) {
      next = str::replace_all(next, "${" + name + "}", value);
    }
    if (next == out) {
      converged = true;
      break;
    }
    out = std::move(next);
  }
  // Partially substituted text must never leak into step commands or
  // parameter values: leftovers are either a reference cycle (the parameter
  // exists but expanding it never reaches a fixed point) or a reference to a
  // parameter that is not in the context at all.
  std::set<std::string> cyclic;
  std::set<std::string> unknown;
  for (const auto& name : placeholder_names(out)) {
    (context.count(name) ? cyclic : unknown).insert(name);
  }
  // Name the whole cycle, not just the parameter the loop stalled on:
  // a -> ${b} -> ${a} leaves only one of the two in the final text.
  for (std::set<std::string> frontier = cyclic; !frontier.empty();) {
    std::set<std::string> next;
    for (const auto& name : frontier) {
      for (const auto& ref : placeholder_names(context.at(name))) {
        if (context.count(ref) && cyclic.insert(ref).second) next.insert(ref);
      }
    }
    frontier = std::move(next);
  }
  if (!converged || !cyclic.empty()) {
    throw Error("parameter substitution did not converge in '" + text +
                "': cyclic reference(s) " + join_names(cyclic));
  }
  if (!unknown.empty()) {
    throw Error("unresolved parameter reference(s) in '" + text + "': " +
                join_names(unknown));
  }
  return out;
}

void Benchmark::add_parameter_set(ParameterSet set) {
  parameter_sets_.push_back(std::move(set));
}

void Benchmark::add_step(Step step) { steps_.push_back(std::move(step)); }

void Benchmark::add_pattern(Pattern pattern) {
  patterns_.push_back(std::move(pattern));
}

std::vector<Context> Benchmark::expand(
    const std::set<std::string>& tags) const {
  // Gather active parameters; a later parameter set overrides an earlier
  // parameter of the same name (JUBE's override semantics).
  std::vector<Parameter> active;
  for (const auto& set : parameter_sets_) {
    for (const auto& parameter : set.parameters) {
      if (!parameter.active(tags)) continue;
      const auto it = std::find_if(
          active.begin(), active.end(),
          [&](const Parameter& p) { return p.name == parameter.name; });
      if (it != active.end()) {
        *it = parameter;
      } else {
        active.push_back(parameter);
      }
    }
  }

  std::vector<Context> contexts = {Context{}};
  for (const auto& parameter : active) {
    CARAML_CHECK_MSG(!parameter.values.empty(),
                     "parameter '" + parameter.name + "' has no values");
    std::vector<Context> expanded;
    expanded.reserve(contexts.size() * parameter.values.size());
    for (const auto& base : contexts) {
      for (const auto& value : parameter.values) {
        Context next = base;
        next[parameter.name] = value;
        expanded.push_back(std::move(next));
      }
    }
    contexts = std::move(expanded);
  }

  // Resolve ${...} references inside parameter values.
  for (auto& context : contexts) {
    for (auto& [name, value] : context) {
      value = substitute_context(value, context);
    }
  }
  return contexts;
}

std::vector<std::string> Benchmark::step_order() const {
  // Kahn's algorithm over step dependencies.
  std::map<std::string, std::vector<std::string>> successors;
  std::map<std::string, int> in_degree;
  for (const auto& step : steps_) {
    if (!in_degree.count(step.name)) in_degree[step.name] = 0;
    for (const auto& dep : step.depends) {
      const bool known = std::any_of(
          steps_.begin(), steps_.end(),
          [&](const Step& s) { return s.name == dep; });
      CARAML_CHECK_MSG(known, "step '" + step.name + "' depends on unknown '" +
                                  dep + "'");
      successors[dep].push_back(step.name);
      ++in_degree[step.name];
    }
  }
  std::vector<std::string> ready;
  for (const auto& step : steps_) {
    if (in_degree[step.name] == 0) ready.push_back(step.name);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    const std::string current = ready.front();
    ready.erase(ready.begin());
    order.push_back(current);
    for (const auto& succ : successors[current]) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  CARAML_CHECK_MSG(order.size() == steps_.size(),
                   "cyclic step dependencies in benchmark '" + name_ + "'");
  return order;
}

std::vector<std::pair<std::string, std::string>> Benchmark::active_steps(
    const std::vector<std::string>& order,
    const std::set<std::string>& tags) const {
  std::vector<std::pair<std::string, std::string>> active;
  active.reserve(order.size());
  for (const auto& step_name : order) {
    const auto it = std::find_if(
        steps_.begin(), steps_.end(),
        [&](const Step& s) { return s.name == step_name; });
    if (it->active(tags)) active.emplace_back(it->name, it->action_name);
  }
  return active;
}

void Benchmark::analyse(Workpackage& wp,
                        const std::vector<std::string>& order) const {
  // Run every pattern over the step outputs concatenated in *execution*
  // order, keep the last match of group 1 (JUBE's default reduce). Iterating
  // wp.outputs directly would concatenate in std::map alphabetical order and
  // let an upstream step's figure of merit win whenever step names do not
  // sort in dependency order.
  std::string all_output;
  for (const auto& step_name : order) {
    const auto it = wp.outputs.find(step_name);
    if (it == wp.outputs.end()) continue;
    all_output += it->second;
    all_output += "\n";
  }
  for (const auto& pattern : patterns_) {
    const std::regex re(pattern.regex);
    // "Matched" is tracked separately from the captured text: a capture
    // group that legitimately matches the empty string still counts.
    bool matched = false;
    std::string last;
    for (auto it =
             std::sregex_iterator(all_output.begin(), all_output.end(), re);
         it != std::sregex_iterator(); ++it) {
      if (it->size() >= 2) {
        matched = true;
        last = (*it)[1].str();
      }
    }
    if (matched) wp.analysed[pattern.name] = last;
  }
}

namespace {

/// Shared pool for timed step attempts. Intentionally leaked: a genuinely
/// hung action still occupies its worker at process exit, and joining it
/// would hang shutdown — leaking the pool preserves the old detach-on-
/// timeout semantics for hung actions only.
ThreadPool& timed_attempt_pool() {
  static ThreadPool* pool = new ThreadPool(ThreadPool::default_threads());
  return *pool;
}

/// Run one step attempt, bounded by `timeout_s` when positive. The attempt
/// runs on a shared pool worker instead of a freshly detached thread, so a
/// parallel sweep with timeouts recycles a bounded set of threads. On
/// timeout the attempt is abandoned — in-process actions cannot be killed,
/// like a hung Slurm job that outlives its sbatch timeout — and the pool
/// grows by one worker so only genuinely hung actions cost a thread; an
/// attempt that completes in time returns its worker to the pool. (Queue
/// wait counts against the timeout, as a scheduler queue would.)
std::string run_action_bounded(const Action& action, const Context& context,
                               double timeout_s) {
  if (timeout_s <= 0.0) return action(context);
  auto future = timed_attempt_pool().submit(
      [action, context]() { return action(context); });
  if (future.wait_for(std::chrono::duration<double>(timeout_s)) ==
      std::future_status::timeout) {
    timed_attempt_pool().add_worker();
    throw Error("step timed out after " + std::to_string(timeout_s) + "s");
  }
  return future.get();
}

/// splitmix64 over (seed, index): each workpackage gets an independent,
/// order-free retry jitter stream, so sequential and parallel sweeps back
/// off byte-identically.
std::uint64_t derive_workpackage_seed(std::uint64_t seed,
                                      std::uint64_t index) {
  std::uint64_t z = seed ^ (0x9E3779B97F4A7C15ULL * (index + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Workpackage Benchmark::run_workpackage(const ActionRegistry& registry,
                                       const std::set<std::string>& tags,
                                       const std::vector<std::string>& order,
                                       const Context& context,
                                       const RunOptions* options,
                                       std::size_t index) const {
  // Concurrent workpackages each record spans on their own worker thread's
  // track (Tracer::thread_track), so traces nest correctly under load.
  TELEMETRY_SPAN("jube/workpackage");
  Workpackage wp;
  wp.context = context;

  if (options == nullptr) {
    // Strict semantics: the first step error propagates as an exception.
    for (const auto& step_name : order) {
      const auto it = std::find_if(
          steps_.begin(), steps_.end(),
          [&](const Step& s) { return s.name == step_name; });
      const Step& step = *it;
      if (!step.active(tags)) continue;
      const Action& action = registry.at(step.action_name);
      wp.outputs[step.name] = action(wp.context);
    }
    analyse(wp, order);
    return wp;
  }

  RunOptions local = *options;
  local.retry.seed = derive_workpackage_seed(options->retry.seed, index);

  std::set<std::string> broken;  // failed or skipped steps
  for (const auto& step_name : order) {
    const auto it = std::find_if(
        steps_.begin(), steps_.end(),
        [&](const Step& s) { return s.name == step_name; });
    const Step& step = *it;
    if (!step.active(tags)) continue;

    StepOutcome outcome;
    outcome.step = step_name;

    // Transitive skip: a dependent of a failed step can never run.
    const bool blocked = std::any_of(
        step.depends.begin(), step.depends.end(),
        [&](const std::string& dep) { return broken.count(dep) > 0; });
    if (blocked) {
      outcome.status = "skipped";
      outcome.attempts = 0;
      outcome.error = "dependency failed";
      broken.insert(step_name);
      wp.step_outcomes.push_back(std::move(outcome));
      continue;
    }

    // A missing action is a configuration error, not a transient fault —
    // fail the step immediately instead of burning retries.
    if (!registry.has(step.action_name)) {
      outcome.status = "failed";
      outcome.error = "no registered action: " + step.action_name;
      if (!local.harvest_partial) throw NotFound(outcome.error);
      broken.insert(step_name);
      wp.step_outcomes.push_back(std::move(outcome));
      continue;
    }

    const Action& action = registry.at(step.action_name);
    std::string output;
    const fault::RetryOutcome retried = fault::retry_with_backoff(
        name_ + "/" + step_name, local.retry,
        [&]() {
          output =
              run_action_bounded(action, wp.context, local.step_timeout_s);
        },
        local.sleeper);
    outcome.attempts = retried.attempts;
    outcome.backoff_s = retried.total_backoff_s;
    if (retried.succeeded) {
      outcome.status = retried.attempts > 1 ? "retried" : "ok";
      wp.outputs[step_name] = std::move(output);
    } else {
      outcome.status = "failed";
      outcome.error = retried.last_error;
      if (!local.harvest_partial) {
        throw Error("step '" + step_name + "' failed after " +
                    std::to_string(retried.attempts) +
                    " attempts: " + retried.last_error);
      }
      broken.insert(step_name);
    }
    wp.step_outcomes.push_back(std::move(outcome));
  }

  for (const auto& outcome : wp.step_outcomes) {
    if (outcome.status == "failed" || outcome.status == "skipped") {
      wp.status = "failed";
      break;
    }
    if (outcome.status == "retried") wp.status = "degraded";
  }

  analyse(wp, order);
  // Surface the workpackage status in result tables: an action may have
  // reported its own (pattern-extracted) status, but step-level failures
  // and retries outrank a clean-looking output.
  if (wp.status != "ok" || !wp.analysed.count("status")) {
    wp.analysed["status"] = wp.status;
  }
  return wp;
}

RunResult Benchmark::run_sweep(const ActionRegistry& registry,
                               const std::set<std::string>& tags,
                               const RunOptions* options,
                               const SweepOptions& sweep) const {
  CARAML_CHECK_MSG(sweep.jobs >= 0, "sweep jobs must be >= 0");
  const std::vector<std::string> order = step_order();
  const std::vector<Context> contexts = expand(tags);

  RunResult result;
  result.workpackages.resize(contexts.size());

  SweepCache cache;
  std::vector<std::string> fingerprints;
  if (!sweep.cache_path.empty()) {
    cache.open(sweep.cache_path);
    // Retry/timeout knobs change what a workpackage produces (attempt
    // counts, harvested failures), so they are fingerprint material too.
    std::string extra = sweep.fault_fingerprint;
    if (options != nullptr) {
      extra += "|retry=" + std::to_string(options->retry.max_attempts) + "," +
               std::to_string(options->retry.seed) +
               "|timeout=" + std::to_string(options->step_timeout_s);
    }
    const auto steps = active_steps(order, tags);
    fingerprints.resize(contexts.size());
    for (std::size_t i = 0; i < contexts.size(); ++i) {
      fingerprints[i] =
          workpackage_fingerprint(name_, contexts[i], steps, extra);
    }
  }

  // Statically-doomed workpackages (the --skip-doomed gate) and cache hits
  // are settled first; everything else is dispatched below. Results are
  // written by expansion index, so the table order is deterministic
  // regardless of completion order.
  std::vector<std::string> gate_actions;
  if (sweep.static_gate) {
    for (const auto& [step, action] : active_steps(order, tags)) {
      (void)step;
      gate_actions.push_back(action);
    }
  }
  std::vector<std::size_t> pending;
  pending.reserve(contexts.size());
  for (std::size_t i = 0; i < contexts.size(); ++i) {
    if (sweep.static_gate) {
      const std::string reason = sweep.static_gate(contexts[i], gate_actions);
      if (!reason.empty()) {
        Workpackage skipped;
        skipped.context = contexts[i];
        skipped.status = "skipped";
        skipped.analysed["status"] = "skipped";
        skipped.analysed["skip_reason"] = reason;
        result.workpackages[i] = std::move(skipped);
        ++result.skipped;
        continue;
      }
    }
    Workpackage cached;
    if (cache.enabled() && cache.lookup(fingerprints[i], cached)) {
      cached.context = contexts[i];
      result.workpackages[i] = std::move(cached);
      ++result.cache_hits;
      continue;
    }
    pending.push_back(i);
  }
  result.cache_misses = pending.size();

  const auto run_one = [&](std::size_t i) {
    Workpackage wp =
        run_workpackage(registry, tags, order, contexts[i], options, i);
    // Only completed workpackages are cached, so a re-run retries failures
    // instead of replaying them.
    if (cache.enabled() && wp.status != "failed") {
      cache.append(fingerprints[i], name_, wp);
    }
    result.workpackages[i] = std::move(wp);
  };

  if (sweep.jobs == 1 || pending.size() <= 1) {
    for (const std::size_t i : pending) run_one(i);
  } else {
    // A dedicated pool (not ThreadPool::global()): actions are free to use
    // the global pool internally without deadlocking against the sweep.
    const std::size_t workers =
        std::min(sweep.jobs == 0 ? ThreadPool::default_threads()
                                 : static_cast<std::size_t>(sweep.jobs),
                 pending.size());
    ThreadPool pool(workers);
    std::vector<std::future<void>> futures;
    futures.reserve(pending.size());
    for (const std::size_t i : pending) {
      futures.push_back(pool.submit([&run_one, i] { run_one(i); }));
    }
    // Drain everything before rethrowing, then surface the error of the
    // lowest expansion index — the same failure a sequential run hits first.
    std::vector<std::exception_ptr> errors(pending.size());
    for (std::size_t k = 0; k < futures.size(); ++k) {
      try {
        futures[k].get();
      } catch (...) {
        errors[k] = std::current_exception();
      }
    }
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
  }

  auto& metrics = telemetry::Registry::global();
  metrics.counter("jube/workpackages").add(
      static_cast<std::int64_t>(contexts.size()));
  if (cache.enabled()) {
    metrics.counter("jube/sweep_cache_hits")
        .add(static_cast<std::int64_t>(result.cache_hits));
    metrics.counter("jube/sweep_cache_misses")
        .add(static_cast<std::int64_t>(result.cache_misses));
  }
  return result;
}

RunResult Benchmark::run(const ActionRegistry& registry,
                         const std::set<std::string>& tags) const {
  return run_sweep(registry, tags, nullptr, SweepOptions{});
}

RunResult Benchmark::run(const ActionRegistry& registry,
                         const std::set<std::string>& tags,
                         const SweepOptions& sweep) const {
  return run_sweep(registry, tags, nullptr, sweep);
}

RunResult Benchmark::run(const ActionRegistry& registry,
                         const std::set<std::string>& tags,
                         const RunOptions& options) const {
  return run_sweep(registry, tags, &options, SweepOptions{});
}

RunResult Benchmark::run(const ActionRegistry& registry,
                         const std::set<std::string>& tags,
                         const RunOptions& options,
                         const SweepOptions& sweep) const {
  return run_sweep(registry, tags, &options, sweep);
}

TextTable RunResult::table(const std::vector<std::string>& columns) const {
  TextTable table(columns);
  for (const auto& wp : workpackages) {
    std::vector<std::string> row;
    row.reserve(columns.size());
    for (const auto& column : columns) {
      const auto analysed = wp.analysed.find(column);
      if (analysed != wp.analysed.end()) {
        row.push_back(analysed->second);
        continue;
      }
      const auto param = wp.context.find(column);
      row.push_back(param != wp.context.end() ? param->second : "");
    }
    table.add_row(std::move(row));
  }
  return table;
}

namespace {

Parameter parse_parameter(const yaml::NodePtr& node) {
  Parameter parameter;
  parameter.name = node->at("name")->as_string();
  parameter.tag = node->get_or("tag", "");
  const yaml::NodePtr values = node->find("values");
  if (values && values->is_sequence()) {
    for (const auto& value : values->items()) {
      parameter.values.push_back(value->as_string());
    }
  } else if (values && values->is_scalar()) {
    // Comma-separated scalar, as JUBE allows: "16,32,64".
    for (const auto& piece : str::split(values->as_string(), ',')) {
      parameter.values.push_back(str::trim(piece));
    }
  } else {
    throw ParseError("parameter '" + parameter.name + "' needs values");
  }
  return parameter;
}

}  // namespace

Benchmark Benchmark::from_yaml(const yaml::NodePtr& root) {
  CARAML_CHECK_MSG(root && root->is_map(), "JUBE YAML root must be a map");
  const yaml::NodePtr bench_node = root->find("benchmark");
  CARAML_CHECK_MSG(bench_node != nullptr, "missing 'benchmark' key");
  Benchmark benchmark(bench_node->is_map()
                          ? bench_node->get_or("name", "unnamed")
                          : bench_node->as_string());

  if (const yaml::NodePtr sets = root->find("parametersets")) {
    for (const auto& set_node : sets->items()) {
      ParameterSet set;
      set.name = set_node->at("name")->as_string();
      for (const auto& p : set_node->at("parameters")->items()) {
        set.parameters.push_back(parse_parameter(p));
      }
      benchmark.add_parameter_set(std::move(set));
    }
  }
  if (const yaml::NodePtr steps = root->find("steps")) {
    for (const auto& step_node : steps->items()) {
      Step step;
      step.name = step_node->at("name")->as_string();
      step.action_name = step_node->get_or("do", step.name);
      step.tag = step_node->get_or("tag", "");
      if (const yaml::NodePtr deps = step_node->find("depend")) {
        if (deps->is_sequence()) {
          for (const auto& d : deps->items()) step.depends.push_back(d->as_string());
        } else {
          step.depends.push_back(deps->as_string());
        }
      }
      benchmark.add_step(std::move(step));
    }
  }
  if (const yaml::NodePtr patterns = root->find("patterns")) {
    for (const auto& p : patterns->items()) {
      benchmark.add_pattern(
          Pattern{p->at("name")->as_string(), p->at("regex")->as_string()});
    }
  }
  return benchmark;
}

Benchmark Benchmark::from_yaml_file(const std::string& path) {
  return from_yaml(yaml::parse_file(path));
}

}  // namespace caraml::jube
