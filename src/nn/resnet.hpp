// A real, trainable ResNet — the miniature counterpart of the tf_cnn_benchmarks
// ResNet50 model of the paper's CV workload (§III-A2). Basic and bottleneck
// residual blocks are supported, with a configurable stage plan so both
// ImageNet-style and small-image (CIFAR-like) variants can be built. CPU
// execution keeps the defaults tiny; the paper-scale 224x224 ResNet50 is
// modeled analytically (models::ResNetModel) for the simulator.
#pragma once

#include <memory>
#include <vector>

#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/module.hpp"

namespace caraml::nn {

/// Residual block: conv-bn-relu (x2 or x3) + identity/projection shortcut.
class ResidualBlock : public Module {
 public:
  ResidualBlock(std::int64_t in_channels, std::int64_t width,
                std::int64_t stride, bool bottleneck, Rng& rng);

  std::int64_t out_channels() const { return out_channels_; }

  Tensor forward(const Tensor& input) override;   // NCHW
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

 private:
  bool bottleneck_;
  std::int64_t out_channels_;
  std::vector<std::shared_ptr<Module>> main_path_;  // conv/bn/relu sequence
  std::shared_ptr<Conv2d> shortcut_conv_;           // nullptr = identity
  std::shared_ptr<BatchNorm2d> shortcut_bn_;
  Tensor cached_input_;
  Tensor cached_pre_relu_;
};

struct ResNetConfig {
  std::vector<std::int64_t> stage_blocks = {1, 1};  // tiny default
  std::vector<std::int64_t> stage_widths = {8, 16};
  bool bottleneck = false;
  std::int64_t in_channels = 3;
  std::int64_t stem_channels = 8;
  std::int64_t num_classes = 10;
  bool stem_pool = false;  // 3x3/2 max-pool after the stem (ImageNet style)

  /// Small trainable stand-ins used by tests/examples.
  static ResNetConfig tiny(std::int64_t num_classes = 10);
  static ResNetConfig small_bottleneck(std::int64_t num_classes = 10);
};

class ResNet : public Module {
 public:
  ResNet(ResNetConfig config, Rng& rng);

  const ResNetConfig& config() const { return config_; }

  Tensor forward(const Tensor& images) override;  // NCHW -> [N, classes]
  Tensor backward(const Tensor& grad_logits) override;
  std::vector<Parameter*> parameters() override;

  /// Forward + cross-entropy + backward; returns the loss.
  float train_step(const Tensor& images,
                   const std::vector<std::int64_t>& labels);

 private:
  ResNetConfig config_;
  std::shared_ptr<Conv2d> stem_conv_;
  std::shared_ptr<BatchNorm2d> stem_bn_;
  std::shared_ptr<Relu> stem_relu_;
  std::shared_ptr<MaxPool2d> stem_pool_;
  std::vector<std::shared_ptr<ResidualBlock>> blocks_;
  std::shared_ptr<GlobalAvgPool> pool_;
  std::shared_ptr<Linear> head_;
};

}  // namespace caraml::nn
