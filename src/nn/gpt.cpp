#include "nn/gpt.hpp"

#include "util/error.hpp"

namespace caraml::nn {

using tensor::Tensor;

TransformerBlock::TransformerBlock(std::int64_t embed_dim,
                                   std::int64_t num_heads, Rng& rng,
                                   float dropout)
    : embed_dim_(embed_dim),
      ln1_(std::make_shared<LayerNorm>(embed_dim)),
      attn_(std::make_shared<CausalSelfAttention>(embed_dim, num_heads, rng)),
      ln2_(std::make_shared<LayerNorm>(embed_dim)),
      fc_in_(std::make_shared<Linear>(embed_dim, 4 * embed_dim, rng)),
      fc_out_(std::make_shared<Linear>(4 * embed_dim, embed_dim, rng)) {
  fc_in_->set_gelu();
  // Draw the mask seed only when dropout is on, so dropout-free models keep
  // the exact parameter-initialization stream they had before.
  if (dropout > 0.0f) fc_out_->set_dropout(dropout, rng.next_u64());
}

Tensor TransformerBlock::forward(const Tensor& input) {
  CARAML_CHECK_MSG(input.rank() == 3 && input.dim(2) == embed_dim_,
                   "block expects [B, T, C]");
  batch_ = input.dim(0);
  time_ = input.dim(1);
  const std::int64_t n = batch_ * time_;

  // x = input + attn(ln1(input))
  Tensor ln1_out = ln1_->forward(input.reshape({n, embed_dim_}));
  Tensor attn_out = attn_->forward(ln1_out.reshape({batch_, time_, embed_dim_}));
  Tensor x = tensor::add(input, attn_out);

  // x = x + mlp(ln2(x))
  Tensor ln2_out = ln2_->forward(x.reshape({n, embed_dim_}));
  Tensor mlp = fc_out_->forward(fc_in_->forward(ln2_out));
  Tensor out = tensor::add(x, mlp.reshape({batch_, time_, embed_dim_}));
  return out;
}

Tensor TransformerBlock::backward(const Tensor& grad_output) {
  const std::int64_t n = batch_ * time_;
  CARAML_CHECK_MSG(grad_output.rank() == 3, "block backward expects [B, T, C]");

  // out = x + mlp(ln2(x)): grad flows through both branches.
  Tensor g_flat = grad_output.reshape({n, embed_dim_});
  Tensor d_mlp = fc_in_->backward(fc_out_->backward(g_flat));  // d ln2_out
  Tensor d_x_from_ln2 = ln2_->backward(d_mlp);           // [n, C]
  Tensor d_x = tensor::add(g_flat, d_x_from_ln2);        // residual

  // x = input + attn(ln1(input)).
  Tensor d_attn_in = attn_->backward(d_x.reshape({batch_, time_, embed_dim_}));
  Tensor d_input_from_ln1 =
      ln1_->backward(d_attn_in.reshape({n, embed_dim_}));
  Tensor d_input = tensor::add(d_x, d_input_from_ln1);
  return d_input.reshape({batch_, time_, embed_dim_});
}

void TransformerBlock::set_compute_dtype(tensor::DType dtype) {
  if (dtype == tensor::DType::kI8) {
    // int8 is inference-only, so it covers exactly the GPT MLP linears; the
    // attention projections keep fp32 (they feed the fp32 attention core and
    // must stay trainable when the caller flips back to kF32).
    attn_->set_compute_dtype(tensor::DType::kF32);
  } else {
    attn_->set_compute_dtype(dtype);
  }
  fc_in_->set_compute_dtype(dtype);
  fc_out_->set_compute_dtype(dtype);
}

std::vector<Parameter*> TransformerBlock::parameters() {
  std::vector<Parameter*> out;
  for (auto* m : {static_cast<Module*>(ln1_.get()),
                  static_cast<Module*>(attn_.get()),
                  static_cast<Module*>(ln2_.get()),
                  static_cast<Module*>(fc_in_.get()),
                  static_cast<Module*>(fc_out_.get())}) {
    for (Parameter* p : m->parameters()) out.push_back(p);
  }
  return out;
}

GptModel::GptModel(GptModelConfig config, Rng& rng)
    : config_(config),
      tok_emb_(std::make_shared<Embedding>(config.vocab_size, config.embed_dim,
                                           rng)),
      pos_emb_("pos_emb", Tensor::randn({config.block_size, config.embed_dim},
                                        rng, 0.02f)),
      ln_f_(std::make_shared<LayerNorm>(config.embed_dim)),
      lm_head_(std::make_shared<Linear>(config.embed_dim, config.vocab_size,
                                        rng, /*bias=*/false)) {
  CARAML_CHECK_MSG(config.num_layers >= 1, "GPT needs at least one layer");
  blocks_.reserve(static_cast<std::size_t>(config.num_layers));
  for (std::int64_t i = 0; i < config.num_layers; ++i) {
    blocks_.push_back(std::make_shared<TransformerBlock>(
        config.embed_dim, config.num_heads, rng, config.dropout));
  }
}

Tensor GptModel::forward(const Tensor& tokens) {
  CARAML_CHECK_MSG(tokens.rank() == 2, "GPT expects tokens [B, T]");
  batch_ = tokens.dim(0);
  time_ = tokens.dim(1);
  CARAML_CHECK_MSG(time_ <= config_.block_size,
                   "sequence longer than block size");
  const std::int64_t n = batch_ * time_;
  const std::int64_t c = config_.embed_dim;

  Tensor x = tok_emb_->forward(tokens);  // [n, C]
  for (std::int64_t b = 0; b < batch_; ++b) {
    for (std::int64_t t = 0; t < time_; ++t) {
      float* row = x.data() + (b * time_ + t) * c;
      const float* pos = pos_emb_.value.data() + t * c;
      for (std::int64_t j = 0; j < c; ++j) row[j] += pos[j];
    }
  }

  Tensor h = x.reshape({batch_, time_, c});
  for (auto& block : blocks_) h = block->forward(h);

  Tensor hn = ln_f_->forward(h.reshape({n, c}));
  return lm_head_->forward(hn);  // [n, vocab]
}

Tensor GptModel::backward(const Tensor& grad_logits) {
  const std::int64_t n = batch_ * time_;
  const std::int64_t c = config_.embed_dim;
  CARAML_CHECK_MSG(grad_logits.rank() == 2 && grad_logits.dim(0) == n,
                   "GPT backward expects [B*T, vocab]");

  Tensor g = ln_f_->backward(lm_head_->backward(grad_logits));  // [n, C]
  Tensor h = g.reshape({batch_, time_, c});
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    h = (*it)->backward(h);
  }

  Tensor d_emb = h.reshape({n, c});
  // Positional-embedding gradient: sum over batch.
  for (std::int64_t b = 0; b < batch_; ++b) {
    for (std::int64_t t = 0; t < time_; ++t) {
      const float* row = d_emb.data() + (b * time_ + t) * c;
      float* pos = pos_emb_.grad.data() + t * c;
      for (std::int64_t j = 0; j < c; ++j) pos[j] += row[j];
    }
  }
  tok_emb_->backward(d_emb);
  return Tensor();  // token ids carry no gradient
}

std::vector<Parameter*> GptModel::parameters() {
  std::vector<Parameter*> out = tok_emb_->parameters();
  out.push_back(&pos_emb_);
  for (auto& block : blocks_) {
    for (Parameter* p : block->parameters()) out.push_back(p);
  }
  for (Parameter* p : ln_f_->parameters()) out.push_back(p);
  for (Parameter* p : lm_head_->parameters()) out.push_back(p);
  return out;
}

std::vector<std::int64_t> GptModel::generate(
    const std::vector<std::int64_t>& prompt, std::int64_t new_tokens,
    float temperature, Rng& rng) {
  CARAML_CHECK_MSG(!prompt.empty(), "generation needs a non-empty prompt");
  CARAML_CHECK_MSG(temperature >= 0.0f, "temperature must be non-negative");
  std::vector<std::int64_t> sequence = prompt;
  const std::int64_t vocab = config_.vocab_size;

  for (std::int64_t step = 0; step < new_tokens; ++step) {
    // Sliding context window of at most block_size tokens.
    const std::int64_t context =
        std::min<std::int64_t>(static_cast<std::int64_t>(sequence.size()),
                               config_.block_size);
    Tensor tokens({1, context});
    for (std::int64_t t = 0; t < context; ++t) {
      tokens[t] = static_cast<float>(
          sequence[sequence.size() - static_cast<std::size_t>(context - t)]);
    }
    const Tensor logits = forward(tokens);  // [context, vocab]
    const float* last = logits.data() + (context - 1) * vocab;

    std::int64_t next = 0;
    if (temperature == 0.0f) {
      for (std::int64_t v = 1; v < vocab; ++v) {
        if (last[v] > last[next]) next = v;
      }
    } else {
      Tensor scaled({1, vocab});
      for (std::int64_t v = 0; v < vocab; ++v) {
        scaled[v] = last[v] / temperature;
      }
      const Tensor probs = tensor::softmax_rows(scaled);
      double r = rng.next_double();
      for (std::int64_t v = 0; v < vocab; ++v) {
        r -= probs[v];
        if (r <= 0.0) {
          next = v;
          break;
        }
        next = v;  // numeric tail: fall through to the last token
      }
    }
    sequence.push_back(next);
  }
  return sequence;
}

void GptModel::set_compute_dtype(tensor::DType dtype) {
  for (auto& block : blocks_) block->set_compute_dtype(dtype);
  // The LM head follows bf16 (it is the largest single GEMM in the model)
  // but stays fp32 under int8: its logits feed a softmax whose sampling
  // behavior is too sensitive to per-tensor activation scales.
  lm_head_->set_compute_dtype(dtype == tensor::DType::kBf16
                                  ? tensor::DType::kBf16
                                  : tensor::DType::kF32);
  compute_dtype_ = dtype;
}

float GptModel::train_step(const Tensor& tokens,
                           const std::vector<std::int64_t>& targets) {
  const Tensor logits = forward(tokens);
  const LossResult loss = softmax_cross_entropy(logits, targets);
  backward(loss.grad_logits);
  return loss.loss;
}

}  // namespace caraml::nn
