// Convolutional layers for the ResNet path: Conv2d, BatchNorm2d, MaxPool2d,
// global average pooling, and a flattening classifier head.
#pragma once

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace caraml::nn {

class Conv2d : public Module {
 public:
  /// He-initialized [out, in, k, k] weights, no bias (BatchNorm follows).
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         Rng& rng);

  Tensor forward(const Tensor& input) override;   // NCHW
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  Parameter& weight() { return weight_; }

 private:
  Parameter weight_;
  tensor::Conv2dArgs args_;
  Tensor cached_input_;
};

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float eps = 1e-5f,
                       float momentum = 0.1f);

  Tensor forward(const Tensor& input) override;   // NCHW, training statistics
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  Parameter gamma_;
  Parameter beta_;
  float eps_;
  float momentum_;
  Tensor running_mean_;
  Tensor running_var_;
  // caches
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  tensor::Shape cached_shape_;
};

class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::int64_t kernel) : kernel_(kernel) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  std::int64_t kernel_;
  tensor::Shape cached_input_shape_;
  std::vector<std::int64_t> cached_indices_;
};

class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& input) override;   // NCHW -> [N, C]
  Tensor backward(const Tensor& grad_output) override;

 private:
  tensor::Shape cached_input_shape_;
};

}  // namespace caraml::nn
