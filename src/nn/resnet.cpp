#include "nn/resnet.hpp"

#include "util/error.hpp"

namespace caraml::nn {

using tensor::Tensor;

ResidualBlock::ResidualBlock(std::int64_t in_channels, std::int64_t width,
                             std::int64_t stride, bool bottleneck, Rng& rng)
    : bottleneck_(bottleneck),
      out_channels_(bottleneck ? width * 4 : width) {
  if (bottleneck) {
    main_path_ = {
        std::make_shared<Conv2d>(in_channels, width, 1, 1, 0, rng),
        std::make_shared<BatchNorm2d>(width),
        std::make_shared<Relu>(),
        std::make_shared<Conv2d>(width, width, 3, stride, 1, rng),
        std::make_shared<BatchNorm2d>(width),
        std::make_shared<Relu>(),
        std::make_shared<Conv2d>(width, out_channels_, 1, 1, 0, rng),
        std::make_shared<BatchNorm2d>(out_channels_),
    };
  } else {
    main_path_ = {
        std::make_shared<Conv2d>(in_channels, width, 3, stride, 1, rng),
        std::make_shared<BatchNorm2d>(width),
        std::make_shared<Relu>(),
        std::make_shared<Conv2d>(width, width, 3, 1, 1, rng),
        std::make_shared<BatchNorm2d>(width),
    };
  }
  if (stride != 1 || in_channels != out_channels_) {
    shortcut_conv_ =
        std::make_shared<Conv2d>(in_channels, out_channels_, 1, stride, 0, rng);
    shortcut_bn_ = std::make_shared<BatchNorm2d>(out_channels_);
  }
}

Tensor ResidualBlock::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor main = input;
  for (auto& layer : main_path_) main = layer->forward(main);

  Tensor shortcut = input;
  if (shortcut_conv_) {
    shortcut = shortcut_bn_->forward(shortcut_conv_->forward(input));
  }
  cached_pre_relu_ = tensor::add(main, shortcut);
  return tensor::relu(cached_pre_relu_);
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  Tensor g = tensor::relu_backward(cached_pre_relu_, grad_output);

  // Main path backward (reverse order).
  Tensor g_main = g;
  for (auto it = main_path_.rbegin(); it != main_path_.rend(); ++it) {
    g_main = (*it)->backward(g_main);
  }

  // Shortcut backward.
  Tensor g_short = g;
  if (shortcut_conv_) {
    g_short = shortcut_conv_->backward(shortcut_bn_->backward(g));
  }
  return tensor::add(g_main, g_short);
}

std::vector<Parameter*> ResidualBlock::parameters() {
  std::vector<Parameter*> out;
  for (auto& layer : main_path_) {
    for (Parameter* p : layer->parameters()) out.push_back(p);
  }
  if (shortcut_conv_) {
    for (Parameter* p : shortcut_conv_->parameters()) out.push_back(p);
    for (Parameter* p : shortcut_bn_->parameters()) out.push_back(p);
  }
  return out;
}

ResNetConfig ResNetConfig::tiny(std::int64_t num_classes) {
  ResNetConfig c;
  c.stage_blocks = {1, 1};
  c.stage_widths = {8, 16};
  c.bottleneck = false;
  c.stem_channels = 8;
  c.num_classes = num_classes;
  return c;
}

ResNetConfig ResNetConfig::small_bottleneck(std::int64_t num_classes) {
  ResNetConfig c;
  c.stage_blocks = {1, 1, 1};
  c.stage_widths = {4, 8, 16};
  c.bottleneck = true;
  c.stem_channels = 8;
  c.num_classes = num_classes;
  return c;
}

ResNet::ResNet(ResNetConfig config, Rng& rng)
    : config_(std::move(config)),
      stem_conv_(std::make_shared<Conv2d>(config_.in_channels,
                                          config_.stem_channels, 3, 1, 1, rng)),
      stem_bn_(std::make_shared<BatchNorm2d>(config_.stem_channels)),
      stem_relu_(std::make_shared<Relu>()),
      pool_(std::make_shared<GlobalAvgPool>()) {
  CARAML_CHECK_MSG(config_.stage_blocks.size() == config_.stage_widths.size(),
                   "stage plan mismatch");
  if (config_.stem_pool) stem_pool_ = std::make_shared<MaxPool2d>(2);

  std::int64_t channels = config_.stem_channels;
  for (std::size_t s = 0; s < config_.stage_blocks.size(); ++s) {
    for (std::int64_t b = 0; b < config_.stage_blocks[s]; ++b) {
      const std::int64_t stride = (b == 0 && s > 0) ? 2 : 1;
      auto block = std::make_shared<ResidualBlock>(
          channels, config_.stage_widths[s], stride, config_.bottleneck, rng);
      channels = block->out_channels();
      blocks_.push_back(std::move(block));
    }
  }
  head_ = std::make_shared<Linear>(channels, config_.num_classes, rng, true,
                                   0.05f);
}

Tensor ResNet::forward(const Tensor& images) {
  CARAML_CHECK_MSG(images.rank() == 4, "ResNet expects NCHW images");
  Tensor x = stem_relu_->forward(stem_bn_->forward(stem_conv_->forward(images)));
  if (stem_pool_) x = stem_pool_->forward(x);
  for (auto& block : blocks_) x = block->forward(x);
  Tensor pooled = pool_->forward(x);  // [N, C]
  return head_->forward(pooled);
}

Tensor ResNet::backward(const Tensor& grad_logits) {
  Tensor g = pool_->backward(head_->backward(grad_logits));
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  if (stem_pool_) g = stem_pool_->backward(g);
  return stem_conv_->backward(stem_bn_->backward(stem_relu_->backward(g)));
}

std::vector<Parameter*> ResNet::parameters() {
  std::vector<Parameter*> out;
  for (Parameter* p : stem_conv_->parameters()) out.push_back(p);
  for (Parameter* p : stem_bn_->parameters()) out.push_back(p);
  for (auto& block : blocks_) {
    for (Parameter* p : block->parameters()) out.push_back(p);
  }
  for (Parameter* p : head_->parameters()) out.push_back(p);
  return out;
}

float ResNet::train_step(const Tensor& images,
                         const std::vector<std::int64_t>& labels) {
  const Tensor logits = forward(images);
  const LossResult loss = softmax_cross_entropy(logits, labels);
  backward(loss.grad_logits);
  return loss.loss;
}

}  // namespace caraml::nn
