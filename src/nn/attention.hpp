// Multi-head causal self-attention — the transformer core operation the
// paper highlights (quadratic in sequence length, matrix products of token
// representations).
#pragma once

#include <memory>

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace caraml::nn {

class CausalSelfAttention : public Module {
 public:
  CausalSelfAttention(std::int64_t embed_dim, std::int64_t num_heads,
                      Rng& rng);

  /// input [B, T, C] -> output [B, T, C].
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  std::int64_t num_heads() const { return num_heads_; }

 private:
  std::int64_t embed_dim_;
  std::int64_t num_heads_;
  std::int64_t head_dim_;
  std::shared_ptr<Linear> qkv_;
  std::shared_ptr<Linear> proj_;

  // Forward caches.
  std::int64_t batch_ = 0;
  std::int64_t time_ = 0;
  Tensor cached_qkv_;                 // [B*T, 3C]
  std::vector<Tensor> cached_att_;    // per (b, h): [T, T] post-softmax
};

}  // namespace caraml::nn
