// Multi-head causal self-attention — the transformer core operation the
// paper highlights (quadratic in sequence length, matrix products of token
// representations).
//
// Two interchangeable engines compute the attention itself:
//
//   kFused (default) — flash-attention-style streaming kernel
//     (tensor/fused.hpp): tiled QK^T → mask → online softmax → ·V in one
//     pass, no [T, T] materialization; backward recomputes attention tiles
//     from the cached QKV + per-row log-sum-exp, so the module's cache is
//     O(B·T·C + B·H·T) instead of the head-loop's O(B·H·T²).
//   kHeadLoop — the original per-(b, h) composition of matmul / softmax
//     kernels, kept as the equivalence oracle for tests and benchmarks.
#pragma once

#include <memory>

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace caraml::nn {

class CausalSelfAttention : public Module {
 public:
  enum class Engine { kFused, kHeadLoop };

  CausalSelfAttention(std::int64_t embed_dim, std::int64_t num_heads,
                      Rng& rng);

  /// input [B, T, C] -> output [B, T, C].
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  std::int64_t num_heads() const { return num_heads_; }

  /// Select the attention engine (affects subsequent forward/backward calls;
  /// a backward must use the same engine as the forward that produced its
  /// caches).
  void set_engine(Engine engine) { engine_ = engine; }
  Engine engine() const { return engine_; }

  /// Run the QKV and output projections in the given precision (kF32 or
  /// kBf16; the attention core itself — QK^T, softmax, ·V — stays fp32).
  /// kI8 is rejected: the projections sit on the training path.
  void set_compute_dtype(tensor::DType dtype);

 private:
  std::int64_t embed_dim_;
  std::int64_t num_heads_;
  std::int64_t head_dim_;
  Engine engine_ = Engine::kFused;
  std::shared_ptr<Linear> qkv_;
  std::shared_ptr<Linear> proj_;

  // Forward caches.
  std::int64_t batch_ = 0;
  std::int64_t time_ = 0;
  Tensor cached_qkv_;        // [B*T, 3C]
  Tensor cached_heads_out_;  // [B*T, C]   (fused engine)
  Tensor cached_lse_;        // [B*H, T]   (fused engine)
  std::vector<Tensor> cached_att_;  // per (b, h): [T, T] (head-loop engine)
};

}  // namespace caraml::nn
