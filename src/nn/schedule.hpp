// Learning-rate schedules. Megatron-LM trains with linear warmup followed by
// cosine decay to a minimum LR; the TensorFlow CNN benchmark uses stepwise
// decay. Both are provided, plus constant/linear for tests and ablations.
#pragma once

#include <cstdint>
#include <vector>

namespace caraml::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// Learning rate at (0-based) step.
  virtual float lr_at(std::int64_t step) const = 0;
};

class ConstantLr final : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float lr_at(std::int64_t) const override { return lr_; }

 private:
  float lr_;
};

/// Linear warmup from 0 to `peak` over `warmup_steps`, then cosine decay to
/// `min_lr` at `total_steps` (flat at `min_lr` afterwards).
class WarmupCosineLr final : public LrSchedule {
 public:
  WarmupCosineLr(float peak, float min_lr, std::int64_t warmup_steps,
                 std::int64_t total_steps);
  float lr_at(std::int64_t step) const override;

 private:
  float peak_;
  float min_lr_;
  std::int64_t warmup_steps_;
  std::int64_t total_steps_;
};

/// Stepwise decay: lr = base * factor^(number of boundaries passed).
class StepDecayLr final : public LrSchedule {
 public:
  StepDecayLr(float base, float factor, std::vector<std::int64_t> boundaries);
  float lr_at(std::int64_t step) const override;

 private:
  float base_;
  float factor_;
  std::vector<std::int64_t> boundaries_;
};

}  // namespace caraml::nn
