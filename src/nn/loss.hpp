// Softmax cross-entropy loss over logits.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace caraml::nn {

struct LossResult {
  float loss = 0.0f;            // mean negative log-likelihood
  tensor::Tensor grad_logits;   // dL/dlogits, [N, C]
};

/// logits [N, C], targets: N class ids. Returns mean NLL and its gradient.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 const std::vector<std::int64_t>& targets);

/// Classification accuracy of logits [N, C] against targets.
double accuracy(const tensor::Tensor& logits,
                const std::vector<std::int64_t>& targets);

}  // namespace caraml::nn
