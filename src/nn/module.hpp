// Module framework for the real (CPU-executed) training path.
//
// Each Module implements an explicit forward pass that caches what its
// backward pass needs, mirroring the define-by-run frameworks CARAML wraps
// (PyTorch for the LLM, TensorFlow for ResNet) at a miniature scale.
// Gradients are accumulated into Parameter::grad; optimizers consume them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace caraml::nn {

using tensor::Tensor;

/// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  std::int64_t numel() const { return value.numel(); }
  void zero_grad() { grad.fill(0.0f); }
};

class Module {
 public:
  virtual ~Module() = default;

  /// Forward pass; caches activations needed by backward().
  virtual Tensor forward(const Tensor& input) = 0;

  /// Backward pass: consumes dL/d(output), accumulates parameter gradients,
  /// returns dL/d(input). Must be called after forward() with a gradient of
  /// the same shape as the forward output.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All parameters owned by this module (recursively).
  virtual std::vector<Parameter*> parameters() { return {}; }

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  std::int64_t num_parameters() {
    std::int64_t total = 0;
    for (Parameter* p : parameters()) total += p->numel();
    return total;
  }
};

/// Runs modules in order; backward in reverse.
class Sequential : public Module {
 public:
  Sequential() = default;

  void add(std::shared_ptr<Module> module) { modules_.push_back(std::move(module)); }
  std::size_t size() const { return modules_.size(); }
  Module& at(std::size_t i) { return *modules_[i]; }

  Tensor forward(const Tensor& input) override {
    Tensor x = input;
    for (auto& module : modules_) x = module->forward(x);
    return x;
  }

  Tensor backward(const Tensor& grad_output) override {
    Tensor g = grad_output;
    for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
      g = (*it)->backward(g);
    }
    return g;
  }

  std::vector<Parameter*> parameters() override {
    std::vector<Parameter*> out;
    for (auto& module : modules_) {
      for (Parameter* p : module->parameters()) out.push_back(p);
    }
    return out;
  }

 private:
  std::vector<std::shared_ptr<Module>> modules_;
};

}  // namespace caraml::nn
