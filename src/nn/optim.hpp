// Optimizers: SGD with momentum (the ResNet benchmark's optimizer) and Adam
// (Megatron-LM's optimizer).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace caraml::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() {
    for (Parameter* p : params_) p->zero_grad();
  }
  const std::vector<Parameter*>& params() const { return params_; }

 protected:
  std::vector<Parameter*> params_;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);
  void step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }
  std::int64_t step_count() const { return t_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

/// Global gradient-norm clipping (Megatron default 1.0). Returns the
/// pre-clip norm.
double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm);

}  // namespace caraml::nn
