#include "nn/dropout.hpp"

#include "util/error.hpp"

namespace caraml::nn {

Dropout::Dropout(float p, std::uint64_t seed) : p_(p), rng_(seed) {
  CARAML_CHECK_MSG(p >= 0.0f && p < 1.0f, "drop probability must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || p_ == 0.0f) {
    mask_ = Tensor();
    return input;
  }
  const float scale = 1.0f / (1.0f - p_);
  mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  for (std::int64_t i = 0; i < input.numel(); ++i) {
    const bool keep = rng_.next_double() >= p_;
    mask_[i] = keep ? scale : 0.0f;
    out[i] = input[i] * mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;  // eval mode / p == 0
  return tensor::mul(grad_output, mask_);
}

}  // namespace caraml::nn
