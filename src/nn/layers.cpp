#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "tensor/fused.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caraml::nn {

using tensor::Shape;

namespace {
// Row-count grain for parallel per-row loops, targeting ~16K elements/chunk.
std::int64_t row_grain(std::int64_t cols) {
  return std::max<std::int64_t>(1, (1 << 14) / std::max<std::int64_t>(1, cols));
}
}  // namespace

// --- Linear ------------------------------------------------------------------

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias, float init_std)
    : weight_("weight", Tensor::randn({out_features, in_features}, rng,
                                      init_std)),
      bias_("bias", Tensor::zeros({out_features})),
      has_bias_(bias) {}

void Linear::set_gelu() {
  epilogue_ = Epilogue::kGelu;
  dropout_p_ = 0.0f;
}

void Linear::set_dropout(float p, std::uint64_t seed) {
  CARAML_CHECK_MSG(p < 1.0f, "dropout rate must be < 1");
  if (p <= 0.0f) {
    epilogue_ = Epilogue::kNone;
    dropout_p_ = 0.0f;
    return;
  }
  epilogue_ = Epilogue::kDropout;
  dropout_p_ = p;
  dropout_rng_.reseed(seed);
}

void Linear::set_compute_dtype(tensor::DType dtype) {
  if (dtype == tensor::DType::kI8) {
    CARAML_CHECK_MSG(epilogue_ != Epilogue::kDropout,
                     "int8 Linear is inference-only; dropout unsupported");
  }
  compute_dtype_ = dtype;
  weight_i8_valid_ = false;  // weights may have moved since the last quantize
}

void Linear::calibrate_int8(const Tensor& sample_input) {
  const float* __restrict p = sample_input.data();
  float absmax = calibrated_absmax_;
  const std::int64_t count = sample_input.numel();
  for (std::int64_t i = 0; i < count; ++i) {
    absmax = std::max(absmax, std::fabs(p[i]));
  }
  calibrated_absmax_ = absmax;
}

Tensor Linear::forward(const Tensor& input) {
  CARAML_CHECK_MSG(input.rank() == 2, "Linear expects [N, in]");
  CARAML_CHECK_MSG(input.dim(1) == weight_.value.dim(1),
                   "Linear input feature mismatch");
  const Tensor* bias = has_bias_ ? &bias_.value : nullptr;
  if (compute_dtype_ == tensor::DType::kBf16) {
    // Re-round the fp32 master weights every forward (the optimizer moves
    // them between steps); backward reuses the same rounded copies for
    // dW and dX so forward and backward see one consistent bf16 snapshot.
    weight_bf16_ = tensor::Bf16Tensor::from_float(weight_.value);
    cached_input_bf16_ = tensor::Bf16Tensor::from_float(input);
    switch (epilogue_) {
      case Epilogue::kGelu:
        return tensor::fused::linear_gelu_bf16(cached_input_bf16_,
                                               weight_bf16_, bias,
                                               &cached_pre_);
      case Epilogue::kDropout: {
        const std::int64_t n = input.dim(0), out_dim = weight_.value.dim(0);
        cached_mask_ = Tensor({n, out_dim});
        const float inv_keep = 1.0f / (1.0f - dropout_p_);
        float* __restrict pm = cached_mask_.data();
        const std::int64_t count = n * out_dim;
        for (std::int64_t i = 0; i < count; ++i) {
          pm[i] = dropout_rng_.next_double() < dropout_p_ ? 0.0f : inv_keep;
        }
        return tensor::fused::linear_dropout_bf16(cached_input_bf16_,
                                                  weight_bf16_, bias,
                                                  cached_mask_);
      }
      case Epilogue::kNone:
        break;
    }
    return tensor::fused::linear_bf16(cached_input_bf16_, weight_bf16_, bias);
  }
  if (compute_dtype_ == tensor::DType::kI8) {
    CARAML_CHECK_MSG(epilogue_ != Epilogue::kDropout,
                     "int8 Linear is inference-only; dropout unsupported");
    if (!weight_i8_valid_) {
      weight_i8_ = tensor::quantize_per_channel_rows(weight_.value);
      weight_i8_valid_ = true;
    }
    const float scale =
        calibrated_absmax_ > 0.0f
            ? calibrated_absmax_ / 127.0f
            : tensor::absmax_scale(input.data(), input.numel());
    const tensor::QuantizedTensor qx =
        tensor::quantize_with_scale(input, scale);
    if (epilogue_ == Epilogue::kGelu) {
      return tensor::fused::linear_gelu_i8(qx, weight_i8_, bias, &cached_pre_);
    }
    return tensor::fused::linear_i8(qx, weight_i8_, bias);
  }
  cached_input_ = input;
  switch (epilogue_) {
    case Epilogue::kGelu:
      return tensor::fused::linear_gelu(input, weight_.value, bias,
                                        &cached_pre_);
    case Epilogue::kDropout: {
      // Fresh inverted-dropout mask per forward: kept slots carry 1/(1-p) so
      // the activation's expectation is unchanged.
      const std::int64_t n = input.dim(0), out_dim = weight_.value.dim(0);
      cached_mask_ = Tensor({n, out_dim});
      const float inv_keep = 1.0f / (1.0f - dropout_p_);
      float* __restrict pm = cached_mask_.data();
      const std::int64_t count = n * out_dim;
      for (std::int64_t i = 0; i < count; ++i) {
        pm[i] = dropout_rng_.next_double() < dropout_p_ ? 0.0f : inv_keep;
      }
      return tensor::fused::linear_dropout(input, weight_.value, bias,
                                           cached_mask_);
    }
    case Epilogue::kNone:
      break;
  }
  return tensor::fused::linear(input, weight_.value, bias);
}

Tensor Linear::backward(const Tensor& grad_output) {
  CARAML_CHECK_MSG(compute_dtype_ != tensor::DType::kI8,
                   "Linear: int8 path is inference-only (no backward)");
  const bool bf16 = compute_dtype_ == tensor::DType::kBf16;
  const std::int64_t cached_rows =
      bf16 ? cached_input_bf16_.dim(0) : cached_input_.dim(0);
  CARAML_CHECK_MSG(grad_output.rank() == 2 &&
                       grad_output.dim(0) == cached_rows &&
                       grad_output.dim(1) == weight_.value.dim(0),
                   "Linear backward shape mismatch");
  // Fold the epilogue's gradient into g first: for kGelu the layer's output
  // was gelu(pre), so dL/dpre = g ∘ gelu'(pre); for kDropout the mask is the
  // (elementwise) Jacobian.
  Tensor g_epi;
  const Tensor* g_ptr = &grad_output;
  if (epilogue_ == Epilogue::kGelu) {
    g_epi = tensor::gelu_backward(cached_pre_, grad_output);
    g_ptr = &g_epi;
  } else if (epilogue_ == Epilogue::kDropout) {
    g_epi = tensor::mul(grad_output, cached_mask_);
    g_ptr = &g_epi;
  }
  const Tensor& g = *g_ptr;
  // In bf16 mode both gradient GEMMs run on bf16-rounded operands (the same
  // weight/input snapshot the forward used) with fp32 accumulation; the
  // gradients themselves stay fp32.
  tensor::Bf16Tensor g_bf16;
  if (bf16) g_bf16 = tensor::Bf16Tensor::from_float(g);
  // dW [out,in] += g^T [out,N] * x [N,in]
  Tensor dw = bf16 ? tensor::matmul_tn_bf16(g_bf16, cached_input_bf16_)
                   : tensor::matmul_tn(g, cached_input_);
  tensor::add_inplace(weight_.grad, dw);
  if (has_bias_) {
    const std::int64_t n = g.dim(0), c = g.dim(1);
    const float* __restrict pg = g.data();
    float* __restrict pbg = bias_.grad.data();
    std::mutex merge_mutex;
    parallel_for_range(
        0, static_cast<std::size_t>(n), static_cast<std::size_t>(row_grain(c)),
        [&, pg, pbg, c](std::size_t lo, std::size_t hi) {
          std::vector<float> local(static_cast<std::size_t>(c), 0.0f);
          float* __restrict pl = local.data();
          for (std::size_t i = lo; i < hi; ++i) {
            const float* __restrict row =
                pg + static_cast<std::int64_t>(i) * c;
            for (std::int64_t j = 0; j < c; ++j) pl[j] += row[j];
          }
          std::lock_guard<std::mutex> lock(merge_mutex);
          for (std::int64_t j = 0; j < c; ++j) pbg[j] += pl[j];
        });
  }
  // dX [N,in] = g [N,out] * W [out,in]
  if (bf16) return tensor::matmul_bf16(g_bf16, weight_bf16_);
  return tensor::matmul(g, weight_.value);
}

std::vector<Parameter*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

// --- Embedding ---------------------------------------------------------------

Embedding::Embedding(std::int64_t vocab, std::int64_t dim, Rng& rng,
                     float init_std)
    : weight_("embedding", Tensor::randn({vocab, dim}, rng, init_std)) {}

Tensor Embedding::forward(const Tensor& input) {
  const std::int64_t n = input.numel();
  const std::int64_t d = dim();
  cached_ids_.resize(static_cast<std::size_t>(n));
  Tensor out({n, d});
  for (std::int64_t i = 0; i < n; ++i) {
    const auto id = static_cast<std::int64_t>(input[i]);
    CARAML_CHECK_MSG(id >= 0 && id < vocab(), "token id out of range");
    cached_ids_[static_cast<std::size_t>(i)] = id;
    const float* src = weight_.value.data() + id * d;
    float* dst = out.data() + i * d;
    for (std::int64_t j = 0; j < d; ++j) dst[j] = src[j];
  }
  return out;
}

Tensor Embedding::backward(const Tensor& grad_output) {
  const std::int64_t n = static_cast<std::int64_t>(cached_ids_.size());
  const std::int64_t d = dim();
  CARAML_CHECK_MSG(grad_output.rank() == 2 && grad_output.dim(0) == n &&
                       grad_output.dim(1) == d,
                   "Embedding backward shape mismatch");
  for (std::int64_t i = 0; i < n; ++i) {
    float* dst = weight_.grad.data() + cached_ids_[static_cast<std::size_t>(i)] * d;
    const float* src = grad_output.data() + i * d;
    for (std::int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
  return Tensor();
}

std::vector<Parameter*> Embedding::parameters() { return {&weight_}; }

// --- LayerNorm ---------------------------------------------------------------

LayerNorm::LayerNorm(std::int64_t features, float eps)
    : gamma_("gamma", Tensor::ones({features})),
      beta_("beta", Tensor::zeros({features})),
      eps_(eps) {}

Tensor LayerNorm::forward(const Tensor& input) {
  CARAML_CHECK_MSG(input.rank() == 2, "LayerNorm expects [N, C]");
  const std::int64_t n = input.dim(0), c = input.dim(1);
  CARAML_CHECK_MSG(c == gamma_.value.numel(), "LayerNorm feature mismatch");
  cached_input_ = input;
  cached_normalized_ = Tensor({n, c});
  cached_inv_std_.assign(static_cast<std::size_t>(n), 0.0f);
  Tensor out({n, c});
  const float* __restrict src = input.data();
  const float* __restrict pgamma = gamma_.value.data();
  const float* __restrict pbeta = beta_.value.data();
  float* __restrict pnorm = cached_normalized_.data();
  float* __restrict pinv = cached_inv_std_.data();
  float* __restrict po = out.data();
  const float eps = eps_;
  parallel_for_range(
      0, static_cast<std::size_t>(n), static_cast<std::size_t>(row_grain(c)),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const float* __restrict row = src + static_cast<std::int64_t>(i) * c;
          double total = 0.0;
          for (std::int64_t j = 0; j < c; ++j) total += row[j];
          const float mu = static_cast<float>(total / c);
          double var = 0.0;
          for (std::int64_t j = 0; j < c; ++j) {
            const double d = row[j] - mu;
            var += d * d;
          }
          const float inv_std =
              1.0f / std::sqrt(static_cast<float>(var / c) + eps);
          pinv[i] = inv_std;
          float* __restrict norm_row = pnorm + static_cast<std::int64_t>(i) * c;
          float* __restrict out_row = po + static_cast<std::int64_t>(i) * c;
          for (std::int64_t j = 0; j < c; ++j) {
            const float norm = (row[j] - mu) * inv_std;
            norm_row[j] = norm;
            out_row[j] = norm * pgamma[j] + pbeta[j];
          }
        }
      });
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_output) {
  const std::int64_t n = cached_input_.dim(0), c = cached_input_.dim(1);
  CARAML_CHECK_MSG(grad_output.same_shape(cached_input_),
                   "LayerNorm backward shape mismatch");
  Tensor dinput({n, c});
  const float* __restrict pg = grad_output.data();
  const float* __restrict pxn = cached_normalized_.data();
  const float* __restrict pinv = cached_inv_std_.data();
  const float* __restrict pgamma = gamma_.value.data();
  float* __restrict pgamma_grad = gamma_.grad.data();
  float* __restrict pbeta_grad = beta_.grad.data();
  float* __restrict pdx = dinput.data();
  std::mutex merge_mutex;
  parallel_for_range(
      0, static_cast<std::size_t>(n), static_cast<std::size_t>(row_grain(c)),
      [&, pg, pxn, pinv, pgamma, pgamma_grad, pbeta_grad, pdx,
       c](std::size_t lo, std::size_t hi) {
        // Parameter gradients accumulate into chunk-local buffers, merged
        // under a mutex at the end — rows are disjoint but gamma/beta are not.
        std::vector<float> dgamma(static_cast<std::size_t>(c), 0.0f);
        std::vector<float> dbeta(static_cast<std::size_t>(c), 0.0f);
        float* __restrict pdg = dgamma.data();
        float* __restrict pdb = dbeta.data();
        for (std::size_t i = lo; i < hi; ++i) {
          const float inv_std = pinv[i];
          const float* __restrict g = pg + static_cast<std::int64_t>(i) * c;
          const float* __restrict xn = pxn + static_cast<std::int64_t>(i) * c;
          // dnorm = g*gamma; dx = inv_std*(dnorm - mean(dnorm) - xn*mean(dnorm*xn))
          double mean_dnorm = 0.0;
          double mean_dnorm_xn = 0.0;
          for (std::int64_t j = 0; j < c; ++j) {
            const double dn = static_cast<double>(g[j]) * pgamma[j];
            mean_dnorm += dn;
            mean_dnorm_xn += dn * xn[j];
            pdg[j] += g[j] * xn[j];
            pdb[j] += g[j];
          }
          mean_dnorm /= c;
          mean_dnorm_xn /= c;
          float* __restrict dx = pdx + static_cast<std::int64_t>(i) * c;
          for (std::int64_t j = 0; j < c; ++j) {
            const double dn = static_cast<double>(g[j]) * pgamma[j];
            dx[j] = static_cast<float>(
                inv_std * (dn - mean_dnorm - xn[j] * mean_dnorm_xn));
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (std::int64_t j = 0; j < c; ++j) {
          pgamma_grad[j] += pdg[j];
          pbeta_grad[j] += pdb[j];
        }
      });
  return dinput;
}

std::vector<Parameter*> LayerNorm::parameters() { return {&gamma_, &beta_}; }

// --- activations ---------------------------------------------------------------

Tensor Gelu::forward(const Tensor& input) {
  cached_input_ = input;
  return tensor::gelu(input);
}

Tensor Gelu::backward(const Tensor& grad_output) {
  return tensor::gelu_backward(cached_input_, grad_output);
}

Tensor Relu::forward(const Tensor& input) {
  cached_input_ = input;
  return tensor::relu(input);
}

Tensor Relu::backward(const Tensor& grad_output) {
  return tensor::relu_backward(cached_input_, grad_output);
}

}  // namespace caraml::nn
