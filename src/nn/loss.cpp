#include "nn/loss.hpp"

#include <cmath>

#include "util/error.hpp"

namespace caraml::nn {

using tensor::Tensor;

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::int64_t>& targets) {
  CARAML_CHECK_MSG(logits.rank() == 2, "loss expects [N, C] logits");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  CARAML_CHECK_MSG(static_cast<std::int64_t>(targets.size()) == n,
                   "target count mismatch");
  LossResult result;
  result.grad_logits = tensor::softmax_rows(logits);  // start from probs
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t target = targets[static_cast<std::size_t>(i)];
    CARAML_CHECK_MSG(target >= 0 && target < c, "target id out of range");
    const float p = result.grad_logits[i * c + target];
    total -= std::log(std::max(p, 1e-12f));
    // dL/dlogits = (softmax - one_hot) / N
    result.grad_logits[i * c + target] -= 1.0f;
  }
  for (std::int64_t i = 0; i < n * c; ++i) result.grad_logits[i] *= inv_n;
  result.loss = static_cast<float>(total / n);
  return result;
}

double accuracy(const Tensor& logits,
                const std::vector<std::int64_t>& targets) {
  const auto predictions = tensor::argmax_rows(logits);
  CARAML_CHECK_MSG(predictions.size() == targets.size(),
                   "accuracy size mismatch");
  if (predictions.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == targets[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

}  // namespace caraml::nn
