// A real, trainable GPT decoder — the miniature counterpart of the
// Megatron-LM model CARAML's LLM benchmark trains (paper §III-A1).
//
// Architecture: token + learned positional embeddings, pre-norm transformer
// blocks (causal attention + GELU MLP with residual connections), final
// layer norm, and an untied LM head. Sized down for CPU execution; the
// paper-scale 800M/13B/175B variants are handled analytically by
// models::GptConfig + the simulator.
#pragma once

#include <memory>
#include <vector>

#include "nn/attention.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/module.hpp"

namespace caraml::nn {

struct GptModelConfig {
  std::int64_t vocab_size = 256;
  std::int64_t block_size = 64;   // maximum sequence length
  std::int64_t num_layers = 2;
  std::int64_t num_heads = 2;
  std::int64_t embed_dim = 32;
  float dropout = 0.0f;  // MLP output dropout (fused epilogue; 0 disables)
};

/// One pre-norm transformer block: x += attn(ln1(x)); x += mlp(ln2(x)).
///
/// The MLP is two fused-epilogue Linears: fc_in carries a bias+GELU epilogue
/// (no separate activation module or extra pass over the [N, 4C]
/// intermediate), fc_out optionally a bias+dropout epilogue.
class TransformerBlock : public Module {
 public:
  TransformerBlock(std::int64_t embed_dim, std::int64_t num_heads, Rng& rng,
                   float dropout = 0.0f);

  Tensor forward(const Tensor& input) override;   // [B, T, C]
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  /// kBf16: attention projections + both MLP linears run bf16 (training-
  /// capable, fp32 master weights). kI8: the two MLP linears run int8
  /// inference GEMMs while attention stays fp32 (the int8 path has no
  /// backward). kF32 restores the original path everywhere.
  void set_compute_dtype(tensor::DType dtype);

 private:
  std::int64_t embed_dim_;
  std::shared_ptr<LayerNorm> ln1_;
  std::shared_ptr<CausalSelfAttention> attn_;
  std::shared_ptr<LayerNorm> ln2_;
  std::shared_ptr<Linear> fc_in_;   // bias+GELU epilogue
  std::shared_ptr<Linear> fc_out_;  // bias(+dropout) epilogue
  std::int64_t batch_ = 0, time_ = 0;
};

class GptModel : public Module {
 public:
  GptModel(GptModelConfig config, Rng& rng);

  const GptModelConfig& config() const { return config_; }

  /// tokens [B, T] (ids as floats) -> logits [B*T, vocab].
  Tensor forward(const Tensor& tokens) override;
  Tensor backward(const Tensor& grad_logits) override;
  std::vector<Parameter*> parameters() override;

  /// One full training step: forward, cross-entropy against `targets`
  /// (shifted tokens, B*T ids), backward. Returns the loss. Gradients are
  /// accumulated (call optimizer.zero_grad() between steps).
  float train_step(const Tensor& tokens,
                   const std::vector<std::int64_t>& targets);

  /// Autoregressive sampling: extend `prompt` by `new_tokens` ids.
  /// temperature == 0 means greedy decoding; otherwise softmax sampling at
  /// the given temperature. The context window slides when the sequence
  /// exceeds block_size.
  std::vector<std::int64_t> generate(const std::vector<std::int64_t>& prompt,
                                     std::int64_t new_tokens,
                                     float temperature, Rng& rng);

  /// Propagate a compute precision to every block (and, for kBf16, the LM
  /// head). kBf16 keeps the model trainable with fp32 master weights; kI8
  /// switches the MLP linears of each block to inference-only int8 GEMMs
  /// (train_step will CHECK-fail); kF32 restores the default path.
  void set_compute_dtype(tensor::DType dtype);
  tensor::DType compute_dtype() const { return compute_dtype_; }

 private:
  GptModelConfig config_;
  std::shared_ptr<Embedding> tok_emb_;
  Parameter pos_emb_;  // [block_size, C]
  std::vector<std::shared_ptr<TransformerBlock>> blocks_;
  std::shared_ptr<LayerNorm> ln_f_;
  std::shared_ptr<Linear> lm_head_;
  tensor::DType compute_dtype_ = tensor::DType::kF32;
  std::int64_t batch_ = 0, time_ = 0;
};

}  // namespace caraml::nn
