#include "nn/optim.hpp"

#include <cmath>

#include "util/error.hpp"

namespace caraml::nn {

Sgd::Sgd(std::vector<Parameter*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    tensor::Tensor& vel = velocity_[i];
    for (std::int64_t j = 0; j < p->numel(); ++j) {
      float g = p->grad[j];
      if (weight_decay_ != 0.0f) g += weight_decay_ * p->value[j];
      vel[j] = momentum_ * vel[j] + g;
      p->value[j] -= lr_ * vel[j];
    }
  }
}

Adam::Adam(std::vector<Parameter*> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter* p = params_[i];
    tensor::Tensor& m = m_[i];
    tensor::Tensor& v = v_[i];
    for (std::int64_t j = 0; j < p->numel(); ++j) {
      float g = p->grad[j];
      if (weight_decay_ != 0.0f) g += weight_decay_ * p->value[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      p->value[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm) {
  CARAML_CHECK_MSG(max_norm > 0.0, "max_norm must be positive");
  double total = 0.0;
  for (const Parameter* p : params) {
    for (std::int64_t j = 0; j < p->numel(); ++j) {
      total += static_cast<double>(p->grad[j]) * p->grad[j];
    }
  }
  const double norm = std::sqrt(total);
  if (norm > max_norm) {
    const float factor = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) {
      for (std::int64_t j = 0; j < p->numel(); ++j) p->grad[j] *= factor;
    }
  }
  return norm;
}

}  // namespace caraml::nn
