#include "nn/attention.hpp"

#include <cmath>
#include <utility>

#include "tensor/fused.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caraml::nn {

using tensor::Tensor;

CausalSelfAttention::CausalSelfAttention(std::int64_t embed_dim,
                                         std::int64_t num_heads, Rng& rng)
    : embed_dim_(embed_dim),
      num_heads_(num_heads),
      head_dim_(embed_dim / num_heads),
      qkv_(std::make_shared<Linear>(embed_dim, 3 * embed_dim, rng)),
      proj_(std::make_shared<Linear>(embed_dim, embed_dim, rng)) {
  CARAML_CHECK_MSG(embed_dim % num_heads == 0,
                   "embed_dim must be divisible by num_heads");
}

namespace {

// Extract head slice q/k/v [T, hd] for (b, h) from the packed qkv [B*T, 3C].
Tensor head_slice(const Tensor& qkv, std::int64_t b, std::int64_t h,
                  std::int64_t which, std::int64_t time, std::int64_t embed,
                  std::int64_t head_dim) {
  Tensor out({time, head_dim});
  const std::int64_t base_col = which * embed + h * head_dim;
  const std::int64_t row_stride = 3 * embed;
  for (std::int64_t t = 0; t < time; ++t) {
    const float* src = qkv.data() + (b * time + t) * row_stride + base_col;
    float* dst = out.data() + t * head_dim;
    for (std::int64_t j = 0; j < head_dim; ++j) dst[j] = src[j];
  }
  return out;
}

// Scatter-add a head gradient [T, hd] back into d_qkv [B*T, 3C].
void head_scatter(Tensor& d_qkv, const Tensor& grad, std::int64_t b,
                  std::int64_t h, std::int64_t which, std::int64_t time,
                  std::int64_t embed, std::int64_t head_dim) {
  const std::int64_t base_col = which * embed + h * head_dim;
  const std::int64_t row_stride = 3 * embed;
  for (std::int64_t t = 0; t < time; ++t) {
    float* dst = d_qkv.data() + (b * time + t) * row_stride + base_col;
    const float* src = grad.data() + t * head_dim;
    for (std::int64_t j = 0; j < head_dim; ++j) dst[j] += src[j];
  }
}

}  // namespace

void CausalSelfAttention::set_compute_dtype(tensor::DType dtype) {
  CARAML_CHECK_MSG(dtype != tensor::DType::kI8,
                   "attention projections sit on the training path; int8 is "
                   "inference-only (use kF32 or kBf16)");
  qkv_->set_compute_dtype(dtype);
  proj_->set_compute_dtype(dtype);
}

Tensor CausalSelfAttention::forward(const Tensor& input) {
  CARAML_CHECK_MSG(input.rank() == 3 && input.dim(2) == embed_dim_,
                   "attention expects [B, T, C]");
  batch_ = input.dim(0);
  time_ = input.dim(1);
  const std::int64_t b_count = batch_, t_count = time_, c = embed_dim_;

  const Tensor flat = input.reshape({b_count * t_count, c});
  cached_qkv_ = qkv_->forward(flat);  // [B*T, 3C]

  Tensor heads_out({b_count * t_count, c});

  if (engine_ == Engine::kFused) {
    cached_lse_ = Tensor({b_count * num_heads_, t_count});
    tensor::fused::causal_attention_forward(cached_qkv_.data(), b_count,
                                            t_count, c, num_heads_,
                                            heads_out.data(),
                                            cached_lse_.data());
    cached_att_.clear();
    cached_heads_out_ = std::move(heads_out);
    Tensor out = proj_->forward(cached_heads_out_);  // [B*T, C]
    return out.reshape({b_count, t_count, c});
  }

  // Head-loop engine: dense per-(b, h) composition of the generic kernels.
  // Pre-size for indexed assignment: the head loop below runs in parallel
  // and push_back would race.
  cached_att_.assign(static_cast<std::size_t>(b_count * num_heads_), Tensor());
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  // Each (b, h) pair reads its own qkv slice and writes a disjoint column
  // block of heads_out, so the flattened head loop parallelizes cleanly; the
  // tensor kernels it calls run inline on worker threads.
  caraml::parallel_for_range(
      0, static_cast<std::size_t>(b_count * num_heads_), 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t b =
              static_cast<std::int64_t>(idx) / num_heads_;
          const std::int64_t h = static_cast<std::int64_t>(idx) % num_heads_;
          const Tensor q =
              head_slice(cached_qkv_, b, h, 0, t_count, c, head_dim_);
          const Tensor k =
              head_slice(cached_qkv_, b, h, 1, t_count, c, head_dim_);
          const Tensor v =
              head_slice(cached_qkv_, b, h, 2, t_count, c, head_dim_);

          Tensor scores = tensor::matmul_nt(q, k);  // [T, T]
          for (std::int64_t i = 0; i < t_count; ++i) {
            for (std::int64_t j = 0; j < t_count; ++j) {
              if (j > i) {
                scores[i * t_count + j] = -1e30f;  // causal mask
              } else {
                scores[i * t_count + j] *= scale;
              }
            }
          }
          Tensor att = tensor::softmax_rows(scores);  // [T, T]
          Tensor y = tensor::matmul(att, v);          // [T, hd]
          cached_att_[idx] = std::move(att);

          for (std::int64_t t = 0; t < t_count; ++t) {
            float* dst =
                heads_out.data() + (b * t_count + t) * c + h * head_dim_;
            const float* src = y.data() + t * head_dim_;
            for (std::int64_t j = 0; j < head_dim_; ++j) dst[j] = src[j];
          }
        }
      });

  Tensor out = proj_->forward(heads_out);  // [B*T, C]
  return out.reshape({b_count, t_count, c});
}

Tensor CausalSelfAttention::backward(const Tensor& grad_output) {
  const std::int64_t b_count = batch_, t_count = time_, c = embed_dim_;
  CARAML_CHECK_MSG(grad_output.rank() == 3 && grad_output.dim(0) == b_count &&
                       grad_output.dim(1) == t_count && grad_output.dim(2) == c,
                   "attention backward shape mismatch");
  const Tensor g_flat = grad_output.reshape({b_count * t_count, c});
  const Tensor d_heads = proj_->backward(g_flat);  // [B*T, C]

  Tensor d_qkv({b_count * t_count, 3 * c});  // zero-initialized
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  if (engine_ == Engine::kFused) {
    CARAML_CHECK_MSG(!cached_lse_.empty(),
                     "fused attention backward requires a fused forward");
    tensor::fused::causal_attention_backward(
        cached_qkv_.data(), cached_heads_out_.data(), d_heads.data(),
        cached_lse_.data(), b_count, t_count, c, num_heads_, d_qkv.data());
    Tensor d_input = qkv_->backward(d_qkv);  // [B*T, C]
    return d_input.reshape({b_count, t_count, c});
  }

  CARAML_CHECK_MSG(
      cached_att_.size() == static_cast<std::size_t>(b_count * num_heads_),
      "head-loop attention backward requires a head-loop forward");

  // Parallel over (b, h): each pair scatters into disjoint (row, column)
  // blocks of d_qkv, so no accumulation races.
  caraml::parallel_for_range(
      0, static_cast<std::size_t>(b_count * num_heads_), 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t b =
              static_cast<std::int64_t>(idx) / num_heads_;
          const std::int64_t h = static_cast<std::int64_t>(idx) % num_heads_;
          const Tensor q =
              head_slice(cached_qkv_, b, h, 0, t_count, c, head_dim_);
          const Tensor k =
              head_slice(cached_qkv_, b, h, 1, t_count, c, head_dim_);
          const Tensor v =
              head_slice(cached_qkv_, b, h, 2, t_count, c, head_dim_);
          const Tensor& att = cached_att_[idx];

          // dY per head [T, hd] from d_heads columns.
          Tensor dy({t_count, head_dim_});
          for (std::int64_t t = 0; t < t_count; ++t) {
            const float* src =
                d_heads.data() + (b * t_count + t) * c + h * head_dim_;
            float* dst = dy.data() + t * head_dim_;
            for (std::int64_t j = 0; j < head_dim_; ++j) dst[j] = src[j];
          }

          // y = att @ v  =>  datt = dy @ v^T ; dv = att^T @ dy
          Tensor datt = tensor::matmul_nt(dy, v);  // [T, T]
          Tensor dv = tensor::matmul_tn(att, dy);  // [T, hd]

          // Softmax backward (masked entries have att == 0 so they drop out).
          Tensor dscores = tensor::softmax_rows_backward(att, datt);  // [T, T]
          // Apply mask + scale: masked entries contribute no gradient.
          for (std::int64_t i = 0; i < t_count; ++i) {
            for (std::int64_t j = 0; j < t_count; ++j) {
              if (j > i) {
                dscores[i * t_count + j] = 0.0f;
              } else {
                dscores[i * t_count + j] *= scale;
              }
            }
          }
          // scores = q @ k^T  =>  dq = dscores @ k ; dk = dscores^T @ q
          Tensor dq = tensor::matmul(dscores, k);
          Tensor dk = tensor::matmul_tn(dscores, q);

          head_scatter(d_qkv, dq, b, h, 0, t_count, c, head_dim_);
          head_scatter(d_qkv, dk, b, h, 1, t_count, c, head_dim_);
          head_scatter(d_qkv, dv, b, h, 2, t_count, c, head_dim_);
        }
      });

  Tensor d_input = qkv_->backward(d_qkv);  // [B*T, C]
  return d_input.reshape({b_count, t_count, c});
}

std::vector<Parameter*> CausalSelfAttention::parameters() {
  std::vector<Parameter*> out = qkv_->parameters();
  for (Parameter* p : proj_->parameters()) out.push_back(p);
  return out;
}

}  // namespace caraml::nn
