// Core dense layers: Linear, Embedding, LayerNorm, activations.
//
// Convention for sequence models: activations are [N, C] matrices where N
// flattens (batch, time); Embedding consumes token ids stored as floats.
#pragma once

#include "nn/module.hpp"
#include "tensor/dtype.hpp"
#include "tensor/quant.hpp"
#include "util/rng.hpp"

namespace caraml::nn {

class Linear : public Module {
 public:
  /// Optional elementwise epilogue fused into the forward GEMM write-back
  /// (tensor::fused): the bias is always fused; kGelu additionally applies
  /// tanh-GELU (replacing a separate Gelu module), kDropout multiplies by a
  /// freshly drawn inverted-dropout keep-mask. Backward folds the epilogue's
  /// gradient into the incoming gradient before the usual dW/db/dX products.
  enum class Epilogue { kNone, kGelu, kDropout };

  /// weight [out, in] initialized N(0, init_std); optional bias.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true, float init_std = 0.02f);

  Tensor forward(const Tensor& input) override;   // [N, in] -> [N, out]
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  Parameter& weight() { return weight_; }
  Parameter* bias() { return has_bias_ ? &bias_ : nullptr; }

  /// Fuse a tanh-GELU after the bias (out = gelu(x·W^T + b)).
  void set_gelu();
  /// Fuse inverted dropout with rate `p` in [0, 1); a new mask is drawn each
  /// forward from a stream seeded with `seed`. p <= 0 restores kNone.
  void set_dropout(float p, std::uint64_t seed);
  Epilogue epilogue() const { return epilogue_; }

  /// Select the precision of the forward/backward matrix products.
  ///
  /// kF32 (default) is the original path, untouched. kBf16 re-encodes the
  /// fp32 master weights (and the incoming activations) to bf16 each forward
  /// and runs forward *and* backward GEMMs on the bf16 copies with fp32
  /// accumulation — the Parameter values and gradients stay full fp32, so
  /// the optimizer sees ordinary master weights. kI8 is inference-only:
  /// weights quantize symmetrically per output channel once (cached; the
  /// layer assumes frozen weights — any set_compute_dtype call invalidates
  /// the cache), activations per tensor using the calibrated absmax scale
  /// when calibrate_int8() was called, else a dynamic per-forward absmax;
  /// backward CHECK-fails in kI8 mode.
  void set_compute_dtype(tensor::DType dtype);
  tensor::DType compute_dtype() const { return compute_dtype_; }

  /// Record activation statistics for the int8 path: after one or more calls
  /// the activation scale is the running max absmax / 127 instead of a
  /// per-forward dynamic absmax.
  void calibrate_int8(const Tensor& sample_input);

 private:
  Parameter weight_;
  Parameter bias_;
  bool has_bias_;
  Epilogue epilogue_ = Epilogue::kNone;
  float dropout_p_ = 0.0f;
  Rng dropout_rng_;
  tensor::DType compute_dtype_ = tensor::DType::kF32;
  Tensor cached_input_;
  Tensor cached_pre_;   // kGelu: post-bias pre-activation
  Tensor cached_mask_;  // kDropout: scaled keep-mask of the last forward
  tensor::Bf16Tensor cached_input_bf16_;  // kBf16: input of the last forward
  tensor::Bf16Tensor weight_bf16_;        // kBf16: weights of the last forward
  tensor::QuantizedTensor weight_i8_;     // kI8: cached per-channel weights
  bool weight_i8_valid_ = false;
  float calibrated_absmax_ = 0.0f;  // kI8: running activation absmax
};

class Embedding : public Module {
 public:
  Embedding(std::int64_t vocab, std::int64_t dim, Rng& rng,
            float init_std = 0.02f);

  /// input: token ids (floats) of any shape with N elements -> [N, dim].
  Tensor forward(const Tensor& input) override;
  /// Returns an empty tensor (ids carry no gradient).
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  Parameter& weight() { return weight_; }
  std::int64_t vocab() const { return weight_.value.dim(0); }
  std::int64_t dim() const { return weight_.value.dim(1); }

 private:
  Parameter weight_;  // [vocab, dim]
  std::vector<std::int64_t> cached_ids_;
};

class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t features, float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;   // [N, C] -> [N, C]
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }

 private:
  Parameter gamma_;
  Parameter beta_;
  float eps_;
  Tensor cached_input_;
  Tensor cached_normalized_;
  std::vector<float> cached_inv_std_;
};

class Gelu : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

class Relu : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

}  // namespace caraml::nn
