// Core dense layers: Linear, Embedding, LayerNorm, activations.
//
// Convention for sequence models: activations are [N, C] matrices where N
// flattens (batch, time); Embedding consumes token ids stored as floats.
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace caraml::nn {

class Linear : public Module {
 public:
  /// Optional elementwise epilogue fused into the forward GEMM write-back
  /// (tensor::fused): the bias is always fused; kGelu additionally applies
  /// tanh-GELU (replacing a separate Gelu module), kDropout multiplies by a
  /// freshly drawn inverted-dropout keep-mask. Backward folds the epilogue's
  /// gradient into the incoming gradient before the usual dW/db/dX products.
  enum class Epilogue { kNone, kGelu, kDropout };

  /// weight [out, in] initialized N(0, init_std); optional bias.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true, float init_std = 0.02f);

  Tensor forward(const Tensor& input) override;   // [N, in] -> [N, out]
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  Parameter& weight() { return weight_; }
  Parameter* bias() { return has_bias_ ? &bias_ : nullptr; }

  /// Fuse a tanh-GELU after the bias (out = gelu(x·W^T + b)).
  void set_gelu();
  /// Fuse inverted dropout with rate `p` in [0, 1); a new mask is drawn each
  /// forward from a stream seeded with `seed`. p <= 0 restores kNone.
  void set_dropout(float p, std::uint64_t seed);
  Epilogue epilogue() const { return epilogue_; }

 private:
  Parameter weight_;
  Parameter bias_;
  bool has_bias_;
  Epilogue epilogue_ = Epilogue::kNone;
  float dropout_p_ = 0.0f;
  Rng dropout_rng_;
  Tensor cached_input_;
  Tensor cached_pre_;   // kGelu: post-bias pre-activation
  Tensor cached_mask_;  // kDropout: scaled keep-mask of the last forward
};

class Embedding : public Module {
 public:
  Embedding(std::int64_t vocab, std::int64_t dim, Rng& rng,
            float init_std = 0.02f);

  /// input: token ids (floats) of any shape with N elements -> [N, dim].
  Tensor forward(const Tensor& input) override;
  /// Returns an empty tensor (ids carry no gradient).
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  Parameter& weight() { return weight_; }
  std::int64_t vocab() const { return weight_.value.dim(0); }
  std::int64_t dim() const { return weight_.value.dim(1); }

 private:
  Parameter weight_;  // [vocab, dim]
  std::vector<std::int64_t> cached_ids_;
};

class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t features, float eps = 1e-5f);

  Tensor forward(const Tensor& input) override;   // [N, C] -> [N, C]
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }

 private:
  Parameter gamma_;
  Parameter beta_;
  float eps_;
  Tensor cached_input_;
  Tensor cached_normalized_;
  std::vector<float> cached_inv_std_;
};

class Gelu : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

class Relu : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  Tensor cached_input_;
};

}  // namespace caraml::nn
