#include "nn/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caraml::nn {

WarmupCosineLr::WarmupCosineLr(float peak, float min_lr,
                               std::int64_t warmup_steps,
                               std::int64_t total_steps)
    : peak_(peak),
      min_lr_(min_lr),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps) {
  CARAML_CHECK_MSG(peak > 0.0f, "peak LR must be positive");
  CARAML_CHECK_MSG(min_lr >= 0.0f && min_lr <= peak, "min LR out of range");
  CARAML_CHECK_MSG(warmup_steps >= 0, "negative warmup");
  CARAML_CHECK_MSG(total_steps > warmup_steps, "total must exceed warmup");
}

float WarmupCosineLr::lr_at(std::int64_t step) const {
  if (step < warmup_steps_) {
    return peak_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  if (step >= total_steps_) return min_lr_;
  const double progress = static_cast<double>(step - warmup_steps_) /
                          static_cast<double>(total_steps_ - warmup_steps_);
  const double cosine = 0.5 * (1.0 + std::cos(M_PI * progress));
  return static_cast<float>(min_lr_ + (peak_ - min_lr_) * cosine);
}

StepDecayLr::StepDecayLr(float base, float factor,
                         std::vector<std::int64_t> boundaries)
    : base_(base), factor_(factor), boundaries_(std::move(boundaries)) {
  CARAML_CHECK_MSG(base > 0.0f, "base LR must be positive");
  CARAML_CHECK_MSG(factor > 0.0f && factor <= 1.0f,
                   "decay factor must be in (0, 1]");
  CARAML_CHECK_MSG(std::is_sorted(boundaries_.begin(), boundaries_.end()),
                   "boundaries must be sorted");
}

float StepDecayLr::lr_at(std::int64_t step) const {
  float lr = base_;
  for (const auto boundary : boundaries_) {
    if (step >= boundary) {
      lr *= factor_;
    } else {
      break;
    }
  }
  return lr;
}

}  // namespace caraml::nn
