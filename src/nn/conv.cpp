#include "nn/conv.hpp"

#include <cmath>

#include "util/error.hpp"

namespace caraml::nn {

using tensor::Shape;
using tensor::Tensor;

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng)
    : weight_("conv_weight",
              Tensor::randn({out_channels, in_channels, kernel, kernel}, rng,
                            std::sqrt(2.0f / static_cast<float>(
                                                 in_channels * kernel * kernel)))) {
  args_.stride = stride;
  args_.padding = padding;
}

Tensor Conv2d::forward(const Tensor& input) {
  cached_input_ = input;
  return tensor::conv2d(input, weight_.value, args_);
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  Tensor dw = tensor::conv2d_backward_weight(grad_output, cached_input_,
                                             weight_.value.shape(), args_);
  tensor::add_inplace(weight_.grad, dw);
  return tensor::conv2d_backward_input(grad_output, weight_.value,
                                       cached_input_.shape(), args_);
}

std::vector<Parameter*> Conv2d::parameters() { return {&weight_}; }

BatchNorm2d::BatchNorm2d(std::int64_t channels, float eps, float momentum)
    : gamma_("bn_gamma", Tensor::ones({channels})),
      beta_("bn_beta", Tensor::zeros({channels})),
      eps_(eps),
      momentum_(momentum),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::ones({channels})) {}

Tensor BatchNorm2d::forward(const Tensor& input) {
  CARAML_CHECK_MSG(input.rank() == 4, "BatchNorm2d expects NCHW");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  CARAML_CHECK_MSG(c == gamma_.value.numel(), "BatchNorm channel mismatch");
  const std::int64_t count = n * h * w;
  CARAML_CHECK_MSG(count > 0, "BatchNorm over empty batch");

  cached_shape_ = input.shape();
  cached_xhat_ = Tensor(input.shape());
  cached_inv_std_.assign(static_cast<std::size_t>(c), 0.0f);
  Tensor out(input.shape());

  for (std::int64_t ch = 0; ch < c; ++ch) {
    double total = 0.0;
    for (std::int64_t img = 0; img < n; ++img) {
      const float* src = input.data() + (img * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) total += src[i];
    }
    const float mu = static_cast<float>(total / count);
    double var = 0.0;
    for (std::int64_t img = 0; img < n; ++img) {
      const float* src = input.data() + (img * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) {
        const double d = src[i] - mu;
        var += d * d;
      }
    }
    const float variance = static_cast<float>(var / count);
    const float inv_std = 1.0f / std::sqrt(variance + eps_);
    cached_inv_std_[static_cast<std::size_t>(ch)] = inv_std;
    running_mean_[ch] =
        (1.0f - momentum_) * running_mean_[ch] + momentum_ * mu;
    running_var_[ch] =
        (1.0f - momentum_) * running_var_[ch] + momentum_ * variance;

    const float g = gamma_.value[ch];
    const float b = beta_.value[ch];
    for (std::int64_t img = 0; img < n; ++img) {
      const float* src = input.data() + (img * c + ch) * h * w;
      float* xh = cached_xhat_.data() + (img * c + ch) * h * w;
      float* dst = out.data() + (img * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) {
        xh[i] = (src[i] - mu) * inv_std;
        dst[i] = g * xh[i] + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  CARAML_CHECK_MSG(grad_output.shape() == cached_shape_,
                   "BatchNorm backward shape mismatch");
  const std::int64_t n = cached_shape_[0], c = cached_shape_[1],
                     h = cached_shape_[2], w = cached_shape_[3];
  const std::int64_t count = n * h * w;
  Tensor dinput(cached_shape_);

  for (std::int64_t ch = 0; ch < c; ++ch) {
    double sum_g = 0.0;
    double sum_g_xhat = 0.0;
    for (std::int64_t img = 0; img < n; ++img) {
      const float* g = grad_output.data() + (img * c + ch) * h * w;
      const float* xh = cached_xhat_.data() + (img * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) {
        sum_g += g[i];
        sum_g_xhat += static_cast<double>(g[i]) * xh[i];
      }
    }
    gamma_.grad[ch] += static_cast<float>(sum_g_xhat);
    beta_.grad[ch] += static_cast<float>(sum_g);

    const float inv_std = cached_inv_std_[static_cast<std::size_t>(ch)];
    const float gamma = gamma_.value[ch];
    const float mean_g = static_cast<float>(sum_g / count);
    const float mean_g_xhat = static_cast<float>(sum_g_xhat / count);
    for (std::int64_t img = 0; img < n; ++img) {
      const float* g = grad_output.data() + (img * c + ch) * h * w;
      const float* xh = cached_xhat_.data() + (img * c + ch) * h * w;
      float* dx = dinput.data() + (img * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) {
        dx[i] = gamma * inv_std * (g[i] - mean_g - xh[i] * mean_g_xhat);
      }
    }
  }
  return dinput;
}

std::vector<Parameter*> BatchNorm2d::parameters() { return {&gamma_, &beta_}; }

Tensor MaxPool2d::forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return tensor::maxpool2d(input, kernel_, &cached_indices_);
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  return tensor::maxpool2d_backward(grad_output, cached_input_shape_,
                                    cached_indices_);
}

Tensor GlobalAvgPool::forward(const Tensor& input) {
  cached_input_shape_ = input.shape();
  return tensor::global_avg_pool(input);
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  return tensor::global_avg_pool_backward(grad_output, cached_input_shape_);
}

}  // namespace caraml::nn
