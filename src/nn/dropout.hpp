// Inverted dropout with a deterministic per-module RNG stream, so training
// runs are reproducible across replicas (the data-parallel trainer relies on
// bit-identical replicas).
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace caraml::nn {

class Dropout : public Module {
 public:
  /// `p` is the drop probability. The module starts in training mode;
  /// eval() turns it into an exact identity.
  Dropout(float p, std::uint64_t seed);

  void train() { training_ = true; }
  void eval() { training_ = false; }
  bool is_training() const { return training_; }
  float p() const { return p_; }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

 private:
  float p_;
  bool training_ = true;
  Rng rng_;
  Tensor mask_;  // scaled keep-mask of the last forward
};

}  // namespace caraml::nn
