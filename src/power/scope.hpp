// PowerScope — the C++ analogue of jpwr's `get_power` context manager
// (paper §III-A4).
//
//   std::vector<MethodPtr> met_list = {make_pynvml_sim(...),
//                                      std::make_shared<GraceHopperSimMethod>(...)};
//   {
//     PowerScope measured_scope(met_list, /*interval_ms=*/100);
//     application_call();
//   }  // sampling stops at scope exit
//   auto df = measured_scope.df();
//   auto [energy_df, additional] = measured_scope.energy();
//
// The scope starts a background sampling thread that periodically queries all
// methods, storing (timestamp, watts) points; energy is computed by
// trapezoidal integration at the end, exactly as the Python tool does.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "df/dataframe.hpp"
#include "power/clock.hpp"
#include "power/method.hpp"
#include "telemetry/span.hpp"
#include "util/stats.hpp"

namespace caraml::power {

class PowerScope {
 public:
  /// Starts sampling immediately. `interval_ms` is the polling period (the
  /// paper uses 100 ms); `clock` defaults to a wall clock — pass a
  /// ScaledClock to replay simulated traces quickly.
  ///
  /// Methods are isolated from each other: a method that throws during a
  /// sample contributes NaN for its channels on that row, and after
  /// `quarantine_after_errors` consecutive errors it is quarantined (never
  /// called again; its columns stay NaN) instead of killing the sampling
  /// thread — the paper's GH200 sensor gaps and gcipuinfo dropouts must not
  /// abort a measurement. Healthy methods keep sampling and their energy
  /// still exports.
  explicit PowerScope(std::vector<MethodPtr> methods,
                      double interval_ms = 100.0,
                      std::shared_ptr<Clock> clock = nullptr,
                      int quarantine_after_errors = 3);
  ~PowerScope();

  PowerScope(const PowerScope&) = delete;
  PowerScope& operator=(const PowerScope&) = delete;

  /// Stop sampling (idempotent); takes a final sample so every scope has at
  /// least two points.
  void stop();

  /// Raw samples: columns "time" + one per "<method>:<channel>".
  df::DataFrame df() const;

  struct EnergyResult {
    /// One row per channel: channel, energy_wh, avg_watts, min_watts,
    /// max_watts, duration_s, samples.
    df::DataFrame energy;
    /// Additional per-method data frames (method name -> samples restricted
    /// to that method), mirroring jpwr's `additional_data` dict.
    std::map<std::string, df::DataFrame> additional;
  };
  EnergyResult energy() const;

  /// Total energy (Wh) of one channel ("<method>:<channel>").
  double channel_energy_wh(const std::string& column) const;

  std::size_t num_samples() const;
  double duration() const;

  /// Health of the sampling loop over the scope's lifetime. Samples are
  /// scheduled at absolute deadlines (start + k * interval); an *overrun* is
  /// a deadline skipped entirely because sampling ran long, and *jitter* is
  /// the wall-clock lateness of each taken sample against its deadline.
  /// These numbers also feed the telemetry registry
  /// ("power/sample_jitter_ms" histogram, "power/sample_overruns" counter)
  /// and the run manifest.
  struct SamplingDiagnostics {
    std::int64_t samples = 0;
    std::int64_t overruns = 0;
    double jitter_ms_mean = 0.0;
    double jitter_ms_max = 0.0;
    std::int64_t method_errors = 0;       // failed sample() calls, all methods
    std::int64_t methods_quarantined = 0;
  };
  SamplingDiagnostics diagnostics() const;

  /// Per-method health: error counts, quarantine state, last error text.
  struct MethodDiagnostics {
    std::string method;
    std::int64_t errors = 0;
    bool quarantined = false;
    std::string last_error;
  };
  std::vector<MethodDiagnostics> method_diagnostics() const;

 private:
  void sampling_loop();
  void take_sample();

  /// Bookkeeping for one method's slice of each sample row.
  struct MethodState {
    std::size_t first_column = 0;
    std::size_t channels = 0;
    std::int64_t errors = 0;
    int consecutive_errors = 0;
    bool quarantined = false;
    std::string last_error;
  };

  std::vector<MethodPtr> methods_;
  std::vector<std::string> columns_;  // "<method>:<channel>", sample order
  std::vector<MethodState> method_state_;  // parallel to methods_
  int quarantine_after_;
  double interval_s_;       // wall-clock sampling period
  double clock_interval_;   // the same period in clock time
  double start_clock_ = 0.0;  // clock time of the scope-entry sample
  std::shared_ptr<Clock> clock_;

  mutable std::mutex mutex_;
  std::vector<double> times_;
  std::vector<std::vector<double>> watts_;  // [sample][column]
  std::int64_t overruns_ = 0;
  RunningStats jitter_ms_;

  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  bool channels_held_ = false;  // process-wide channel leases (see scope.cpp)
  std::thread thread_;
};

/// Trapezoidal integration of (t, w) samples to joules — the same estimator
/// jpwr applies to its sample DataFrame.
double integrate_trapezoid_joules(const std::vector<double>& times,
                                  const std::vector<double>& watts);

/// Result-file export (jpwr's --df-out/--df-filetype/--df-suffix):
/// writes "<out_dir>/power<suffix>.<ext>" and "<out_dir>/energy<suffix>.<ext>"
/// after expanding %q{VAR} escapes in `suffix`. Only "csv" is supported as
/// filetype (HDF5 is out of scope); anything else throws.
struct ExportOptions {
  std::string out_dir;
  std::string filetype = "csv";
  std::string suffix;
};
void export_results(const PowerScope& scope, const ExportOptions& options);

/// Append the scope's samples to `tracer` as Chrome-trace ph:"C" counter
/// events (one counter per "<method>:<channel>" column, all on one "power"
/// track), so the power series renders as an overlay in Perfetto beside the
/// compute spans.
void append_counter_track(const PowerScope& scope,
                          telemetry::Tracer& tracer);

}  // namespace caraml::power
