// PowerScope — the C++ analogue of jpwr's `get_power` context manager
// (paper §III-A4).
//
//   std::vector<MethodPtr> met_list = {make_pynvml_sim(...),
//                                      std::make_shared<GraceHopperSimMethod>(...)};
//   {
//     PowerScope measured_scope(met_list, /*interval_ms=*/100);
//     application_call();
//   }  // sampling stops at scope exit
//   auto df = measured_scope.df();
//   auto [energy_df, additional] = measured_scope.energy();
//
// The scope starts a background sampling thread that periodically queries all
// methods, storing (timestamp, watts) points; energy is computed by
// trapezoidal integration at the end, exactly as the Python tool does.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "df/dataframe.hpp"
#include "power/clock.hpp"
#include "power/method.hpp"

namespace caraml::power {

class PowerScope {
 public:
  /// Starts sampling immediately. `interval_ms` is the polling period (the
  /// paper uses 100 ms); `clock` defaults to a wall clock — pass a
  /// ScaledClock to replay simulated traces quickly.
  explicit PowerScope(std::vector<MethodPtr> methods,
                      double interval_ms = 100.0,
                      std::shared_ptr<Clock> clock = nullptr);
  ~PowerScope();

  PowerScope(const PowerScope&) = delete;
  PowerScope& operator=(const PowerScope&) = delete;

  /// Stop sampling (idempotent); takes a final sample so every scope has at
  /// least two points.
  void stop();

  /// Raw samples: columns "time" + one per "<method>:<channel>".
  df::DataFrame df() const;

  struct EnergyResult {
    /// One row per channel: channel, energy_wh, avg_watts, min_watts,
    /// max_watts, duration_s, samples.
    df::DataFrame energy;
    /// Additional per-method data frames (method name -> samples restricted
    /// to that method), mirroring jpwr's `additional_data` dict.
    std::map<std::string, df::DataFrame> additional;
  };
  EnergyResult energy() const;

  /// Total energy (Wh) of one channel ("<method>:<channel>").
  double channel_energy_wh(const std::string& column) const;

  std::size_t num_samples() const;
  double duration() const;

 private:
  void sampling_loop();
  void take_sample();

  std::vector<MethodPtr> methods_;
  std::vector<std::string> columns_;  // "<method>:<channel>", sample order
  double interval_s_;
  std::shared_ptr<Clock> clock_;

  mutable std::mutex mutex_;
  std::vector<double> times_;
  std::vector<std::vector<double>> watts_;  // [sample][column]

  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::thread thread_;
};

/// Trapezoidal integration of (t, w) samples to joules — the same estimator
/// jpwr applies to its sample DataFrame.
double integrate_trapezoid_joules(const std::vector<double>& times,
                                  const std::vector<double>& watts);

/// Result-file export (jpwr's --df-out/--df-filetype/--df-suffix):
/// writes "<out_dir>/power<suffix>.<ext>" and "<out_dir>/energy<suffix>.<ext>"
/// after expanding %q{VAR} escapes in `suffix`. Only "csv" is supported as
/// filetype (HDF5 is out of scope); anything else throws.
struct ExportOptions {
  std::string out_dir;
  std::string filetype = "csv";
  std::string suffix;
};
void export_results(const PowerScope& scope, const ExportOptions& options);

}  // namespace caraml::power
