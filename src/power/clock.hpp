// Clock abstraction for the jpwr sampling loop.
//
// The real tool samples wall-clock time; for replaying simulated power
// traces (or speeding up tests) a scaled clock maps wall time onto virtual
// trace time.
#pragma once

#include <chrono>
#include <memory>

namespace caraml::power {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Seconds since an arbitrary epoch (monotonic).
  virtual double now() const = 0;

  /// Wall-clock seconds a caller must sleep for `clock_dt` seconds to elapse
  /// on *this* clock. Lets the sampling loop schedule absolute deadlines in
  /// clock time regardless of the clock's speed.
  virtual double wall_delay(double clock_dt) const { return clock_dt; }
};

/// Monotonic wall clock.
class WallClock final : public Clock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  double now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Wall clock scaled by a constant factor: one wall second advances `speed`
/// virtual seconds. Used to replay hour-long simulated traces in
/// milliseconds of test time.
class ScaledClock final : public Clock {
 public:
  explicit ScaledClock(double speed) : speed_(speed) {}
  double now() const override { return base_.now() * speed_; }
  double wall_delay(double clock_dt) const override {
    return clock_dt / speed_;
  }
  double speed() const { return speed_; }

 private:
  WallClock base_;
  double speed_;
};

}  // namespace caraml::power
