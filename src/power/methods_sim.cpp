#include "power/methods_sim.hpp"

#include <cmath>

#include "util/error.hpp"

namespace caraml::power {

TraceMethod::TraceMethod(std::string name, std::vector<std::string> channels,
                         std::vector<sim::PowerTrace> traces)
    : name_(std::move(name)),
      channels_(std::move(channels)),
      traces_(std::move(traces)) {
  CARAML_CHECK_MSG(channels_.size() == traces_.size(),
                   "one trace per channel required");
  CARAML_CHECK_MSG(!channels_.empty(), "method needs at least one channel");
}

std::vector<Reading> TraceMethod::sample(double t) {
  std::vector<Reading> out;
  out.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    out.push_back(Reading{channels_[i], traces_[i].power_at(t)});
  }
  return out;
}

const sim::PowerTrace& TraceMethod::trace(std::size_t i) const {
  CARAML_CHECK(i < traces_.size());
  return traces_[i];
}

namespace {
std::vector<std::string> numbered(const std::string& prefix, std::size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}
}  // namespace

std::shared_ptr<TraceMethod> make_pynvml_sim(
    std::vector<sim::PowerTrace> gpu_traces) {
  auto channels = numbered("gpu", gpu_traces.size());
  return std::make_shared<TraceMethod>("pynvml", std::move(channels),
                                       std::move(gpu_traces));
}

std::shared_ptr<TraceMethod> make_rocm_smi_sim(
    std::vector<sim::PowerTrace> gcd_traces) {
  auto channels = numbered("card", gcd_traces.size());
  return std::make_shared<TraceMethod>("rocm", std::move(channels),
                                       std::move(gcd_traces));
}

std::shared_ptr<TraceMethod> make_gcipuinfo_sim(
    std::vector<sim::PowerTrace> ipu_traces) {
  auto channels = numbered("ipu", ipu_traces.size());
  return std::make_shared<TraceMethod>("gcipuinfo", std::move(channels),
                                       std::move(ipu_traces));
}

GraceHopperSimMethod::GraceHopperSimMethod(
    std::vector<sim::PowerTrace> module_traces, double grace_fraction)
    : modules_(std::move(module_traces)), grace_fraction_(grace_fraction) {
  CARAML_CHECK_MSG(!modules_.empty(), "gh method needs at least one module");
  CARAML_CHECK_MSG(grace_fraction_ >= 0.0 && grace_fraction_ < 1.0,
                   "grace fraction must be in [0, 1)");
}

std::vector<std::string> GraceHopperSimMethod::channels() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    out.push_back("module" + std::to_string(i));
    out.push_back("grace" + std::to_string(i));
  }
  return out;
}

std::vector<Reading> GraceHopperSimMethod::sample(double t) {
  std::vector<Reading> out;
  out.reserve(modules_.size() * 2);
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    const double module_watts = modules_[i].power_at(t);
    out.push_back(Reading{"module" + std::to_string(i), module_watts});
    out.push_back(
        Reading{"grace" + std::to_string(i), module_watts * grace_fraction_});
  }
  return out;
}

FlakyMethod::FlakyMethod(MethodPtr inner,
                         std::vector<std::pair<double, double>> outage_windows)
    : inner_(std::move(inner)), outages_(std::move(outage_windows)) {
  CARAML_CHECK_MSG(inner_ != nullptr, "FlakyMethod needs an inner method");
  for (const auto& [start, end] : outages_) {
    CARAML_CHECK_MSG(end >= start, "outage window must have end >= start");
  }
}

std::string FlakyMethod::name() const { return inner_->name(); }

std::vector<std::string> FlakyMethod::channels() const {
  return inner_->channels();
}

bool FlakyMethod::available() const { return inner_->available(); }

std::vector<Reading> FlakyMethod::sample(double t) {
  for (const auto& [start, end] : outages_) {
    if (t >= start && t < end) {
      throw Error("sensor dropout: method " + inner_->name() +
                  " unreadable in [" + std::to_string(start) + ", " +
                  std::to_string(end) + ") at t=" + std::to_string(t));
    }
  }
  return inner_->sample(t);
}

SyntheticMethod::SyntheticMethod(std::string channel, double base_watts,
                                 double amplitude, double period_s)
    : channel_(std::move(channel)),
      base_(base_watts),
      amplitude_(amplitude),
      period_(period_s) {
  CARAML_CHECK_MSG(period_ > 0.0, "period must be positive");
}

std::vector<Reading> SyntheticMethod::sample(double t) {
  const double w = 2.0 * M_PI / period_;
  return {Reading{channel_, base_ + amplitude_ * std::sin(w * t)}};
}

double SyntheticMethod::exact_energy_joules(double t) const {
  const double w = 2.0 * M_PI / period_;
  // ∫(base + amp*sin(w t)) dt = base*t + amp*(1 - cos(w t))/w.
  return base_ * t + amplitude_ * (1.0 - std::cos(w * t)) / w;
}

}  // namespace caraml::power
