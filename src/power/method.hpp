// jpwr "methods": modular backends that read instantaneous power for a set
// of devices (paper §III-A4).
//
// The Python jpwr ships methods for pynvml (NVIDIA), rocm-smi (AMD),
// gcipuinfo (Graphcore) and the Grace-Hopper sysfs hwmon interface. This
// C++ reproduction mirrors that modular structure; hardware counters are
// replaced by simulator power rails or real host sources (/proc/stat, RAPL)
// — see DESIGN.md §2 for the substitution rationale.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace caraml::power {

/// One power reading for one measured channel.
struct Reading {
  std::string channel;  // e.g. "gpu0", "grace-cpu", "ipu2"
  double watts = 0.0;
};

class Method {
 public:
  virtual ~Method() = default;

  /// Method name as used on the jpwr command line (e.g. "pynvml", "rocm",
  /// "gcipuinfo", "gh", "procstat", "rapl").
  virtual std::string name() const = 0;

  /// Channels this method reports, fixed for the method's lifetime.
  virtual std::vector<std::string> channels() const = 0;

  /// Sample instantaneous power of all channels at time `t` (seconds on the
  /// measuring clock). Must be thread-safe: called from the sampling thread.
  virtual std::vector<Reading> sample(double t) = 0;

  /// Whether the backend is usable in this process/environment.
  virtual bool available() const { return true; }
};

using MethodPtr = std::shared_ptr<Method>;

}  // namespace caraml::power
