#include "power/scope.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <filesystem>
#include <limits>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace caraml::power {

namespace {

/// Process-wide serialization of power channels. Two concurrent PowerScopes
/// polling the same "<method>:<channel>" column would double-count energy
/// and interleave sensor reads — on real hardware the counters are a shared
/// device resource (one NVML handle per GPU). A scope acquires a lease on
/// every column it samples: a scope on another thread holding any of them
/// blocks this constructor until that scope stops; re-acquiring a held
/// channel from the *same* thread throws instead (it would self-deadlock,
/// and nesting scopes over one device is a measurement bug, not a queue).
/// Parallel JUBE workpackages measuring disjoint devices proceed untouched.
class ChannelSerializer {
 public:
  static ChannelSerializer& global() {
    static ChannelSerializer serializer;
    return serializer;
  }

  void acquire(const std::vector<std::string>& columns) {
    const std::thread::id self = std::this_thread::get_id();
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      bool busy = false;
      for (const auto& column : columns) {
        const auto it = held_.find(column);
        if (it == held_.end()) continue;
        if (it->second == self) {
          throw Error("power channel '" + column +
                      "' is already being sampled by a PowerScope on this "
                      "thread — nested scopes over one device double-count "
                      "energy");
        }
        busy = true;
      }
      if (!busy) break;
      cv_.wait(lock);
    }
    for (const auto& column : columns) held_[column] = self;
  }

  void release(const std::vector<std::string>& columns) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& column : columns) held_.erase(column);
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::thread::id> held_;
};

}  // namespace

PowerScope::PowerScope(std::vector<MethodPtr> methods, double interval_ms,
                       std::shared_ptr<Clock> clock,
                       int quarantine_after_errors)
    : methods_(std::move(methods)),
      quarantine_after_(quarantine_after_errors),
      interval_s_(interval_ms / 1e3),
      clock_(clock ? std::move(clock) : std::make_shared<WallClock>()) {
  CARAML_CHECK_MSG(!methods_.empty(), "PowerScope needs at least one method");
  CARAML_CHECK_MSG(interval_ms > 0.0, "sampling interval must be positive");
  CARAML_CHECK_MSG(quarantine_after_errors >= 1,
                   "quarantine threshold must be >= 1");
  // `interval_ms` is a wall-clock period; convert it once into this clock's
  // units so deadlines can be scheduled in clock time (wall_delay(1.0) is
  // the wall seconds per clock second of any linear clock).
  clock_interval_ = interval_s_ / clock_->wall_delay(1.0);
  for (const auto& method : methods_) {
    CARAML_CHECK_MSG(method != nullptr, "null method");
    MethodState state;
    state.first_column = columns_.size();
    for (const auto& channel : method->channels()) {
      columns_.push_back(method->name() + ":" + channel);
    }
    state.channels = columns_.size() - state.first_column;
    method_state_.push_back(std::move(state));
  }
  ChannelSerializer::global().acquire(columns_);
  channels_held_ = true;
  take_sample();  // guarantee a point at scope entry
  start_clock_ = times_.back();
  thread_ = std::thread([this] { sampling_loop(); });
}

PowerScope::~PowerScope() {
  try {
    stop();
  } catch (...) {
    // Never throw from a destructor.
  }
}

void PowerScope::stop() {
  if (stopped_) return;
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
  take_sample();  // final point at scope exit
  stopped_ = true;
  if (channels_held_) {
    ChannelSerializer::global().release(columns_);
    channels_held_ = false;
  }
}

void PowerScope::sampling_loop() {
  // Absolute-deadline scheduling: sample k targets start + k * interval.
  // Sleeping only the *remaining* time to each deadline (instead of a fixed
  // interval after the previous sample) removes the cumulative drift of
  // per-sample processing time; deadlines missed by a whole period are
  // skipped and counted as overruns rather than allowed to pile up.
  auto& jitter_hist = telemetry::Registry::global().histogram(
      "power/sample_jitter_ms",
      telemetry::Histogram::exponential_buckets(1e-3, 2.0, 32));
  auto& overrun_counter =
      telemetry::Registry::global().counter("power/sample_overruns");
  std::uint64_t tick = 1;
  while (!stopping_.load()) {
    const double deadline =
        start_clock_ + static_cast<double>(tick) * clock_interval_;
    double now = clock_->now();
    if (now < deadline) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(clock_->wall_delay(deadline - now)));
      if (stopping_.load()) break;
      now = clock_->now();
    }
    take_sample();
    const double jitter_ms =
        std::max(0.0, clock_->wall_delay(now - deadline)) * 1e3;
    jitter_hist.observe(jitter_ms);
    std::int64_t missed = 0;
    if (now >= deadline + clock_interval_) {
      missed = static_cast<std::int64_t>((now - deadline) / clock_interval_);
      overrun_counter.add(missed);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      overruns_ += missed;
      jitter_ms_.add(jitter_ms);
    }
    tick += static_cast<std::uint64_t>(missed) + 1;
  }
}

void PowerScope::take_sample() {
  const double t = clock_->now();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> row(columns_.size(), nan);
  // Sample every method outside the lock; remember what went wrong per
  // method and fold it into the shared state in one locked pass below.
  struct Attempt {
    bool called = false;
    bool failed = false;
    std::string error;
  };
  std::vector<Attempt> attempts(methods_.size());
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    bool quarantined;
    std::size_t first_column;
    std::size_t channels;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      quarantined = method_state_[i].quarantined;
      first_column = method_state_[i].first_column;
      channels = method_state_[i].channels;
    }
    if (quarantined) continue;  // its columns stay NaN
    attempts[i].called = true;
    try {
      const auto readings = methods_[i]->sample(t);
      if (readings.size() != channels) {
        throw Error("method " + methods_[i]->name() + " reported " +
                    std::to_string(readings.size()) + " channels, expected " +
                    std::to_string(channels));
      }
      for (std::size_t c = 0; c < readings.size(); ++c) {
        row[first_column + c] = readings[c].watts;
      }
    } catch (const std::exception& e) {
      attempts[i].failed = true;
      attempts[i].error = e.what();
    } catch (...) {
      attempts[i].failed = true;
      attempts[i].error = "unknown error";
    }
  }

  auto& error_counter =
      telemetry::Registry::global().counter("power/method_errors");
  auto& quarantine_counter =
      telemetry::Registry::global().counter("power/method_quarantines");
  std::vector<std::string> quarantined_now;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    times_.push_back(t);
    watts_.push_back(std::move(row));
    for (std::size_t i = 0; i < methods_.size(); ++i) {
      if (!attempts[i].called) continue;
      MethodState& state = method_state_[i];
      if (!attempts[i].failed) {
        state.consecutive_errors = 0;
        continue;
      }
      ++state.errors;
      ++state.consecutive_errors;
      state.last_error = attempts[i].error;
      error_counter.add();
      if (state.consecutive_errors >= quarantine_after_ &&
          !state.quarantined) {
        state.quarantined = true;
        quarantine_counter.add();
        quarantined_now.push_back(methods_[i]->name() + " (" +
                                  attempts[i].error + ")");
      }
    }
  }
  for (const auto& description : quarantined_now) {
    log::warn() << "power method quarantined after " << quarantine_after_
                << " consecutive errors: " << description
                << " — its columns continue as NaN";
  }
}

df::DataFrame PowerScope::df() const {
  std::lock_guard<std::mutex> lock(mutex_);
  df::DataFrame frame;
  frame.add_column("time", df::ColumnType::kDouble);
  for (const auto& column : columns_) {
    frame.add_column(column, df::ColumnType::kDouble);
  }
  for (std::size_t i = 0; i < times_.size(); ++i) {
    std::vector<df::Value> row;
    row.reserve(columns_.size() + 1);
    row.emplace_back(times_[i]);
    for (double w : watts_[i]) row.emplace_back(w);
    frame.append_row(row);
  }
  return frame;
}

double integrate_trapezoid_joules(const std::vector<double>& times,
                                  const std::vector<double>& watts) {
  CARAML_CHECK_MSG(times.size() == watts.size(),
                   "times/watts length mismatch");
  double joules = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const double dt = times[i] - times[i - 1];
    CARAML_CHECK_MSG(dt >= 0.0, "timestamps must be non-decreasing");
    joules += 0.5 * (watts[i] + watts[i - 1]) * dt;
  }
  return joules;
}

PowerScope::EnergyResult PowerScope::energy() const {
  std::vector<double> times;
  std::vector<std::vector<double>> samples;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    times = times_;
    samples = watts_;
  }

  EnergyResult result;
  result.energy.add_column("channel", df::ColumnType::kString);
  result.energy.add_column("energy_wh", df::ColumnType::kDouble);
  result.energy.add_column("avg_watts", df::ColumnType::kDouble);
  result.energy.add_column("min_watts", df::ColumnType::kDouble);
  result.energy.add_column("max_watts", df::ColumnType::kDouble);
  result.energy.add_column("duration_s", df::ColumnType::kDouble);
  result.energy.add_column("samples", df::ColumnType::kInt64);

  const double duration_s =
      times.size() >= 2 ? times.back() - times.front() : 0.0;

  for (std::size_t c = 0; c < columns_.size(); ++c) {
    // NaN samples (failed reads, quarantined methods) are excluded from the
    // integral and statistics; the row reports the valid-sample count, and a
    // channel with no valid sample at all emits NaN instead of aborting the
    // export — partial energy tables are the point of method isolation.
    std::vector<double> valid_times;
    std::vector<double> valid_watts;
    valid_times.reserve(samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const double w = samples[i][c];
      if (std::isnan(w)) continue;
      valid_times.push_back(times[i]);
      valid_watts.push_back(w);
    }
    const double nan = std::numeric_limits<double>::quiet_NaN();
    if (valid_watts.empty()) {
      result.energy.append_row({columns_[c], nan, nan, nan, nan, duration_s,
                                static_cast<std::int64_t>(0)});
      continue;
    }
    const double joules = integrate_trapezoid_joules(valid_times, valid_watts);
    double min_w = valid_watts.front();
    double max_w = min_w;
    double sum_w = 0.0;
    for (double w : valid_watts) {
      min_w = std::min(min_w, w);
      max_w = std::max(max_w, w);
      sum_w += w;
    }
    const double covered_s =
        valid_times.size() >= 2 ? valid_times.back() - valid_times.front()
                                : 0.0;
    const double avg =
        covered_s > 0.0
            ? joules / covered_s
            : sum_w / static_cast<double>(valid_watts.size());
    result.energy.append_row({columns_[c], units::joules_to_wh(joules), avg,
                              min_w, max_w, duration_s,
                              static_cast<std::int64_t>(valid_watts.size())});
  }

  // Per-method sample frames (jpwr's additional_data).
  const df::DataFrame all = df();
  for (const auto& method : methods_) {
    std::vector<std::string> wanted = {"time"};
    for (const auto& channel : method->channels()) {
      wanted.push_back(method->name() + ":" + channel);
    }
    result.additional[method->name()] = all.select(wanted);
  }
  return result;
}

double PowerScope::channel_energy_wh(const std::string& column) const {
  const auto it = std::find(columns_.begin(), columns_.end(), column);
  if (it == columns_.end()) throw NotFound("no power channel: " + column);
  const std::size_t index =
      static_cast<std::size_t>(it - columns_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> series;
  series.reserve(watts_.size());
  for (const auto& row : watts_) series.push_back(row[index]);
  return units::joules_to_wh(integrate_trapezoid_joules(times_, series));
}

std::size_t PowerScope::num_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return times_.size();
}

double PowerScope::duration() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return times_.size() >= 2 ? times_.back() - times_.front() : 0.0;
}

PowerScope::SamplingDiagnostics PowerScope::diagnostics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SamplingDiagnostics diag;
  diag.samples = static_cast<std::int64_t>(times_.size());
  diag.overruns = overruns_;
  if (jitter_ms_.count() > 0) {
    diag.jitter_ms_mean = jitter_ms_.mean();
    diag.jitter_ms_max = jitter_ms_.max();
  }
  for (const auto& state : method_state_) {
    diag.method_errors += state.errors;
    if (state.quarantined) ++diag.methods_quarantined;
  }
  return diag;
}

std::vector<PowerScope::MethodDiagnostics> PowerScope::method_diagnostics()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MethodDiagnostics> out;
  out.reserve(methods_.size());
  for (std::size_t i = 0; i < methods_.size(); ++i) {
    MethodDiagnostics diag;
    diag.method = methods_[i]->name();
    diag.errors = method_state_[i].errors;
    diag.quarantined = method_state_[i].quarantined;
    diag.last_error = method_state_[i].last_error;
    out.push_back(std::move(diag));
  }
  return out;
}

void export_results(const PowerScope& scope, const ExportOptions& options) {
  CARAML_CHECK_MSG(!options.out_dir.empty(), "--df-out directory required");
  if (options.filetype != "csv") {
    throw InvalidArgument("unsupported --df-filetype: " + options.filetype +
                          " (only 'csv' is supported in this build)");
  }
  const std::string suffix = str::expand_env(options.suffix);
  std::filesystem::create_directories(options.out_dir);
  scope.df().to_csv_file(options.out_dir + "/power" + suffix + ".csv");
  scope.energy().energy.to_csv_file(options.out_dir + "/energy" + suffix +
                                    ".csv");
}

void append_counter_track(const PowerScope& scope,
                          telemetry::Tracer& tracer) {
  const df::DataFrame frame = scope.df();
  if (frame.empty()) return;
  const std::uint32_t track = tracer.track("power");
  const auto& time = frame.column("time");
  for (const std::string& name : frame.column_names()) {
    if (name == "time") continue;
    const auto& column = frame.column(name);
    for (std::size_t row = 0; row < frame.num_rows(); ++row) {
      tracer.add_counter("power/" + name, "watts", track,
                         time.as_double(row), column.as_double(row));
    }
  }
}

}  // namespace caraml::power
