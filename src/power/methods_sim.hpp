// Simulated vendor methods: pynvml / rocm-smi / gcipuinfo / Grace-Hopper
// hwmon, each backed by sim::PowerTrace power rails instead of hardware
// counters. The channel naming follows each vendor's tool conventions so the
// exported DataFrames look like the Python jpwr's.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "power/method.hpp"
#include "sim/power_model.hpp"

namespace caraml::power {

/// Base for all trace-replay methods: channel i reads trace i at time t.
class TraceMethod : public Method {
 public:
  TraceMethod(std::string name, std::vector<std::string> channels,
              std::vector<sim::PowerTrace> traces);

  std::string name() const override { return name_; }
  std::vector<std::string> channels() const override { return channels_; }
  std::vector<Reading> sample(double t) override;

  const sim::PowerTrace& trace(std::size_t i) const;

 private:
  std::string name_;
  std::vector<std::string> channels_;
  std::vector<sim::PowerTrace> traces_;
};

/// NVIDIA Management Library flavor: channels "gpu0", "gpu1", ...
std::shared_ptr<TraceMethod> make_pynvml_sim(
    std::vector<sim::PowerTrace> gpu_traces);

/// ROCm SMI flavor: channels "card0", "card1", ... (one per GCD).
std::shared_ptr<TraceMethod> make_rocm_smi_sim(
    std::vector<sim::PowerTrace> gcd_traces);

/// Graphcore gcipuinfo flavor: channels "ipu0", ...
std::shared_ptr<TraceMethod> make_gcipuinfo_sim(
    std::vector<sim::PowerTrace> ipu_traces);

/// Grace-Hopper sysfs hwmon flavor (method "gh" in jpwr): reports the module
/// power plus a CPU rail derived from it. Channels:
/// "module0", "grace0", "module1", ...
class GraceHopperSimMethod : public Method {
 public:
  /// `grace_fraction`: share of the package power drawn by the Grace CPU
  /// complex (reported as a separate hwmon channel).
  GraceHopperSimMethod(std::vector<sim::PowerTrace> module_traces,
                       double grace_fraction = 0.18);

  std::string name() const override { return "gh"; }
  std::vector<std::string> channels() const override;
  std::vector<Reading> sample(double t) override;

 private:
  std::vector<sim::PowerTrace> modules_;
  double grace_fraction_;
};

/// Sensor-dropout decorator: delegates to `inner`, but throws from sample()
/// while the sampling time lies inside any outage window — the simulated
/// equivalent of the paper's unreadable GH200 hwmon files and gcipuinfo
/// gaps. Windows typically come from fault::FaultPlan::sensor_outages().
/// PowerScope isolates the failure (NaN columns, quarantine after repeated
/// errors) instead of dying.
class FlakyMethod : public Method {
 public:
  FlakyMethod(MethodPtr inner,
              std::vector<std::pair<double, double>> outage_windows);

  std::string name() const override;
  std::vector<std::string> channels() const override;
  std::vector<Reading> sample(double t) override;
  bool available() const override;

 private:
  MethodPtr inner_;
  std::vector<std::pair<double, double>> outages_;  // [start, end)
};

/// Deterministic synthetic signal for tests: watts(t) = base + amp*sin(w*t).
class SyntheticMethod : public Method {
 public:
  SyntheticMethod(std::string channel, double base_watts, double amplitude,
                  double period_s);

  std::string name() const override { return "synthetic"; }
  std::vector<std::string> channels() const override { return {channel_}; }
  std::vector<Reading> sample(double t) override;

  /// Closed-form energy over [0, t] in joules (for integration tests).
  double exact_energy_joules(double t) const;

 private:
  std::string channel_;
  double base_;
  double amplitude_;
  double period_;
};

}  // namespace caraml::power
