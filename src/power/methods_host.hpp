// Real host-side power methods.
//
// These are the only backends in the reproduction that touch actual
// counters: /proc/stat CPU utilization mapped through a TDP model, and the
// Linux RAPL powercap sysfs interface when readable. Both degrade gracefully
// (available() == false) on systems without the interfaces — mirroring the
// Python jpwr's behaviour when a vendor library is missing.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "power/method.hpp"

namespace caraml::power {

/// Estimates host CPU power from /proc/stat utilization:
/// P = idle + (tdp - idle) * busy_fraction (since the previous sample).
class ProcStatMethod : public Method {
 public:
  explicit ProcStatMethod(double cpu_tdp_watts = 200.0,
                          double idle_watts = 40.0,
                          std::string stat_path = "/proc/stat");

  std::string name() const override { return "procstat"; }
  std::vector<std::string> channels() const override { return {"cpu"}; }
  std::vector<Reading> sample(double t) override;
  bool available() const override;

 private:
  struct CpuTimes {
    std::uint64_t busy = 0;
    std::uint64_t total = 0;
  };
  bool read_times(CpuTimes* out) const;

  double tdp_;
  double idle_;
  std::string stat_path_;
  std::mutex mutex_;
  CpuTimes last_{};
  bool have_last_ = false;
};

/// Reads Intel/AMD RAPL energy counters from
/// /sys/class/powercap/intel-rapl:*/energy_uj and differentiates them to
/// power. One channel per package domain.
class RaplMethod : public Method {
 public:
  explicit RaplMethod(std::string powercap_root = "/sys/class/powercap");

  std::string name() const override { return "rapl"; }
  std::vector<std::string> channels() const override;
  std::vector<Reading> sample(double t) override;
  bool available() const override { return !domains_.empty(); }

 private:
  struct Domain {
    std::string channel;
    std::string energy_path;
    std::uint64_t last_uj = 0;
    double last_t = 0.0;
    bool have_last = false;
    double last_watts = 0.0;
  };

  std::vector<Domain> domains_;
  std::mutex mutex_;
};

/// The paper's "gh" method reads Grace-Hopper power from the Linux hwmon
/// sysfs tree (/sys/class/hwmon/hwmon*/power*_input reporting microwatts,
/// as on NVIDIA Grace — paper §III-A4, reference [36]). This backend scans
/// the real hwmon tree of the host: on a Grace machine it reports the
/// module rails; elsewhere it reports whatever power sensors exist (often
/// none), degrading gracefully like the Python tool without its vendor
/// libraries.
class HwmonMethod : public Method {
 public:
  explicit HwmonMethod(std::string hwmon_root = "/sys/class/hwmon");

  std::string name() const override { return "gh"; }
  std::vector<std::string> channels() const override;
  std::vector<Reading> sample(double t) override;
  bool available() const override { return !sensors_.empty(); }

 private:
  struct Sensor {
    std::string channel;  // "<chip>:<label-or-file>"
    std::string path;     // .../powerN_input (microwatts)
  };
  std::vector<Sensor> sensors_;
};

}  // namespace caraml::power
