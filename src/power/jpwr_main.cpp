// jpwr command-line tool (paper §III-A4):
//
//   jpwr --methods procstat,rapl --df-out energy_meas --df-filetype csv
//        --df-suffix "_%q{SLURM_PROCID}" <command> [args...]
//
// Wraps an application, samples power from the selected methods while it
// runs, prints the energy table, and optionally exports the DataFrames.
// Hardware-counter methods of the Python tool (pynvml/rocm/gcipuinfo/gh) are
// available in-library against simulated devices; the CLI exposes the real
// host methods plus a synthetic source for demonstrations.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <vector>

#include "power/methods_host.hpp"
#include "power/methods_sim.hpp"
#include "power/scope.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

namespace {

using namespace caraml;

int run_child(const std::vector<std::string>& command) {
  const pid_t pid = fork();
  if (pid < 0) {
    throw Error("fork failed");
  }
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(command.size() + 1);
    for (const auto& arg : command) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execvp(argv[0], argv.data());
    std::cerr << "jpwr: cannot execute '" << command[0] << "'\n";
    _exit(127);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) < 0) throw Error("waitpid failed");
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return 1;
}

std::vector<power::MethodPtr> build_methods(const std::string& spec) {
  std::vector<power::MethodPtr> methods;
  for (const auto& name : str::split(spec, ',')) {
    const std::string method = str::trim(name);
    if (method.empty()) continue;
    if (method == "procstat") {
      methods.push_back(std::make_shared<power::ProcStatMethod>());
    } else if (method == "rapl") {
      auto rapl = std::make_shared<power::RaplMethod>();
      if (!rapl->available()) {
        log::warn() << "rapl method unavailable (no readable powercap "
                       "domains); skipping";
        continue;
      }
      methods.push_back(rapl);
    } else if (method == "gh") {
      auto hwmon = std::make_shared<power::HwmonMethod>();
      if (!hwmon->available()) {
        log::warn() << "gh (hwmon) method unavailable (no readable power "
                       "sensors); skipping";
        continue;
      }
      methods.push_back(hwmon);
    } else if (method == "synthetic") {
      methods.push_back(std::make_shared<power::SyntheticMethod>(
          "synthetic0", 150.0, 50.0, 2.0));
    } else {
      throw InvalidArgument(
          "unknown method '" + method +
          "' (CLI methods: procstat, rapl, gh, synthetic; the vendor-flavored "
          "simulated methods are library-level, see power/methods_sim.hpp)");
    }
  }
  if (methods.empty()) throw InvalidArgument("no usable power methods");
  return methods;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace caraml;
  try {
    ArgParser parser("jpwr", "measure power and energy of a wrapped command");
    parser.add_option("methods", "comma-separated method list",
                      std::string("procstat"));
    parser.add_option("interval", "sampling interval in ms", std::string("100"));
    parser.add_option("df-out", "output directory for DataFrames",
                      std::string(""));
    parser.add_option("df-filetype", "output filetype (csv)",
                      std::string("csv"));
    parser.add_option("df-suffix",
                      "suffix for result files; %q{VAR} expands from the "
                      "environment",
                      std::string(""));
    parser.set_collect_rest(true);
    if (!parser.parse(argc, argv)) return 0;

    if (parser.rest().empty()) {
      std::cerr << "jpwr: no command given\n" << parser.help();
      return 2;
    }

    auto methods = build_methods(parser.get("methods"));
    int exit_code = 0;
    power::PowerScope scope(methods, parser.get_double("interval"));
    exit_code = run_child(parser.rest());
    scope.stop();

    const auto result = scope.energy();
    std::cout << "\njpwr energy report (" << scope.num_samples()
              << " samples over " << scope.duration() << " s):\n"
              << result.energy.to_string(100);

    const std::string out_dir = parser.get("df-out");
    if (!out_dir.empty()) {
      power::ExportOptions options;
      options.out_dir = out_dir;
      options.filetype = parser.get("df-filetype");
      options.suffix = parser.get("df-suffix");
      power::export_results(scope, options);
      std::cout << "DataFrames written to " << out_dir << "/\n";
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::cerr << "jpwr: " << e.what() << "\n";
    return 1;
  }
}
