#include "power/methods_host.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace caraml::power {

ProcStatMethod::ProcStatMethod(double cpu_tdp_watts, double idle_watts,
                               std::string stat_path)
    : tdp_(cpu_tdp_watts), idle_(idle_watts), stat_path_(std::move(stat_path)) {}

bool ProcStatMethod::read_times(CpuTimes* out) const {
  std::ifstream in(stat_path_);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line)) return false;
  const auto fields = str::split_ws(line);
  // "cpu user nice system idle iowait irq softirq steal ..."
  if (fields.size() < 5 || fields[0] != "cpu") return false;
  std::uint64_t total = 0;
  std::uint64_t idle_time = 0;
  for (std::size_t i = 1; i < fields.size(); ++i) {
    std::uint64_t v = 0;
    try {
      v = static_cast<std::uint64_t>(str::parse_int(fields[i]));
    } catch (...) {
      return false;
    }
    total += v;
    if (i == 4 || i == 5) idle_time += v;  // idle + iowait
  }
  out->total = total;
  out->busy = total - idle_time;
  return true;
}

bool ProcStatMethod::available() const {
  CpuTimes t;
  return read_times(&t);
}

std::vector<Reading> ProcStatMethod::sample(double) {
  std::lock_guard<std::mutex> lock(mutex_);
  CpuTimes current;
  if (!read_times(&current)) {
    return {Reading{"cpu", 0.0}};
  }
  double busy_fraction = 0.0;
  if (have_last_ && current.total > last_.total) {
    busy_fraction = static_cast<double>(current.busy - last_.busy) /
                    static_cast<double>(current.total - last_.total);
  }
  last_ = current;
  have_last_ = true;
  return {Reading{"cpu", idle_ + (tdp_ - idle_) * busy_fraction}};
}

RaplMethod::RaplMethod(std::string powercap_root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(powercap_root, ec)) return;
  for (const auto& entry : fs::directory_iterator(powercap_root, ec)) {
    if (ec) break;
    const std::string dir = entry.path().filename().string();
    if (!str::starts_with(dir, "intel-rapl:")) continue;
    const std::string energy_path = entry.path().string() + "/energy_uj";
    std::ifstream probe(energy_path);
    std::uint64_t value = 0;
    if (!(probe >> value)) continue;  // unreadable (permissions) -> skip
    Domain domain;
    std::ifstream name_file(entry.path().string() + "/name");
    std::string name;
    if (name_file >> name) {
      domain.channel = name + ":" + dir;
    } else {
      domain.channel = dir;
    }
    domain.energy_path = energy_path;
    domains_.push_back(std::move(domain));
  }
}

std::vector<std::string> RaplMethod::channels() const {
  std::vector<std::string> out;
  out.reserve(domains_.size());
  for (const auto& domain : domains_) out.push_back(domain.channel);
  return out;
}

std::vector<Reading> RaplMethod::sample(double t) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Reading> out;
  out.reserve(domains_.size());
  for (auto& domain : domains_) {
    std::uint64_t value = 0;
    std::ifstream in(domain.energy_path);
    if (!(in >> value)) {
      out.push_back(Reading{domain.channel, domain.last_watts});
      continue;
    }
    double watts = domain.last_watts;
    if (domain.have_last && t > domain.last_t && value >= domain.last_uj) {
      watts = static_cast<double>(value - domain.last_uj) * 1e-6 /
              (t - domain.last_t);
    }
    domain.last_uj = value;
    domain.last_t = t;
    domain.have_last = true;
    domain.last_watts = watts;
    out.push_back(Reading{domain.channel, watts});
  }
  return out;
}

HwmonMethod::HwmonMethod(std::string hwmon_root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(hwmon_root, ec)) return;
  for (const auto& chip : fs::directory_iterator(hwmon_root, ec)) {
    if (ec) break;
    std::string chip_name = chip.path().filename().string();
    {
      std::ifstream name_file(chip.path() / "name");
      std::string label;
      if (name_file >> label) chip_name = label;
    }
    std::error_code chip_ec;
    for (const auto& entry : fs::directory_iterator(chip.path(), chip_ec)) {
      if (chip_ec) break;
      const std::string file = entry.path().filename().string();
      if (!str::starts_with(file, "power") || !str::ends_with(file, "_input")) {
        continue;
      }
      // Probe readability (hwmon files are often root-only).
      std::ifstream probe(entry.path());
      long long value = 0;
      if (!(probe >> value)) continue;
      Sensor sensor;
      // Prefer the sensor's label file ("powerN_label") when present.
      const std::string index =
          file.substr(5, file.size() - 5 - 6);  // "power<N>_input"
      std::ifstream label_file(chip.path() /
                               ("power" + index + "_label"));
      std::string label;
      if (std::getline(label_file, label) && !str::trim(label).empty()) {
        sensor.channel = chip_name + ":" + str::trim(label);
      } else {
        sensor.channel = chip_name + ":" + file;
      }
      sensor.path = entry.path().string();
      sensors_.push_back(std::move(sensor));
    }
  }
  std::sort(sensors_.begin(), sensors_.end(),
            [](const Sensor& a, const Sensor& b) {
              return a.channel < b.channel;
            });
}

std::vector<std::string> HwmonMethod::channels() const {
  std::vector<std::string> out;
  out.reserve(sensors_.size());
  for (const auto& sensor : sensors_) out.push_back(sensor.channel);
  return out;
}

std::vector<Reading> HwmonMethod::sample(double) {
  std::vector<Reading> out;
  out.reserve(sensors_.size());
  for (const auto& sensor : sensors_) {
    long long microwatts = 0;
    std::ifstream in(sensor.path);
    if (!(in >> microwatts)) microwatts = 0;
    out.push_back(Reading{sensor.channel,
                          static_cast<double>(microwatts) * 1e-6});
  }
  return out;
}

}  // namespace caraml::power
