#include "power/combine.hpp"

#include <algorithm>
#include <filesystem>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml::power {

std::vector<std::string> find_rank_files(const std::string& dir,
                                         const std::string& stem) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (str::starts_with(name, stem) && str::ends_with(name, ".csv") &&
        name.size() > stem.size() + 4) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

df::DataFrame combine_rank_csvs(const std::string& dir,
                                const std::string& stem) {
  const auto files = find_rank_files(dir, stem);
  if (files.empty()) {
    throw NotFound("no '" + stem + "*.csv' files in " + dir);
  }
  df::DataFrame combined;
  for (const auto& path : files) {
    const df::DataFrame frame = df::DataFrame::from_csv_file(path);
    // Rank label = filename between stem and ".csv", trimmed of separators.
    std::string rank = std::filesystem::path(path).filename().string();
    rank = rank.substr(stem.size(), rank.size() - stem.size() - 4);
    while (!rank.empty() && (rank.front() == '_' || rank.front() == '-')) {
      rank = rank.substr(1);
    }

    if (combined.num_columns() == 0) {
      combined.add_column("rank", df::ColumnType::kString);
      for (const auto& name : frame.column_names()) {
        combined.add_column(name, frame.column(name).type());
      }
    }
    for (std::size_t row = 0; row < frame.num_rows(); ++row) {
      std::vector<df::Value> values;
      values.emplace_back(rank);
      for (const auto& name : frame.column_names()) {
        const auto& column = frame.column(name);
        if (column.type() == df::ColumnType::kString) {
          values.emplace_back(column.as_string(row));
        } else {
          values.emplace_back(column.as_double(row));
        }
      }
      combined.append_row(values);
    }
  }
  return combined;
}

df::DataFrame aggregate_energy(const df::DataFrame& combined) {
  CARAML_CHECK_MSG(combined.has_column("channel") &&
                       combined.has_column("energy_wh") &&
                       combined.has_column("avg_watts"),
                   "combined frame missing jpwr energy columns");
  struct Totals {
    double energy_wh = 0.0;
    double watts_sum = 0.0;
    double watts_max = 0.0;
    std::int64_t ranks = 0;
  };
  std::map<std::string, Totals> per_channel;
  std::vector<std::string> order;  // first-seen channel order
  for (std::size_t row = 0; row < combined.num_rows(); ++row) {
    const std::string channel = combined.column("channel").as_string(row);
    if (!per_channel.count(channel)) order.push_back(channel);
    Totals& totals = per_channel[channel];
    totals.energy_wh += combined.column("energy_wh").as_double(row);
    const double watts = combined.column("avg_watts").as_double(row);
    totals.watts_sum += watts;
    totals.watts_max = std::max(totals.watts_max, watts);
    ++totals.ranks;
  }
  df::DataFrame out;
  out.add_column("channel", df::ColumnType::kString);
  out.add_column("total_energy_wh", df::ColumnType::kDouble);
  out.add_column("mean_avg_watts", df::ColumnType::kDouble);
  out.add_column("max_avg_watts", df::ColumnType::kDouble);
  out.add_column("ranks", df::ColumnType::kInt64);
  for (const auto& channel : order) {
    const Totals& totals = per_channel.at(channel);
    out.append_row({channel, totals.energy_wh,
                    totals.watts_sum / static_cast<double>(totals.ranks),
                    totals.watts_max, totals.ranks});
  }
  return out;
}

}  // namespace caraml::power
