// Post-processing: combine per-rank jpwr result files into a single CSV —
// the paper's "To combine the energy data into a single CSV file and
// postprocess results do: jube continue ..." step (§III-B / Appendix A).
//
// jpwr avoids multi-node write races by writing one file per rank with a
// --df-suffix like "_%q{SLURM_PROCID}"; this module gathers
// "<dir>/energy_<rank>.csv" files, adds a "rank" column, concatenates, and
// can aggregate per-channel totals across ranks.
#pragma once

#include <string>
#include <vector>

#include "df/dataframe.hpp"

namespace caraml::power {

/// All files in `dir` matching "<stem><suffix>.csv" where suffix is
/// non-empty; returned sorted by suffix for determinism.
std::vector<std::string> find_rank_files(const std::string& dir,
                                         const std::string& stem);

/// Concatenate per-rank energy CSVs into one frame with an extra leading
/// "rank" column holding the filename suffix. Throws caraml::NotFound when
/// no files match.
df::DataFrame combine_rank_csvs(const std::string& dir,
                                const std::string& stem = "energy");

/// Aggregate a combined frame per channel: total energy, mean/max power
/// across ranks, rank count.
df::DataFrame aggregate_energy(const df::DataFrame& combined);

}  // namespace caraml::power
