// Span-based tracing with Chrome-trace JSON export.
//
// A Tracer collects three kinds of trace events on one timeline:
//   * spans    — ph:"X" complete events (RAII TELEMETRY_SPAN scopes, or
//                explicit add_span calls for simulator busy intervals);
//   * counters — ph:"C" events (power samples render as an overlay track
//                in Perfetto / chrome://tracing);
//   * track metadata — ph:"M" thread_name events naming each track.
//
// The timeline clock is injectable: by default `now()` is wall seconds since
// tracer construction, but the simulator replays its *virtual* clock by
// adding events with explicit timestamps (and the CLI can re-anchor the wall
// clock with set_clock), so compute spans and power counters line up in one
// Perfetto view.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace caraml::telemetry {

struct SpanEvent {
  std::string name;
  std::uint32_t track = 0;
  double start_s = 0.0;
  double dur_s = 0.0;
  /// Optional single argument rendered into the event's "args" object
  /// (e.g. "utilization" for simulator busy intervals).
  std::string arg_name;
  double arg_value = 0.0;
  bool has_arg = false;
};

struct CounterEvent {
  std::string name;    // counter track name, e.g. "power pynvml:gpu0"
  std::string series;  // args key, e.g. "watts"
  std::uint32_t track = 0;
  double t_s = 0.0;
  double value = 0.0;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide tracer used by TELEMETRY_SPAN and the instrumented
  /// runners. Disabled by default: instrumentation is a no-op until the CLI
  /// (or a test) enables it.
  static Tracer& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Replace the timeline clock (seconds). Must not race with active spans;
  /// call before instrumented code runs.
  void set_clock(std::function<double()> now_seconds);
  /// Current time on the trace timeline.
  double now() const;

  /// Get-or-create a named track; ids are dense and stable.
  std::uint32_t track(const std::string& name);
  /// Track for the calling thread ("thread/<n>"), created on first use.
  std::uint32_t thread_track();

  void add_span(const std::string& name, std::uint32_t track, double start_s,
                double dur_s);
  void add_span(const std::string& name, std::uint32_t track, double start_s,
                double dur_s, const std::string& arg_name, double arg_value);
  void add_counter(const std::string& counter, const std::string& series,
                   std::uint32_t track, double t_s, double value);

  std::vector<SpanEvent> spans() const;
  std::vector<CounterEvent> counters() const;
  std::vector<std::string> track_names() const;
  std::size_t num_events() const;

  /// Serialize as a Chrome trace-event JSON document ({"traceEvents": [...]})
  /// with timestamps in microseconds.
  std::string to_chrome_trace() const;
  void write_chrome_trace(const std::string& path) const;

  /// Drop all recorded events and tracks (enabled flag and clock survive).
  void clear();

 private:
  static std::uint64_t next_stamp();

  std::atomic<bool> enabled_{false};
  // Unique identity of this tracer's current track table: assigned at
  // construction and replaced by clear(). thread_track() caches per-thread
  // ids against it, so neither address reuse of a destroyed Tracer nor
  // clear() can serve a stale track id.
  std::atomic<std::uint64_t> stamp_;
  std::function<double()> clock_;

  mutable std::mutex mutex_;
  std::vector<std::string> tracks_;
  std::vector<SpanEvent> spans_;
  std::vector<CounterEvent> counters_;
};

/// RAII span: records a ph:"X" event on the calling thread's track from
/// construction to destruction. Free when the tracer is disabled. Nestable —
/// overlapping spans on one track render as a flame stack in Perfetto.
class Span {
 public:
  explicit Span(const char* name, Tracer& tracer = Tracer::global());
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_ = nullptr;  // null when tracing was disabled at entry
  const char* name_;
  std::uint32_t track_ = 0;
  double start_s_ = 0.0;
};

#define CARAML_TELEMETRY_CONCAT_INNER(a, b) a##b
#define CARAML_TELEMETRY_CONCAT(a, b) CARAML_TELEMETRY_CONCAT_INNER(a, b)

/// Usage: TELEMETRY_SPAN("llm/step");
#define TELEMETRY_SPAN(name)                                     \
  ::caraml::telemetry::Span CARAML_TELEMETRY_CONCAT(             \
      caraml_telemetry_span_, __LINE__)(name)

}  // namespace caraml::telemetry
