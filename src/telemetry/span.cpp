#include "telemetry/span.hpp"

#include <chrono>
#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/error.hpp"

namespace caraml::telemetry {

std::uint64_t Tracer::next_stamp() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Tracer::Tracer() : stamp_(next_stamp()) {
  const auto anchor = std::chrono::steady_clock::now();
  clock_ = [anchor] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         anchor)
        .count();
  };
}

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

void Tracer::set_clock(std::function<double()> now_seconds) {
  CARAML_CHECK_MSG(now_seconds != nullptr, "tracer clock must be callable");
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(now_seconds);
}

double Tracer::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return clock_();
}

std::uint32_t Tracer::track(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<std::uint32_t>(i);
  }
  tracks_.push_back(name);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

std::uint32_t Tracer::thread_track() {
  static std::atomic<int> next_thread_number{0};
  thread_local int thread_number = -1;
  if (thread_number < 0) {
    thread_number = next_thread_number.fetch_add(1, std::memory_order_relaxed);
  }
  thread_local std::uint64_t cached_stamp = 0;  // 0 never matches a tracer
  thread_local std::uint32_t cached_track = 0;
  const std::uint64_t stamp = stamp_.load(std::memory_order_relaxed);
  if (cached_stamp != stamp) {
    cached_track = track("thread/" + std::to_string(thread_number));
    cached_stamp = stamp;
  }
  return cached_track;
}

void Tracer::add_span(const std::string& name, std::uint32_t track,
                      double start_s, double dur_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(SpanEvent{name, track, start_s, dur_s, {}, 0.0, false});
}

void Tracer::add_span(const std::string& name, std::uint32_t track,
                      double start_s, double dur_s,
                      const std::string& arg_name, double arg_value) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(
      SpanEvent{name, track, start_s, dur_s, arg_name, arg_value, true});
}

void Tracer::add_counter(const std::string& counter, const std::string& series,
                         std::uint32_t track, double t_s, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.push_back(CounterEvent{counter, series, track, t_s, value});
}

std::vector<SpanEvent> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<CounterEvent> Tracer::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::vector<std::string> Tracer::track_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tracks_;
}

std::size_t Tracer::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size() + counters_.size();
}

std::string Tracer::to_chrome_trace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    separator();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
       << ",\"args\":{\"name\":\"" << json::escape(tracks_[t]) << "\"}}";
  }
  // json::format_number (not a raw ostream <<): default stream formatting
  // truncates timestamps past ~10 virtual seconds to 6 significant digits
  // and prints non-finite doubles as "nan"/"inf", which is not JSON. The
  // shared formatter also makes read-back byte-exact (trace_reader).
  for (const auto& span : spans_) {
    separator();
    os << "{\"name\":\"" << json::escape(span.name)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.track
       << ",\"ts\":" << json::format_number(span.start_s * 1e6)
       << ",\"dur\":" << json::format_number(span.dur_s * 1e6);
    if (span.has_arg) {
      os << ",\"args\":{\"" << json::escape(span.arg_name)
         << "\":" << json::format_number(span.arg_value) << "}";
    }
    os << "}";
  }
  for (const auto& counter : counters_) {
    separator();
    os << "{\"name\":\"" << json::escape(counter.name)
       << "\",\"ph\":\"C\",\"pid\":1,\"tid\":" << counter.track
       << ",\"ts\":" << json::format_number(counter.t_s * 1e6)
       << ",\"args\":{\"" << json::escape(counter.series)
       << "\":" << json::format_number(counter.value) << "}}";
  }
  os << "]}";
  return os.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot write trace: " + path);
  out << to_chrome_trace();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  tracks_.clear();
  spans_.clear();
  counters_.clear();
  stamp_.store(next_stamp(), std::memory_order_relaxed);
}

Span::Span(const char* name, Tracer& tracer) : name_(name) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  track_ = tracer.thread_track();
  start_s_ = tracer.now();
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  const double end_s = tracer_->now();
  tracer_->add_span(name_, track_, start_s_, end_s - start_s_);
}

}  // namespace caraml::telemetry
