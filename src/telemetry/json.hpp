// Minimal JSON value: parse + serialize, enough for run manifests and for
// validating the Chrome-trace documents the telemetry exporters emit.
//
// Objects preserve member order (stored as a member vector, not a map) so a
// round-tripped manifest line stays diffable against the original.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace caraml::telemetry::json {

class Value;
using Array = std::vector<Value>;
/// One object member; objects are ordered member lists.
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(std::nullptr_t) : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double n) : kind_(Kind::kNumber), number_(n) {}
  Value(int n) : kind_(Kind::kNumber), number_(n) {}
  Value(std::int64_t n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Value(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; throw caraml::Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object lookup; throws caraml::NotFound when the key is missing.
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Builder helper for objects: appends (key, value).
  void set(const std::string& key, Value value);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// JSON string escaping (quotes, backslash, control characters).
std::string escape(const std::string& text);

/// Canonical JSON number text: integral values print without a fraction,
/// other finite values as shortest-fixed "%.17g" (which round-trips exactly
/// through parse()), and non-finite values as "0" (JSON has no Inf/NaN; the
/// Chrome-trace writers must still emit a valid number for ts/dur). Writers
/// that share this formatter produce byte-identical output for the same
/// double, which is what makes trace round-trips exact.
std::string format_number(double n);

/// Serialize a value to compact JSON.
std::string dump(const Value& value);

/// Parse a complete JSON document; throws caraml::ParseError on malformed
/// input or trailing garbage.
Value parse(const std::string& text);

}  // namespace caraml::telemetry::json
