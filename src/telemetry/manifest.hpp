// Run manifests: one JSON line per benchmark run, written next to the
// energy CSVs so every number in a results directory can be traced back to
// the exact configuration, code revision, RNG seed, and measurement-pipeline
// health (sample counts, overruns, jitter) that produced it — the
// auditability requirement MLPerf Power places on energy measurements.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace caraml::telemetry {

struct Manifest {
  /// v2 adds run status + fault/resilience provenance and the per-method
  /// sampler health counters; v1 lines still parse (fields default).
  int schema_version = 2;
  std::string command;        // e.g. "llm", "resnet", "jpwr"
  std::string timestamp;      // ISO-8601 UTC, e.g. "2026-08-06T08:15:42.123Z"
  std::string system_tag;     // JUBE tag (paper Table I)
  std::string git_revision;   // `git describe --always --dirty`, or "unknown"
  std::uint64_t rng_seed = 0;
  std::map<std::string, std::string> config;  // flattened run configuration

  // Measurement-pipeline diagnostics (PowerScope).
  std::int64_t power_samples = 0;
  std::int64_t sample_overruns = 0;   // missed sampling deadlines
  double sample_jitter_ms_mean = 0.0;
  double sample_jitter_ms_max = 0.0;
  std::int64_t method_errors = 0;         // failed power-method reads
  std::int64_t methods_quarantined = 0;   // methods benched after repeats

  // How the run ended and what faults it survived (src/fault).
  /// Effective size of the process-global compute thread pool (after
  /// CARAML_NUM_THREADS is applied); 0 in lines written before this field
  /// existed.
  std::int64_t num_threads = 0;

  /// Compute precision of the run ("fp32" / "bf16" / "int8"); serialized
  /// only when the command records one, so lines written before the --dtype
  /// flag (or by commands without a dtype dimension) keep their format and
  /// parse back with an empty string.
  std::string dtype;

  std::string status = "ok";      // ok | degraded | failed
  std::uint64_t fault_seed = 0;
  std::string fault_fingerprint;  // empty when no fault plan was active
  std::int64_t fault_events = 0;
  std::int64_t oom_retries = 0;
  std::int64_t restarts = 0;
  std::int64_t checkpoints = 0;
  std::int64_t steps_replayed = 0;

  // Sweep execution provenance (parallel JUBE runs, src/jube/sweep.hpp).
  // Serialized only when a sweep actually ran (sweep_workpackages > 0), so
  // non-sweep commands keep their line format; older lines parse with the
  // defaults below.
  std::int64_t sweep_workpackages = 0;
  int sweep_jobs = 0;                   // 0 = sequential / not a sweep
  std::int64_t sweep_cache_hits = 0;
  std::int64_t sweep_cache_misses = 0;

  std::map<std::string, double> results;  // headline metrics of the run

  /// Serialize as a single JSON line (no trailing newline).
  std::string to_json_line() const;

  /// Parse a line produced by to_json_line; throws caraml::ParseError on
  /// malformed input and caraml::Error on schema mismatch.
  static Manifest from_json_line(const std::string& line);
};

/// Append `manifest` as one line to the JSONL file at `path` (created, along
/// with parent directories, when missing).
void append_manifest_line(const Manifest& manifest, const std::string& path);

/// Current UTC time as ISO-8601 with millisecond precision.
std::string iso8601_utc_now();

/// Best-effort `git describe --always --dirty` of the current working
/// directory; returns "unknown" when git or the repository is unavailable.
std::string git_describe();

}  // namespace caraml::telemetry
