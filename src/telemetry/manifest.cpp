#include "telemetry/manifest.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>

#include "telemetry/json.hpp"
#include "util/error.hpp"

namespace caraml::telemetry {

std::string Manifest::to_json_line() const {
  json::Value root{json::Object{}};
  root.set("schema_version", schema_version);
  root.set("command", command);
  root.set("timestamp", timestamp);
  root.set("system_tag", system_tag);
  root.set("git_revision", git_revision);
  root.set("rng_seed", static_cast<double>(rng_seed));
  json::Value config_obj{json::Object{}};
  for (const auto& [key, value] : config) config_obj.set(key, value);
  root.set("config", std::move(config_obj));
  root.set("num_threads", num_threads);
  if (!dtype.empty()) root.set("dtype", dtype);
  json::Value sampling{json::Object{}};
  sampling.set("power_samples", power_samples);
  sampling.set("overruns", sample_overruns);
  sampling.set("jitter_ms_mean", sample_jitter_ms_mean);
  sampling.set("jitter_ms_max", sample_jitter_ms_max);
  sampling.set("method_errors", method_errors);
  sampling.set("methods_quarantined", methods_quarantined);
  root.set("sampling", std::move(sampling));
  root.set("status", status);
  json::Value fault_obj{json::Object{}};
  fault_obj.set("seed", static_cast<double>(fault_seed));
  fault_obj.set("fingerprint", fault_fingerprint);
  fault_obj.set("events", fault_events);
  fault_obj.set("oom_retries", oom_retries);
  fault_obj.set("restarts", restarts);
  fault_obj.set("checkpoints", checkpoints);
  fault_obj.set("steps_replayed", steps_replayed);
  root.set("fault", std::move(fault_obj));
  if (sweep_workpackages > 0) {
    json::Value sweep_obj{json::Object{}};
    sweep_obj.set("workpackages", sweep_workpackages);
    sweep_obj.set("jobs", sweep_jobs);
    sweep_obj.set("cache_hits", sweep_cache_hits);
    sweep_obj.set("cache_misses", sweep_cache_misses);
    root.set("sweep", std::move(sweep_obj));
  }
  json::Value results_obj{json::Object{}};
  for (const auto& [key, value] : results) results_obj.set(key, value);
  root.set("results", std::move(results_obj));
  return json::dump(root);
}

Manifest Manifest::from_json_line(const std::string& line) {
  const json::Value root = json::parse(line);
  Manifest manifest;
  manifest.schema_version = static_cast<int>(root.at("schema_version").as_int());
  if (manifest.schema_version < 1 ||
      manifest.schema_version > Manifest{}.schema_version) {
    throw Error("manifest schema_version " +
                std::to_string(manifest.schema_version) + " not supported");
  }
  manifest.command = root.at("command").as_string();
  manifest.timestamp = root.at("timestamp").as_string();
  manifest.system_tag = root.at("system_tag").as_string();
  manifest.git_revision = root.at("git_revision").as_string();
  manifest.rng_seed =
      static_cast<std::uint64_t>(root.at("rng_seed").as_number());
  for (const auto& [key, value] : root.at("config").as_object()) {
    manifest.config[key] = value.as_string();
  }
  const json::Value& sampling = root.at("sampling");
  manifest.power_samples = sampling.at("power_samples").as_int();
  manifest.sample_overruns = sampling.at("overruns").as_int();
  manifest.sample_jitter_ms_mean = sampling.at("jitter_ms_mean").as_number();
  manifest.sample_jitter_ms_max = sampling.at("jitter_ms_max").as_number();
  if (sampling.contains("method_errors")) {
    manifest.method_errors = sampling.at("method_errors").as_int();
  }
  if (sampling.contains("methods_quarantined")) {
    manifest.methods_quarantined =
        sampling.at("methods_quarantined").as_int();
  }
  // Lines written before the thread-count field keep the 0 default.
  if (root.contains("num_threads")) {
    manifest.num_threads = root.at("num_threads").as_int();
  }
  // Lines without a dtype dimension keep the empty default.
  if (root.contains("dtype")) {
    manifest.dtype = root.at("dtype").as_string();
  }
  // v1 lines predate the status/fault fields; keep their defaults.
  if (root.contains("status")) {
    manifest.status = root.at("status").as_string();
  }
  if (root.contains("fault")) {
    const json::Value& fault_obj = root.at("fault");
    manifest.fault_seed =
        static_cast<std::uint64_t>(fault_obj.at("seed").as_number());
    manifest.fault_fingerprint = fault_obj.at("fingerprint").as_string();
    manifest.fault_events = fault_obj.at("events").as_int();
    manifest.oom_retries = fault_obj.at("oom_retries").as_int();
    manifest.restarts = fault_obj.at("restarts").as_int();
    manifest.checkpoints = fault_obj.at("checkpoints").as_int();
    manifest.steps_replayed = fault_obj.at("steps_replayed").as_int();
  }
  if (root.contains("sweep")) {
    const json::Value& sweep_obj = root.at("sweep");
    manifest.sweep_workpackages = sweep_obj.at("workpackages").as_int();
    manifest.sweep_jobs = static_cast<int>(sweep_obj.at("jobs").as_int());
    manifest.sweep_cache_hits = sweep_obj.at("cache_hits").as_int();
    manifest.sweep_cache_misses = sweep_obj.at("cache_misses").as_int();
  }
  for (const auto& [key, value] : root.at("results").as_object()) {
    manifest.results[key] = value.as_number();
  }
  return manifest;
}

void append_manifest_line(const Manifest& manifest, const std::string& path) {
  const std::filesystem::path file(path);
  if (file.has_parent_path()) {
    std::filesystem::create_directories(file.parent_path());
  }
  std::ofstream out(path, std::ios::app);
  if (!out) throw Error("cannot append manifest: " + path);
  out << manifest.to_json_line() << "\n";
}

std::string iso8601_utc_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(millis));
  return buffer;
}

std::string git_describe() {
  FILE* pipe =
      ::popen("git describe --always --dirty --tags 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::array<char, 128> buffer;
  std::string out;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    out += buffer.data();
  }
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (status != 0 || out.empty()) return "unknown";
  return out;
}

}  // namespace caraml::telemetry
