#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace caraml::telemetry::json {

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) throw Error("json: value is not a bool");
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) throw Error("json: value is not a number");
  return number_;
}

std::int64_t Value::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) throw Error("json: value is not a string");
  return string_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) throw Error("json: value is not an array");
  return array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) throw Error("json: value is not an object");
  return object_;
}

const Value& Value::at(const std::string& key) const {
  for (const auto& [name, value] : as_object()) {
    if (name == key) return value;
  }
  throw NotFound("json: no member '" + key + "'");
}

bool Value::contains(const std::string& key) const {
  for (const auto& [name, value] : as_object()) {
    (void)value;
    if (name == key) return true;
  }
  return false;
}

void Value::set(const std::string& key, Value value) {
  if (kind_ != Kind::kObject) {
    if (kind_ != Kind::kNull) throw Error("json: set() on a non-object");
    kind_ = Kind::kObject;
  }
  object_.emplace_back(key, std::move(value));
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // 0x7f (DEL) is a control character too; escape it so consumers
        // never see raw control bytes in string literals.
        if (c < 0x20 || c == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string format_number(double n) {
  if (std::isfinite(n) && n == std::llround(n) && std::fabs(n) < 9.0e15) {
    return std::to_string(std::llround(n));
  }
  if (std::isfinite(n)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    return buf;
  }
  return "0";
}

namespace {

void dump_to(const Value& value, std::ostringstream& os) {
  switch (value.kind()) {
    case Value::Kind::kNull: os << "null"; break;
    case Value::Kind::kBool: os << (value.as_bool() ? "true" : "false"); break;
    case Value::Kind::kNumber: {
      const double n = value.as_number();
      if (std::isfinite(n)) {
        os << format_number(n);
      } else {
        os << "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Value::Kind::kString:
      os << '"' << escape(value.as_string()) << '"';
      break;
    case Value::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const auto& element : value.as_array()) {
        if (!first) os << ',';
        first = false;
        dump_to(element, os);
      }
      os << ']';
      break;
    }
    case Value::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, member] : value.as_object()) {
        if (!first) os << ',';
        first = false;
        os << '"' << escape(key) << "\":";
        dump_to(member, os);
      }
      os << '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("json: " + message + " at offset " +
                     std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value(nullptr);
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            // UTF-8 encode (no surrogate-pair handling; manifests are ASCII).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) digits = true;
      ++pos_;
    }
    if (!digits) fail("invalid number");
    try {
      return Value(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("invalid number");
    }
  }

  Value parse_array() {
    expect('[');
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value(std::move(out));
  }

  Value parse_object() {
    expect('{');
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value(std::move(out));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string dump(const Value& value) {
  std::ostringstream os;
  dump_to(value, os);
  return os.str();
}

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace caraml::telemetry::json
