#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "telemetry/json.hpp"
#include "util/error.hpp"

namespace caraml::telemetry {

namespace detail {

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  CARAML_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket");
  CARAML_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                       std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                           bounds_.end(),
                   "histogram bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::vector<double> Histogram::linear_buckets(double start, double width,
                                              std::size_t count) {
  CARAML_CHECK_MSG(width > 0.0 && count > 0, "invalid linear buckets");
  std::vector<double> bounds(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds[i] = start + width * static_cast<double>(i);
  }
  return bounds;
}

std::vector<double> Histogram::exponential_buckets(double start, double factor,
                                                   std::size_t count) {
  CARAML_CHECK_MSG(start > 0.0 && factor > 1.0 && count > 0,
                   "invalid exponential buckets");
  std::vector<double> bounds(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds[i] = bound;
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::default_buckets() {
  return exponential_buckets(1e-6, 2.0, 40);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t index =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() -> overflow
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
  detail::atomic_min(min_, value);
  detail::atomic_max(max_, value);
}

double Histogram::mean() const noexcept {
  const std::int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::percentile(double p) const {
  CARAML_CHECK_MSG(p >= 0.0 && p <= 100.0, "percentile out of [0, 100]");
  const auto counts = bucket_counts();
  std::int64_t total = 0;
  for (const std::int64_t c : counts) total += c;
  if (total == 0) throw Error("percentile of empty histogram");

  const double target = p / 100.0 * static_cast<double>(total);
  const double lo_clamp = min();
  const double hi_clamp = max();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target) {
      // Interpolate inside bucket i, whose value range (clamped to the
      // observed extremes) is (lower, upper].
      double lower = i == 0 ? lo_clamp : std::max(lo_clamp, bounds_[i - 1]);
      double upper = i < bounds_.size() ? std::min(hi_clamp, bounds_[i])
                                        : hi_clamp;
      if (upper < lower) upper = lower;
      const double fraction =
          counts[i] > 0
              ? std::clamp((target - cumulative) /
                               static_cast<double>(counts[i]),
                           0.0, 1.0)
              : 0.0;
      return lower + fraction * (upper - lower);
    }
    cumulative = next;
  }
  return hi_clamp;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(upper_bounds.empty()
                                           ? Histogram::default_buckets()
                                           : std::move(upper_bounds));
  }
  return *slot;
}

bool Registry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.count(name) > 0 || gauges_.count(name) > 0 ||
         histograms_.count(name) > 0;
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, metric] : counters_) out.push_back(name);
  for (const auto& [name, metric] : gauges_) out.push_back(name);
  for (const auto& [name, metric] : histograms_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

df::DataFrame Registry::to_dataframe() const {
  std::lock_guard<std::mutex> lock(mutex_);
  df::DataFrame frame;
  frame.add_column("name", df::ColumnType::kString);
  frame.add_column("type", df::ColumnType::kString);
  frame.add_column("count", df::ColumnType::kInt64);
  frame.add_column("sum", df::ColumnType::kDouble);
  frame.add_column("min", df::ColumnType::kDouble);
  frame.add_column("max", df::ColumnType::kDouble);
  frame.add_column("mean", df::ColumnType::kDouble);
  frame.add_column("p50", df::ColumnType::kDouble);
  frame.add_column("p90", df::ColumnType::kDouble);
  frame.add_column("p99", df::ColumnType::kDouble);

  for (const auto& [name, metric] : counters_) {
    const double v = static_cast<double>(metric->value());
    frame.append_row({name, std::string("counter"), metric->value(), v, v, v,
                      v, v, v, v});
  }
  for (const auto& [name, metric] : gauges_) {
    const double v = metric->value();
    frame.append_row({name, std::string("gauge"), std::int64_t{1}, v, v, v, v,
                      v, v, v});
  }
  for (const auto& [name, metric] : histograms_) {
    const bool empty = metric->count() == 0;
    frame.append_row({name, std::string("histogram"), metric->count(),
                      metric->sum(), metric->min(), metric->max(),
                      metric->mean(), empty ? 0.0 : metric->percentile(50),
                      empty ? 0.0 : metric->percentile(90),
                      empty ? 0.0 : metric->percentile(99)});
  }
  return frame;
}

std::string Registry::to_json() const {
  json::Value root{json::Object{}};
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, metric] : counters_) {
    json::Value entry{json::Object{}};
    entry.set("type", "counter");
    entry.set("value", metric->value());
    root.set(name, std::move(entry));
  }
  for (const auto& [name, metric] : gauges_) {
    json::Value entry{json::Object{}};
    entry.set("type", "gauge");
    entry.set("value", metric->value());
    root.set(name, std::move(entry));
  }
  for (const auto& [name, metric] : histograms_) {
    json::Value entry{json::Object{}};
    entry.set("type", "histogram");
    entry.set("count", metric->count());
    entry.set("sum", metric->sum());
    entry.set("min", metric->min());
    entry.set("max", metric->max());
    entry.set("mean", metric->mean());
    if (metric->count() > 0) {
      entry.set("p50", metric->percentile(50));
      entry.set("p90", metric->percentile(90));
      entry.set("p99", metric->percentile(99));
    }
    json::Array counts;
    for (const std::int64_t c : metric->bucket_counts()) {
      counts.emplace_back(c);
    }
    entry.set("bucket_counts", std::move(counts));
    root.set(name, std::move(entry));
  }
  return json::dump(root);
}

void Registry::write_files(const std::string& directory) const {
  std::filesystem::create_directories(directory);
  to_dataframe().to_csv_file(directory + "/metrics.csv");
  std::ofstream out(directory + "/metrics.json");
  if (!out) throw Error("cannot write metrics json in " + directory);
  out << to_json() << "\n";
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, metric] : counters_) metric->reset();
  for (auto& [name, metric] : gauges_) metric->reset();
  for (auto& [name, metric] : histograms_) metric->reset();
}

}  // namespace caraml::telemetry
