// Thread-safe metrics registry: counters, gauges, and fixed-bucket
// histograms with percentile estimates.
//
// The registry mirrors the structure MLPerf Power and Prometheus clients
// use: metric *registration* (name lookup / creation) takes a lock once,
// after which the returned handle supports lock-free hot-path updates via
// relaxed atomics — cheap enough for the simulator event loop and the
// PowerScope sampling thread. Snapshots export through df::DataFrame so the
// numbers land next to the benchmark CSVs in the same format.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "df/dataframe.hpp"

namespace caraml::telemetry {

namespace detail {
// Portable atomic float ops (CAS loops; atomic<double>::fetch_add is C++20
// but not guaranteed lock-free everywhere).
void atomic_add(std::atomic<double>& target, double delta) noexcept;
void atomic_min(std::atomic<double>& target, double value) noexcept;
void atomic_max(std::atomic<double>& target, double value) noexcept;
}  // namespace detail

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins double metric.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations in
/// (bounds[i-1], bounds[i]]; one overflow bucket catches everything above
/// the last bound. Percentiles interpolate linearly inside the bucket,
/// clamped to the observed min/max.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  static std::vector<double> linear_buckets(double start, double width,
                                            std::size_t count);
  static std::vector<double> exponential_buckets(double start, double factor,
                                                 std::size_t count);
  /// Registry default: 1e-6 .. ~5e5 in x2 steps (covers ns..days in seconds,
  /// and bytes..hundreds of KB).
  static std::vector<double> default_buckets();

  void observe(double value) noexcept;

  std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  double min() const noexcept;  // 0 when empty
  double max() const noexcept;  // 0 when empty

  /// p in [0, 100]; throws caraml::Error when the histogram is empty.
  double percentile(double p) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  std::vector<std::int64_t> bucket_counts() const;  // bounds.size() + 1

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Named metric store. `Registry::global()` is the process-wide instance the
/// instrumented subsystems write to; tests can construct private registries.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Get-or-create. Handles stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is only consulted on first creation; empty means
  /// Histogram::default_buckets().
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = {});

  bool has(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Snapshot: one row per metric with columns
  /// name, type, count, sum, min, max, mean, p50, p90, p99.
  df::DataFrame to_dataframe() const;

  /// Snapshot as a JSON object keyed by metric name.
  std::string to_json() const;

  /// Write `<dir>/metrics.csv` and `<dir>/metrics.json` (creates `dir`).
  void write_files(const std::string& directory) const;

  /// Zero every metric value; registrations (and handles) survive.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace caraml::telemetry
