// ClusterSim: a simulated (multi-node) accelerator cluster assembled from a
// topo::NodeSpec — per-device compute queues, host input pipelines, a ring
// of interconnect links (intra-node peer links, inter-node InfiniBand), and
// collective-communication builders (ring all-reduce / all-gather /
// broadcast) expressed as task subgraphs.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "topo/specs.hpp"

namespace caraml::sim {

class ClusterSim {
 public:
  /// `devices_per_node` defaults to the node spec's device count; `num_nodes`
  /// devices ring across nodes over the inter-node interconnect.
  ClusterSim(const topo::NodeSpec& node, int devices_per_node = -1,
             int num_nodes = 1);

  const topo::NodeSpec& node() const { return node_; }
  int num_devices() const { return num_devices_; }
  int devices_per_node() const { return devices_per_node_; }
  int num_nodes() const { return num_nodes_; }

  TaskGraph& graph() { return graph_; }

  Resource* compute(int device);
  Resource* host(int device);
  /// The outgoing ring link of `device` (to device+1 mod n).
  Resource* ring_link(int device);

  /// True when the ring hop leaving `device` crosses a node boundary.
  bool hop_crosses_node(int device) const;

  /// Transfer time for `bytes` over the hop leaving `device`, including the
  /// link's degradation factor.
  double hop_time(int device, double bytes) const;

  /// Fault-injection derates (factors >= 1 multiplying service times).
  /// Compute derates slow the device's kernels (thermal throttling, power
  /// caps); link derates stretch every transfer over the device's outgoing
  /// ring link (flaky cables, congested fabrics). Callers set them before
  /// building the task graph so busy intervals reflect the degraded state.
  void set_compute_derate(int device, double factor);
  double compute_derate(int device) const;
  void set_link_derate(int device, double factor);
  double link_derate(int device) const;

  /// Ring all-reduce of `bytes` contributed per device.
  /// `deps[d]` (may be kInvalidTask) gates device d's participation; the
  /// returned vector holds one finishing task per device.
  std::vector<TaskId> ring_all_reduce(double bytes, std::vector<TaskId> deps,
                                      const std::string& name,
                                      double utilization = 0.25);

  /// Ring all-gather of `bytes` owned per device (each device ends with
  /// n*bytes); (n-1) forwarding steps.
  std::vector<TaskId> ring_all_gather(double bytes, std::vector<TaskId> deps,
                                      const std::string& name,
                                      double utilization = 0.25);

  /// Broadcast `bytes` from device 0 around the ring.
  std::vector<TaskId> broadcast(double bytes, TaskId dep,
                                const std::string& name,
                                double utilization = 0.25);

  /// Point-to-point transfer device -> device+1 (pipeline-parallel sends).
  TaskId p2p_send(int device, double bytes, TaskId dep,
                  const std::string& name, double utilization = 0.25);

  /// Hierarchical all-reduce (NCCL-style for multi-node rings): intra-node
  /// ring reduce-scatter + all-gather, then an inter-node ring across the
  /// node leaders over the InfiniBand fabric, then an intra-node broadcast.
  /// Falls back to the flat ring on a single node.
  std::vector<TaskId> hierarchical_all_reduce(double bytes,
                                              std::vector<TaskId> deps,
                                              const std::string& name,
                                              double utilization = 0.25);

 private:
  topo::NodeSpec node_;
  int devices_per_node_;
  int num_nodes_;
  int num_devices_;
  TaskGraph graph_;
  std::vector<Resource*> compute_;
  std::vector<Resource*> host_;
  std::vector<Resource*> links_;  // outgoing ring link per device
  std::vector<double> compute_derate_;  // service-time factor per device
  std::vector<double> link_derate_;     // transfer-time factor per link
};

}  // namespace caraml::sim
