#include "sim/roofline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace caraml::sim {

double KernelProfile::arithmetic_intensity() const {
  CARAML_CHECK_MSG(bytes > 0.0, "kernel moves no bytes");
  return flops / bytes;
}

KernelProfile gemm_profile(std::int64_t m, std::int64_t n, std::int64_t k,
                           double dtype_bytes) {
  CARAML_CHECK_MSG(m > 0 && n > 0 && k > 0, "GEMM dims must be positive");
  KernelProfile profile;
  profile.name = "gemm_" + std::to_string(m) + "x" + std::to_string(n) + "x" +
                 std::to_string(k);
  profile.flops = 2.0 * static_cast<double>(m) * n * k;
  profile.bytes = dtype_bytes * (static_cast<double>(m) * k +
                                 static_cast<double>(k) * n +
                                 static_cast<double>(m) * n);
  return profile;
}

KernelProfile conv2d_profile(std::int64_t n, std::int64_t c, std::int64_t o,
                             std::int64_t oh, std::int64_t ow, std::int64_t kh,
                             std::int64_t kw, double dtype_bytes) {
  // Implicit GEMM: M = n*oh*ow, N = o, K = c*kh*kw. Input bytes counted once
  // (ideal reuse of the im2col expansion).
  KernelProfile profile;
  profile.name = "conv2d";
  profile.flops = 2.0 * static_cast<double>(n) * oh * ow * o * c * kh * kw;
  profile.bytes =
      dtype_bytes * (static_cast<double>(n) * c * oh * ow +      // input
                     static_cast<double>(o) * c * kh * kw +       // weights
                     static_cast<double>(n) * o * oh * ow);       // output
  return profile;
}

KernelProfile gemv_profile(std::int64_t rows, std::int64_t cols,
                           double dtype_bytes) {
  KernelProfile profile;
  profile.name = "gemv";
  profile.flops = 2.0 * static_cast<double>(rows) * cols;
  profile.bytes = dtype_bytes * (static_cast<double>(rows) * cols +
                                 static_cast<double>(cols) + rows);
  return profile;
}

KernelProfile elementwise_profile(std::int64_t n, double flops_per_element,
                                  double dtype_bytes) {
  KernelProfile profile;
  profile.name = "elementwise";
  profile.flops = flops_per_element * static_cast<double>(n);
  profile.bytes = 2.0 * dtype_bytes * static_cast<double>(n);
  return profile;
}

double ridge_intensity(const topo::DeviceSpec& device) {
  CARAML_CHECK_MSG(device.mem_bandwidth > 0.0, "device has no bandwidth");
  return device.peak_fp16_flops / device.mem_bandwidth;
}

bool is_compute_bound(const topo::DeviceSpec& device,
                      const KernelProfile& profile) {
  return profile.arithmetic_intensity() >= ridge_intensity(device);
}

double kernel_time(const topo::DeviceSpec& device, const KernelProfile& profile,
                   double efficiency) {
  const double eff = efficiency > 0.0 ? efficiency : device.max_mfu_gemm;
  CARAML_CHECK_MSG(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
  const double compute = profile.flops / (device.peak_fp16_flops * eff);
  const double memory = profile.bytes / device.mem_bandwidth;
  return std::max(compute, memory) + device.launch_overhead_s;
}

}  // namespace caraml::sim
