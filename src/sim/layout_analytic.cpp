#include "sim/layout_analytic.hpp"

#include <algorithm>

#include "sim/power_model.hpp"
#include "util/error.hpp"

namespace caraml::sim {

namespace {

/// Utilization the optimizer update presents to the power model
/// (memory-bandwidth bound; mirrors core/llm.cpp).
constexpr double kOptimizerUtil = 0.08;

double micro_tokens_of(const LlmLayoutCost& layout) {
  return static_cast<double>(layout.micro_batch) * layout.model.seq_length;
}

}  // namespace

LlmMicroCost llm_micro_cost(const topo::NodeSpec& node,
                            const LlmLayoutCost& layout,
                            double power_cap_factor) {
  CARAML_CHECK_MSG(layout.tensor_parallel >= 1 &&
                       layout.pipeline_parallel >= 1,
                   "tp/pp must be >= 1");
  CARAML_CHECK_MSG(power_cap_factor > 0.0 && power_cap_factor <= 1.0,
                   "power cap factor must be in (0, 1]");
  const int tp = layout.tensor_parallel;
  const int pp = layout.pipeline_parallel;

  LlmMicroCost cost;
  // Effective MFU: host contention degrades per-device efficiency when more
  // devices are active on the node (paper §IV-A, GH200-JEDI vs GH200-JRDC).
  const double contention =
      1.0 + node.host_contention *
                (std::min(layout.num_devices(), layout.devices_per_node) - 1);
  cost.mfu = node.device.max_mfu_gemm / contention;
  // Power during the (possibly contention-stalled) kernels: stalls draw idle
  // power on GH200 (host-memory waits) but busy-wait power on MI250
  // (Infinity-Fabric communication), cf. topo::NodeSpec::contention_power_frac.
  cost.power_util =
      power_cap_factor *
      (cost.mfu +
       node.contention_power_frac * (node.device.max_mfu_gemm - cost.mfu));

  const double micro_tokens = micro_tokens_of(layout);
  const double flops_micro =
      layout.model.flops_per_token_train() * micro_tokens / (tp * pp);
  // fp16/bf16 tensor peak under mixed precision, half of it for fp32 GEMMs.
  const double peak_flops =
      node.device.peak_fp16_flops * layout.model.peak_flops_scale();
  cost.t_compute_s = flops_micro / (peak_flops * cost.mfu) +
                     node.device.launch_overhead_s;
  // Activation exchanges move values at the training precision.
  const double act_value_bytes = layout.model.training_value_bytes();
  if (tp > 1) {
    // Megatron tensor parallelism: 4 activation all-reduces per layer per
    // micro-step (2 forward, 2 backward) over the intra-node peer link.
    CARAML_CHECK_MSG(node.peer_link.bandwidth > 0.0,
                     node.display_name + " has no peer link for tp > 1");
    const double act_bytes = micro_tokens *
                             static_cast<double>(layout.model.hidden_size) *
                             act_value_bytes;
    const double layers_local =
        static_cast<double>(layout.model.num_layers) / pp;
    const double ring_factor = 2.0 * (tp - 1) / tp;
    cost.t_tp_comm_s =
        4.0 * layers_local *
        (node.peer_link.latency_s +
         act_bytes * ring_factor / node.peer_link.effective_bandwidth());
  }
  if (pp > 1) {
    // Inter-stage activation send/recv per micro-step (both directions).
    CARAML_CHECK_MSG(node.peer_link.bandwidth > 0.0,
                     node.display_name + " has no peer link for pp > 1");
    const double act_bytes = micro_tokens *
                             static_cast<double>(layout.model.hidden_size) *
                             act_value_bytes / tp;
    cost.t_pp_comm_s =
        2.0 * (node.peer_link.latency_s +
               act_bytes / node.peer_link.effective_bandwidth());
  }
  cost.t_micro_s = cost.t_compute_s + cost.t_tp_comm_s + cost.t_pp_comm_s;
  return cost;
}

AllReduceCost analytic_all_reduce(const topo::NodeSpec& node,
                                  int devices_per_node, int num_nodes,
                                  double bytes) {
  CARAML_CHECK_MSG(devices_per_node >= 1 && num_nodes >= 1,
                   "need at least one device and node");
  AllReduceCost cost;
  const int n = devices_per_node * num_nodes;
  if (n <= 1) return cost;

  if (num_nodes == 1) {
    // Flat ring over the peer link: 2*(n-1) steps of bytes/n chunks. Every
    // device starts in lockstep and every hop costs the same, so the
    // dependency wavefront (ClusterSim::ring_all_reduce) finishes after
    // exactly 2*(n-1) hop times.
    CARAML_CHECK_MSG(node.peer_link.bandwidth > 0.0,
                     node.display_name + " has no peer link");
    const double chunk = bytes / n;
    const double hop = node.peer_link.latency_s +
                       chunk / node.peer_link.effective_bandwidth();
    cost.total_s = 2.0 * (n - 1) * hop;
    cost.leader_s = cost.total_s;
    cost.intra_bytes_per_device = 2.0 * (n - 1) * chunk;
    return cost;
  }

  // Hierarchical (ClusterSim::hierarchical_all_reduce): intra-node ring,
  // inter-node ring across node leaders, intra-node broadcast.
  CARAML_CHECK_MSG(node.inter_node.bandwidth > 0.0,
                   node.display_name + " has no inter-node interconnect");
  const int dpn = devices_per_node;
  double intra = 0.0;
  double bcast = 0.0;
  if (dpn > 1) {
    CARAML_CHECK_MSG(node.peer_link.bandwidth > 0.0,
                     node.display_name + " has no peer link");
    const double chunk = bytes / dpn;
    const double hop = node.peer_link.latency_s +
                       chunk / node.peer_link.effective_bandwidth();
    intra = 2.0 * (dpn - 1) * hop;
    bcast = hop;
    cost.intra_bytes_per_device = 2.0 * (dpn - 1) * chunk + chunk;
  }
  const double inter_chunk = bytes / num_nodes;
  const double inter =
      2.0 * (num_nodes - 1) *
      (node.inter_node.latency_s +
       inter_chunk / node.inter_node.effective_bandwidth());
  cost.inter_bytes_per_leader = 2.0 * (num_nodes - 1) * inter_chunk;
  cost.leader_s = intra + inter;
  cost.total_s = cost.leader_s + bcast;
  return cost;
}

LlmPrediction predict_llm_iteration(const topo::NodeSpec& node,
                                    const LlmLayoutCost& layout) {
  CARAML_CHECK_MSG(node.device.arch == topo::ArchClass::kGpuSimd,
                   "layout prediction targets GPU systems");
  const int tp = layout.tensor_parallel;
  const int pp = layout.pipeline_parallel;
  const int dp = layout.data_parallel;
  CARAML_CHECK_MSG(tp >= 1 && pp >= 1 && dp >= 1, "tp/pp/dp must be >= 1");
  CARAML_CHECK_MSG(dp * tp * pp == layout.num_devices(),
                   "dp*tp*pp must equal the device count");
  CARAML_CHECK_MSG(layout.micro_batch > 0 && layout.global_batch > 0 &&
                       layout.global_batch % (layout.micro_batch * dp) == 0,
                   "global batch must divide by micro-batch x data-parallel");

  LlmPrediction out;

  // ---- memory (identical to the simulator's MemoryTracker allocations) ----
  models::GptMemoryModel memory;
  memory.config = layout.model;
  memory.tensor_parallel = tp;
  memory.pipeline_parallel = pp;
  memory.data_parallel = dp;
  memory.micro_batch = static_cast<int>(layout.micro_batch);
  out.memory_per_device_bytes = memory.total_bytes();
  out.memory_margin_bytes =
      node.device.mem_capacity_bytes - out.memory_per_device_bytes;
  out.oom = out.memory_margin_bytes < 0.0;

  // ---- timing --------------------------------------------------------------
  out.n_micro = layout.global_batch / (layout.micro_batch * dp);
  out.bubble_slots = pp - 1;
  const LlmMicroCost micro = llm_micro_cost(node, layout);
  out.t_micro_s = micro.t_micro_s;
  out.t_compute_s = micro.t_compute_s;
  out.mfu = micro.mfu;
  out.power_util = micro.power_util;

  const double grad_bytes = memory.gradient_comm_bytes();
  AllReduceCost all_reduce;
  if (dp > 1) {
    all_reduce = analytic_all_reduce(node, layout.devices_per_node,
                                     layout.num_nodes, grad_bytes);
  }
  out.t_allreduce_s = all_reduce.total_s;
  out.t_optimizer_s = memory.model_state_bytes() / node.device.mem_bandwidth;

  const double compute_phase =
      static_cast<double>(out.n_micro + out.bubble_slots) * out.t_micro_s;
  out.iteration_time_s = node.fixed_iter_overhead_s + compute_phase +
                         out.t_allreduce_s + out.t_optimizer_s;

  // ---- throughput ----------------------------------------------------------
  const double tokens_per_iter = static_cast<double>(layout.global_batch) *
                                 layout.model.seq_length;
  out.tokens_per_s_total = tokens_per_iter / out.iteration_time_s;
  out.tokens_per_s_per_device =
      out.tokens_per_s_total / layout.num_devices();
  // Achieved (end-to-end) MFU, as core::run_llm_gpu reports it: the kernel
  // MFU diluted by host overhead, bubbles, all-reduce and optimizer time.
  out.mfu = out.tokens_per_s_per_device *
            layout.model.flops_per_token_train() /
            (node.device.peak_fp16_flops * layout.model.peak_flops_scale());

  // ---- power (device 0's PowerTrace over [0, iteration]) -------------------
  const double busy_micro = busy_power_watts(node.device, micro.power_util);
  const double busy_floor = busy_power_watts(node.device, 0.0);
  const double busy_opt = busy_power_watts(node.device, kOptimizerUtil);
  const double busy_s =
      compute_phase + out.t_optimizer_s;  // device 0 idles during all-reduce
  out.energy_per_device_j =
      busy_micro * static_cast<double>(out.n_micro) * out.t_micro_s +
      busy_floor * static_cast<double>(out.bubble_slots) * out.t_micro_s +
      busy_opt * out.t_optimizer_s +
      node.device.idle_watts * (out.iteration_time_s - busy_s);
  out.avg_power_w = out.energy_per_device_j / out.iteration_time_s;

  // ---- per-iteration communication volume ----------------------------------
  const double micro_tokens = micro_tokens_of(layout);
  const double act_value_bytes = layout.model.training_value_bytes();
  if (tp > 1) {
    const double act_bytes = micro_tokens *
                             static_cast<double>(layout.model.hidden_size) *
                             act_value_bytes;
    out.tp_bytes_per_device =
        static_cast<double>(out.n_micro) * 4.0 *
        (static_cast<double>(layout.model.num_layers) / pp) * act_bytes *
        (2.0 * (tp - 1) / tp);
  }
  if (pp > 1) {
    out.pp_bytes_per_device =
        static_cast<double>(out.n_micro) * 2.0 * micro_tokens *
        static_cast<double>(layout.model.hidden_size) * act_value_bytes / tp;
  }
  out.dp_intra_bytes_per_device = all_reduce.intra_bytes_per_device;
  out.dp_inter_bytes_per_leader = all_reduce.inter_bytes_per_leader;
  out.exposed_comm_s = static_cast<double>(out.n_micro) *
                           (micro.t_tp_comm_s + micro.t_pp_comm_s) +
                       out.t_allreduce_s;
  return out;
}

}  // namespace caraml::sim
