// Roofline kernel profiles: FLOPs and bytes moved for the kernel classes the
// CARAML workloads execute (GEMM, conv2d via implicit GEMM, elementwise,
// reductions, GEMV-like decode steps), and the induced execution time on a
// topo::DeviceSpec — time = max(compute roof, memory roof) / efficiency.
//
// The workload cost models use calibrated MFU values for whole iterations;
// this module provides the per-kernel view (used by the inference model, the
// micro-level tests, and as the documented basis of those calibrations).
#pragma once

#include <cstdint>
#include <string>

#include "topo/specs.hpp"

namespace caraml::sim {

struct KernelProfile {
  std::string name;
  double flops = 0.0;
  double bytes = 0.0;  // DRAM traffic (reads + writes), assuming cold caches

  /// FLOPs per byte.
  double arithmetic_intensity() const;
};

/// C[m,n] = A[m,k] * B[k,n]; `dtype_bytes` = 2 for fp16.
KernelProfile gemm_profile(std::int64_t m, std::int64_t n, std::int64_t k,
                           double dtype_bytes = 2.0);

/// NCHW conv as implicit GEMM: batch n, in-channels c, out-channels o,
/// output spatial oh x ow, kernel kh x kw.
KernelProfile conv2d_profile(std::int64_t n, std::int64_t c, std::int64_t o,
                             std::int64_t oh, std::int64_t ow, std::int64_t kh,
                             std::int64_t kw, double dtype_bytes = 2.0);

/// y = W x (the per-token decode step shape): reads the full matrix.
KernelProfile gemv_profile(std::int64_t rows, std::int64_t cols,
                           double dtype_bytes = 2.0);

/// Elementwise op over n elements (read + write).
KernelProfile elementwise_profile(std::int64_t n, double flops_per_element = 1.0,
                                  double dtype_bytes = 2.0);

/// The device's ridge point: intensity (FLOP/byte) above which kernels are
/// compute-bound.
double ridge_intensity(const topo::DeviceSpec& device);

bool is_compute_bound(const topo::DeviceSpec& device,
                      const KernelProfile& profile);

/// Execution time: max(flops / (peak * efficiency), bytes / bandwidth)
/// + launch overhead. `efficiency` defaults to the device's GEMM MFU ceiling.
double kernel_time(const topo::DeviceSpec& device, const KernelProfile& profile,
                   double efficiency = 0.0);

}  // namespace caraml::sim
