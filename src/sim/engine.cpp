#include "sim/engine.hpp"

#include <queue>
#include <tuple>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"

namespace caraml::sim {

double Resource::busy_time() const {
  double total = 0.0;
  for (const auto& interval : busy_) total += interval.end - interval.start;
  return total;
}

Resource* TaskGraph::add_resource(std::string name) {
  CARAML_CHECK_MSG(!ran_, "cannot add resources after run()");
  resources_.push_back(std::make_unique<Resource>(
      std::move(name), static_cast<std::uint32_t>(resources_.size())));
  return resources_.back().get();
}

TaskId TaskGraph::add_task(Resource* resource, double service_time,
                           double utilization, std::string name,
                           double release_time) {
  CARAML_CHECK_MSG(!ran_, "cannot add tasks after run()");
  CARAML_CHECK_MSG(resource != nullptr, "task needs a resource");
  CARAML_CHECK_MSG(service_time >= 0.0, "negative service time");
  Task task;
  task.resource = resource;
  task.service_time = service_time;
  task.utilization = utilization;
  task.release_time = release_time;
  task.name = std::move(name);
  tasks_.push_back(std::move(task));
  return static_cast<TaskId>(tasks_.size() - 1);
}

void TaskGraph::add_dependency(TaskId before, TaskId after) {
  CARAML_CHECK(before < tasks_.size() && after < tasks_.size());
  CARAML_CHECK_MSG(before != after, "task cannot depend on itself");
  tasks_[before].successors.push_back(after);
  ++tasks_[after].unmet_deps;
}

void TaskGraph::add_chain(const std::vector<TaskId>& tasks) {
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    add_dependency(tasks[i - 1], tasks[i]);
  }
}

double TaskGraph::run() {
  CARAML_CHECK_MSG(!ran_, "TaskGraph::run() called twice");
  ran_ = true;

  // Event-loop telemetry: registration once per run(), lock-free atomic
  // updates inside the loop (this is the hottest path in the repository).
  auto& registry = telemetry::Registry::global();
  auto& events_counter = registry.counter("sim/events_processed");
  auto& tasks_counter = registry.counter("sim/tasks_completed");
  auto& graphs_counter = registry.counter("sim/graphs_run");
  auto& queue_depth_hist = registry.histogram(
      "sim/queue_depth", telemetry::Histogram::linear_buckets(1.0, 1.0, 64));
  graphs_counter.add();

  enum class EventKind { kReady, kComplete };
  struct Event {
    double time;
    std::uint64_t seq;
    EventKind kind;
    TaskId task;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // deterministic FIFO tie-break
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> events;
  std::uint64_t seq = 0;

  // Which task each resource is currently serving (kInvalidTask = idle).
  std::vector<TaskId> serving(resources_.size(), kInvalidTask);

  auto start_task = [&](TaskId id, double now) {
    Task& task = tasks_[id];
    Resource* res = task.resource;
    task.start = now;
    task.finish = now + task.service_time;
    const double wait = task.ready >= 0.0 ? now - task.ready : 0.0;
    res->queue_wait_total_ += wait;
    res->queue_wait_max_ = std::max(res->queue_wait_max_, wait);
    serving[res->index()] = id;
    res->busy_.push_back(BusyInterval{task.start, task.finish,
                                      task.utilization, id});
    res->free_at_ = task.finish;
    events.push(Event{task.finish, seq++, EventKind::kComplete, id});
  };

  std::size_t completed = 0;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].unmet_deps == 0) {
      events.push(Event{tasks_[id].release_time, seq++, EventKind::kReady, id});
    }
  }

  double makespan = 0.0;
  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    events_counter.add();
    const double now = event.time;
    Task& task = tasks_[event.task];
    Resource* res = task.resource;

    if (event.kind == EventKind::kReady) {
      task.ready = now;
      if (serving[res->index()] == kInvalidTask && res->free_at_ <= now) {
        start_task(event.task, now);
      } else {
        res->queue_.push_back(event.task);
        queue_depth_hist.observe(static_cast<double>(res->queue_.size()));
      }
      continue;
    }

    // kComplete
    task.done = true;
    ++completed;
    tasks_counter.add();
    makespan = std::max(makespan, task.finish);
    serving[res->index()] = kInvalidTask;

    for (TaskId succ : task.successors) {
      CARAML_CHECK_MSG(tasks_[succ].unmet_deps > 0, "dependency bookkeeping");
      if (--tasks_[succ].unmet_deps == 0) {
        const double ready = std::max(now, tasks_[succ].release_time);
        events.push(Event{ready, seq++, EventKind::kReady, succ});
      }
    }

    if (!res->queue_.empty()) {
      const TaskId next = res->queue_.front();
      res->queue_.erase(res->queue_.begin());
      start_task(next, std::max(now, res->free_at_));
    }
  }

  if (completed != tasks_.size()) {
    throw Error("TaskGraph::run: dependency cycle — only " +
                std::to_string(completed) + " of " +
                std::to_string(tasks_.size()) + " tasks completed");
  }
  return makespan;
}

double TaskGraph::finish_time(TaskId task) const {
  CARAML_CHECK(task < tasks_.size());
  CARAML_CHECK_MSG(ran_, "finish_time before run()");
  return tasks_[task].finish;
}

double TaskGraph::start_time(TaskId task) const {
  CARAML_CHECK(task < tasks_.size());
  CARAML_CHECK_MSG(ran_, "start_time before run()");
  return tasks_[task].start;
}

double TaskGraph::ready_time(TaskId task) const {
  CARAML_CHECK(task < tasks_.size());
  CARAML_CHECK_MSG(ran_, "ready_time before run()");
  return tasks_[task].ready;
}

double TaskGraph::queue_wait(TaskId task) const {
  CARAML_CHECK(task < tasks_.size());
  CARAML_CHECK_MSG(ran_, "queue_wait before run()");
  return tasks_[task].start - tasks_[task].ready;
}

const std::string& TaskGraph::task_name(TaskId task) const {
  CARAML_CHECK(task < tasks_.size());
  return tasks_[task].name;
}

}  // namespace caraml::sim
