#include "sim/trace_export.hpp"

#include <algorithm>
#include <fstream>

#include "util/error.hpp"

namespace caraml::sim {

void append_chrome_events(const TaskGraph& graph, telemetry::Tracer& tracer) {
  for (std::size_t r = 0; r < graph.num_resources(); ++r) {
    const Resource* resource = graph.resource_at(r);
    const std::uint32_t track = tracer.track(resource->name());
    for (const auto& interval : resource->busy_intervals()) {
      tracer.add_span(graph.task_name(interval.task_index), track,
                      interval.start, interval.end - interval.start,
                      "utilization", interval.utilization);
    }
  }
}

void append_power_counters(const PowerTrace& trace,
                           const std::string& counter_name,
                           telemetry::Tracer& tracer) {
  const std::uint32_t track = tracer.track("power");
  for (const auto& segment : trace.segments()) {
    tracer.add_counter(counter_name, "watts", track, segment.start,
                       segment.watts);
  }
  if (!trace.segments().empty()) {
    tracer.add_counter(counter_name, "watts", track, trace.horizon(),
                       trace.segments().back().watts);
  }
}

void append_queue_wait_counters(const TaskGraph& graph,
                                telemetry::Tracer& tracer) {
  const std::uint32_t track = tracer.track("queue_wait");
  for (std::size_t r = 0; r < graph.num_resources(); ++r) {
    const Resource* resource = graph.resource_at(r);
    for (const auto& interval : resource->busy_intervals()) {
      const double wait = graph.queue_wait(interval.task_index);
      if (wait > 0.0) {
        tracer.add_counter("queue_wait/" + resource->name(), "seconds", track,
                           interval.start, wait);
      }
    }
  }
}

std::string to_chrome_trace(const TaskGraph& graph) {
  telemetry::Tracer tracer;
  append_chrome_events(graph, tracer);
  return tracer.to_chrome_trace();
}

void write_chrome_trace(const TaskGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write trace: " + path);
  out << to_chrome_trace(graph);
}

df::DataFrame utilization_summary(const TaskGraph& graph) {
  double makespan = 0.0;
  for (std::size_t r = 0; r < graph.num_resources(); ++r) {
    makespan = std::max(makespan, graph.resource_at(r)->last_end());
  }
  df::DataFrame frame;
  frame.add_column("resource", df::ColumnType::kString);
  frame.add_column("busy_s", df::ColumnType::kDouble);
  frame.add_column("busy_fraction", df::ColumnType::kDouble);
  frame.add_column("tasks", df::ColumnType::kInt64);
  frame.add_column("mean_utilization", df::ColumnType::kDouble);
  frame.add_column("queue_wait_mean_s", df::ColumnType::kDouble);
  frame.add_column("queue_wait_max_s", df::ColumnType::kDouble);
  for (std::size_t r = 0; r < graph.num_resources(); ++r) {
    const Resource* resource = graph.resource_at(r);
    const double busy = resource->busy_time();
    double weighted_util = 0.0;
    for (const auto& interval : resource->busy_intervals()) {
      weighted_util += interval.utilization * (interval.end - interval.start);
    }
    frame.append_row(
        {resource->name(), busy, makespan > 0.0 ? busy / makespan : 0.0,
         static_cast<std::int64_t>(resource->busy_intervals().size()),
         busy > 0.0 ? weighted_util / busy : 0.0,
         resource->queue_wait_mean(), resource->queue_wait_max()});
  }
  return frame;
}

}  // namespace caraml::sim
