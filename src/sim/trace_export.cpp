#include "sim/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml::sim {

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

std::string to_chrome_trace(const TaskGraph& graph) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t r = 0; r < graph.num_resources(); ++r) {
    const Resource* resource = graph.resource_at(r);
    // Thread-name metadata event per resource track.
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << r
       << ",\"args\":{\"name\":\"" << json_escape(resource->name())
       << "\"}}";
    for (const auto& interval : resource->busy_intervals()) {
      os << ",{\"name\":\""
         << json_escape(graph.task_name(interval.task_index)) << "\","
         << "\"ph\":\"X\",\"pid\":1,\"tid\":" << r
         << ",\"ts\":" << interval.start * 1e6
         << ",\"dur\":" << (interval.end - interval.start) * 1e6
         << ",\"args\":{\"utilization\":" << interval.utilization << "}}";
    }
  }
  os << "]}";
  return os.str();
}

void write_chrome_trace(const TaskGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write trace: " + path);
  out << to_chrome_trace(graph);
}

df::DataFrame utilization_summary(const TaskGraph& graph) {
  double makespan = 0.0;
  for (std::size_t r = 0; r < graph.num_resources(); ++r) {
    makespan = std::max(makespan, graph.resource_at(r)->last_end());
  }
  df::DataFrame frame;
  frame.add_column("resource", df::ColumnType::kString);
  frame.add_column("busy_s", df::ColumnType::kDouble);
  frame.add_column("busy_fraction", df::ColumnType::kDouble);
  frame.add_column("tasks", df::ColumnType::kInt64);
  frame.add_column("mean_utilization", df::ColumnType::kDouble);
  for (std::size_t r = 0; r < graph.num_resources(); ++r) {
    const Resource* resource = graph.resource_at(r);
    const double busy = resource->busy_time();
    double weighted_util = 0.0;
    for (const auto& interval : resource->busy_intervals()) {
      weighted_util += interval.utilization * (interval.end - interval.start);
    }
    frame.append_row(
        {resource->name(), busy, makespan > 0.0 ? busy / makespan : 0.0,
         static_cast<std::int64_t>(resource->busy_intervals().size()),
         busy > 0.0 ? weighted_util / busy : 0.0});
  }
  return frame;
}

}  // namespace caraml::sim
