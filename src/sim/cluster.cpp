#include "sim/cluster.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace caraml::sim {

ClusterSim::ClusterSim(const topo::NodeSpec& node, int devices_per_node,
                       int num_nodes)
    : node_(node),
      devices_per_node_(devices_per_node < 0 ? node.devices_per_node
                                             : devices_per_node),
      num_nodes_(num_nodes) {
  CARAML_CHECK_MSG(devices_per_node_ >= 1, "need at least one device");
  CARAML_CHECK_MSG(devices_per_node_ <= node.devices_per_node,
                   "more devices requested than the node has");
  CARAML_CHECK_MSG(num_nodes_ >= 1, "need at least one node");
  if (num_nodes_ > 1) {
    CARAML_CHECK_MSG(node.inter_node.bandwidth > 0.0,
                     node.display_name + " has no inter-node interconnect");
  }
  num_devices_ = devices_per_node_ * num_nodes_;
  for (int d = 0; d < num_devices_; ++d) {
    const std::string suffix = std::to_string(d);
    compute_.push_back(graph_.add_resource("dev" + suffix));
    host_.push_back(graph_.add_resource("host" + suffix));
    links_.push_back(graph_.add_resource("link" + suffix));
  }
  compute_derate_.assign(static_cast<std::size_t>(num_devices_), 1.0);
  link_derate_.assign(static_cast<std::size_t>(num_devices_), 1.0);
}

void ClusterSim::set_compute_derate(int device, double factor) {
  CARAML_CHECK(device >= 0 && device < num_devices_);
  CARAML_CHECK_MSG(factor >= 1.0, "derate factor must be >= 1");
  compute_derate_[static_cast<std::size_t>(device)] = factor;
}

double ClusterSim::compute_derate(int device) const {
  CARAML_CHECK(device >= 0 && device < num_devices_);
  return compute_derate_[static_cast<std::size_t>(device)];
}

void ClusterSim::set_link_derate(int device, double factor) {
  CARAML_CHECK(device >= 0 && device < num_devices_);
  CARAML_CHECK_MSG(factor >= 1.0, "derate factor must be >= 1");
  link_derate_[static_cast<std::size_t>(device)] = factor;
}

double ClusterSim::link_derate(int device) const {
  CARAML_CHECK(device >= 0 && device < num_devices_);
  return link_derate_[static_cast<std::size_t>(device)];
}

Resource* ClusterSim::compute(int device) {
  CARAML_CHECK(device >= 0 && device < num_devices_);
  return compute_[static_cast<std::size_t>(device)];
}

Resource* ClusterSim::host(int device) {
  CARAML_CHECK(device >= 0 && device < num_devices_);
  return host_[static_cast<std::size_t>(device)];
}

Resource* ClusterSim::ring_link(int device) {
  CARAML_CHECK(device >= 0 && device < num_devices_);
  return links_[static_cast<std::size_t>(device)];
}

bool ClusterSim::hop_crosses_node(int device) const {
  const int next = (device + 1) % num_devices_;
  return device / devices_per_node_ != next / devices_per_node_;
}

double ClusterSim::hop_time(int device, double bytes) const {
  const topo::LinkSpec& link =
      hop_crosses_node(device) ? node_.inter_node : node_.peer_link;
  CARAML_CHECK_MSG(link.bandwidth > 0.0,
                   "hop over absent link from device " +
                       std::to_string(device));
  return (link.latency_s + bytes / link.effective_bandwidth()) *
         link_derate_[static_cast<std::size_t>(device)];
}

std::vector<TaskId> ClusterSim::ring_all_reduce(double bytes,
                                                std::vector<TaskId> deps,
                                                const std::string& name,
                                                double utilization) {
  const int n = num_devices_;
  deps.resize(static_cast<std::size_t>(n), kInvalidTask);
  if (n == 1) {
    // Degenerate: nothing to communicate; emit a zero-length marker task so
    // callers can uniformly depend on the result.
    TaskId t = graph_.add_task(compute_[0], 0.0, 0.0, name + ".noop");
    if (deps[0] != kInvalidTask) graph_.add_dependency(deps[0], t);
    return {t};
  }
  // Ring all-reduce: 2*(n-1) steps; each step every device forwards a
  // bytes/n chunk to its successor. Step k of device d depends on step k-1
  // of device d (link free) and step k-1 of device d-1 (chunk arrived).
  const double chunk = bytes / n;
  std::vector<TaskId> prev(static_cast<std::size_t>(n), kInvalidTask);
  for (int d = 0; d < n; ++d) prev[static_cast<std::size_t>(d)] = deps[static_cast<std::size_t>(d)];
  for (int step = 0; step < 2 * (n - 1); ++step) {
    std::vector<TaskId> current(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      const TaskId send = graph_.add_task(
          links_[static_cast<std::size_t>(d)], hop_time(d, chunk), utilization,
          name + ".s" + std::to_string(step) + ".d" + std::to_string(d));
      if (prev[static_cast<std::size_t>(d)] != kInvalidTask) {
        graph_.add_dependency(prev[static_cast<std::size_t>(d)], send);
      }
      const int from = (d - 1 + n) % n;
      if (prev[static_cast<std::size_t>(from)] != kInvalidTask) {
        graph_.add_dependency(prev[static_cast<std::size_t>(from)], send);
      }
      current[static_cast<std::size_t>(d)] = send;
    }
    prev = std::move(current);
  }
  return prev;
}

std::vector<TaskId> ClusterSim::ring_all_gather(double bytes,
                                                std::vector<TaskId> deps,
                                                const std::string& name,
                                                double utilization) {
  const int n = num_devices_;
  deps.resize(static_cast<std::size_t>(n), kInvalidTask);
  if (n == 1) {
    TaskId t = graph_.add_task(compute_[0], 0.0, 0.0, name + ".noop");
    if (deps[0] != kInvalidTask) graph_.add_dependency(deps[0], t);
    return {t};
  }
  std::vector<TaskId> prev = deps;
  for (int step = 0; step < n - 1; ++step) {
    std::vector<TaskId> current(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      const TaskId send = graph_.add_task(
          links_[static_cast<std::size_t>(d)], hop_time(d, bytes), utilization,
          name + ".s" + std::to_string(step) + ".d" + std::to_string(d));
      if (prev[static_cast<std::size_t>(d)] != kInvalidTask) {
        graph_.add_dependency(prev[static_cast<std::size_t>(d)], send);
      }
      const int from = (d - 1 + n) % n;
      if (prev[static_cast<std::size_t>(from)] != kInvalidTask) {
        graph_.add_dependency(prev[static_cast<std::size_t>(from)], send);
      }
      current[static_cast<std::size_t>(d)] = send;
    }
    prev = std::move(current);
  }
  return prev;
}

std::vector<TaskId> ClusterSim::broadcast(double bytes, TaskId dep,
                                          const std::string& name,
                                          double utilization) {
  const int n = num_devices_;
  std::vector<TaskId> done(static_cast<std::size_t>(n), kInvalidTask);
  TaskId previous = dep;
  // Sequential ring forward: device d sends to d+1 once it has the data.
  for (int d = 0; d + 1 < n; ++d) {
    const TaskId send = graph_.add_task(
        links_[static_cast<std::size_t>(d)], hop_time(d, bytes), utilization,
        name + ".hop" + std::to_string(d));
    if (previous != kInvalidTask) graph_.add_dependency(previous, send);
    done[static_cast<std::size_t>(d + 1)] = send;
    previous = send;
  }
  // Device 0 holds the data from the start.
  TaskId origin = graph_.add_task(compute_[0], 0.0, 0.0, name + ".origin");
  if (dep != kInvalidTask) graph_.add_dependency(dep, origin);
  done[0] = origin;
  return done;
}

std::vector<TaskId> ClusterSim::hierarchical_all_reduce(
    double bytes, std::vector<TaskId> deps, const std::string& name,
    double utilization) {
  if (num_nodes_ == 1) return ring_all_reduce(bytes, std::move(deps), name,
                                              utilization);
  deps.resize(static_cast<std::size_t>(num_devices_), kInvalidTask);
  const int dpn = devices_per_node_;

  // Phase 1: intra-node ring all-reduce per node — 2*(dpn-1) steps over the
  // peer link. Modeled per node as a chain of steps on each device's link.
  std::vector<TaskId> phase1(static_cast<std::size_t>(num_devices_));
  const double intra_chunk = dpn > 1 ? bytes / dpn : bytes;
  for (int node_index = 0; node_index < num_nodes_; ++node_index) {
    for (int local = 0; local < dpn; ++local) {
      const int d = node_index * dpn + local;
      TaskId prev = deps[static_cast<std::size_t>(d)];
      if (dpn > 1) {
        for (int step = 0; step < 2 * (dpn - 1); ++step) {
          const double t =
              (node_.peer_link.latency_s +
               intra_chunk / node_.peer_link.effective_bandwidth()) *
              link_derate_[static_cast<std::size_t>(d)];
          const TaskId send = graph_.add_task(
              links_[static_cast<std::size_t>(d)], t, utilization,
              name + ".intra" + std::to_string(step));
          if (prev != kInvalidTask) graph_.add_dependency(prev, send);
          prev = send;
        }
      }
      phase1[static_cast<std::size_t>(d)] = prev;
    }
  }

  // Phase 2: inter-node ring across node leaders (device 0 of each node)
  // over InfiniBand; 2*(nodes-1) steps of bytes/nodes chunks.
  std::vector<TaskId> leader_done(static_cast<std::size_t>(num_nodes_));
  const double inter_chunk = bytes / num_nodes_;
  for (int node_index = 0; node_index < num_nodes_; ++node_index) {
    const int leader = node_index * dpn;
    TaskId prev = phase1[static_cast<std::size_t>(leader)];
    // The leader must also wait for its node peers' reduce-scatter.
    for (int local = 1; local < dpn; ++local) {
      // Gate via a zero-cost merge task on the leader's compute queue.
      const TaskId merge = graph_.add_task(
          compute_[static_cast<std::size_t>(leader)], 0.0, 0.0,
          name + ".merge");
      graph_.add_dependency(phase1[static_cast<std::size_t>(leader)], merge);
      graph_.add_dependency(
          phase1[static_cast<std::size_t>(node_index * dpn + local)], merge);
      prev = merge;
    }
    for (int step = 0; step < 2 * (num_nodes_ - 1); ++step) {
      const double t =
          (node_.inter_node.latency_s +
           inter_chunk / node_.inter_node.effective_bandwidth()) *
          link_derate_[static_cast<std::size_t>(leader)];
      const TaskId send = graph_.add_task(
          links_[static_cast<std::size_t>(leader)], t, utilization,
          name + ".inter" + std::to_string(step));
      if (prev != kInvalidTask) graph_.add_dependency(prev, send);
      prev = send;
    }
    leader_done[static_cast<std::size_t>(node_index)] = prev;
  }

  // Phase 3: intra-node broadcast of the reduced result.
  std::vector<TaskId> done(static_cast<std::size_t>(num_devices_));
  for (int node_index = 0; node_index < num_nodes_; ++node_index) {
    const TaskId from_leader =
        leader_done[static_cast<std::size_t>(node_index)];
    for (int local = 0; local < dpn; ++local) {
      const int d = node_index * dpn + local;
      if (local == 0) {
        done[static_cast<std::size_t>(d)] = from_leader;
        continue;
      }
      const double t =
          (node_.peer_link.latency_s +
           bytes / dpn / node_.peer_link.effective_bandwidth()) *
          link_derate_[static_cast<std::size_t>(d)];
      const TaskId bc = graph_.add_task(links_[static_cast<std::size_t>(d)],
                                        t, utilization, name + ".bcast");
      graph_.add_dependency(from_leader, bc);
      done[static_cast<std::size_t>(d)] = bc;
    }
  }
  return done;
}

TaskId ClusterSim::p2p_send(int device, double bytes, TaskId dep,
                            const std::string& name, double utilization) {
  CARAML_CHECK(device >= 0 && device < num_devices_);
  const TaskId send = graph_.add_task(links_[static_cast<std::size_t>(device)],
                                      hop_time(device, bytes), utilization,
                                      name);
  if (dep != kInvalidTask) graph_.add_dependency(dep, send);
  return send;
}

}  // namespace caraml::sim
