#include "sim/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace caraml::sim {

double busy_power_watts(const topo::DeviceSpec& device, double utilization) {
  CARAML_CHECK_MSG(utilization >= 0.0, "negative utilization");
  const double u_ref = device.util_at_tdp > 0.0 ? device.util_at_tdp : 1.0;
  const double rel = std::min(1.0, utilization / u_ref);
  const double dynamic_frac =
      device.power_floor_frac +
      (1.0 - device.power_floor_frac) *
          std::pow(rel, topo::kPowerCurveExponent);
  return device.idle_watts +
         (device.tdp_watts - device.idle_watts) * dynamic_frac;
}

PowerTrace::PowerTrace(const topo::DeviceSpec& device,
                       const std::vector<BusyInterval>& intervals,
                       double horizon)
    : idle_(device.idle_watts), horizon_(horizon) {
  CARAML_CHECK_MSG(horizon >= 0.0, "negative horizon");
  double cursor = 0.0;
  for (const auto& interval : intervals) {
    CARAML_CHECK_MSG(interval.start >= cursor - 1e-12,
                     "busy intervals must be sorted and non-overlapping");
    if (interval.start >= horizon) break;
    if (interval.start > cursor) {
      segments_.push_back(Segment{cursor, interval.start, idle_});
    }
    const double end = std::min(interval.end, horizon);
    if (end > interval.start) {
      segments_.push_back(Segment{interval.start, end,
                                  busy_power_watts(device,
                                                   interval.utilization)});
    }
    cursor = std::max(cursor, end);
  }
  if (cursor < horizon) {
    segments_.push_back(Segment{cursor, horizon, idle_});
  }
}

double PowerTrace::power_at(double t) const {
  if (t < 0.0 || segments_.empty()) return idle_;
  // Binary search over segment starts.
  std::size_t lo = 0, hi = segments_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (segments_[mid].end <= t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= segments_.size()) return idle_;
  const Segment& s = segments_[lo];
  return (t >= s.start && t < s.end) ? s.watts : idle_;
}

double PowerTrace::energy_joules(double t0, double t1) const {
  CARAML_CHECK_MSG(t1 >= t0, "energy interval reversed");
  double energy = 0.0;
  for (const auto& s : segments_) {
    const double lo = std::max(t0, s.start);
    const double hi = std::min(t1, s.end);
    if (hi > lo) energy += s.watts * (hi - lo);
  }
  // Beyond the trace horizon the device idles.
  if (t1 > horizon_) energy += idle_ * (t1 - std::max(t0, horizon_));
  if (t0 < 0.0) energy += idle_ * (std::min(0.0, t1) - t0);
  return energy;
}

double PowerTrace::energy_wh(double t0, double t1) const {
  return units::joules_to_wh(energy_joules(t0, t1));
}

double PowerTrace::average_power() const {
  if (horizon_ <= 0.0) return idle_;
  return energy_joules(0.0, horizon_) / horizon_;
}

}  // namespace caraml::sim
