// Device memory accounting for the simulator.
//
// Before a workload is simulated, its driver registers every allocation
// (model state, activations, workspace) against the device's capacity. When
// the budget is exceeded a caraml::OutOfMemory is thrown — these are the
// "OOM" cells of the paper's Fig. 4 heatmaps.
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/units.hpp"

namespace caraml::sim {

class MemoryTracker {
 public:
  MemoryTracker(std::string device_name, double capacity_bytes)
      : device_name_(std::move(device_name)), capacity_(capacity_bytes) {}

  double capacity() const { return capacity_; }
  double used() const { return used_; }
  double available() const { return capacity_ - used_; }

  /// Register an allocation; throws caraml::OutOfMemory with a breakdown of
  /// current allocations when it does not fit.
  void allocate(const std::string& label, double bytes) {
    CARAML_CHECK_MSG(bytes >= 0.0, "negative allocation");
    if (used_ + bytes > capacity_) {
      std::string message = device_name_ + ": OOM allocating '" + label +
                            "' (" + units::format_bytes(bytes) +
                            "), capacity " + units::format_bytes(capacity_) +
                            ", already allocated:";
      for (const auto& [name, size] : allocations_) {
        message += " " + name + "=" + units::format_bytes(size);
      }
      throw OutOfMemory(message);
    }
    used_ += bytes;
    allocations_.emplace_back(label, bytes);
  }

  /// Release a previously registered allocation by label (first match).
  void release(const std::string& label) {
    for (auto it = allocations_.begin(); it != allocations_.end(); ++it) {
      if (it->first == label) {
        used_ -= it->second;
        allocations_.erase(it);
        return;
      }
    }
    throw NotFound(device_name_ + ": release of unknown allocation '" + label +
                   "'");
  }

  const std::vector<std::pair<std::string, double>>& allocations() const {
    return allocations_;
  }

 private:
  std::string device_name_;
  double capacity_;
  double used_ = 0.0;
  std::vector<std::pair<std::string, double>> allocations_;
};

}  // namespace caraml::sim
