// Discrete-event simulation engine.
//
// The CARAML-cpp hardware substitute executes workloads as *task graphs* over
// *resources*. A resource is a serial server (an accelerator's compute queue,
// one direction of an interconnect link, a host data-pipeline). A task
// occupies one resource for a service time and may depend on other tasks.
// The engine runs a classic event loop: when all dependencies of a task have
// finished it enters its resource's FIFO queue; a resource serves one task at
// a time. Completion events advance the virtual clock.
//
// The recorded per-resource busy intervals (with a utilization annotation)
// are the input to the power model in sim/power_model.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace caraml::sim {

/// A busy interval on a resource: [start, end) with an abstract utilization
/// in [0, 1] used by the power model.
struct BusyInterval {
  double start = 0.0;
  double end = 0.0;
  double utilization = 0.0;
  std::uint32_t task_index = 0;
};

/// A serial server. Create via TaskGraph::add_resource.
class Resource {
 public:
  Resource(std::string name, std::uint32_t index)
      : name_(std::move(name)), index_(index) {}

  const std::string& name() const { return name_; }
  std::uint32_t index() const { return index_; }

  const std::vector<BusyInterval>& busy_intervals() const { return busy_; }

  /// Total busy time over the run.
  double busy_time() const;

  /// Time the resource finished its last task (0 when never used).
  double last_end() const {
    return busy_.empty() ? 0.0 : busy_.back().end;
  }

  /// Queue-wait statistics: time tasks spent between becoming ready and
  /// starting service on this resource (0 for tasks served immediately).
  double queue_wait_total() const { return queue_wait_total_; }
  double queue_wait_max() const { return queue_wait_max_; }
  /// Mean wait over every task served by this resource.
  double queue_wait_mean() const {
    return busy_.empty() ? 0.0
                         : queue_wait_total_ /
                               static_cast<double>(busy_.size());
  }

 private:
  friend class TaskGraph;
  std::string name_;
  std::uint32_t index_;
  std::vector<BusyInterval> busy_;
  double free_at_ = 0.0;
  double queue_wait_total_ = 0.0;
  double queue_wait_max_ = 0.0;
  std::vector<std::uint32_t> queue_;  // ready tasks waiting for this resource
};

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

/// A dependency-driven task graph executed by the event engine.
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Create a resource; the returned pointer remains valid for the lifetime
  /// of the graph (resources are stored behind unique_ptr).
  Resource* add_resource(std::string name);

  /// Add a task bound to `resource` with the given service time and power
  /// utilization. `release_time` is the earliest time the task may start
  /// (default: as soon as dependencies allow).
  TaskId add_task(Resource* resource, double service_time,
                  double utilization = 1.0, std::string name = {},
                  double release_time = 0.0);

  /// `after` cannot start before `before` finishes.
  void add_dependency(TaskId before, TaskId after);

  /// Convenience: sequential chain — each task depends on the previous one.
  void add_chain(const std::vector<TaskId>& tasks);

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_resources() const { return resources_.size(); }
  Resource* resource(std::size_t i) { return resources_[i].get(); }
  const Resource* resource_at(std::size_t i) const {
    return resources_[i].get();
  }

  /// Execute; returns the makespan (time the last task finishes). Throws
  /// caraml::Error when the graph has a dependency cycle.
  double run();

  /// Completion time of a task after run().
  double finish_time(TaskId task) const;
  double start_time(TaskId task) const;
  /// Time the task became ready (dependencies met, release time reached).
  double ready_time(TaskId task) const;
  /// start_time - ready_time: how long the task queued for its resource.
  double queue_wait(TaskId task) const;
  const std::string& task_name(TaskId task) const;

 private:
  struct Task {
    Resource* resource = nullptr;
    double service_time = 0.0;
    double utilization = 1.0;
    double release_time = 0.0;
    std::string name;
    std::vector<TaskId> successors;
    std::uint32_t unmet_deps = 0;
    double ready = -1.0;
    double start = -1.0;
    double finish = -1.0;
    bool done = false;
  };

  std::vector<std::unique_ptr<Resource>> resources_;
  std::vector<Task> tasks_;
  bool ran_ = false;
};

}  // namespace caraml::sim
