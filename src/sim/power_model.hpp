// Power model: maps a device's simulated busy intervals to a power-vs-time
// trace and integrates it to energy.
//
// The curve P(u) = idle + (TDP - idle) * min(1, u / util_at_tdp)^1.3 is
// calibrated per device (topo::DeviceSpec knobs) against the paper's measured
// energy anchors; the superlinear exponent reflects DVFS (power ~ V^2 f while
// throughput ~ f).
#pragma once

#include <vector>

#include "sim/engine.hpp"
#include "topo/specs.hpp"

namespace caraml::sim {

/// Instantaneous busy power for a device at abstract utilization u in [0,1+].
double busy_power_watts(const topo::DeviceSpec& device, double utilization);

/// A step-wise power trace over simulated time.
class PowerTrace {
 public:
  /// Build from a device's busy intervals over [0, horizon]; gaps draw idle
  /// power. Intervals must be non-overlapping and sorted (guaranteed for a
  /// serial Resource).
  PowerTrace(const topo::DeviceSpec& device,
             const std::vector<BusyInterval>& intervals, double horizon);

  /// Power at simulated time t (idle outside any interval / beyond horizon).
  double power_at(double t) const;

  /// Exact energy integral over [t0, t1] in joules.
  double energy_joules(double t0, double t1) const;
  double energy_wh(double t0, double t1) const;

  /// Average power over [0, horizon].
  double average_power() const;

  double horizon() const { return horizon_; }
  double idle_power() const { return idle_; }

  /// Piecewise-constant segments (start, end, watts), covering [0, horizon].
  struct Segment {
    double start;
    double end;
    double watts;
  };
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  double idle_;
  double horizon_;
  std::vector<Segment> segments_;
};

}  // namespace caraml::sim
