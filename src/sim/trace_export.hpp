// Export simulated executions for inspection: Chrome-tracing JSON (open in
// chrome://tracing or Perfetto) and a per-resource utilization summary.
#pragma once

#include <string>

#include "df/dataframe.hpp"
#include "sim/engine.hpp"

namespace caraml::sim {

/// Serialize a finished TaskGraph as a Chrome trace-event JSON document:
/// one "complete" (ph:"X") event per busy interval, one track (tid) per
/// resource. Timestamps are microseconds of simulated time.
std::string to_chrome_trace(const TaskGraph& graph);

void write_chrome_trace(const TaskGraph& graph, const std::string& path);

/// Per-resource summary: name, busy seconds, busy fraction of the makespan,
/// task count, mean utilization annotation.
df::DataFrame utilization_summary(const TaskGraph& graph);

}  // namespace caraml::sim
