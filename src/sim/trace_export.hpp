// Export simulated executions for inspection: Chrome-tracing JSON (open in
// chrome://tracing or Perfetto) and a per-resource utilization summary.
//
// The export path is built on caraml::telemetry::Tracer, so simulator busy
// intervals (virtual-clock spans), wall-clock TELEMETRY_SPAN scopes, and
// power samples (ph:"C" counter events) can be combined into one trace
// document on one timeline.
#pragma once

#include <string>

#include "df/dataframe.hpp"
#include "sim/engine.hpp"
#include "sim/power_model.hpp"
#include "telemetry/span.hpp"

namespace caraml::sim {

/// Append a finished TaskGraph to `tracer`: one track per resource, one
/// "complete" (ph:"X") span per busy interval with its utilization
/// annotation. Timestamps are seconds of simulated time.
void append_chrome_events(const TaskGraph& graph, telemetry::Tracer& tracer);

/// Append a PowerTrace as a ph:"C" counter series named `counter_name`
/// (args key "watts"): one event per piecewise-constant segment boundary,
/// plus a closing event at the horizon, so the power overlay in Perfetto
/// covers the whole simulated run.
void append_power_counters(const PowerTrace& trace,
                           const std::string& counter_name,
                           telemetry::Tracer& tracer);

/// Append per-task queue-wait statistics as ph:"C" counters on a dedicated
/// "queue_wait" track: counter "queue_wait/<resource>" (args key "seconds"),
/// one sample per busy interval whose task actually waited, stamped at the
/// interval's start. `caraml analyse-trace` aggregates these into its
/// queue-wait dominance detector. Kept separate from append_chrome_events so
/// plain span traces stay unchanged.
void append_queue_wait_counters(const TaskGraph& graph,
                                telemetry::Tracer& tracer);

/// Serialize a finished TaskGraph as a standalone Chrome trace-event JSON
/// document: one track (tid) per resource. Timestamps are microseconds of
/// simulated time.
std::string to_chrome_trace(const TaskGraph& graph);

void write_chrome_trace(const TaskGraph& graph, const std::string& path);

/// Per-resource summary: name, busy seconds, busy fraction of the makespan,
/// task count, mean utilization annotation, and queue-wait statistics
/// (mean/max seconds tasks spent queued for the resource) so the table and
/// the Perfetto trace agree about where time went.
df::DataFrame utilization_summary(const TaskGraph& graph);

}  // namespace caraml::sim
