// Closed-form analytic mirror of the LLM-training task graph that
// core/llm.cpp builds through ClusterSim.
//
// The static layout analyzer (`caraml lint` layout/* rules) must predict what
// the simulator would measure without constructing a task graph — a 10k+
// device layout has millions of tasks, but its makespan has a closed form
// because every device follows the same schedule. To keep the two from
// drifting, core/llm.cpp's hot path calls llm_micro_cost() for its per-micro
// step cost, and the collective formulas here mirror ClusterSim's ring /
// hierarchical all-reduce dependency structure step for step (asserted by the
// sim-agreement test in tests/layout_test.cpp).
#pragma once

#include <cstdint>

#include "models/gpt_cost.hpp"
#include "topo/specs.hpp"

namespace caraml::sim {

/// A TP x PP x DP layout of an LLM training job over a homogeneous cluster.
struct LlmLayoutCost {
  models::GptConfig model;
  int tensor_parallel = 1;
  int pipeline_parallel = 1;
  int data_parallel = 1;
  std::int64_t micro_batch = 1;
  std::int64_t global_batch = 1;
  int devices_per_node = 1;  // devices actually used per node
  int num_nodes = 1;

  int num_devices() const { return devices_per_node * num_nodes; }
};

/// Cost of one gradient-accumulation micro-step on one device: GEMM compute
/// at contention-degraded MFU plus the serialized TP all-reduces and PP
/// activation exchanges (cf. core/llm.cpp run_llm_gpu).
struct LlmMicroCost {
  double t_micro_s = 0.0;    ///< total micro-step time (compute + tp + pp)
  double t_compute_s = 0.0;  ///< GEMM time incl. launch overhead
  double t_tp_comm_s = 0.0;  ///< Megatron activation all-reduces per micro
  double t_pp_comm_s = 0.0;  ///< inter-stage activation send/recv per micro
  double mfu = 0.0;          ///< contention-degraded achieved MFU
  double power_util = 0.0;   ///< utilization fed to the power model
};

/// Per-micro-step cost; `power_cap_factor` in (0, 1] scales power_util
/// (the simulator's --power-cap knob; the static analyzer uses 1.0).
LlmMicroCost llm_micro_cost(const topo::NodeSpec& node,
                            const LlmLayoutCost& layout,
                            double power_cap_factor = 1.0);

/// Analytic timing of ClusterSim::hierarchical_all_reduce (which degenerates
/// to the flat ring for num_nodes == 1) when every participating device
/// starts at the same instant — exactly the situation after the synchronized
/// compute phase of run_llm_gpu.
struct AllReduceCost {
  double total_s = 0.0;   ///< worst device's completion (non-leaders wait
                          ///< for the phase-3 broadcast)
  double leader_s = 0.0;  ///< device 0's completion (skips the broadcast)
  double intra_bytes_per_device = 0.0;  ///< peer-link traffic per device
  double inter_bytes_per_leader = 0.0;  ///< inter-node traffic per leader
};

AllReduceCost analytic_all_reduce(const topo::NodeSpec& node,
                                  int devices_per_node, int num_nodes,
                                  double bytes);

/// Full per-iteration prediction: timing, throughput, power and per-link
/// communication volume for one layout. Matches run_llm_gpu's task graph in
/// the fault-free case (no derates, power_cap_factor 1).
struct LlmPrediction {
  // memory (same GptMemoryModel the simulator allocates from)
  double memory_per_device_bytes = 0.0;
  double memory_margin_bytes = 0.0;  ///< capacity - footprint (< 0 = OOM)
  bool oom = false;

  // timing
  double iteration_time_s = 0.0;
  double t_micro_s = 0.0;
  double t_compute_s = 0.0;
  double t_allreduce_s = 0.0;  ///< exposed DP gradient all-reduce time
  double t_optimizer_s = 0.0;
  std::int64_t n_micro = 0;
  std::int64_t bubble_slots = 0;  ///< pp - 1 fill/drain slots per device
  double mfu = 0.0;
  double power_util = 0.0;

  // throughput
  double tokens_per_s_total = 0.0;
  double tokens_per_s_per_device = 0.0;

  // power/energy (device 0, mirroring the simulator's PowerTrace)
  double avg_power_w = 0.0;
  double energy_per_device_j = 0.0;

  // per-iteration communication volume per link class, bytes
  double tp_bytes_per_device = 0.0;     ///< TP activation all-reduces (peer)
  double pp_bytes_per_device = 0.0;     ///< PP activation exchange (peer)
  double dp_intra_bytes_per_device = 0.0;  ///< gradient ring, peer link
  double dp_inter_bytes_per_leader = 0.0;  ///< gradient ring, inter-node
  /// Communication time not overlapped with compute: the TP/PP terms are
  /// serialized inside every micro-step and the DP all-reduce runs after the
  /// compute phase.
  double exposed_comm_s = 0.0;
};

/// Predict one training iteration. Preconditions (checked): layout divides
/// (global % (micro * dp) == 0, dp*tp*pp == num_devices), GPU arch, and the
/// links the layout needs exist.
LlmPrediction predict_llm_iteration(const topo::NodeSpec& node,
                                    const LlmLayoutCost& layout);

}  // namespace caraml::sim
