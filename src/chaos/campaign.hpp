// Chaos campaigns: run every scenario of an enumerated fault space through
// the resilient runners and verify that recovery was *correct*, not merely
// that the process exited 0.
//
// Per scenario, four recovery invariants are checked:
//   1. convergence — a survivable fault completes all steps and its wall
//      time / effective throughput stay within the degradation its plan
//      explains (average derate factors) plus the campaign tolerance, never
//      beating the fault-free oracle; a non-survivable fault must fail with
//      honest partial accounting.
//   2. checkpoint — the persisted checkpoint restores byte-exactly (content
//      fingerprint + re-serialization), sits on a checkpoint boundary, and
//      its sample/sampler accounting matches the step it claims.
//   3. manifest — a manifest line is flushed with the correct status and
//      fault provenance even for failed runs, and parses back.
//   4. deadline — the scenario finished inside the wall-clock watchdog
//      (ThreadPool-compensating, like jube's run_action_bounded); hangs are
//      caught and reported instead of wedging the campaign.
//
// Scenario outcomes carry recovery metrics (time-to-recover, wasted steps,
// goodput vs oracle, retry/backoff spend), are cached in a sweep-style
// fingerprint-keyed JSONL cache, and aggregate into a report that is
// byte-identical for the same seed across --jobs values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/scenario.hpp"
#include "check/diagnostics.hpp"
#include "fault/fault.hpp"
#include "yaml/yaml.hpp"

namespace caraml::chaos {

/// Campaign description (YAML top-level `campaign:` map).
struct CampaignConfig {
  std::string name = "campaign";
  std::uint64_t seed = 0;
  std::string workload = "llm";  // llm | resnet | inference
  std::string system = "A100";
  std::string mode = "grid";  // grid | random
  int scenarios = 0;          // random mode: number of draws

  // Virtual training timeline per scenario.
  std::int64_t steps = 24;
  std::int64_t checkpoint_every = 8;
  double checkpoint_cost_s = 0.5;
  double restart_cost_s = 5.0;
  int retries = 3;  // retry max_attempts (restart budget = retries - 1)

  double deadline_s = 120.0;  // wall-clock watchdog per scenario; <= 0 = off
  double tolerance = 0.25;    // convergence slack (fraction)

  // Workload shape.
  std::string model = "800M";  // llm: GPT variant
  std::int64_t global_batch = 256;
  std::int64_t micro_batch = 4;  // llm
  int devices = 4;
  std::int64_t prompt_tokens = 512;    // inference
  std::int64_t generate_tokens = 128;  // inference

  FaultSpace space;

  /// Parse from a YAML document with a top-level `campaign:` map (the key
  /// `caraml lint` classifies campaign files by). Throws InvalidArgument /
  /// ParseError on bad values.
  static CampaignConfig from_yaml(const yaml::NodePtr& root);
  static CampaignConfig from_yaml_file(const std::string& path);

  /// Stable FNV-1a hex16 over every field that affects scenario outcomes
  /// (not over jobs/cache/output paths). Keys the scenario result cache.
  std::string fingerprint() const;
};

/// Fault-free reference run the invariants compare against.
struct OracleBaseline {
  double iteration_s = 0.0;
  double wall_time_s = 0.0;
  double throughput = 0.0;  // effective samples(tokens|images)/s
  std::int64_t checkpoints = 0;
};

struct InvariantResult {
  std::string rule;  // chaos/invariant-* rule id
  bool passed = false;
  std::string detail;
};

struct ScenarioOutcome {
  std::size_t index = 0;
  std::string id;
  std::string kind;
  double time_frac = 0.0;
  int device = -1;
  double severity = 1.0;
  std::string plan_fingerprint;

  std::string status;       // ok | degraded | failed | hung
  bool survivable = true;   // expectation derived from the scenario
  int restarts = 0;
  int oom_retries = 0;
  std::int64_t steps_replayed = 0;  // wasted work

  // Recovery metrics (virtual timeline — deterministic).
  double time_to_recover_s = 0.0;      // lost wall time (replay + restart)
  double retry_backoff_s = 0.0;        // backoff spend
  double checkpoint_overhead_s = 0.0;  // checkpoint write spend
  double goodput_frac = 0.0;           // effective throughput / oracle

  std::vector<InvariantResult> invariants;
  bool from_cache = false;

  int violations() const;
};

struct CampaignReport {
  CampaignConfig config;
  std::string campaign_fingerprint;
  OracleBaseline oracle;
  /// Ranked: most violations first, then lowest goodput, then index.
  std::vector<ScenarioOutcome> scenarios;

  int total() const { return static_cast<int>(scenarios.size()); }
  int passed() const;
  int violated() const;  // scenarios with >= 1 failed invariant
  int hung() const;
  int failed_runs() const;
  int cache_hits() const;

  /// Violations as located diagnostics (chaos/invariant-* rules) against
  /// `file` — the campaign YAML path, or "<campaign>" when run from memory.
  void to_diagnostics(const std::string& file,
                      check::DiagnosticList& diags) const;

  std::string render_human() const;
  /// Deterministic JSON (no timestamps, no cache provenance): same seed =>
  /// byte-identical text across job counts.
  std::string render_json() const;
};

struct CampaignOptions {
  int jobs = 0;            // <= 0: one per hardware thread
  std::string cache_path;  // sweep-style scenario result cache (optional)
  std::string out_dir;     // manifests + checkpoints; default: temp dir
  bool verbose = false;
};

/// Run the full campaign: oracle first, then every scenario (parallel,
/// deadline-bounded, cache-served when a fingerprint hits). Never throws for
/// scenario-level failures — those become outcomes/violations.
CampaignReport run_campaign(const CampaignConfig& config,
                            const CampaignOptions& options = {});

// --- invariant checks (exposed for tests) ----------------------------------------

/// Invariant 1. `derate_bound` is the compounded average time x link factor
/// the plan explains; `iteration_s` / `throughput` are the scenario's.
InvariantResult check_convergence(const fault::RunReport& report,
                                  double iteration_s, double throughput,
                                  double checkpoint_cost_s,
                                  const OracleBaseline& oracle,
                                  double derate_bound, double tolerance,
                                  bool survivable);

/// Invariant 2. Verifies the checkpoint at `path` against the run report:
/// fingerprint-valid, byte-exact re-serialization, on a boundary, correct
/// sample/sampler accounting for (plan_seed, samples_per_step).
InvariantResult check_checkpoint(const std::string& path,
                                 const fault::RunReport& report,
                                 std::uint64_t plan_seed,
                                 std::int64_t samples_per_step,
                                 std::int64_t checkpoint_every);

}  // namespace caraml::chaos
