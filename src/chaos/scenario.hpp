// Fault-space enumeration for chaos campaigns (`caraml chaos`).
//
// A campaign does not hand-write FaultPlans: it *enumerates* the fault space
// — fault kind × injection time × target device × severity — either as the
// full cartesian grid or as seeded random draws, and synthesizes a
// one-event FaultPlan per point (fault::FaultPlan::single). Every scenario
// is deterministic in (campaign seed, index): the same campaign config
// always expands to byte-identical plans, which is what makes campaign
// reports reproducible and cacheable like sweep results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"

namespace caraml::chaos {

/// Axes of the explored fault space. Grid mode takes the cartesian product;
/// the severity axis only applies to window kinds (throttle/link/sensor) —
/// point faults (device failure) ignore it. Random mode draws kind/device
/// from the lists and time/severity from the continuous span of the listed
/// values.
struct FaultSpace {
  std::vector<fault::FaultKind> kinds;
  std::vector<double> times_frac;  // injection time as fraction of horizon
  std::vector<int> devices;        // -1 = all devices
  std::vector<double> severities;  // remaining fraction, in (0, 1]
  double window_frac = 0.2;        // window-fault duration / horizon

  /// All four kinds, times {0.25, 0.75}, device -1, severity 0.5.
  static FaultSpace defaults();

  /// Grid cardinality for the given axes (severity collapsed for point
  /// faults).
  std::size_t grid_size() const;
};

/// One point of the fault space: the axis values plus the synthesized plan.
struct Scenario {
  std::size_t index = 0;
  std::string id;  // "s007-link_degrade-t0.50-d-1-sev0.40"
  fault::FaultKind kind = fault::FaultKind::kThermalThrottle;
  double time_frac = 0.0;
  int device = -1;
  double severity = 1.0;
  fault::FaultPlan plan;
};

/// Cartesian product of the axes, in axis order (kind, time, device,
/// severity); plan seeds derive from (seed, index) via splitmix64.
std::vector<Scenario> enumerate_grid(const FaultSpace& space,
                                     std::uint64_t seed, double horizon_s);

/// `count` seeded draws: kind/device uniform over the lists, time/severity
/// uniform over [min, max] of the listed values.
std::vector<Scenario> enumerate_random(const FaultSpace& space,
                                       std::uint64_t seed, double horizon_s,
                                       int count);

}  // namespace caraml::chaos
