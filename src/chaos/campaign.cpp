#include "chaos/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "core/inference.hpp"
#include "core/resilient.hpp"
#include "fault/checkpoint.hpp"
#include "jube/sweep.hpp"
#include "telemetry/json.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace caraml::chaos {

namespace json = telemetry::json;

namespace {

constexpr const char* kRuleConvergence = "chaos/invariant-convergence";
constexpr const char* kRuleCheckpoint = "chaos/invariant-checkpoint";
constexpr const char* kRuleManifest = "chaos/invariant-manifest";
constexpr const char* kRuleDeadline = "chaos/invariant-deadline";

std::string fnv1a_hex(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

std::string fmt(const char* pattern, double a, double b = 0.0,
                double c = 0.0) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), pattern, a, b, c);
  return buffer;
}

models::GptConfig gpt_model_from_name(const std::string& name) {
  if (name == "117M") return models::GptConfig::gpt_117m();
  if (name == "800M") return models::GptConfig::gpt_800m();
  if (name == "13B") return models::GptConfig::gpt_13b();
  if (name == "175B") return models::GptConfig::gpt_175b();
  throw InvalidArgument("unknown model: " + name +
                        " (expected 117M, 800M, 13B or 175B)");
}

void validate_config(const CampaignConfig& config) {
  if (config.workload != "llm" && config.workload != "resnet" &&
      config.workload != "inference") {
    throw InvalidArgument("campaign workload must be llm, resnet or "
                          "inference, got '" +
                          config.workload + "'");
  }
  if (config.mode != "grid" && config.mode != "random") {
    throw InvalidArgument("campaign mode must be grid or random, got '" +
                          config.mode + "'");
  }
  CARAML_CHECK_MSG(config.steps >= 1, "campaign steps must be >= 1");
  CARAML_CHECK_MSG(config.checkpoint_every >= 1,
                   "campaign checkpoint_every must be >= 1");
  CARAML_CHECK_MSG(config.retries >= 1, "campaign retries must be >= 1");
  CARAML_CHECK_MSG(std::isfinite(config.tolerance) && config.tolerance > 0.0,
                   "campaign tolerance must be finite and > 0");
  CARAML_CHECK_MSG(config.global_batch >= 1,
                   "campaign global_batch must be >= 1");
  CARAML_CHECK_MSG(config.devices >= 1, "campaign devices must be >= 1");
  if (config.workload == "llm") gpt_model_from_name(config.model);
  if (config.mode == "random") {
    CARAML_CHECK_MSG(config.scenarios >= 1,
                     "random campaign needs scenarios >= 1");
  }
}

/// What one scenario run produced, before invariant verification.
struct RunPieces {
  fault::RunReport report;
  double iteration_s = 0.0;
  double throughput = 0.0;  // effective samples/s of the degraded run
  std::int64_t samples_per_step = 0;
  std::string checkpoint_path;  // empty: workload has no checkpoint timeline
};

/// State shared between the campaign thread and (possibly abandoned)
/// scenario workers — held by shared_ptr so a worker outliving its deadline
/// never dangles.
struct CampaignShared {
  CampaignConfig config;
  OracleBaseline oracle;
  std::string campaign_fingerprint;
  std::string out_dir;
  std::string manifest_path;
  std::mutex manifest_mutex;
  jube::SweepCache cache;
  bool verbose = false;
};

core::ResilienceOptions resilience_for(const CampaignConfig& config,
                                       const fault::FaultPlan& plan,
                                       const std::string& checkpoint_dir) {
  core::ResilienceOptions options;
  options.plan = plan;
  options.retry.max_attempts = config.retries;
  options.retry.seed = plan.seed;
  options.steps = config.steps;
  options.checkpoint_every = config.checkpoint_every;
  options.checkpoint_cost_s = config.checkpoint_cost_s;
  options.restart_cost_s = config.restart_cost_s;
  options.checkpoint_dir = checkpoint_dir;
  return options;
}

RunPieces run_llm_pieces(const CampaignConfig& config,
                         const fault::FaultPlan& plan,
                         const std::string& checkpoint_dir) {
  core::LlmRunConfig run_config;
  run_config.system_tag = config.system;
  run_config.model = gpt_model_from_name(config.model);
  run_config.global_batch = config.global_batch;
  run_config.micro_batch = config.micro_batch;
  run_config.devices = config.devices;
  const auto result =
      core::run_llm_resilient(run_config, resilience_for(config, plan,
                                                         checkpoint_dir));
  RunPieces pieces;
  pieces.report = result.report;
  pieces.iteration_s = result.base.iteration_time_s;
  pieces.throughput = result.effective_tokens_per_s_total;
  pieces.samples_per_step =
      config.global_batch * run_config.model.seq_length;
  pieces.checkpoint_path = checkpoint_dir.empty()
                               ? std::string()
                               : checkpoint_dir + "/checkpoint.json";
  return pieces;
}

RunPieces run_resnet_pieces(const CampaignConfig& config,
                            const fault::FaultPlan& plan,
                            const std::string& checkpoint_dir) {
  core::ResnetRunConfig run_config;
  run_config.system_tag = config.system;
  run_config.global_batch = config.global_batch;
  run_config.devices = config.devices;
  const auto result = core::run_resnet_resilient(
      run_config, resilience_for(config, plan, checkpoint_dir));
  RunPieces pieces;
  pieces.report = result.report;
  pieces.iteration_s = result.base.iteration_time_s;
  pieces.throughput = result.effective_images_per_s_total;
  pieces.samples_per_step = result.final_global_batch;
  pieces.checkpoint_path = checkpoint_dir.empty()
                               ? std::string()
                               : checkpoint_dir + "/checkpoint.json";
  return pieces;
}

RunPieces run_inference_pieces(const CampaignConfig& config,
                               const fault::FaultPlan& plan) {
  core::InferenceConfig run_config;
  run_config.system_tag = config.system;
  run_config.model = gpt_model_from_name(config.model);
  run_config.batch = config.global_batch;
  run_config.prompt_tokens = config.prompt_tokens;
  run_config.generate_tokens = config.generate_tokens;

  RunPieces pieces;
  pieces.report.fault_seed = plan.seed;
  pieces.report.fault_fingerprint = plan.fingerprint();
  pieces.report.fault_events = static_cast<std::int64_t>(plan.events.size());

  fault::RetryPolicy retry;
  retry.max_attempts = config.retries;
  retry.seed = plan.seed;
  core::InferenceResult result;
  const fault::RetryOutcome outcome = fault::retry_with_backoff(
      "chaos/inference", retry,
      [&]() { result = core::run_llm_inference(run_config); },
      [](double) {});
  pieces.report.retry_backoff_s = outcome.total_backoff_s;
  if (!outcome.succeeded) {
    pieces.report.status = "failed";
    pieces.report.incidents.push_back(outcome.last_error);
    return pieces;
  }
  if (result.oom) {
    pieces.report.status = "failed";
    pieces.report.incidents.push_back("inference OOM: " + result.oom_message);
    return pieces;
  }
  pieces.iteration_s = result.decode_time_per_token_s;
  pieces.throughput = result.tokens_per_s_total;
  pieces.report.wall_time_s = result.request_latency_s;
  return pieces;
}

RunPieces run_pieces(const CampaignConfig& config,
                     const fault::FaultPlan& plan,
                     const std::string& checkpoint_dir) {
  if (config.workload == "llm")
    return run_llm_pieces(config, plan, checkpoint_dir);
  if (config.workload == "resnet")
    return run_resnet_pieces(config, plan, checkpoint_dir);
  return run_inference_pieces(config, plan);
}

bool survivable_for(const CampaignConfig& config, const Scenario& scenario) {
  // Single-event plans: a device failure needs exactly one restart from the
  // budget (max_attempts - 1); every window fault degrades but completes.
  if (scenario.kind != fault::FaultKind::kDeviceFailure) return true;
  return config.retries >= 2;
}

/// Compounded average derate the plan explains over the whole run window —
/// the same window apply_derates folds into the run config.
double derate_bound_for(const fault::FaultPlan& plan) {
  double window = plan.horizon_s;
  for (const auto& event : plan.events) {
    window = std::max(window, event.time_s + event.duration_s);
  }
  if (window <= 0.0) return 1.0;
  return plan.average_derate(-1, 0.0, window).time_factor *
         plan.average_link_derate(-1, 0.0, window);
}

InvariantResult check_manifest_flush(CampaignShared& shared,
                                     const Scenario& scenario,
                                     const fault::RunReport& report,
                                     const RunPieces& pieces) {
  InvariantResult result;
  result.rule = kRuleManifest;
  telemetry::Manifest manifest;
  manifest.command = "chaos";
  manifest.timestamp = telemetry::iso8601_utc_now();
  manifest.system_tag = shared.config.system;
  manifest.git_revision = telemetry::git_describe();
  manifest.rng_seed = scenario.plan.seed;
  manifest.config = {{"campaign", shared.config.name},
                     {"workload", shared.config.workload},
                     {"scenario", scenario.id},
                     {"kind", fault::fault_kind_name(scenario.kind)}};
  manifest.status = report.status;
  manifest.fault_seed = report.fault_seed;
  manifest.fault_fingerprint = report.fault_fingerprint;
  manifest.fault_events = report.fault_events;
  manifest.oom_retries = report.oom_retries;
  manifest.restarts = report.restarts;
  manifest.checkpoints = report.checkpoints_saved;
  manifest.steps_replayed = report.steps_replayed;
  manifest.results = {{"time_to_recover_s", report.lost_time_s},
                     {"retry_backoff_s", report.retry_backoff_s},
                     {"effective_throughput", pieces.throughput}};
  try {
    std::lock_guard<std::mutex> lock(shared.manifest_mutex);
    telemetry::append_manifest_line(manifest, shared.manifest_path);
    // Read the file back: the line must actually have reached the disk with
    // parseable content — this is the "flushed even on failed runs" check.
    std::ifstream in(shared.manifest_path);
    std::string line;
    std::string last;
    while (std::getline(in, line)) {
      if (!line.empty()) last = line;
    }
    if (last.empty()) {
      result.detail = "manifest line not found after append: " +
                      shared.manifest_path;
      return result;
    }
    const telemetry::Manifest parsed =
        telemetry::Manifest::from_json_line(last);
    if (parsed.status != report.status) {
      result.detail = "manifest status '" + parsed.status +
                      "' != run status '" + report.status + "'";
      return result;
    }
    if (parsed.fault_fingerprint != scenario.plan.fingerprint()) {
      result.detail = "manifest fault fingerprint '" +
                      parsed.fault_fingerprint + "' != plan fingerprint '" +
                      scenario.plan.fingerprint() + "'";
      return result;
    }
    if (parsed.fault_events !=
        static_cast<std::int64_t>(scenario.plan.events.size())) {
      result.detail = "manifest fault_events mismatch";
      return result;
    }
  } catch (const std::exception& e) {
    result.detail = std::string("manifest flush/parse failed: ") + e.what();
    return result;
  }
  result.passed = true;
  result.detail = "manifest flushed with status '" + report.status +
                  "' and fault provenance";
  return result;
}

ScenarioOutcome outcome_skeleton(const Scenario& scenario,
                                 const CampaignConfig& config) {
  ScenarioOutcome outcome;
  outcome.index = scenario.index;
  outcome.id = scenario.id;
  outcome.kind = fault::fault_kind_name(scenario.kind);
  outcome.time_frac = scenario.time_frac;
  outcome.device = scenario.device;
  outcome.severity = scenario.severity;
  outcome.plan_fingerprint = scenario.plan.fingerprint();
  outcome.survivable = survivable_for(config, scenario);
  return outcome;
}

ScenarioOutcome run_one_scenario(const std::shared_ptr<CampaignShared>& shared,
                                 const Scenario& scenario) {
  TELEMETRY_SPAN("chaos/scenario");
  const CampaignConfig& config = shared->config;
  ScenarioOutcome outcome = outcome_skeleton(scenario, config);

  const bool has_checkpoints = config.workload != "inference";
  const std::string checkpoint_dir =
      has_checkpoints ? shared->out_dir + "/ckpt/" + scenario.id
                      : std::string();
  const RunPieces pieces = run_pieces(config, scenario.plan, checkpoint_dir);
  const fault::RunReport& report = pieces.report;

  outcome.status = report.status;
  outcome.restarts = report.restarts;
  outcome.oom_retries = report.oom_retries;
  outcome.steps_replayed = report.steps_replayed;
  outcome.time_to_recover_s = report.lost_time_s;
  outcome.retry_backoff_s = report.retry_backoff_s;
  outcome.checkpoint_overhead_s = report.checkpoint_overhead_s;
  outcome.goodput_frac = shared->oracle.throughput > 0.0
                             ? pieces.throughput / shared->oracle.throughput
                             : 0.0;

  if (config.workload == "inference") {
    InvariantResult convergence;
    convergence.rule = kRuleConvergence;
    const double reference = shared->oracle.throughput;
    if (report.status == "failed") {
      convergence.detail = "inference run failed: " +
                           (report.incidents.empty() ? std::string("unknown")
                                                     : report.incidents.back());
    } else if (std::abs(pieces.throughput - reference) >
               1e-9 * std::max(1.0, reference)) {
      convergence.detail =
          fmt("inference throughput %.6g != oracle %.6g (faults must not "
              "change a deterministic replay)",
              pieces.throughput, reference);
    } else {
      convergence.passed = true;
      convergence.detail = "matches oracle exactly";
    }
    outcome.invariants.push_back(convergence);
    outcome.invariants.push_back(
        {kRuleCheckpoint, true, "inference has no checkpoint timeline"});
  } else {
    outcome.invariants.push_back(check_convergence(
        report, pieces.iteration_s, pieces.throughput,
        config.checkpoint_cost_s, shared->oracle,
        derate_bound_for(scenario.plan), config.tolerance,
        outcome.survivable));
    outcome.invariants.push_back(check_checkpoint(
        pieces.checkpoint_path, report, scenario.plan.seed,
        pieces.samples_per_step, config.checkpoint_every));
  }
  outcome.invariants.push_back(
      check_manifest_flush(*shared, scenario, report, pieces));
  InvariantResult deadline;
  deadline.rule = kRuleDeadline;
  deadline.passed = true;
  deadline.detail =
      config.deadline_s > 0.0
          ? fmt("completed within the %.0fs deadline", config.deadline_s)
          : "watchdog disabled (deadline_s <= 0)";
  outcome.invariants.push_back(deadline);
  return outcome;
}

// --- scenario result cache (sweep-style) ------------------------------------------

std::string invariant_key(const std::string& rule) {
  // "chaos/invariant-convergence" -> "inv_convergence"
  const auto dash = rule.rfind('-');
  return "inv_" + rule.substr(dash + 1);
}

std::string scenario_cache_fingerprint(const CampaignShared& shared,
                                       const Scenario& scenario) {
  jube::Context context;
  context["index"] = std::to_string(scenario.index);
  context["kind"] = fault::fault_kind_name(scenario.kind);
  context["time_frac"] = json::format_number(scenario.time_frac);
  context["device"] = std::to_string(scenario.device);
  context["severity"] = json::format_number(scenario.severity);
  return jube::workpackage_fingerprint(
      "chaos:" + shared.config.name, context, {},
      shared.campaign_fingerprint + "|" + scenario.plan.fingerprint());
}

void cache_store(CampaignShared& shared, const Scenario& scenario,
                 const std::string& fingerprint,
                 const ScenarioOutcome& outcome) {
  if (!shared.cache.enabled()) return;
  jube::Workpackage wp;
  wp.context["index"] = std::to_string(scenario.index);
  wp.context["kind"] = outcome.kind;
  wp.status = outcome.status;
  auto& a = wp.analysed;
  a["status"] = outcome.status;
  a["survivable"] = outcome.survivable ? "1" : "0";
  a["restarts"] = std::to_string(outcome.restarts);
  a["oom_retries"] = std::to_string(outcome.oom_retries);
  a["steps_replayed"] = std::to_string(outcome.steps_replayed);
  a["time_to_recover_s"] = json::format_number(outcome.time_to_recover_s);
  a["retry_backoff_s"] = json::format_number(outcome.retry_backoff_s);
  a["checkpoint_overhead_s"] =
      json::format_number(outcome.checkpoint_overhead_s);
  a["goodput_frac"] = json::format_number(outcome.goodput_frac);
  for (const auto& invariant : outcome.invariants) {
    const std::string key = invariant_key(invariant.rule);
    a[key] = invariant.passed ? "pass" : "fail";
    a[key + "_detail"] = invariant.detail;
  }
  shared.cache.append(fingerprint, "chaos:" + shared.config.name, wp);
}

bool cache_restore(const jube::Workpackage& wp, const Scenario& scenario,
                   const CampaignConfig& config, ScenarioOutcome& outcome) {
  const auto& a = wp.analysed;
  const auto get = [&](const std::string& key) -> const std::string& {
    const auto it = a.find(key);
    if (it == a.end()) throw NotFound("cache entry missing " + key);
    return it->second;
  };
  try {
    outcome = outcome_skeleton(scenario, config);
    outcome.status = get("status");
    outcome.survivable = get("survivable") == "1";
    outcome.restarts = static_cast<int>(std::strtol(get("restarts").c_str(),
                                                    nullptr, 10));
    outcome.oom_retries = static_cast<int>(
        std::strtol(get("oom_retries").c_str(), nullptr, 10));
    outcome.steps_replayed =
        std::strtoll(get("steps_replayed").c_str(), nullptr, 10);
    outcome.time_to_recover_s =
        std::strtod(get("time_to_recover_s").c_str(), nullptr);
    outcome.retry_backoff_s =
        std::strtod(get("retry_backoff_s").c_str(), nullptr);
    outcome.checkpoint_overhead_s =
        std::strtod(get("checkpoint_overhead_s").c_str(), nullptr);
    outcome.goodput_frac = std::strtod(get("goodput_frac").c_str(), nullptr);
    for (const char* rule : {kRuleConvergence, kRuleCheckpoint, kRuleManifest,
                             kRuleDeadline}) {
      const std::string key = invariant_key(rule);
      outcome.invariants.push_back(
          {rule, get(key) == "pass", get(key + "_detail")});
    }
    outcome.from_cache = true;
    return true;
  } catch (const std::exception&) {
    return false;  // malformed entry: treat as a miss and re-run
  }
}

/// Shared watchdog pool for deadline-bounded scenarios. Intentionally leaked
/// (see jube's timed_attempt_pool): a genuinely hung scenario occupies its
/// worker forever; on timeout the pool grows by one worker so only hung
/// scenarios cost a thread.
ThreadPool& chaos_watchdog_pool() {
  static ThreadPool* pool = new ThreadPool(ThreadPool::default_threads());
  return *pool;
}

ScenarioOutcome run_scenario_bounded(
    const std::shared_ptr<CampaignShared>& shared, const Scenario& scenario) {
  const CampaignConfig& config = shared->config;
  const std::string fingerprint =
      scenario_cache_fingerprint(*shared, scenario);
  if (shared->cache.enabled()) {
    jube::Workpackage cached;
    ScenarioOutcome outcome;
    if (shared->cache.lookup(fingerprint, cached) &&
        cache_restore(cached, scenario, config, outcome)) {
      return outcome;
    }
  }

  ScenarioOutcome outcome;
  if (config.deadline_s <= 0.0) {
    outcome = run_one_scenario(shared, scenario);
  } else {
    // Scenario copies go in by value: a worker abandoned on timeout must
    // never touch campaign-thread locals.
    auto future = chaos_watchdog_pool().submit(
        [shared, scenario]() { return run_one_scenario(shared, scenario); });
    if (future.wait_for(std::chrono::duration<double>(config.deadline_s)) ==
        std::future_status::timeout) {
      chaos_watchdog_pool().add_worker();
      log::warn() << "chaos scenario " << scenario.id << " exceeded its "
                  << config.deadline_s
                  << "s deadline; watchdog compensated the pool";
      ScenarioOutcome hung = outcome_skeleton(scenario, config);
      hung.status = "hung";
      const std::string skipped =
          fmt("not evaluated: scenario exceeded the %.0fs deadline",
              config.deadline_s);
      hung.invariants = {
          {kRuleConvergence, false, skipped},
          {kRuleCheckpoint, false, skipped},
          {kRuleManifest, false, skipped},
          {kRuleDeadline, false,
           fmt("scenario still running after %.0fs (watchdog fired; pool "
               "worker compensated)",
               config.deadline_s)}};
      return hung;  // never cached: the verdict is wall-clock dependent
    }
    outcome = future.get();
  }
  cache_store(*shared, scenario, fingerprint, outcome);
  return outcome;
}

OracleBaseline run_oracle(const CampaignConfig& config) {
  TELEMETRY_SPAN("chaos/oracle");
  const RunPieces pieces = run_pieces(config, fault::FaultPlan{}, "");
  if (pieces.report.status != "ok") {
    throw Error(
        "campaign oracle run did not finish clean (status '" +
        pieces.report.status +
        "'): fix the workload shape before exploring the fault space");
  }
  OracleBaseline oracle;
  oracle.iteration_s = pieces.iteration_s;
  oracle.wall_time_s = pieces.report.wall_time_s;
  oracle.throughput = pieces.throughput;
  oracle.checkpoints = pieces.report.checkpoints_saved;
  return oracle;
}

}  // namespace

// --- invariant checks -------------------------------------------------------------

InvariantResult check_convergence(const fault::RunReport& report,
                                  double iteration_s, double throughput,
                                  double checkpoint_cost_s,
                                  const OracleBaseline& oracle,
                                  double derate_bound, double tolerance,
                                  bool survivable) {
  InvariantResult result;
  result.rule = kRuleConvergence;
  if (!survivable) {
    if (report.status != "failed") {
      result.detail = "expected restart-budget exhaustion but run ended '" +
                      report.status + "'";
      return result;
    }
    if (report.completed()) {
      result.detail = "failed run claims all steps completed";
      return result;
    }
    if (report.incidents.empty()) {
      result.detail = "failed run carries no incident annotations";
      return result;
    }
    result.passed = true;
    result.detail = fmt("failed honestly at step %.0f with partial accounting",
                        static_cast<double>(report.steps_completed));
    return result;
  }

  if (report.status == "failed" || !report.completed()) {
    result.detail =
        fmt("survivable fault did not converge: %.0f of %.0f steps",
            static_cast<double>(report.steps_completed),
            static_cast<double>(report.steps_total));
    return result;
  }
  // Wall-time conservation: every second is accounted for by steps,
  // checkpoints, or recovery.
  const double expected =
      static_cast<double>(report.steps_total) * iteration_s +
      static_cast<double>(report.checkpoints_saved) * checkpoint_cost_s +
      report.lost_time_s;
  if (std::abs(report.wall_time_s - expected) >
      1e-6 * std::max(1.0, report.wall_time_s)) {
    result.detail = fmt(
        "wall time %.6fs breaks conservation (steps + checkpoints + lost = "
        "%.6fs)",
        report.wall_time_s, expected);
    return result;
  }
  // The slowdown must be explained by the plan's derates plus recovery time,
  // within tolerance — anything beyond that is an unexplained regression.
  const double allowed =
      oracle.wall_time_s * derate_bound * (1.0 + tolerance) +
      report.lost_time_s;
  if (report.wall_time_s > allowed) {
    result.detail = fmt(
        "wall time %.3fs exceeds explained degradation (allowed %.3fs at "
        "derate x%.3f)",
        report.wall_time_s, allowed, derate_bound);
    return result;
  }
  if (throughput > oracle.throughput * (1.0 + 1e-9)) {
    result.detail = fmt("throughput %.6g beats the fault-free oracle %.6g",
                        throughput, oracle.throughput);
    return result;
  }
  result.passed = true;
  result.detail = fmt("converged at %.1f%% of oracle goodput (derate x%.3f "
                      "explains the gap)",
                      oracle.throughput > 0.0
                          ? 100.0 * throughput / oracle.throughput
                          : 0.0,
                      derate_bound);
  return result;
}

InvariantResult check_checkpoint(const std::string& path,
                                 const fault::RunReport& report,
                                 std::uint64_t plan_seed,
                                 std::int64_t samples_per_step,
                                 std::int64_t checkpoint_every) {
  InvariantResult result;
  result.rule = kRuleCheckpoint;
  if (report.checkpoints_saved == 0) {
    if (!path.empty() && std::filesystem::exists(path)) {
      result.detail = "checkpoint file exists but the report saved none";
      return result;
    }
    result.passed = true;
    result.detail = "no checkpoint boundary crossed";
    return result;
  }
  std::string bytes;
  {
    std::ifstream in(path);
    if (!in) {
      result.detail = "checkpoint missing after " +
                      std::to_string(report.checkpoints_saved) +
                      " recorded save(s): " + path;
      return result;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  fault::TrainingCheckpoint checkpoint;
  try {
    checkpoint = fault::TrainingCheckpoint::load(path);
  } catch (const std::exception& e) {
    result.detail = std::string("checkpoint rejected on reload: ") + e.what();
    return result;
  }
  // Byte-exact restore: re-serializing the loaded state must reproduce the
  // file, fingerprint included.
  if (checkpoint.to_json() + "\n" != bytes) {
    result.detail = "checkpoint does not re-serialize byte-exactly";
    return result;
  }
  if (checkpoint.step <= 0 || checkpoint.step % checkpoint_every != 0) {
    result.detail = fmt("checkpoint step %.0f is not a checkpoint boundary "
                        "(every %.0f)",
                        static_cast<double>(checkpoint.step),
                        static_cast<double>(checkpoint_every));
    return result;
  }
  // Training must resume from the right step: the last boundary the run
  // crossed (for a failed run, exactly where its partial accounting stops).
  const std::int64_t expected_step =
      report.status == "failed"
          ? report.steps_completed
          : checkpoint_every * ((report.steps_total - 1) / checkpoint_every);
  if (checkpoint.step != expected_step) {
    result.detail = fmt("checkpoint at step %.0f, expected %.0f",
                        static_cast<double>(checkpoint.step),
                        static_cast<double>(expected_step));
    return result;
  }
  if (checkpoint.samples_consumed != checkpoint.step * samples_per_step) {
    result.detail = fmt("sample accounting off: %.0f consumed at step %.0f",
                        static_cast<double>(checkpoint.samples_consumed),
                        static_cast<double>(checkpoint.step));
    return result;
  }
  if (checkpoint.sampler_state !=
      (plan_seed ^ static_cast<std::uint64_t>(checkpoint.step))) {
    result.detail = "sampler RNG state does not match (seed, step)";
    return result;
  }
  result.passed = true;
  result.detail = fmt("restores byte-exactly at step %.0f",
                      static_cast<double>(checkpoint.step));
  return result;
}

// --- config -----------------------------------------------------------------------

CampaignConfig CampaignConfig::from_yaml(const yaml::NodePtr& root) {
  CARAML_CHECK_MSG(root && root->is_map(), "campaign YAML must be a map");
  const yaml::NodePtr body =
      root->has("campaign") ? root->at("campaign") : root;
  CARAML_CHECK_MSG(body->is_map(), "campaign must be a map");
  CampaignConfig config;
  config.name = body->get_or("name", config.name);
  config.seed = static_cast<std::uint64_t>(body->get_int_or("seed", 0));
  config.workload = body->get_or("workload", config.workload);
  config.system = body->get_or("system", config.system);
  config.mode = body->get_or("mode", config.mode);
  config.scenarios =
      static_cast<int>(body->get_int_or("scenarios", config.scenarios));
  config.steps = body->get_int_or("steps", config.steps);
  config.checkpoint_every =
      body->get_int_or("checkpoint_every", config.checkpoint_every);
  config.checkpoint_cost_s =
      body->get_double_or("checkpoint_cost_s", config.checkpoint_cost_s);
  config.restart_cost_s =
      body->get_double_or("restart_cost_s", config.restart_cost_s);
  config.retries = static_cast<int>(body->get_int_or("retries", config.retries));
  config.deadline_s = body->get_double_or("deadline_s", config.deadline_s);
  config.tolerance = body->get_double_or("tolerance", config.tolerance);
  config.model = body->get_or("model", config.model);
  config.global_batch = body->get_int_or("global_batch", config.global_batch);
  config.micro_batch = body->get_int_or("micro_batch", config.micro_batch);
  config.devices = static_cast<int>(body->get_int_or("devices", config.devices));
  config.prompt_tokens =
      body->get_int_or("prompt_tokens", config.prompt_tokens);
  config.generate_tokens =
      body->get_int_or("generate_tokens", config.generate_tokens);
  if (const yaml::NodePtr space = body->find("space")) {
    CARAML_CHECK_MSG(space->is_map(), "campaign space must be a map");
    if (const yaml::NodePtr kinds = space->find("kinds")) {
      CARAML_CHECK_MSG(kinds->is_sequence(), "space kinds must be a list");
      config.space.kinds.clear();
      for (const auto& node : kinds->items()) {
        config.space.kinds.push_back(
            fault::fault_kind_from_name(node->as_string()));
      }
    }
    if (const yaml::NodePtr times = space->find("times")) {
      CARAML_CHECK_MSG(times->is_sequence(), "space times must be a list");
      config.space.times_frac.clear();
      for (const auto& node : times->items()) {
        config.space.times_frac.push_back(node->as_double());
      }
    }
    if (const yaml::NodePtr devices = space->find("devices")) {
      CARAML_CHECK_MSG(devices->is_sequence(),
                       "space devices must be a list");
      config.space.devices.clear();
      for (const auto& node : devices->items()) {
        config.space.devices.push_back(static_cast<int>(node->as_int()));
      }
    }
    if (const yaml::NodePtr severities = space->find("severities")) {
      CARAML_CHECK_MSG(severities->is_sequence(),
                       "space severities must be a list");
      config.space.severities.clear();
      for (const auto& node : severities->items()) {
        config.space.severities.push_back(node->as_double());
      }
    }
    config.space.window_frac =
        space->get_double_or("window_frac", config.space.window_frac);
  }
  validate_config(config);
  return config;
}

CampaignConfig CampaignConfig::from_yaml_file(const std::string& path) {
  return from_yaml(yaml::parse_file(path));
}

std::string CampaignConfig::fingerprint() const {
  std::ostringstream out;
  out << "name=" << name << ";seed=" << seed << ";workload=" << workload
      << ";system=" << system << ";mode=" << mode
      << ";scenarios=" << scenarios << ";steps=" << steps
      << ";every=" << checkpoint_every
      << ";ckpt_cost=" << json::format_number(checkpoint_cost_s)
      << ";restart_cost=" << json::format_number(restart_cost_s)
      << ";retries=" << retries
      << ";tolerance=" << json::format_number(tolerance) << ";model=" << model
      << ";batch=" << global_batch << ";micro=" << micro_batch
      << ";devices=" << devices << ";prompt=" << prompt_tokens
      << ";generate=" << generate_tokens
      << ";window=" << json::format_number(space.window_frac) << ";kinds=";
  for (const auto kind : space.kinds) out << fault::fault_kind_name(kind) << ",";
  out << ";times=";
  for (const double t : space.times_frac) out << json::format_number(t) << ",";
  out << ";devs=";
  for (const int d : space.devices) out << d << ",";
  out << ";sev=";
  for (const double s : space.severities) out << json::format_number(s) << ",";
  return fnv1a_hex(out.str());
}

// --- report -----------------------------------------------------------------------

int ScenarioOutcome::violations() const {
  int count = 0;
  for (const auto& invariant : invariants) {
    if (!invariant.passed) ++count;
  }
  return count;
}

int CampaignReport::passed() const { return total() - violated(); }

int CampaignReport::violated() const {
  int count = 0;
  for (const auto& scenario : scenarios) {
    if (scenario.violations() > 0) ++count;
  }
  return count;
}

int CampaignReport::hung() const {
  int count = 0;
  for (const auto& scenario : scenarios) {
    if (scenario.status == "hung") ++count;
  }
  return count;
}

int CampaignReport::failed_runs() const {
  int count = 0;
  for (const auto& scenario : scenarios) {
    if (scenario.status == "failed") ++count;
  }
  return count;
}

int CampaignReport::cache_hits() const {
  int count = 0;
  for (const auto& scenario : scenarios) {
    if (scenario.from_cache) ++count;
  }
  return count;
}

void CampaignReport::to_diagnostics(const std::string& file,
                                    check::DiagnosticList& diags) const {
  for (const auto& scenario : scenarios) {
    for (const auto& invariant : scenario.invariants) {
      if (invariant.passed) continue;
      diags.report(invariant.rule, {file, 0, 0},
                   scenario.id + ": " + invariant.detail);
    }
  }
}

std::string CampaignReport::render_human() const {
  std::ostringstream out;
  out << "chaos campaign '" << config.name << "': " << config.workload
      << " on " << config.system << ", " << config.mode << " over "
      << total() << " scenarios (seed " << config.seed << ", fingerprint "
      << campaign_fingerprint << ")\n";
  out << fmt("oracle: wall %.2fs, throughput %.1f/s, ",
             oracle.wall_time_s, oracle.throughput)
      << oracle.checkpoints << " checkpoint(s)\n";
  TextTable table({"scenario", "kind", "t", "dev", "sev", "status", "restarts",
                   "replayed", "recover_s", "backoff_s", "goodput",
                   "invariants"});
  for (const auto& s : scenarios) {
    const int violations = s.violations();
    table.add_row(
        {s.id, s.kind, fmt("%.2f", s.time_frac), std::to_string(s.device),
         fmt("%.2f", s.severity), s.status + (s.from_cache ? " (cached)" : ""),
         std::to_string(s.restarts), std::to_string(s.steps_replayed),
         fmt("%.2f", s.time_to_recover_s), fmt("%.2f", s.retry_backoff_s),
         fmt("%.1f%%", 100.0 * s.goodput_frac),
         violations == 0
             ? std::string("4/4 ok")
             : std::to_string(violations) + " VIOLATED"});
  }
  out << table.render();
  out << "summary: " << total() << " scenarios, " << passed() << " passed, "
      << violated() << " violated, " << hung() << " hung, " << failed_runs()
      << " failed run(s), " << cache_hits() << " cache hit(s)\n";
  return out.str();
}

std::string CampaignReport::render_json() const {
  json::Value root{json::Object{}};
  root.set("version", 1);
  json::Value campaign{json::Object{}};
  campaign.set("name", config.name);
  campaign.set("seed", static_cast<std::int64_t>(config.seed));
  campaign.set("workload", config.workload);
  campaign.set("system", config.system);
  campaign.set("mode", config.mode);
  campaign.set("steps", config.steps);
  campaign.set("checkpoint_every", config.checkpoint_every);
  campaign.set("retries", config.retries);
  campaign.set("tolerance", config.tolerance);
  campaign.set("deadline_s", config.deadline_s);
  campaign.set("fingerprint", campaign_fingerprint);
  root.set("campaign", std::move(campaign));

  json::Value oracle_value{json::Object{}};
  oracle_value.set("iteration_s", oracle.iteration_s);
  oracle_value.set("wall_time_s", oracle.wall_time_s);
  oracle_value.set("throughput", oracle.throughput);
  oracle_value.set("checkpoints", oracle.checkpoints);
  root.set("oracle", std::move(oracle_value));

  json::Value summary{json::Object{}};
  summary.set("scenarios", total());
  summary.set("passed", passed());
  summary.set("violated", violated());
  summary.set("hung", hung());
  summary.set("failed_runs", failed_runs());
  root.set("summary", std::move(summary));

  json::Array items;
  for (const auto& s : scenarios) {
    json::Value item{json::Object{}};
    item.set("id", s.id);
    item.set("kind", s.kind);
    item.set("time_frac", s.time_frac);
    item.set("device", s.device);
    item.set("severity", s.severity);
    item.set("plan_fingerprint", s.plan_fingerprint);
    item.set("status", s.status);
    item.set("survivable", s.survivable);
    item.set("restarts", s.restarts);
    item.set("oom_retries", s.oom_retries);
    item.set("steps_replayed", s.steps_replayed);
    item.set("time_to_recover_s", s.time_to_recover_s);
    item.set("retry_backoff_s", s.retry_backoff_s);
    item.set("checkpoint_overhead_s", s.checkpoint_overhead_s);
    item.set("goodput_frac", s.goodput_frac);
    item.set("violations", s.violations());
    json::Array invariants;
    for (const auto& invariant : s.invariants) {
      json::Value entry{json::Object{}};
      entry.set("rule", invariant.rule);
      entry.set("passed", invariant.passed);
      entry.set("detail", invariant.detail);
      invariants.push_back(std::move(entry));
    }
    item.set("invariants", json::Value(std::move(invariants)));
    items.push_back(std::move(item));
  }
  root.set("scenarios", json::Value(std::move(items)));
  return json::dump(root);
}

// --- campaign runner --------------------------------------------------------------

CampaignReport run_campaign(const CampaignConfig& config,
                            const CampaignOptions& options) {
  TELEMETRY_SPAN("chaos/campaign");
  validate_config(config);

  CampaignReport report;
  report.config = config;
  report.campaign_fingerprint = config.fingerprint();

  report.oracle = run_oracle(config);
  // Injection-time fractions resolve against the fault-free wall time, so
  // every scheduled fault lands inside the run it attacks.
  const double horizon_s = std::max(report.oracle.wall_time_s, 1.0);
  std::vector<Scenario> scenarios =
      config.mode == "grid"
          ? enumerate_grid(config.space, config.seed, horizon_s)
          : enumerate_random(config.space, config.seed, horizon_s,
                             config.scenarios);
  CARAML_CHECK_MSG(!scenarios.empty(), "campaign expanded to zero scenarios");

  auto shared = std::make_shared<CampaignShared>();
  shared->config = config;
  shared->oracle = report.oracle;
  shared->campaign_fingerprint = report.campaign_fingerprint;
  shared->out_dir =
      options.out_dir.empty()
          ? (std::filesystem::temp_directory_path() /
             ("caraml-chaos-" + report.campaign_fingerprint))
                .string()
          : options.out_dir;
  shared->manifest_path = shared->out_dir + "/manifest.jsonl";
  shared->verbose = options.verbose;
  if (!options.cache_path.empty()) shared->cache.open(options.cache_path);

  std::vector<ScenarioOutcome> outcomes(scenarios.size());
  const int jobs = options.jobs > 0
                       ? options.jobs
                       : static_cast<int>(ThreadPool::default_threads());
  if (jobs <= 1 || scenarios.size() <= 1) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      outcomes[i] = run_scenario_bounded(shared, scenarios[i]);
      if (shared->verbose) {
        log::info() << "chaos " << outcomes[i].id << ": "
                    << outcomes[i].status << ", " << outcomes[i].violations()
                    << " violation(s)";
      }
    }
  } else {
    ThreadPool pool(static_cast<std::size_t>(jobs));
    std::vector<std::future<ScenarioOutcome>> futures;
    futures.reserve(scenarios.size());
    for (const auto& scenario : scenarios) {
      futures.push_back(pool.submit(
          [shared, scenario]() {
            return run_scenario_bounded(shared, scenario);
          }));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      outcomes[i] = futures[i].get();
    }
  }

  // Rank: most violated first, then lowest goodput, then stable by index —
  // the report leads with what needs attention.
  std::stable_sort(outcomes.begin(), outcomes.end(),
                   [](const ScenarioOutcome& a, const ScenarioOutcome& b) {
                     if (a.violations() != b.violations()) {
                       return a.violations() > b.violations();
                     }
                     if (a.goodput_frac != b.goodput_frac) {
                       return a.goodput_frac < b.goodput_frac;
                     }
                     return a.index < b.index;
                   });
  report.scenarios = std::move(outcomes);
  return report;
}

}  // namespace caraml::chaos
