#include "chaos/scenario.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace caraml::chaos {

namespace {

bool is_window_kind(fault::FaultKind kind) {
  return kind != fault::FaultKind::kDeviceFailure;
}

/// splitmix64 over (seed, index), matching the sweep engine's per-
/// workpackage seed derivation: scenario plans are order-free and identical
/// across job counts.
std::uint64_t derive_scenario_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed ^ (0x9E3779B97F4A7C15ULL * (index + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Scenario make_scenario(const FaultSpace& space, std::uint64_t seed,
                       std::size_t index, fault::FaultKind kind,
                       double time_frac, int device, double severity,
                       double horizon_s) {
  Scenario scenario;
  scenario.index = index;
  scenario.kind = kind;
  scenario.time_frac = time_frac;
  scenario.device = device;
  scenario.severity = is_window_kind(kind) ? severity : 1.0;

  fault::FaultEvent event;
  event.kind = kind;
  event.time_s = time_frac * horizon_s;
  event.duration_s = is_window_kind(kind) ? space.window_frac * horizon_s : 0.0;
  event.device = device;
  event.severity = scenario.severity;
  scenario.plan = fault::FaultPlan::single(derive_scenario_seed(seed, index),
                                           horizon_s, event);

  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "s%03zu-%s-t%.2f-d%d-sev%.2f", index,
                fault::fault_kind_name(kind).c_str(), time_frac, device,
                scenario.severity);
  scenario.id = buffer;
  return scenario;
}

void validate_space(const FaultSpace& space, double horizon_s) {
  CARAML_CHECK_MSG(horizon_s > 0.0, "fault-space horizon must be positive");
  CARAML_CHECK_MSG(!space.kinds.empty(), "fault space needs >= 1 kind");
  CARAML_CHECK_MSG(!space.times_frac.empty(), "fault space needs >= 1 time");
  CARAML_CHECK_MSG(!space.devices.empty(), "fault space needs >= 1 device");
  CARAML_CHECK_MSG(!space.severities.empty(),
                   "fault space needs >= 1 severity");
  CARAML_CHECK_MSG(space.window_frac > 0.0 && space.window_frac <= 1.0,
                   "fault-space window_frac must be in (0, 1]");
  for (const double t : space.times_frac) {
    CARAML_CHECK_MSG(t >= 0.0 && t < 1.0,
                     "fault-space times must be in [0, 1)");
  }
  for (const double s : space.severities) {
    CARAML_CHECK_MSG(s > 0.0 && s <= 1.0,
                     "fault-space severities must be in (0, 1]");
  }
}

}  // namespace

FaultSpace FaultSpace::defaults() {
  FaultSpace space;
  space.kinds = {fault::FaultKind::kDeviceFailure,
                 fault::FaultKind::kThermalThrottle,
                 fault::FaultKind::kLinkDegrade,
                 fault::FaultKind::kSensorDropout};
  space.times_frac = {0.25, 0.75};
  space.devices = {-1};
  space.severities = {0.5};
  return space;
}

std::size_t FaultSpace::grid_size() const {
  std::size_t count = 0;
  for (const auto kind : kinds) {
    const std::size_t severity_arms =
        is_window_kind(kind) ? severities.size() : 1;
    count += times_frac.size() * devices.size() * severity_arms;
  }
  return count;
}

std::vector<Scenario> enumerate_grid(const FaultSpace& space,
                                     std::uint64_t seed, double horizon_s) {
  validate_space(space, horizon_s);
  std::vector<Scenario> scenarios;
  scenarios.reserve(space.grid_size());
  for (const auto kind : space.kinds) {
    // Point faults ignore severity; emitting one arm per severity would
    // duplicate identical scenarios.
    const std::vector<double> severities =
        is_window_kind(kind) ? space.severities : std::vector<double>{1.0};
    for (const double time_frac : space.times_frac) {
      for (const int device : space.devices) {
        for (const double severity : severities) {
          scenarios.push_back(make_scenario(space, seed, scenarios.size(),
                                            kind, time_frac, device, severity,
                                            horizon_s));
        }
      }
    }
  }
  return scenarios;
}

std::vector<Scenario> enumerate_random(const FaultSpace& space,
                                       std::uint64_t seed, double horizon_s,
                                       int count) {
  validate_space(space, horizon_s);
  CARAML_CHECK_MSG(count >= 1, "random campaign needs >= 1 scenario");
  const auto [t_lo, t_hi] =
      std::minmax_element(space.times_frac.begin(), space.times_frac.end());
  const auto [s_lo, s_hi] =
      std::minmax_element(space.severities.begin(), space.severities.end());
  Rng rng(seed ^ 0xC4A05FA17C4A05ULL);
  std::vector<Scenario> scenarios;
  scenarios.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto kind = space.kinds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(space.kinds.size()) - 1))];
    const double time_frac = *t_lo == *t_hi
                                 ? *t_lo
                                 : rng.uniform(*t_lo, *t_hi);
    const int device = space.devices[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(space.devices.size()) - 1))];
    const double severity =
        *s_lo == *s_hi ? *s_lo : rng.uniform(*s_lo, *s_hi);
    scenarios.push_back(make_scenario(space, seed, scenarios.size(), kind,
                                      time_frac, device, severity, horizon_s));
  }
  return scenarios;
}

}  // namespace caraml::chaos
