// Naive single-threaded reference kernels.
//
// These are the seed implementations the optimized kernel library replaced,
// kept (minus the 0*NaN-dropping zero-skip bug) as the oracle for the
// kernel-equivalence test suite and for debugging numerical differences.
// Deliberately simple: no blocking, no packing, no threading — every op is a
// direct transcription of its defining formula.
#pragma once

#include "tensor/tensor.hpp"

namespace caraml::tensor::reference {

/// C = A[m,k] · B[k,n], serial triple loop with double accumulation.
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A[m,k] · B[n,k]^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// C = A[k,m]^T · B[k,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// Dequantized symmetric int8 GEMM oracle for the gemm_i8 kernel:
/// C[i,j] = float(scale_a * scale_b[j] * acc) with acc the exact int32 (held
/// in int64 here) sum over qa[i,:]·qb(:,j); op(B) is B[k,n] when !trans_b,
/// else B stored [n,k] used transposed. Serial, fp64 dequant.
Tensor matmul_i8(bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int8_t* a, const std::int8_t* b, float scale_a,
                 const float* scale_b);

/// Row-wise softmax of [rows, cols].
Tensor softmax_rows(const Tensor& a);

/// Direct (non-im2col) convolution: input [N,C,H,W], weight [O,C,kh,kw].
Tensor conv2d(const Tensor& input, const Tensor& weight,
              const Conv2dArgs& args);

}  // namespace caraml::tensor::reference
