// Symmetric int8 quantization for the inference GEMM path.
//
// The scheme is the standard symmetric absmax one: a scale s = absmax/127
// maps fp32 x to q = clamp(rint(x/s), -127, 127), so dequantization is just
// q*s and zero stays exactly zero (no zero-point arithmetic in the kernel).
// Weights quantize per output channel (one scale per row of the [out, in]
// weight matrix — a single large-magnitude channel then cannot crush the
// resolution of the others); activations quantize per tensor, with the scale
// either calibrated offline over sample batches (absmax running max) or
// computed on the fly from the live activation.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace caraml::tensor {

/// Symmetric scale for a buffer: absmax/127, floored at a tiny epsilon so an
/// all-zero tensor still round-trips (q = 0, dequant = 0) without a 0/0.
float absmax_scale(const float* x, std::int64_t count);

/// A symmetrically quantized 2-D tensor: int8 values plus either one scale
/// (per-tensor) or one per row (per-channel over dim 0).
struct QuantizedTensor {
  Shape shape;
  std::vector<std::int8_t> data;
  std::vector<float> scales;  ///< size 1 (per-tensor) or shape[0] rows

  bool per_channel() const { return scales.size() > 1; }
  std::int64_t rows() const { return shape.empty() ? 0 : shape[0]; }
  std::int64_t cols() const { return shape.size() < 2 ? 0 : shape[1]; }
};

/// Quantize with one scale over the whole tensor (activations).
QuantizedTensor quantize_per_tensor(const Tensor& t);

/// Quantize a [rows, cols] tensor with one scale per row (weights stored
/// [out_features, in_features], so rows are output channels).
QuantizedTensor quantize_per_channel_rows(const Tensor& t);

/// Quantize with a caller-provided per-tensor scale (calibrated activations;
/// values beyond +-127*scale saturate).
QuantizedTensor quantize_with_scale(const Tensor& t, float scale);

/// Widen back to fp32 (q * scale per element).
Tensor dequantize(const QuantizedTensor& q);

}  // namespace caraml::tensor
