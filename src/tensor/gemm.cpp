#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "tensor/activations.hpp"
#include "tensor/workspace.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace caraml::tensor::detail {
namespace {

constexpr int MR = kGemmMR;
constexpr int NR = kGemmNR;

// Widen one stored element to the fp32 the kernels compute in. The packing
// and direct loops are templated on the storage type and call this, so the
// fp32 and bf16 paths share one skeleton; for float it is the identity and
// compiles away, keeping the fp32 path bit-identical to its untemplated
// form.
inline float to_f32(float x) { return x; }
inline float to_f32(std::uint16_t x) {
  const std::uint32_t bits = static_cast<std::uint32_t>(x) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

#if defined(__GNUC__) || defined(__clang__)

// 8-wide float vector with scalar (4-byte) alignment so loads/stores work on
// arbitrarily offset C rows and packed panels.
typedef float v8f __attribute__((vector_size(32), aligned(4)));

// Rank-kc update of an MR x NR tile of C. The 12 accumulators are *named*
// vector variables, not an array: an acc[MR*NR] aggregate exceeds the
// compiler's scalar-replacement budget and gets spilled to the stack on
// every k-iteration, which is the difference between ~1 and ~25 GFLOP/s.
// `ap` is an MR-wide packed A panel (column-major micro-panel: ap[p*MR+i]),
// `bp` an NR-wide packed B panel (bp[p*NR+j]); both are zero-padded, so the
// hot loop is branch-free. rows/cols clip the C write-back for edge tiles.
void micro_kernel(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, float* __restrict c,
                  std::int64_t ldc, int rows, int cols) {
  v8f c00{}, c01{}, c10{}, c11{}, c20{}, c21{};
  v8f c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict a_col = ap + p * MR;
    const v8f b0 = *reinterpret_cast<const v8f*>(bp + p * NR);
    const v8f b1 = *reinterpret_cast<const v8f*>(bp + p * NR + 8);
    c00 += a_col[0] * b0;
    c01 += a_col[0] * b1;
    c10 += a_col[1] * b0;
    c11 += a_col[1] * b1;
    c20 += a_col[2] * b0;
    c21 += a_col[2] * b1;
    c30 += a_col[3] * b0;
    c31 += a_col[3] * b1;
    c40 += a_col[4] * b0;
    c41 += a_col[4] * b1;
    c50 += a_col[5] * b0;
    c51 += a_col[5] * b1;
  }
  if (rows == MR && cols == NR) {
    v8f* r0 = reinterpret_cast<v8f*>(c);
    v8f* r1 = reinterpret_cast<v8f*>(c + ldc);
    v8f* r2 = reinterpret_cast<v8f*>(c + 2 * ldc);
    v8f* r3 = reinterpret_cast<v8f*>(c + 3 * ldc);
    v8f* r4 = reinterpret_cast<v8f*>(c + 4 * ldc);
    v8f* r5 = reinterpret_cast<v8f*>(c + 5 * ldc);
    r0[0] += c00;
    r0[1] += c01;
    r1[0] += c10;
    r1[1] += c11;
    r2[0] += c20;
    r2[1] += c21;
    r3[0] += c30;
    r3[1] += c31;
    r4[0] += c40;
    r4[1] += c41;
    r5[0] += c50;
    r5[1] += c51;
  } else {
    float acc[MR * NR];
    *reinterpret_cast<v8f*>(acc + 0 * NR) = c00;
    *reinterpret_cast<v8f*>(acc + 0 * NR + 8) = c01;
    *reinterpret_cast<v8f*>(acc + 1 * NR) = c10;
    *reinterpret_cast<v8f*>(acc + 1 * NR + 8) = c11;
    *reinterpret_cast<v8f*>(acc + 2 * NR) = c20;
    *reinterpret_cast<v8f*>(acc + 2 * NR + 8) = c21;
    *reinterpret_cast<v8f*>(acc + 3 * NR) = c30;
    *reinterpret_cast<v8f*>(acc + 3 * NR + 8) = c31;
    *reinterpret_cast<v8f*>(acc + 4 * NR) = c40;
    *reinterpret_cast<v8f*>(acc + 4 * NR + 8) = c41;
    *reinterpret_cast<v8f*>(acc + 5 * NR) = c50;
    *reinterpret_cast<v8f*>(acc + 5 * NR + 8) = c51;
    for (int i = 0; i < rows; ++i) {
      float* __restrict c_row = c + i * ldc;
      const float* __restrict acc_row = acc + i * NR;
      for (int j = 0; j < cols; ++j) c_row[j] += acc_row[j];
    }
  }
}

#else  // portable fallback, relies on autovectorization

void micro_kernel(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, float* __restrict c,
                  std::int64_t ldc, int rows, int cols) {
  float acc[MR * NR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict a_col = ap + p * MR;
    const float* __restrict b_row = bp + p * NR;
    for (int i = 0; i < MR; ++i) {
      const float a_val = a_col[i];
      float* __restrict acc_row = acc + i * NR;
      for (int j = 0; j < NR; ++j) acc_row[j] += a_val * b_row[j];
    }
  }
  for (int i = 0; i < rows; ++i) {
    float* __restrict c_row = c + i * ldc;
    const float* __restrict acc_row = acc + i * NR;
    for (int j = 0; j < cols; ++j) c_row[j] += acc_row[j];
  }
}

#endif

// Pack op(B)[pc:pc+kc, j0:j0+nc] into ceil(nc/NR) panels of NR columns
// (panel stride kc*NR), zero-padding the ragged last panel. SrcT is float or
// bf16 bits; the packed panel is always fp32 (bf16 widens here, once, so the
// micro-kernel needs no dtype awareness).
template <typename SrcT>
void pack_b(bool trans_b, const SrcT* b, std::int64_t ldb, std::int64_t pc,
            std::int64_t j0, std::int64_t kc, std::int64_t nc, float* bp) {
  const std::int64_t panels = (nc + NR - 1) / NR;
  for (std::int64_t pj = 0; pj < panels; ++pj) {
    const std::int64_t jc = j0 + pj * NR;
    const int cols = static_cast<int>(std::min<std::int64_t>(NR, j0 + nc - jc));
    float* __restrict dst = bp + pj * kc * NR;
    if (!trans_b) {
      for (std::int64_t p = 0; p < kc; ++p) {
        const SrcT* __restrict src = b + (pc + p) * ldb + jc;
        float* __restrict row = dst + p * NR;
        for (int jj = 0; jj < cols; ++jj) row[jj] = to_f32(src[jj]);
        for (int jj = cols; jj < NR; ++jj) row[jj] = 0.0f;
      }
    } else {
      // op(B)(p, j) = B[j, p]: one strided column write per source row.
      if (cols < NR) std::memset(dst, 0, sizeof(float) * kc * NR);
      for (int jj = 0; jj < cols; ++jj) {
        const SrcT* __restrict src = b + (jc + jj) * ldb + pc;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * NR + jj] = to_f32(src[p]);
      }
    }
  }
}

// Pack op(A)[i0:i0+mc, pc:pc+kc] into ceil(mc/MR) panels of MR rows
// (panel stride kc*MR), zero-padding the ragged last panel.
template <typename SrcT>
void pack_a(bool trans_a, const SrcT* a, std::int64_t lda, std::int64_t i0,
            std::int64_t pc, std::int64_t mc, std::int64_t kc, float* ap) {
  const std::int64_t panels = (mc + MR - 1) / MR;
  for (std::int64_t pi = 0; pi < panels; ++pi) {
    const std::int64_t ic = i0 + pi * MR;
    const int rows = static_cast<int>(std::min<std::int64_t>(MR, i0 + mc - ic));
    float* __restrict dst = ap + pi * kc * MR;
    if (!trans_a) {
      if (rows < MR) std::memset(dst, 0, sizeof(float) * kc * MR);
      for (int ii = 0; ii < rows; ++ii) {
        const SrcT* __restrict src = a + (ic + ii) * lda + pc;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * MR + ii] = to_f32(src[p]);
      }
    } else {
      // op(A)(i, p) = A[p, i]: contiguous row reads.
      for (std::int64_t p = 0; p < kc; ++p) {
        const SrcT* __restrict src = a + (pc + p) * lda + ic;
        float* __restrict col = dst + p * MR;
        for (int ii = 0; ii < rows; ++ii) col[ii] = to_f32(src[ii]);
        for (int ii = rows; ii < MR; ++ii) col[ii] = 0.0f;
      }
    }
  }
}

// Direct register-accumulating loops for matrices too small to amortize
// packing. Never skips zero operands: 0 * NaN must stay NaN.
template <typename SrcT>
void gemm_direct(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                 std::int64_t k, const SrcT* __restrict a, std::int64_t lda,
                 const SrcT* __restrict b, std::int64_t ldb,
                 float* __restrict c, std::int64_t ldc) {
  if (!trans_a && !trans_b) {
    for (std::int64_t i = 0; i < m; ++i) {
      const SrcT* __restrict a_row = a + i * lda;
      float* __restrict c_row = c + i * ldc;
      for (std::int64_t p = 0; p < k; ++p) {
        const float a_val = to_f32(a_row[p]);
        const SrcT* __restrict b_row = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j)
          c_row[j] += a_val * to_f32(b_row[j]);
      }
    }
  } else if (!trans_a && trans_b) {
    for (std::int64_t i = 0; i < m; ++i) {
      const SrcT* __restrict a_row = a + i * lda;
      float* __restrict c_row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) {
        const SrcT* __restrict b_row = b + j * ldb;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p)
          acc += to_f32(a_row[p]) * to_f32(b_row[p]);
        c_row[j] += acc;
      }
    }
  } else {
    for (std::int64_t p = 0; p < k; ++p) {
      const SrcT* __restrict a_row = a + p * lda;
      const SrcT* __restrict b_row = b + p * ldb;
      for (std::int64_t i = 0; i < m; ++i) {
        const float a_val = to_f32(a_row[i]);
        float* __restrict c_row = c + i * ldc;
        for (std::int64_t j = 0; j < n; ++j)
          c_row[j] += a_val * to_f32(b_row[j]);
      }
    }
  }
}

// Apply the epilogue to the C block rows [row0, row0+rows) x cols
// [col0, col0+cols). Indices are absolute so bias/mask/pre line up with the
// full output.
void apply_epilogue(const GemmEpilogue& ep, float* c, std::int64_t ldc,
                    std::int64_t row0, std::int64_t rows, std::int64_t col0,
                    std::int64_t cols) {
  for (std::int64_t i = row0; i < row0 + rows; ++i) {
    float* __restrict c_row = c + i * ldc;
    for (std::int64_t j = col0; j < col0 + cols; ++j) {
      float v = c_row[j];
      if (ep.bias != nullptr) v += ep.bias[j];
      if (ep.pre_activation != nullptr) ep.pre_activation[i * ldc + j] = v;
      if (ep.gelu) v = gelu_scalar(v);
      if (ep.dropout_mask != nullptr) v *= ep.dropout_mask[i * ldc + j];
      c_row[j] = v;
    }
  }
}

// The shared three-level blocked driver (see the header comment). SrcT is
// float (the original fp32 path, bit-identical) or bf16 bits; all packing
// widens to fp32 so the one micro-kernel serves both.
template <typename SrcT>
void gemm_impl(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, const SrcT* a, std::int64_t lda, const SrcT* b,
               std::int64_t ldb, float* c, std::int64_t ldc,
               const GemmEpilogue& epilogue) {
  CARAML_CHECK_MSG(!(trans_a && trans_b), "gemm: T·T is unsupported");
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Nothing to accumulate, but the epilogue (e.g. a bias) still applies to
    // the caller-initialized C.
    if (!epilogue.empty()) apply_epilogue(epilogue, c, ldc, 0, m, 0, n);
    return;
  }
  if (m * n * k <= kGemmDirectThreshold) {
    gemm_direct(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc);
    if (!epilogue.empty()) apply_epilogue(epilogue, c, ldc, 0, m, 0, n);
    return;
  }

  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    const std::int64_t kc = std::min(kGemmKC, k - pc);
    // The epilogue fires once per C element, after its final accumulation.
    const bool last_kc_slice = pc + kc == k;
    for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
      const std::int64_t nc = std::min(kGemmNC, n - jc);
      const std::int64_t n_panels = (nc + NR - 1) / NR;
      Workspace::Buffer b_panel =
          Workspace::local().take(static_cast<std::size_t>(n_panels * kc * NR));
      pack_b(trans_b, b, ldb, pc, jc, kc, nc, b_panel.data());

      // Chunk rows so each task runs at least ~256K multiply-adds. The grain
      // is rounded up to a multiple of MR so chunk boundaries (which
      // parallel_for_range keeps grain-aligned) never split a micro-panel:
      // a mid-panel boundary would push interior tiles down the scalar
      // ragged-edge write-back. The packed B panel is shared read-only
      // across workers.
      std::int64_t grain = std::max<std::int64_t>(
          MR, (4 * kGemmDirectThreshold) / std::max<std::int64_t>(1, nc * kc));
      grain = ((grain + MR - 1) / MR) * MR;
      const float* bp = b_panel.data();
      parallel_for_range(
          0, static_cast<std::size_t>(m), static_cast<std::size_t>(grain),
          [&](std::size_t lo, std::size_t hi) {
            const std::int64_t chunk_rows = std::min(
                kGemmMC, static_cast<std::int64_t>(hi - lo));
            Workspace::Buffer a_panel = Workspace::local().take(
                static_cast<std::size_t>(((chunk_rows + MR - 1) / MR) * kc *
                                         MR));
            for (std::int64_t ic = static_cast<std::int64_t>(lo);
                 ic < static_cast<std::int64_t>(hi); ic += kGemmMC) {
              const std::int64_t mc =
                  std::min(kGemmMC, static_cast<std::int64_t>(hi) - ic);
              pack_a(trans_a, a, lda, ic, pc, mc, kc, a_panel.data());
              const std::int64_t m_panels = (mc + MR - 1) / MR;
              for (std::int64_t pj = 0; pj < n_panels; ++pj) {
                const int cols = static_cast<int>(
                    std::min<std::int64_t>(NR, nc - pj * NR));
                for (std::int64_t pi = 0; pi < m_panels; ++pi) {
                  const int rows = static_cast<int>(
                      std::min<std::int64_t>(MR, mc - pi * MR));
                  micro_kernel(kc, a_panel.data() + pi * kc * MR,
                               bp + pj * kc * NR,
                               c + (ic + pi * MR) * ldc + jc + pj * NR, ldc,
                               rows, cols);
                }
              }
              if (last_kc_slice && !epilogue.empty()) {
                // Fused write-back: the mc x nc block was just accumulated
                // and is still hot in this worker's cache.
                apply_epilogue(epilogue, c, ldc, ic, mc, jc, nc);
              }
            }
          });
    }
  }
}

// --- bf16 skinny streaming path --------------------------------------------

#if defined(__GNUC__) || defined(__clang__)

typedef std::uint16_t v8u16 __attribute__((vector_size(16), aligned(2)));
typedef std::uint32_t v8u32 __attribute__((vector_size(32), aligned(4)));

// Widen 8 consecutive bf16 to a float vector (vpmovzxwd + vpslld).
inline v8f widen8(const std::uint16_t* p) {
  v8u16 h;
  std::memcpy(&h, p, sizeof(h));
  const v8u32 w = __builtin_convertvector(h, v8u32) << 16;
  v8f f;
  std::memcpy(&f, &w, sizeof(f));
  return f;
}

// k-direction dot product of two bf16 rows, fp32 accumulation. Reductions
// don't auto-vectorize without -ffast-math, so this is written with two
// explicit 8-wide partial accumulators; the fold order is fixed, so results
// are deterministic.
#if defined(__AVX2__) && defined(__FMA__)

inline float dot_bf16(const std::uint16_t* __restrict a,
                      const std::uint16_t* __restrict b, std::int64_t k) {
  // Widen by unpacking bf16 halfwords into the *high* 16 bits of each 32-bit
  // lane against zeros — exactly the bf16 -> fp32 widening, one shuffle per
  // 8 elements instead of a vpmovzxwd + vpslld pair. The unpack interleaves
  // lanes, but a and b are permuted identically and every lane is summed, so
  // the dot is unaffected. Four FMA chains hide the FMA latency.
  const __m256i zero = _mm256_setzero_si256();
  __m256 acc0 = _mm256_setzero_ps(), acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps(), acc3 = _mm256_setzero_ps();
  std::int64_t p = 0;
  for (; p + 32 <= k; p += 32) {
    const __m256i av0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + p));
    const __m256i bv0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + p));
    acc0 = _mm256_fmadd_ps(
        _mm256_castsi256_ps(_mm256_unpacklo_epi16(zero, av0)),
        _mm256_castsi256_ps(_mm256_unpacklo_epi16(zero, bv0)), acc0);
    acc1 = _mm256_fmadd_ps(
        _mm256_castsi256_ps(_mm256_unpackhi_epi16(zero, av0)),
        _mm256_castsi256_ps(_mm256_unpackhi_epi16(zero, bv0)), acc1);
    const __m256i av1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + p + 16));
    const __m256i bv1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + p + 16));
    acc2 = _mm256_fmadd_ps(
        _mm256_castsi256_ps(_mm256_unpacklo_epi16(zero, av1)),
        _mm256_castsi256_ps(_mm256_unpacklo_epi16(zero, bv1)), acc2);
    acc3 = _mm256_fmadd_ps(
        _mm256_castsi256_ps(_mm256_unpackhi_epi16(zero, av1)),
        _mm256_castsi256_ps(_mm256_unpackhi_epi16(zero, bv1)), acc3);
  }
  const __m256 accv = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                    _mm256_add_ps(acc2, acc3));
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(accv),
                        _mm256_extractf128_ps(accv, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_movehdup_ps(s));
  float acc = _mm_cvtss_f32(s);
  for (; p < k; ++p) acc += to_f32(a[p]) * to_f32(b[p]);
  return acc;
}

#else

inline float dot_bf16(const std::uint16_t* __restrict a,
                      const std::uint16_t* __restrict b, std::int64_t k) {
  // Two explicit 8-wide chains; reductions don't auto-vectorize without
  // -ffast-math.
  v8f acc0{}, acc1{};
  std::int64_t p = 0;
  for (; p + 16 <= k; p += 16) {
    acc0 += widen8(a + p) * widen8(b + p);
    acc1 += widen8(a + p + 8) * widen8(b + p + 8);
  }
  const v8f vs = acc0 + acc1;
  float acc = ((vs[0] + vs[4]) + (vs[1] + vs[5])) +
              ((vs[2] + vs[6]) + (vs[3] + vs[7]));
  for (; p < k; ++p) acc += to_f32(a[p]) * to_f32(b[p]);
  return acc;
}

#endif

#else

inline float dot_bf16(const std::uint16_t* __restrict a,
                      const std::uint16_t* __restrict b, std::int64_t k) {
  float acc = 0.0f;
  for (std::int64_t p = 0; p < k; ++p) acc += to_f32(a[p]) * to_f32(b[p]);
  return acc;
}

#endif

// Skinny-m bf16 GEMM: stream op(B) in bf16 exactly once, widening on load —
// no packed panel is written or re-read, which is where the ~2x over fp32
// comes from on bandwidth-bound decode shapes. Workers own disjoint column
// ranges, so each C element is produced by exactly one worker in a fixed
// order: bit-identical across thread counts.
void gemm_bf16_skinny(bool trans_b, std::int64_t m, std::int64_t n,
                      std::int64_t k, const std::uint16_t* a, std::int64_t lda,
                      const std::uint16_t* b, std::int64_t ldb, float* c,
                      std::int64_t ldc, const GemmEpilogue& epilogue) {
  // Column chunks: at least ~256K multiply-adds per task, and at least a few
  // cache lines wide so adjacent workers don't split lines of B rows.
  std::int64_t grain = std::max<std::int64_t>(
      32, (4 * kGemmDirectThreshold) / std::max<std::int64_t>(1, m * k));
  grain = ((grain + 31) / 32) * 32;
  parallel_for_range(
      0, static_cast<std::size_t>(n), static_cast<std::size_t>(grain),
      [&](std::size_t lo_s, std::size_t hi_s) {
        const std::int64_t lo = static_cast<std::int64_t>(lo_s);
        const std::int64_t hi = static_cast<std::int64_t>(hi_s);
        if (!trans_b) {
          for (std::int64_t p = 0; p < k; ++p) {
            const std::uint16_t* __restrict b_row = b + p * ldb;
            for (std::int64_t i = 0; i < m; ++i) {
              const float a_val = to_f32(a[i * lda + p]);
              float* __restrict c_row = c + i * ldc;
              for (std::int64_t j = lo; j < hi; ++j)
                c_row[j] += a_val * to_f32(b_row[j]);
            }
          }
        } else {
          // op(B) row j is B[j, :]: one contiguous k-dot per output. A is at
          // most kGemmSkinnyRows rows and stays cache-hot across all j.
          for (std::int64_t j = lo; j < hi; ++j) {
            const std::uint16_t* __restrict b_row = b + j * ldb;
            for (std::int64_t i = 0; i < m; ++i)
              c[i * ldc + j] += dot_bf16(a + i * lda, b_row, k);
          }
        }
        if (!epilogue.empty())
          apply_epilogue(epilogue, c, ldc, 0, m, lo, hi - lo);
      });
}

// --- int8 path --------------------------------------------------------------
//
// Same MC/KC/NC blocking as the fp32/bf16 driver, but panels are packed as
// int16 with consecutive-k *pairs* interleaved per column/row: element
// (p, j) lands at [p/2][j][p%2]. That is exactly the operand shape of
// AVX2's pmaddwd (_mm256_madd_epi16), which multiplies 16 int16 lanes and
// adds adjacent products into 8 int32 lanes — two k-steps per instruction
// with exact int32 accumulation (int8 products are <= 127^2, so a pair sum
// can never overflow, let alone saturate). The int32 tile accumulates over
// one KC slice, then dequantizes into fp32 C as
// (float(acc) * scale_a) * scale_b[j]; accumulation across KC slices is
// fp32, mirroring the other paths.

// Pack op(B)[pc:pc+kc, j0:j0+nc] as int16 pair panels of NR columns (panel
// stride kc2*NR*2 int16s, kc2 = ceil(kc/2)); ragged columns and the odd
// k-tail are zero-padded.
void pack_b_i8(bool trans_b, const std::int8_t* b, std::int64_t ldb,
               std::int64_t pc, std::int64_t j0, std::int64_t kc,
               std::int64_t nc, std::int16_t* bp) {
  const std::int64_t kc2 = (kc + 1) / 2;
  const std::int64_t panels = (nc + NR - 1) / NR;
  for (std::int64_t pj = 0; pj < panels; ++pj) {
    const std::int64_t jc = j0 + pj * NR;
    const int cols = static_cast<int>(std::min<std::int64_t>(NR, j0 + nc - jc));
    std::int16_t* __restrict dst = bp + pj * kc2 * NR * 2;
    if (cols < NR || (kc & 1) != 0)
      std::memset(dst, 0, sizeof(std::int16_t) * kc2 * NR * 2);
    if (!trans_b) {
      for (std::int64_t p = 0; p < kc; ++p) {
        const std::int8_t* __restrict src = b + (pc + p) * ldb + jc;
        std::int16_t* __restrict row = dst + (p / 2) * NR * 2 + (p & 1);
        for (int jj = 0; jj < cols; ++jj) row[jj * 2] = src[jj];
      }
    } else {
      for (int jj = 0; jj < cols; ++jj) {
        const std::int8_t* __restrict src = b + (jc + jj) * ldb + pc;
        for (std::int64_t p = 0; p < kc; ++p)
          dst[(p / 2) * NR * 2 + jj * 2 + (p & 1)] = src[p];
      }
    }
  }
}

// Pack A[i0:i0+mc, pc:pc+kc] (never transposed) as int16 pair panels of MR
// rows (panel stride kc2*MR*2 int16s).
void pack_a_i8(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
               std::int64_t pc, std::int64_t mc, std::int64_t kc,
               std::int16_t* ap) {
  const std::int64_t kc2 = (kc + 1) / 2;
  const std::int64_t panels = (mc + MR - 1) / MR;
  for (std::int64_t pi = 0; pi < panels; ++pi) {
    const std::int64_t ic = i0 + pi * MR;
    const int rows = static_cast<int>(std::min<std::int64_t>(MR, i0 + mc - ic));
    std::int16_t* __restrict dst = ap + pi * kc2 * MR * 2;
    if (rows < MR || (kc & 1) != 0)
      std::memset(dst, 0, sizeof(std::int16_t) * kc2 * MR * 2);
    for (int ii = 0; ii < rows; ++ii) {
      const std::int8_t* __restrict src = a + (ic + ii) * lda + pc;
      for (std::int64_t p = 0; p < kc; ++p)
        dst[(p / 2) * MR * 2 + ii * 2 + (p & 1)] = src[p];
    }
  }
}

#if defined(__AVX2__)

// MR x NR rank-kc int8 update with fused dequant. Accumulators are named
// (same scalar-replacement constraint as the fp32 kernel); each pmaddwd
// retires two k-steps for all 8 columns of one half-tile.
void micro_kernel_i8(std::int64_t kc2, const std::int16_t* __restrict ap,
                     const std::int16_t* __restrict bp, float* __restrict c,
                     std::int64_t ldc, int rows, int cols, float scale_a,
                     const float* __restrict scale_b) {
  __m256i c00 = _mm256_setzero_si256(), c01 = _mm256_setzero_si256();
  __m256i c10 = _mm256_setzero_si256(), c11 = _mm256_setzero_si256();
  __m256i c20 = _mm256_setzero_si256(), c21 = _mm256_setzero_si256();
  __m256i c30 = _mm256_setzero_si256(), c31 = _mm256_setzero_si256();
  __m256i c40 = _mm256_setzero_si256(), c41 = _mm256_setzero_si256();
  __m256i c50 = _mm256_setzero_si256(), c51 = _mm256_setzero_si256();
  for (std::int64_t p2 = 0; p2 < kc2; ++p2) {
    const __m256i b0 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p2 * NR * 2));
    const __m256i b1 = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bp + p2 * NR * 2 + 16));
    const std::int16_t* a_col = ap + p2 * MR * 2;
    std::int32_t pair;
    std::memcpy(&pair, a_col + 0, sizeof(pair));
    __m256i av = _mm256_set1_epi32(pair);
    c00 = _mm256_add_epi32(c00, _mm256_madd_epi16(av, b0));
    c01 = _mm256_add_epi32(c01, _mm256_madd_epi16(av, b1));
    std::memcpy(&pair, a_col + 2, sizeof(pair));
    av = _mm256_set1_epi32(pair);
    c10 = _mm256_add_epi32(c10, _mm256_madd_epi16(av, b0));
    c11 = _mm256_add_epi32(c11, _mm256_madd_epi16(av, b1));
    std::memcpy(&pair, a_col + 4, sizeof(pair));
    av = _mm256_set1_epi32(pair);
    c20 = _mm256_add_epi32(c20, _mm256_madd_epi16(av, b0));
    c21 = _mm256_add_epi32(c21, _mm256_madd_epi16(av, b1));
    std::memcpy(&pair, a_col + 6, sizeof(pair));
    av = _mm256_set1_epi32(pair);
    c30 = _mm256_add_epi32(c30, _mm256_madd_epi16(av, b0));
    c31 = _mm256_add_epi32(c31, _mm256_madd_epi16(av, b1));
    std::memcpy(&pair, a_col + 8, sizeof(pair));
    av = _mm256_set1_epi32(pair);
    c40 = _mm256_add_epi32(c40, _mm256_madd_epi16(av, b0));
    c41 = _mm256_add_epi32(c41, _mm256_madd_epi16(av, b1));
    std::memcpy(&pair, a_col + 10, sizeof(pair));
    av = _mm256_set1_epi32(pair);
    c50 = _mm256_add_epi32(c50, _mm256_madd_epi16(av, b0));
    c51 = _mm256_add_epi32(c51, _mm256_madd_epi16(av, b1));
  }
  if (rows == MR && cols == NR) {
    const __m256 vsa = _mm256_set1_ps(scale_a);
    const __m256 sb0 = _mm256_loadu_ps(scale_b);
    const __m256 sb1 = _mm256_loadu_ps(scale_b + 8);
    // Written out per row (no pointer-to-accumulator array: taking the
    // accumulators' addresses would let them spill out of registers).
    const auto store_row = [&](float* ci, __m256i lo, __m256i hi) {
      const __m256 d0 =
          _mm256_mul_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(lo), vsa), sb0);
      const __m256 d1 =
          _mm256_mul_ps(_mm256_mul_ps(_mm256_cvtepi32_ps(hi), vsa), sb1);
      _mm256_storeu_ps(ci, _mm256_add_ps(_mm256_loadu_ps(ci), d0));
      _mm256_storeu_ps(ci + 8, _mm256_add_ps(_mm256_loadu_ps(ci + 8), d1));
    };
    store_row(c, c00, c01);
    store_row(c + ldc, c10, c11);
    store_row(c + 2 * ldc, c20, c21);
    store_row(c + 3 * ldc, c30, c31);
    store_row(c + 4 * ldc, c40, c41);
    store_row(c + 5 * ldc, c50, c51);
  } else {
    alignas(32) std::int32_t acc[MR * NR];
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 0 * NR), c00);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 0 * NR + 8), c01);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 1 * NR), c10);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 1 * NR + 8), c11);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 2 * NR), c20);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 2 * NR + 8), c21);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 3 * NR), c30);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 3 * NR + 8), c31);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 4 * NR), c40);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 4 * NR + 8), c41);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 5 * NR), c50);
    _mm256_store_si256(reinterpret_cast<__m256i*>(acc + 5 * NR + 8), c51);
    for (int i = 0; i < rows; ++i) {
      float* __restrict c_row = c + i * ldc;
      const std::int32_t* __restrict acc_row = acc + i * NR;
      for (int j = 0; j < cols; ++j)
        c_row[j] += (static_cast<float>(acc_row[j]) * scale_a) * scale_b[j];
    }
  }
}

#else  // portable fallback over the same packed-pair layout

void micro_kernel_i8(std::int64_t kc2, const std::int16_t* __restrict ap,
                     const std::int16_t* __restrict bp, float* __restrict c,
                     std::int64_t ldc, int rows, int cols, float scale_a,
                     const float* __restrict scale_b) {
  std::int32_t acc[MR * NR] = {};
  for (std::int64_t p2 = 0; p2 < kc2; ++p2) {
    const std::int16_t* __restrict a_col = ap + p2 * MR * 2;
    const std::int16_t* __restrict b_row = bp + p2 * NR * 2;
    for (int i = 0; i < MR; ++i) {
      const std::int32_t a0 = a_col[i * 2];
      const std::int32_t a1 = a_col[i * 2 + 1];
      std::int32_t* __restrict acc_row = acc + i * NR;
      for (int j = 0; j < NR; ++j)
        acc_row[j] += a0 * b_row[j * 2] + a1 * b_row[j * 2 + 1];
    }
  }
  for (int i = 0; i < rows; ++i) {
    float* __restrict c_row = c + i * ldc;
    const std::int32_t* __restrict acc_row = acc + i * NR;
    for (int j = 0; j < cols; ++j)
      c_row[j] += (static_cast<float>(acc_row[j]) * scale_a) * scale_b[j];
  }
}

#endif

#if defined(__AVX2__)

// k-direction int8 dot with exact int32 accumulation: sign-extend 16 int8 to
// int16 (vpmovsxbw) and pmaddwd them — 16 multiply-adds per instruction,
// integer-exact so the fold order is free and results are trivially
// deterministic.
inline std::int32_t dot_i8(const std::int8_t* __restrict a,
                           const std::int8_t* __restrict b, std::int64_t k) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::int64_t p = 0;
  for (; p + 32 <= k; p += 32) {
    const __m256i a0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p)));
    const __m256i b0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p)));
    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a0, b0));
    const __m256i a1 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + p + 16)));
    const __m256i b1 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + p + 16)));
    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a1, b1));
  }
  const __m256i accv = _mm256_add_epi32(acc0, acc1);
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(accv),
                            _mm256_extracti128_si256(accv, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
  std::int32_t acc = _mm_cvtsi128_si32(s);
  for (; p < k; ++p)
    acc += static_cast<std::int32_t>(a[p]) * static_cast<std::int32_t>(b[p]);
  return acc;
}

#else

inline std::int32_t dot_i8(const std::int8_t* __restrict a,
                           const std::int8_t* __restrict b, std::int64_t k) {
  std::int32_t acc = 0;
  for (std::int64_t p = 0; p < k; ++p)
    acc += static_cast<std::int32_t>(a[p]) * static_cast<std::int32_t>(b[p]);
  return acc;
}

#endif

// Direct int8 path for matrices under the packing threshold. The int32
// accumulation spans all of k in one go — exact as long as
// k * 127^2 < 2^31, which the threshold guarantees.
void gemm_i8_direct(bool trans_b, std::int64_t m, std::int64_t n,
                    std::int64_t k, const std::int8_t* __restrict a,
                    std::int64_t lda, const std::int8_t* __restrict b,
                    std::int64_t ldb, float scale_a,
                    const float* __restrict scale_b, float* __restrict c,
                    std::int64_t ldc) {
  if (trans_b) {
    for (std::int64_t i = 0; i < m; ++i) {
      float* __restrict c_row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) {
        const std::int32_t acc = dot_i8(a + i * lda, b + j * ldb, k);
        c_row[j] += (static_cast<float>(acc) * scale_a) * scale_b[j];
      }
    }
  } else {
    Workspace::Buffer buf =
        Workspace::local().take(static_cast<std::size_t>(n));
    std::int32_t* __restrict acc = reinterpret_cast<std::int32_t*>(buf.data());
    for (std::int64_t i = 0; i < m; ++i) {
      std::memset(acc, 0, sizeof(std::int32_t) * n);
      const std::int8_t* __restrict a_row = a + i * lda;
      for (std::int64_t p = 0; p < k; ++p) {
        const std::int32_t a_val = a_row[p];
        const std::int8_t* __restrict b_row = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j)
          acc[j] += a_val * static_cast<std::int32_t>(b_row[j]);
      }
      float* __restrict c_row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j)
        c_row[j] += (static_cast<float>(acc[j]) * scale_a) * scale_b[j];
    }
  }
}

// Skinny-m int8 GEMM: stream op(B) once at 1 byte/element (see the bf16
// skinny path for the traffic argument and determinism invariant). Exact
// int32 accumulation over all of k; the caller bounds k so it cannot
// overflow.
void gemm_i8_skinny(bool trans_b, std::int64_t m, std::int64_t n,
                    std::int64_t k, const std::int8_t* a, std::int64_t lda,
                    const std::int8_t* b, std::int64_t ldb, float scale_a,
                    const float* scale_b, float* c, std::int64_t ldc,
                    const GemmEpilogue& epilogue) {
  std::int64_t grain = std::max<std::int64_t>(
      64, (4 * kGemmDirectThreshold) / std::max<std::int64_t>(1, m * k));
  grain = ((grain + 63) / 64) * 64;
  parallel_for_range(
      0, static_cast<std::size_t>(n), static_cast<std::size_t>(grain),
      [&](std::size_t lo_s, std::size_t hi_s) {
        const std::int64_t lo = static_cast<std::int64_t>(lo_s);
        const std::int64_t hi = static_cast<std::int64_t>(hi_s);
        if (!trans_b) {
          const std::int64_t width = hi - lo;
          Workspace::Buffer buf = Workspace::local().take(
              static_cast<std::size_t>(m * width));
          std::int32_t* __restrict acc =
              reinterpret_cast<std::int32_t*>(buf.data());
          std::memset(acc, 0, sizeof(std::int32_t) * m * width);
          for (std::int64_t p = 0; p < k; ++p) {
            const std::int8_t* __restrict b_row = b + p * ldb;
            for (std::int64_t i = 0; i < m; ++i) {
              const std::int32_t a_val = a[i * lda + p];
              std::int32_t* __restrict acc_row = acc + i * width;
              for (std::int64_t j = lo; j < hi; ++j)
                acc_row[j - lo] += a_val * static_cast<std::int32_t>(b_row[j]);
            }
          }
          for (std::int64_t i = 0; i < m; ++i) {
            float* __restrict c_row = c + i * ldc;
            const std::int32_t* __restrict acc_row = acc + i * width;
            for (std::int64_t j = lo; j < hi; ++j)
              c_row[j] += (static_cast<float>(acc_row[j - lo]) * scale_a) *
                          scale_b[j];
          }
        } else {
          for (std::int64_t j = lo; j < hi; ++j) {
            const std::int8_t* __restrict b_row = b + j * ldb;
            for (std::int64_t i = 0; i < m; ++i) {
              const std::int32_t acc = dot_i8(a + i * lda, b_row, k);
              c[i * ldc + j] +=
                  (static_cast<float>(acc) * scale_a) * scale_b[j];
            }
          }
        }
        if (!epilogue.empty())
          apply_epilogue(epilogue, c, ldc, 0, m, lo, hi - lo);
      });
}

// Blocked int8 driver: the gemm_impl loop structure with int16 pair panels
// and the pmaddwd micro-kernel. Dequant happens per KC slice inside the
// micro-kernel; the epilogue fires once after the last slice, cache-hot.
void gemm_i8_packed(bool trans_b, std::int64_t m, std::int64_t n,
                    std::int64_t k, const std::int8_t* a, std::int64_t lda,
                    const std::int8_t* b, std::int64_t ldb, float scale_a,
                    const float* scale_b, float* c, std::int64_t ldc,
                    const GemmEpilogue& epilogue) {
  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    const std::int64_t kc = std::min(kGemmKC, k - pc);
    const std::int64_t kc2 = (kc + 1) / 2;
    const bool last_kc_slice = pc + kc == k;
    for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
      const std::int64_t nc = std::min(kGemmNC, n - jc);
      const std::int64_t n_panels = (nc + NR - 1) / NR;
      // int16 panels live in the float workspace slabs: 2 int16 per float.
      Workspace::Buffer b_panel = Workspace::local().take(
          static_cast<std::size_t>(n_panels * kc2 * NR));
      std::int16_t* bp16 = reinterpret_cast<std::int16_t*>(b_panel.data());
      pack_b_i8(trans_b, b, ldb, pc, jc, kc, nc, bp16);

      std::int64_t grain = std::max<std::int64_t>(
          MR, (4 * kGemmDirectThreshold) / std::max<std::int64_t>(1, nc * kc));
      grain = ((grain + MR - 1) / MR) * MR;
      const std::int16_t* bp = bp16;
      parallel_for_range(
          0, static_cast<std::size_t>(m), static_cast<std::size_t>(grain),
          [&](std::size_t lo, std::size_t hi) {
            const std::int64_t chunk_rows =
                std::min(kGemmMC, static_cast<std::int64_t>(hi - lo));
            Workspace::Buffer a_panel = Workspace::local().take(
                static_cast<std::size_t>(((chunk_rows + MR - 1) / MR) * kc2 *
                                         MR));
            std::int16_t* ap16 =
                reinterpret_cast<std::int16_t*>(a_panel.data());
            for (std::int64_t ic = static_cast<std::int64_t>(lo);
                 ic < static_cast<std::int64_t>(hi); ic += kGemmMC) {
              const std::int64_t mc =
                  std::min(kGemmMC, static_cast<std::int64_t>(hi) - ic);
              pack_a_i8(a, lda, ic, pc, mc, kc, ap16);
              const std::int64_t m_panels = (mc + MR - 1) / MR;
              for (std::int64_t pj = 0; pj < n_panels; ++pj) {
                const int cols = static_cast<int>(
                    std::min<std::int64_t>(NR, nc - pj * NR));
                for (std::int64_t pi = 0; pi < m_panels; ++pi) {
                  const int rows = static_cast<int>(
                      std::min<std::int64_t>(MR, mc - pi * MR));
                  micro_kernel_i8(kc2, ap16 + pi * kc2 * MR * 2,
                                  bp + pj * kc2 * NR * 2,
                                  c + (ic + pi * MR) * ldc + jc + pj * NR, ldc,
                                  rows, cols, scale_a,
                                  scale_b + jc + pj * NR);
                }
              }
              if (last_kc_slice && !epilogue.empty())
                apply_epilogue(epilogue, c, ldc, ic, mc, jc, nc);
            }
          });
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, const float* a, std::int64_t lda, const float* b,
          std::int64_t ldb, float* c, std::int64_t ldc,
          const GemmEpilogue& epilogue) {
  gemm_impl(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc, epilogue);
}

void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, const float* a, std::int64_t lda, const float* b,
          std::int64_t ldb, float* c, std::int64_t ldc) {
  gemm_impl(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc, GemmEpilogue{});
}

void gemm_bf16(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, const std::uint16_t* a, std::int64_t lda,
               const std::uint16_t* b, std::int64_t ldb, float* c,
               std::int64_t ldc, const GemmEpilogue& epilogue) {
  if (!trans_a && m > 0 && m <= kGemmSkinnyRows && n > 0 && k > 0 &&
      m * n * k > kGemmDirectThreshold) {
    gemm_bf16_skinny(trans_b, m, n, k, a, lda, b, ldb, c, ldc, epilogue);
    return;
  }
  gemm_impl(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc, epilogue);
}

void gemm_bf16(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, const std::uint16_t* a, std::int64_t lda,
               const std::uint16_t* b, std::int64_t ldb, float* c,
               std::int64_t ldc) {
  gemm_bf16(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc, GemmEpilogue{});
}

void gemm_i8(bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
             const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
             std::int64_t ldb, float scale_a, const float* scale_b, float* c,
             std::int64_t ldc, const GemmEpilogue& epilogue) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!epilogue.empty()) apply_epilogue(epilogue, c, ldc, 0, m, 0, n);
    return;
  }
  if (m * n * k <= kGemmDirectThreshold) {
    gemm_i8_direct(trans_b, m, n, k, a, lda, b, ldb, scale_a, scale_b, c, ldc);
    if (!epilogue.empty()) apply_epilogue(epilogue, c, ldc, 0, m, 0, n);
    return;
  }
  // The skinny path accumulates int32 over all of k; cap it where
  // k * 127^2 nears 2^31 (the blocked path slices at KC and has no limit).
  if (m <= kGemmSkinnyRows && k <= (std::int64_t{1} << 17)) {
    gemm_i8_skinny(trans_b, m, n, k, a, lda, b, ldb, scale_a, scale_b, c, ldc,
                   epilogue);
    return;
  }
  gemm_i8_packed(trans_b, m, n, k, a, lda, b, ldb, scale_a, scale_b, c, ldc,
                 epilogue);
}

void gemm_i8(bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
             const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
             std::int64_t ldb, float scale_a, const float* scale_b, float* c,
             std::int64_t ldc) {
  gemm_i8(trans_b, m, n, k, a, lda, b, ldb, scale_a, scale_b, c, ldc,
          GemmEpilogue{});
}

}  // namespace caraml::tensor::detail
