#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "tensor/activations.hpp"
#include "tensor/workspace.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caraml::tensor::detail {
namespace {

constexpr int MR = kGemmMR;
constexpr int NR = kGemmNR;

#if defined(__GNUC__) || defined(__clang__)

// 8-wide float vector with scalar (4-byte) alignment so loads/stores work on
// arbitrarily offset C rows and packed panels.
typedef float v8f __attribute__((vector_size(32), aligned(4)));

// Rank-kc update of an MR x NR tile of C. The 12 accumulators are *named*
// vector variables, not an array: an acc[MR*NR] aggregate exceeds the
// compiler's scalar-replacement budget and gets spilled to the stack on
// every k-iteration, which is the difference between ~1 and ~25 GFLOP/s.
// `ap` is an MR-wide packed A panel (column-major micro-panel: ap[p*MR+i]),
// `bp` an NR-wide packed B panel (bp[p*NR+j]); both are zero-padded, so the
// hot loop is branch-free. rows/cols clip the C write-back for edge tiles.
void micro_kernel(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, float* __restrict c,
                  std::int64_t ldc, int rows, int cols) {
  v8f c00{}, c01{}, c10{}, c11{}, c20{}, c21{};
  v8f c30{}, c31{}, c40{}, c41{}, c50{}, c51{};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict a_col = ap + p * MR;
    const v8f b0 = *reinterpret_cast<const v8f*>(bp + p * NR);
    const v8f b1 = *reinterpret_cast<const v8f*>(bp + p * NR + 8);
    c00 += a_col[0] * b0;
    c01 += a_col[0] * b1;
    c10 += a_col[1] * b0;
    c11 += a_col[1] * b1;
    c20 += a_col[2] * b0;
    c21 += a_col[2] * b1;
    c30 += a_col[3] * b0;
    c31 += a_col[3] * b1;
    c40 += a_col[4] * b0;
    c41 += a_col[4] * b1;
    c50 += a_col[5] * b0;
    c51 += a_col[5] * b1;
  }
  if (rows == MR && cols == NR) {
    v8f* r0 = reinterpret_cast<v8f*>(c);
    v8f* r1 = reinterpret_cast<v8f*>(c + ldc);
    v8f* r2 = reinterpret_cast<v8f*>(c + 2 * ldc);
    v8f* r3 = reinterpret_cast<v8f*>(c + 3 * ldc);
    v8f* r4 = reinterpret_cast<v8f*>(c + 4 * ldc);
    v8f* r5 = reinterpret_cast<v8f*>(c + 5 * ldc);
    r0[0] += c00;
    r0[1] += c01;
    r1[0] += c10;
    r1[1] += c11;
    r2[0] += c20;
    r2[1] += c21;
    r3[0] += c30;
    r3[1] += c31;
    r4[0] += c40;
    r4[1] += c41;
    r5[0] += c50;
    r5[1] += c51;
  } else {
    float acc[MR * NR];
    *reinterpret_cast<v8f*>(acc + 0 * NR) = c00;
    *reinterpret_cast<v8f*>(acc + 0 * NR + 8) = c01;
    *reinterpret_cast<v8f*>(acc + 1 * NR) = c10;
    *reinterpret_cast<v8f*>(acc + 1 * NR + 8) = c11;
    *reinterpret_cast<v8f*>(acc + 2 * NR) = c20;
    *reinterpret_cast<v8f*>(acc + 2 * NR + 8) = c21;
    *reinterpret_cast<v8f*>(acc + 3 * NR) = c30;
    *reinterpret_cast<v8f*>(acc + 3 * NR + 8) = c31;
    *reinterpret_cast<v8f*>(acc + 4 * NR) = c40;
    *reinterpret_cast<v8f*>(acc + 4 * NR + 8) = c41;
    *reinterpret_cast<v8f*>(acc + 5 * NR) = c50;
    *reinterpret_cast<v8f*>(acc + 5 * NR + 8) = c51;
    for (int i = 0; i < rows; ++i) {
      float* __restrict c_row = c + i * ldc;
      const float* __restrict acc_row = acc + i * NR;
      for (int j = 0; j < cols; ++j) c_row[j] += acc_row[j];
    }
  }
}

#else  // portable fallback, relies on autovectorization

void micro_kernel(std::int64_t kc, const float* __restrict ap,
                  const float* __restrict bp, float* __restrict c,
                  std::int64_t ldc, int rows, int cols) {
  float acc[MR * NR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* __restrict a_col = ap + p * MR;
    const float* __restrict b_row = bp + p * NR;
    for (int i = 0; i < MR; ++i) {
      const float a_val = a_col[i];
      float* __restrict acc_row = acc + i * NR;
      for (int j = 0; j < NR; ++j) acc_row[j] += a_val * b_row[j];
    }
  }
  for (int i = 0; i < rows; ++i) {
    float* __restrict c_row = c + i * ldc;
    const float* __restrict acc_row = acc + i * NR;
    for (int j = 0; j < cols; ++j) c_row[j] += acc_row[j];
  }
}

#endif

// Pack op(B)[pc:pc+kc, j0:j0+nc] into ceil(nc/NR) panels of NR columns
// (panel stride kc*NR), zero-padding the ragged last panel.
void pack_b(bool trans_b, const float* b, std::int64_t ldb, std::int64_t pc,
            std::int64_t j0, std::int64_t kc, std::int64_t nc, float* bp) {
  const std::int64_t panels = (nc + NR - 1) / NR;
  for (std::int64_t pj = 0; pj < panels; ++pj) {
    const std::int64_t jc = j0 + pj * NR;
    const int cols = static_cast<int>(std::min<std::int64_t>(NR, j0 + nc - jc));
    float* __restrict dst = bp + pj * kc * NR;
    if (!trans_b) {
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* __restrict src = b + (pc + p) * ldb + jc;
        float* __restrict row = dst + p * NR;
        for (int jj = 0; jj < cols; ++jj) row[jj] = src[jj];
        for (int jj = cols; jj < NR; ++jj) row[jj] = 0.0f;
      }
    } else {
      // op(B)(p, j) = B[j, p]: one strided column write per source row.
      if (cols < NR) std::memset(dst, 0, sizeof(float) * kc * NR);
      for (int jj = 0; jj < cols; ++jj) {
        const float* __restrict src = b + (jc + jj) * ldb + pc;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * NR + jj] = src[p];
      }
    }
  }
}

// Pack op(A)[i0:i0+mc, pc:pc+kc] into ceil(mc/MR) panels of MR rows
// (panel stride kc*MR), zero-padding the ragged last panel.
void pack_a(bool trans_a, const float* a, std::int64_t lda, std::int64_t i0,
            std::int64_t pc, std::int64_t mc, std::int64_t kc, float* ap) {
  const std::int64_t panels = (mc + MR - 1) / MR;
  for (std::int64_t pi = 0; pi < panels; ++pi) {
    const std::int64_t ic = i0 + pi * MR;
    const int rows = static_cast<int>(std::min<std::int64_t>(MR, i0 + mc - ic));
    float* __restrict dst = ap + pi * kc * MR;
    if (!trans_a) {
      if (rows < MR) std::memset(dst, 0, sizeof(float) * kc * MR);
      for (int ii = 0; ii < rows; ++ii) {
        const float* __restrict src = a + (ic + ii) * lda + pc;
        for (std::int64_t p = 0; p < kc; ++p) dst[p * MR + ii] = src[p];
      }
    } else {
      // op(A)(i, p) = A[p, i]: contiguous row reads.
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* __restrict src = a + (pc + p) * lda + ic;
        float* __restrict col = dst + p * MR;
        for (int ii = 0; ii < rows; ++ii) col[ii] = src[ii];
        for (int ii = rows; ii < MR; ++ii) col[ii] = 0.0f;
      }
    }
  }
}

// Direct register-accumulating loops for matrices too small to amortize
// packing. Never skips zero operands: 0 * NaN must stay NaN.
void gemm_direct(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
                 std::int64_t k, const float* __restrict a, std::int64_t lda,
                 const float* __restrict b, std::int64_t ldb,
                 float* __restrict c, std::int64_t ldc) {
  if (!trans_a && !trans_b) {
    for (std::int64_t i = 0; i < m; ++i) {
      const float* __restrict a_row = a + i * lda;
      float* __restrict c_row = c + i * ldc;
      for (std::int64_t p = 0; p < k; ++p) {
        const float a_val = a_row[p];
        const float* __restrict b_row = b + p * ldb;
        for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
      }
    }
  } else if (!trans_a && trans_b) {
    for (std::int64_t i = 0; i < m; ++i) {
      const float* __restrict a_row = a + i * lda;
      float* __restrict c_row = c + i * ldc;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* __restrict b_row = b + j * ldb;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        c_row[j] += acc;
      }
    }
  } else {
    for (std::int64_t p = 0; p < k; ++p) {
      const float* __restrict a_row = a + p * lda;
      const float* __restrict b_row = b + p * ldb;
      for (std::int64_t i = 0; i < m; ++i) {
        const float a_val = a_row[i];
        float* __restrict c_row = c + i * ldc;
        for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
      }
    }
  }
}

// Apply the epilogue to the C block rows [row0, row0+rows) x cols
// [col0, col0+cols). Indices are absolute so bias/mask/pre line up with the
// full output.
void apply_epilogue(const GemmEpilogue& ep, float* c, std::int64_t ldc,
                    std::int64_t row0, std::int64_t rows, std::int64_t col0,
                    std::int64_t cols) {
  for (std::int64_t i = row0; i < row0 + rows; ++i) {
    float* __restrict c_row = c + i * ldc;
    for (std::int64_t j = col0; j < col0 + cols; ++j) {
      float v = c_row[j];
      if (ep.bias != nullptr) v += ep.bias[j];
      if (ep.pre_activation != nullptr) ep.pre_activation[i * ldc + j] = v;
      if (ep.gelu) v = gelu_scalar(v);
      if (ep.dropout_mask != nullptr) v *= ep.dropout_mask[i * ldc + j];
      c_row[j] = v;
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, const float* a, std::int64_t lda, const float* b,
          std::int64_t ldb, float* c, std::int64_t ldc,
          const GemmEpilogue& epilogue) {
  CARAML_CHECK_MSG(!(trans_a && trans_b), "gemm: T·T is unsupported");
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Nothing to accumulate, but the epilogue (e.g. a bias) still applies to
    // the caller-initialized C.
    if (!epilogue.empty()) apply_epilogue(epilogue, c, ldc, 0, m, 0, n);
    return;
  }
  if (m * n * k <= kGemmDirectThreshold) {
    gemm_direct(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc);
    if (!epilogue.empty()) apply_epilogue(epilogue, c, ldc, 0, m, 0, n);
    return;
  }

  for (std::int64_t pc = 0; pc < k; pc += kGemmKC) {
    const std::int64_t kc = std::min(kGemmKC, k - pc);
    // The epilogue fires once per C element, after its final accumulation.
    const bool last_kc_slice = pc + kc == k;
    for (std::int64_t jc = 0; jc < n; jc += kGemmNC) {
      const std::int64_t nc = std::min(kGemmNC, n - jc);
      const std::int64_t n_panels = (nc + NR - 1) / NR;
      Workspace::Buffer b_panel =
          Workspace::local().take(static_cast<std::size_t>(n_panels * kc * NR));
      pack_b(trans_b, b, ldb, pc, jc, kc, nc, b_panel.data());

      // Chunk rows so each task runs at least ~256K multiply-adds. The grain
      // is rounded up to a multiple of MR so chunk boundaries (which
      // parallel_for_range keeps grain-aligned) never split a micro-panel:
      // a mid-panel boundary would push interior tiles down the scalar
      // ragged-edge write-back. The packed B panel is shared read-only
      // across workers.
      std::int64_t grain = std::max<std::int64_t>(
          MR, (4 * kGemmDirectThreshold) / std::max<std::int64_t>(1, nc * kc));
      grain = ((grain + MR - 1) / MR) * MR;
      const float* bp = b_panel.data();
      parallel_for_range(
          0, static_cast<std::size_t>(m), static_cast<std::size_t>(grain),
          [&](std::size_t lo, std::size_t hi) {
            const std::int64_t chunk_rows = std::min(
                kGemmMC, static_cast<std::int64_t>(hi - lo));
            Workspace::Buffer a_panel = Workspace::local().take(
                static_cast<std::size_t>(((chunk_rows + MR - 1) / MR) * kc *
                                         MR));
            for (std::int64_t ic = static_cast<std::int64_t>(lo);
                 ic < static_cast<std::int64_t>(hi); ic += kGemmMC) {
              const std::int64_t mc =
                  std::min(kGemmMC, static_cast<std::int64_t>(hi) - ic);
              pack_a(trans_a, a, lda, ic, pc, mc, kc, a_panel.data());
              const std::int64_t m_panels = (mc + MR - 1) / MR;
              for (std::int64_t pj = 0; pj < n_panels; ++pj) {
                const int cols = static_cast<int>(
                    std::min<std::int64_t>(NR, nc - pj * NR));
                for (std::int64_t pi = 0; pi < m_panels; ++pi) {
                  const int rows = static_cast<int>(
                      std::min<std::int64_t>(MR, mc - pi * MR));
                  micro_kernel(kc, a_panel.data() + pi * kc * MR,
                               bp + pj * kc * NR,
                               c + (ic + pi * MR) * ldc + jc + pj * NR, ldc,
                               rows, cols);
                }
              }
              if (last_kc_slice && !epilogue.empty()) {
                // Fused write-back: the mc x nc block was just accumulated
                // and is still hot in this worker's cache.
                apply_epilogue(epilogue, c, ldc, ic, mc, jc, nc);
              }
            }
          });
    }
  }
}

void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, const float* a, std::int64_t lda, const float* b,
          std::int64_t ldb, float* c, std::int64_t ldc) {
  gemm(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc, GemmEpilogue{});
}

}  // namespace caraml::tensor::detail
