#include "tensor/reference.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caraml::tensor::reference {

Tensor matmul(const Tensor& a, const Tensor& b) {
  CARAML_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul needs 2-D tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  CARAML_CHECK_MSG(b.dim(0) == k, "matmul inner dimension mismatch");
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CARAML_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul_nt needs 2-D");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  CARAML_CHECK_MSG(b.dim(1) == k, "matmul_nt inner dimension mismatch");
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[j * k + p];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  CARAML_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul_tn needs 2-D");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  CARAML_CHECK_MSG(b.dim(0) == k, "matmul_tn inner dimension mismatch");
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a[p * m + i]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor matmul_i8(bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int8_t* a, const std::int8_t* b, float scale_a,
                 const float* scale_b) {
  Tensor c({m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        const std::int64_t bv = trans_b ? b[j * k + p] : b[p * n + j];
        acc += static_cast<std::int64_t>(a[i * k + p]) * bv;
      }
      c[i * n + j] = static_cast<float>(static_cast<double>(scale_a) *
                                        scale_b[j] *
                                        static_cast<double>(acc));
    }
  }
  return c;
}

Tensor softmax_rows(const Tensor& a) {
  CARAML_CHECK_MSG(a.rank() == 2, "softmax_rows needs a 2-D tensor");
  const std::int64_t rows = a.dim(0), cols = a.dim(1);
  Tensor out(a.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in_row = a.data() + r * cols;
    float* out_row = out.data() + r * cols;
    float max_value = in_row[0];
    for (std::int64_t c = 1; c < cols; ++c) {
      max_value = std::max(max_value, in_row[c]);
    }
    double total = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      out_row[c] = std::exp(in_row[c] - max_value);
      total += out_row[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (std::int64_t c = 0; c < cols; ++c) out_row[c] *= inv;
  }
  return out;
}

Tensor conv2d(const Tensor& input, const Tensor& weight,
              const Conv2dArgs& args) {
  CARAML_CHECK_MSG(input.rank() == 4 && weight.rank() == 4,
                   "conv2d needs NCHW input and OCHW weight");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t o = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  CARAML_CHECK_MSG(weight.dim(1) == c, "conv2d channel mismatch");
  const std::int64_t oh = (h + 2 * args.padding - kh) / args.stride + 1;
  const std::int64_t ow = (w + 2 * args.padding - kw) / args.stride + 1;
  CARAML_CHECK_MSG(oh > 0 && ow > 0, "conv output would be empty");
  Tensor out({n, o, oh, ow});
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t oc = 0; oc < o; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          double acc = 0.0;
          for (std::int64_t ic = 0; ic < c; ++ic) {
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t iy = oy * args.stride + ky - args.padding;
                const std::int64_t ix = ox * args.stride + kx - args.padding;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += static_cast<double>(
                           input[((img * c + ic) * h + iy) * w + ix]) *
                       weight[((oc * c + ic) * kh + ky) * kw + kx];
              }
            }
          }
          out[((img * o + oc) * oh + oy) * ow + ox] = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

}  // namespace caraml::tensor::reference
