#include "tensor/quant.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caraml::tensor {
namespace {

// Quantize one row with a fixed scale: q = clamp(rint(x/s), -127, 127).
// rint under the default rounding mode is round-to-nearest-even, matching
// the bf16 converters' tie behavior.
void quantize_row(const float* __restrict src, std::int64_t count, float scale,
                  std::int8_t* __restrict dst) {
  const float inv = 1.0f / scale;
  for (std::int64_t i = 0; i < count; ++i) {
    const float q = std::rintf(src[i] * inv);
    dst[i] = static_cast<std::int8_t>(std::max(-127.0f, std::min(127.0f, q)));
  }
}

}  // namespace

float absmax_scale(const float* x, std::int64_t count) {
  float absmax = 0.0f;
  for (std::int64_t i = 0; i < count; ++i)
    absmax = std::max(absmax, std::fabs(x[i]));
  // The floor keeps the scale finite and nonzero for all-zero (or all-denormal)
  // inputs; everything then quantizes to 0 and dequantizes back to 0.
  return std::max(absmax, 1e-30f) / 127.0f;
}

QuantizedTensor quantize_per_tensor(const Tensor& t) {
  return quantize_with_scale(t, absmax_scale(t.data(), t.numel()));
}

QuantizedTensor quantize_with_scale(const Tensor& t, float scale) {
  CARAML_CHECK_MSG(scale > 0.0f && std::isfinite(scale),
                   "quantize_with_scale: scale must be positive and finite");
  QuantizedTensor q;
  q.shape = t.shape();
  q.data.resize(static_cast<std::size_t>(t.numel()));
  q.scales = {scale};
  quantize_row(t.data(), t.numel(), scale, q.data.data());
  return q;
}

QuantizedTensor quantize_per_channel_rows(const Tensor& t) {
  CARAML_CHECK_MSG(t.rank() == 2,
                   "quantize_per_channel_rows: tensor must be 2-D");
  const std::int64_t rows = t.dim(0);
  const std::int64_t cols = t.dim(1);
  QuantizedTensor q;
  q.shape = t.shape();
  q.data.resize(static_cast<std::size_t>(t.numel()));
  q.scales.resize(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* src = t.data() + r * cols;
    const float scale = absmax_scale(src, cols);
    q.scales[static_cast<std::size_t>(r)] = scale;
    quantize_row(src, cols, scale, q.data.data() + r * cols);
  }
  return q;
}

Tensor dequantize(const QuantizedTensor& q) {
  Tensor out(q.shape);
  const std::int64_t numel = out.numel();
  if (q.per_channel()) {
    const std::int64_t rows = q.rows();
    const std::int64_t cols = q.cols();
    for (std::int64_t r = 0; r < rows; ++r) {
      const float scale = q.scales[static_cast<std::size_t>(r)];
      const std::int8_t* __restrict src = q.data.data() + r * cols;
      float* __restrict dst = out.data() + r * cols;
      for (std::int64_t i = 0; i < cols; ++i)
        dst[i] = static_cast<float>(src[i]) * scale;
    }
  } else {
    const float scale = q.scales.empty() ? 1.0f : q.scales[0];
    const std::int8_t* __restrict src = q.data.data();
    float* __restrict dst = out.data();
    for (std::int64_t i = 0; i < numel; ++i)
      dst[i] = static_cast<float>(src[i]) * scale;
  }
  return out;
}

}  // namespace caraml::tensor
