// Reusable per-thread scratch memory for tensor kernels.
//
// GEMM packing panels and im2col column buffers are needed on every training
// step; allocating them per call dominates small-kernel runtime and fragments
// the heap. A Workspace keeps a free-list of float slabs per thread: `take(n)`
// borrows a slab (grown to at least n floats, contents undefined) and the
// returned Buffer hands it back on destruction, so steady-state training
// reuses the same few allocations across steps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace caraml::tensor {

class Workspace {
 public:
  /// A borrowed scratch slab. Movable, not copyable; returns its storage to
  /// the owning workspace when destroyed. Must be destroyed on the thread
  /// that called take() (workspaces are thread-local and unsynchronized) —
  /// the buffer's *contents* may be read by other threads while it is alive.
  class Buffer {
   public:
    Buffer() = default;
    Buffer(Buffer&& other) noexcept { *this = std::move(other); }
    Buffer& operator=(Buffer&& other) noexcept {
      release();
      owner_ = other.owner_;
      storage_ = std::move(other.storage_);
      size_ = other.size_;
      other.owner_ = nullptr;
      other.size_ = 0;
      return *this;
    }
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    ~Buffer() { release(); }

    float* data() { return storage_.data(); }
    const float* data() const { return storage_.data(); }
    std::size_t size() const { return size_; }

   private:
    friend class Workspace;
    Buffer(Workspace* owner, std::vector<float> storage, std::size_t size)
        : owner_(owner), storage_(std::move(storage)), size_(size) {}
    void release();

    Workspace* owner_ = nullptr;
    std::vector<float> storage_;
    std::size_t size_ = 0;
  };

  /// Borrow a slab of at least `count` floats; contents are undefined.
  Buffer take(std::size_t count);

  /// Borrow a slab of `count` floats, zero-filled.
  Buffer take_zeroed(std::size_t count);

  /// Number of idle slabs currently parked in the free-list (introspection
  /// for tests/diagnostics).
  std::size_t idle_slabs() const { return free_.size(); }

  /// Total floats reserved across idle slabs.
  std::size_t idle_floats() const;

  /// The calling thread's workspace.
  static Workspace& local();

 private:
  std::vector<std::vector<float>> free_;
};

}  // namespace caraml::tensor
