#include "tensor/fused.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "tensor/gemm.hpp"
#include "tensor/workspace.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caraml::tensor::fused {

namespace {

// Branchless single-precision exp (Cephes-style: Cody-Waite range reduction
// to [-ln2/2, ln2/2], degree-5 polynomial, 2^n reconstruction through the
// exponent bits). Written without calls or branches so the compiler can
// auto-vectorize the softmax loops; libm's scalar expf is ~28% of the fused
// forward at T = 256. Accuracy is a few ulp, far inside the kernel-equivalence
// tolerances. NaN propagates: the clamps use comparisons that are false for
// NaN, and NaN times any reconstruction scale stays NaN, so an unmasked NaN
// score still poisons its row exactly like std::exp would.
inline float fast_exp(float x) {
  x = x > 88.0f ? 88.0f : x;    // below inf-overflow threshold
  x = x < -87.0f ? -87.0f : x;  // stays in normal range (no denormal stalls)
  const float z = x * 1.44269504f;  // x / ln2
  const float t = z + 12582912.0f;  // 1.5·2^23: forces round-to-nearest-int
  std::int32_t n_bits;
  std::memcpy(&n_bits, &t, sizeof(n_bits));
  n_bits -= 0x4B400000;  // low mantissa bits of t hold n + bias pattern
  const float n = t - 12582912.0f;
  float f = x - n * 0.693359375f;  // Cody-Waite split of ln2
  f -= n * -2.12194440e-4f;
  float p = 1.9875691500e-4f;
  p = p * f + 1.3981999507e-3f;
  p = p * f + 8.3334519073e-3f;
  p = p * f + 4.1665795894e-2f;
  p = p * f + 1.6666665459e-1f;
  p = p * f + 5.0000001201e-1f;
  const float r = 1.0f + f + f * f * p;
  const std::int32_t e_bits = (n_bits + 127) << 23;  // bits of 2^n
  float pow2n;
  std::memcpy(&pow2n, &e_bits, sizeof(e_bits));
  return r * pow2n;
}

// Stage one head's rows from the packed qkv (row stride `stride`, 3C) into a
// contiguous [time, head_dim] scratch. The tile GEMMs re-read K and V once
// per query block; contiguous panels keep that working set at
// time * head_dim floats instead of smearing each 128-byte head row across a
// 3C-strided, page-spanning footprint.
void stage_head(const float* src, std::int64_t time, std::int64_t head_dim,
                std::int64_t stride, float* dst) {
  for (std::int64_t t = 0; t < time; ++t) {
    const float* __restrict row = src + t * stride;
    float* __restrict out = dst + t * head_dim;
    for (std::int64_t c = 0; c < head_dim; ++c) out[c] = row[c];
  }
}

// Per-(b, h) forward over one head's staged Q/K/V. Processes one query block
// at a time: causality bounds the live key range to [0, i0 + br), so a single
// QK^T gemm over that prefix, an exact softmax over each row's live columns,
// and a single P·V gemm produce the block's output. Scratch stays at
// O(block · time) per thread — the full [T, T] score matrix is never held.
// Query blocks run in a fixed order, so the result does not depend on how
// (b, h) pairs were distributed over threads.
void attention_head_forward(const float* q_base, const float* k_base,
                            const float* v_base, std::int64_t time,
                            std::int64_t head_dim, std::int64_t qkv_stride,
                            float scale, float* out_base,
                            std::int64_t out_stride, float* lse_row) {
  constexpr std::int64_t block = kAttentionBlock;
  Workspace& ws = Workspace::local();
  const std::size_t panel = static_cast<std::size_t>(time * head_dim);
  Workspace::Buffer q_buf = ws.take(panel);
  Workspace::Buffer k_buf = ws.take(panel);
  Workspace::Buffer v_buf = ws.take(panel);
  Workspace::Buffer s_buf = ws.take(static_cast<std::size_t>(block * time));
  Workspace::Buffer acc_buf =
      ws.take(static_cast<std::size_t>(block * head_dim));
  float* __restrict q = q_buf.data();
  float* __restrict kk = k_buf.data();
  float* __restrict v = v_buf.data();
  float* __restrict s = s_buf.data();
  float* __restrict acc = acc_buf.data();
  stage_head(q_base, time, head_dim, qkv_stride, q);
  stage_head(k_base, time, head_dim, qkv_stride, kk);
  stage_head(v_base, time, head_dim, qkv_stride, v);

  for (std::int64_t i0 = 0; i0 < time; i0 += block) {
    const std::int64_t br = std::min(block, time - i0);
    // No row in this block attends past i0 + br - 1; keys beyond that are
    // skipped outright (~half the QK^T and P·V flops of the dense path).
    const std::int64_t jext = i0 + br;

    // S = Q_i · K^T over the live key prefix.
    std::fill_n(s, br * jext, 0.0f);
    detail::gemm(false, true, br, jext, head_dim, q + i0 * head_dim, head_dim,
                 kk, head_dim, s, jext);

    for (std::int64_t r = 0; r < br; ++r) {
      const std::int64_t qi = i0 + r;
      float* __restrict s_row = s + r * jext;
      // Masked slots (j > i) are set to exact zero probability without ever
      // being exponentiated — this also erases any NaN they carried, matching
      // the head-loop path's mask overwrite. A NaN at an unmasked slot is
      // skipped by std::max (comparisons with NaN are false) but survives
      // exp() and poisons the whole row through the normalizer, as before.
      float row_max = -std::numeric_limits<float>::infinity();
      for (std::int64_t cdx = 0; cdx <= qi; ++cdx) {
        s_row[cdx] *= scale;
        row_max = std::max(row_max, s_row[cdx]);
      }
      // exp and sum run as separate passes: the exp loop carries no loop
      // dependence, so it vectorizes; the float sum reduction would block it.
      for (std::int64_t cdx = 0; cdx <= qi; ++cdx) {
        s_row[cdx] = fast_exp(s_row[cdx] - row_max);
      }
      float l = 0.0f;
      for (std::int64_t cdx = 0; cdx <= qi; ++cdx) l += s_row[cdx];
      const float inv = 1.0f / l;
      for (std::int64_t cdx = 0; cdx <= qi; ++cdx) s_row[cdx] *= inv;
      for (std::int64_t cdx = qi + 1; cdx < jext; ++cdx) s_row[cdx] = 0.0f;
      lse_row[qi] = row_max + std::log(l);
    }

    // O_i = P · V over the same prefix, then scatter into the strided slice.
    std::fill_n(acc, br * head_dim, 0.0f);
    detail::gemm(false, false, br, head_dim, jext, s, jext, v, head_dim, acc,
                 head_dim);
    for (std::int64_t r = 0; r < br; ++r) {
      const float* __restrict acc_row = acc + r * head_dim;
      float* __restrict dst = out_base + (i0 + r) * out_stride;
      for (std::int64_t c = 0; c < head_dim; ++c) dst[c] = acc_row[c];
    }
  }
}

// Per-(b, h) backward: recompute each query block's score prefix from the
// staged Q/K, rebuild the attention probabilities via the saved lse, and
// gemm-accumulate dQ/dK/dV into contiguous per-head panels that are
// scatter-added into the (disjoint) strided slices of d_qkv at the end.
void attention_head_backward(const float* q_base, const float* k_base,
                             const float* v_base, const float* out_base,
                             const float* dout_base, const float* lse_row,
                             std::int64_t time, std::int64_t head_dim,
                             std::int64_t qkv_stride, std::int64_t out_stride,
                             float scale, float* dq_base, float* dk_base,
                             float* dv_base) {
  constexpr std::int64_t block = kAttentionBlock;
  Workspace& ws = Workspace::local();
  const std::size_t panel = static_cast<std::size_t>(time * head_dim);
  Workspace::Buffer q_buf = ws.take(panel);
  Workspace::Buffer k_buf = ws.take(panel);
  Workspace::Buffer v_buf = ws.take(panel);
  Workspace::Buffer dout_buf = ws.take(panel);
  Workspace::Buffer dq_buf = ws.take_zeroed(panel);
  Workspace::Buffer dk_buf = ws.take_zeroed(panel);
  Workspace::Buffer dv_buf = ws.take_zeroed(panel);
  Workspace::Buffer s_buf = ws.take(static_cast<std::size_t>(block * time));
  Workspace::Buffer dp_buf = ws.take(static_cast<std::size_t>(block * time));
  Workspace::Buffer d_buf = ws.take(static_cast<std::size_t>(time));
  float* __restrict q = q_buf.data();
  float* __restrict kk = k_buf.data();
  float* __restrict v = v_buf.data();
  float* __restrict dout = dout_buf.data();
  float* __restrict dq = dq_buf.data();
  float* __restrict dk = dk_buf.data();
  float* __restrict dv = dv_buf.data();
  float* __restrict s = s_buf.data();
  float* __restrict dp = dp_buf.data();
  float* __restrict d_row = d_buf.data();
  stage_head(q_base, time, head_dim, qkv_stride, q);
  stage_head(k_base, time, head_dim, qkv_stride, kk);
  stage_head(v_base, time, head_dim, qkv_stride, v);
  stage_head(dout_base, time, head_dim, out_stride, dout);

  // D_i = rowsum(dO ∘ O) — the softmax-backward inner product, recoverable
  // from the forward output without any stored attention matrix.
  for (std::int64_t i = 0; i < time; ++i) {
    const float* __restrict o = out_base + i * out_stride;
    const float* __restrict go = dout + i * head_dim;
    float acc = 0.0f;
    for (std::int64_t c = 0; c < head_dim; ++c) acc += go[c] * o[c];
    d_row[i] = acc;
  }

  for (std::int64_t i0 = 0; i0 < time; i0 += block) {
    const std::int64_t br = std::min(block, time - i0);
    const std::int64_t jext = i0 + br;  // live key prefix for this block
    const float* dout_i = dout + i0 * head_dim;

    // Recompute P = exp(scale·QK^T - lse) over the prefix; masked slots are
    // exact zeros (never exponentiated, so a masked NaN is erased here too).
    std::fill_n(s, br * jext, 0.0f);
    detail::gemm(false, true, br, jext, head_dim, q + i0 * head_dim, head_dim,
                 kk, head_dim, s, jext);
    for (std::int64_t r = 0; r < br; ++r) {
      const std::int64_t qi = i0 + r;
      const float lse = lse_row[qi];
      float* __restrict s_row = s + r * jext;
      for (std::int64_t cdx = 0; cdx <= qi; ++cdx) {
        s_row[cdx] = fast_exp(s_row[cdx] * scale - lse);
      }
      for (std::int64_t cdx = qi + 1; cdx < jext; ++cdx) s_row[cdx] = 0.0f;
    }

    // dV += P^T · dO_i.
    detail::gemm(true, false, jext, head_dim, br, s, jext, dout_i, head_dim,
                 dv, head_dim);

    // dP = dO_i · V^T over the prefix.
    std::fill_n(dp, br * jext, 0.0f);
    detail::gemm(false, true, br, jext, head_dim, dout_i, head_dim, v,
                 head_dim, dp, jext);

    // dS = P ∘ (dP - D) · scale, built in place over P.
    for (std::int64_t r = 0; r < br; ++r) {
      const float d = d_row[i0 + r];
      float* __restrict s_row = s + r * jext;
      const float* __restrict dp_row = dp + r * jext;
      for (std::int64_t cdx = 0; cdx < jext; ++cdx) {
        s_row[cdx] *= (dp_row[cdx] - d) * scale;
      }
    }

    // dQ_i += dS · K ; dK += dS^T · Q_i.
    detail::gemm(false, false, br, head_dim, jext, s, jext, kk, head_dim,
                 dq + i0 * head_dim, head_dim);
    detail::gemm(true, false, jext, head_dim, br, s, jext, q + i0 * head_dim,
                 head_dim, dk, head_dim);
  }

  // Scatter the contiguous accumulators back into the strided d_qkv slices.
  // The caller accumulates (+=), so add rather than overwrite.
  for (std::int64_t t = 0; t < time; ++t) {
    float* __restrict dst_q = dq_base + t * qkv_stride;
    float* __restrict dst_k = dk_base + t * qkv_stride;
    float* __restrict dst_v = dv_base + t * qkv_stride;
    const float* __restrict src_q = dq + t * head_dim;
    const float* __restrict src_k = dk + t * head_dim;
    const float* __restrict src_v = dv + t * head_dim;
    for (std::int64_t c = 0; c < head_dim; ++c) {
      dst_q[c] += src_q[c];
      dst_k[c] += src_k[c];
      dst_v[c] += src_v[c];
    }
  }
}

void check_attention_args(std::int64_t batch, std::int64_t time,
                          std::int64_t embed, std::int64_t num_heads,
                          const char* what) {
  CARAML_CHECK_MSG(batch > 0 && time > 0 && num_heads > 0,
                   std::string(what) + ": dimensions must be positive");
  CARAML_CHECK_MSG(embed % num_heads == 0,
                   std::string(what) +
                       ": embed_dim must be divisible by num_heads");
}

}  // namespace

void causal_attention_forward(const float* qkv, std::int64_t batch,
                              std::int64_t time, std::int64_t embed,
                              std::int64_t num_heads, float* heads_out,
                              float* lse) {
  check_attention_args(batch, time, embed, num_heads,
                       "causal_attention_forward");
  const std::int64_t head_dim = embed / num_heads;
  const std::int64_t qkv_stride = 3 * embed;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  caraml::parallel_for_range(
      0, static_cast<std::size_t>(batch * num_heads), 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t b = static_cast<std::int64_t>(idx) / num_heads;
          const std::int64_t h = static_cast<std::int64_t>(idx) % num_heads;
          const float* head_qkv =
              qkv + b * time * qkv_stride + h * head_dim;
          attention_head_forward(
              head_qkv, head_qkv + embed, head_qkv + 2 * embed, time, head_dim,
              qkv_stride, scale, heads_out + b * time * embed + h * head_dim,
              embed, lse + static_cast<std::int64_t>(idx) * time);
        }
      });
}

void causal_attention_backward(const float* qkv, const float* heads_out,
                               const float* d_heads, const float* lse,
                               std::int64_t batch, std::int64_t time,
                               std::int64_t embed, std::int64_t num_heads,
                               float* d_qkv) {
  check_attention_args(batch, time, embed, num_heads,
                       "causal_attention_backward");
  const std::int64_t head_dim = embed / num_heads;
  const std::int64_t qkv_stride = 3 * embed;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

  caraml::parallel_for_range(
      0, static_cast<std::size_t>(batch * num_heads), 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t b = static_cast<std::int64_t>(idx) / num_heads;
          const std::int64_t h = static_cast<std::int64_t>(idx) % num_heads;
          const float* head_qkv =
              qkv + b * time * qkv_stride + h * head_dim;
          float* head_d_qkv =
              d_qkv + b * time * qkv_stride + h * head_dim;
          const std::int64_t out_off = b * time * embed + h * head_dim;
          attention_head_backward(
              head_qkv, head_qkv + embed, head_qkv + 2 * embed,
              heads_out + out_off, d_heads + out_off,
              lse + static_cast<std::int64_t>(idx) * time, time, head_dim,
              qkv_stride, embed, scale, head_d_qkv, head_d_qkv + embed,
              head_d_qkv + 2 * embed);
        }
      });
}

namespace {

Tensor linear_epilogue(const Tensor& x, const Tensor& w, const Tensor* bias,
                       detail::GemmEpilogue epilogue, const char* what) {
  CARAML_CHECK_MSG(x.rank() == 2 && w.rank() == 2 && x.dim(1) == w.dim(1),
                   std::string(what) + ": shape mismatch " +
                       shape_to_string(x.shape()) + " vs " +
                       shape_to_string(w.shape()));
  const std::int64_t rows = x.dim(0);
  const std::int64_t in = x.dim(1);
  const std::int64_t out_dim = w.dim(0);
  if (bias != nullptr) {
    CARAML_CHECK_MSG(bias->numel() == out_dim,
                     std::string(what) + ": bias size mismatch");
    epilogue.bias = bias->data();
  }
  Tensor out({rows, out_dim});
  detail::gemm(false, true, rows, out_dim, in, x.data(), in, w.data(), in,
               out.data(), out_dim, epilogue);
  return out;
}

Tensor linear_epilogue_bf16(const Bf16Tensor& x, const Bf16Tensor& w,
                            const Tensor* bias, detail::GemmEpilogue epilogue,
                            const char* what) {
  CARAML_CHECK_MSG(x.rank() == 2 && w.rank() == 2 && x.dim(1) == w.dim(1),
                   std::string(what) + ": shape mismatch " +
                       shape_to_string(x.shape()) + " vs " +
                       shape_to_string(w.shape()));
  const std::int64_t rows = x.dim(0);
  const std::int64_t in = x.dim(1);
  const std::int64_t out_dim = w.dim(0);
  if (bias != nullptr) {
    CARAML_CHECK_MSG(bias->numel() == out_dim,
                     std::string(what) + ": bias size mismatch");
    epilogue.bias = bias->data();
  }
  Tensor out({rows, out_dim});
  detail::gemm_bf16(false, true, rows, out_dim, in, x.data(), in, w.data(),
                    in, out.data(), out_dim, epilogue);
  return out;
}

Tensor linear_epilogue_i8(const QuantizedTensor& x, const QuantizedTensor& w,
                          const Tensor* bias, detail::GemmEpilogue epilogue,
                          const char* what) {
  CARAML_CHECK_MSG(x.shape.size() == 2 && w.shape.size() == 2 &&
                       x.cols() == w.cols(),
                   std::string(what) + ": shape mismatch");
  CARAML_CHECK_MSG(!x.per_channel(),
                   std::string(what) + ": activations must be per-tensor");
  CARAML_CHECK_MSG(w.per_channel() &&
                       w.scales.size() == static_cast<std::size_t>(w.rows()),
                   std::string(what) + ": weights must be per-channel rows");
  const std::int64_t rows = x.rows();
  const std::int64_t in = x.cols();
  const std::int64_t out_dim = w.rows();
  if (bias != nullptr) {
    CARAML_CHECK_MSG(bias->numel() == out_dim,
                     std::string(what) + ": bias size mismatch");
    epilogue.bias = bias->data();
  }
  Tensor out({rows, out_dim});
  detail::gemm_i8(true, rows, out_dim, in, x.data.data(), in, w.data.data(),
                  in, x.scales[0], w.scales.data(), out.data(), out_dim,
                  epilogue);
  return out;
}

}  // namespace

Tensor linear(const Tensor& x, const Tensor& w, const Tensor* bias) {
  return linear_epilogue(x, w, bias, detail::GemmEpilogue{}, "fused::linear");
}

Tensor linear_gelu(const Tensor& x, const Tensor& w, const Tensor* bias,
                   Tensor* pre) {
  detail::GemmEpilogue epilogue;
  epilogue.gelu = true;
  if (pre != nullptr) {
    *pre = Tensor({x.dim(0), w.dim(0)});
    epilogue.pre_activation = pre->data();
  }
  return linear_epilogue(x, w, bias, epilogue, "fused::linear_gelu");
}

Tensor linear_dropout(const Tensor& x, const Tensor& w, const Tensor* bias,
                      const Tensor& mask) {
  CARAML_CHECK_MSG(mask.rank() == 2 && mask.dim(0) == x.dim(0) &&
                       mask.dim(1) == w.dim(0),
                   "fused::linear_dropout: mask shape " +
                       shape_to_string(mask.shape()) + " must be [" +
                       std::to_string(x.dim(0)) + ", " +
                       std::to_string(w.dim(0)) + "]");
  detail::GemmEpilogue epilogue;
  epilogue.dropout_mask = mask.data();
  return linear_epilogue(x, w, bias, epilogue, "fused::linear_dropout");
}

Tensor linear_bf16(const Bf16Tensor& x, const Bf16Tensor& w,
                   const Tensor* bias) {
  return linear_epilogue_bf16(x, w, bias, detail::GemmEpilogue{},
                              "fused::linear_bf16");
}

Tensor linear_gelu_bf16(const Bf16Tensor& x, const Bf16Tensor& w,
                        const Tensor* bias, Tensor* pre) {
  detail::GemmEpilogue epilogue;
  epilogue.gelu = true;
  if (pre != nullptr) {
    *pre = Tensor({x.dim(0), w.dim(0)});
    epilogue.pre_activation = pre->data();
  }
  return linear_epilogue_bf16(x, w, bias, epilogue, "fused::linear_gelu_bf16");
}

Tensor linear_dropout_bf16(const Bf16Tensor& x, const Bf16Tensor& w,
                           const Tensor* bias, const Tensor& mask) {
  CARAML_CHECK_MSG(mask.rank() == 2 && mask.dim(0) == x.dim(0) &&
                       mask.dim(1) == w.dim(0),
                   "fused::linear_dropout_bf16: mask shape " +
                       shape_to_string(mask.shape()) + " must be [" +
                       std::to_string(x.dim(0)) + ", " +
                       std::to_string(w.dim(0)) + "]");
  detail::GemmEpilogue epilogue;
  epilogue.dropout_mask = mask.data();
  return linear_epilogue_bf16(x, w, bias, epilogue,
                              "fused::linear_dropout_bf16");
}

Tensor linear_i8(const QuantizedTensor& x, const QuantizedTensor& w,
                 const Tensor* bias) {
  return linear_epilogue_i8(x, w, bias, detail::GemmEpilogue{},
                            "fused::linear_i8");
}

Tensor linear_gelu_i8(const QuantizedTensor& x, const QuantizedTensor& w,
                      const Tensor* bias, Tensor* pre) {
  detail::GemmEpilogue epilogue;
  epilogue.gelu = true;
  if (pre != nullptr) {
    *pre = Tensor({x.rows(), w.rows()});
    epilogue.pre_activation = pre->data();
  }
  return linear_epilogue_i8(x, w, bias, epilogue, "fused::linear_gelu_i8");
}

}  // namespace caraml::tensor::fused
