#include "tensor/workspace.hpp"

#include <algorithm>
#include <cstring>

namespace caraml::tensor {

void Workspace::Buffer::release() {
  if (owner_ == nullptr) return;
  owner_->free_.push_back(std::move(storage_));
  owner_ = nullptr;
  size_ = 0;
}

Workspace::Buffer Workspace::take(std::size_t count) {
  // Best fit: the smallest idle slab that already holds `count` floats; else
  // recycle the largest one (fewest bytes to grow).
  std::size_t best = free_.size();
  std::size_t largest = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    const std::size_t cap = free_[i].size();
    if (cap >= count && (best == free_.size() || cap < free_[best].size())) {
      best = i;
    }
    if (largest == free_.size() || cap > free_[largest].size()) largest = i;
  }
  const std::size_t pick = best != free_.size() ? best : largest;
  std::vector<float> storage;
  if (pick != free_.size()) {
    storage = std::move(free_[pick]);
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  if (storage.size() < count) storage.resize(count);
  return Buffer(this, std::move(storage), count);
}

Workspace::Buffer Workspace::take_zeroed(std::size_t count) {
  Buffer buffer = take(count);
  if (count > 0) std::memset(buffer.data(), 0, count * sizeof(float));
  return buffer;
}

std::size_t Workspace::idle_floats() const {
  std::size_t total = 0;
  for (const auto& slab : free_) total += slab.size();
  return total;
}

Workspace& Workspace::local() {
  thread_local Workspace workspace;
  return workspace;
}

}  // namespace caraml::tensor
