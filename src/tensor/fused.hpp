// Fused transformer hot-path kernels.
//
// Two families live here, both built on the blocked GEMM and the per-thread
// Workspace arena:
//
// 1. Flash-attention-style causal self-attention. The head-loop formulation
//    materializes a [T, T] score matrix and a [T, T] attention matrix per
//    (batch, head) pair across five kernel launches, and caches every
//    attention matrix for backward — an O(B·H·T²) memory blowup. The fused
//    kernels instead walk query blocks of kAttentionBlock rows: causality
//    bounds each block's live key range to the prefix [0, i0 + block), so one
//    QK^T GEMM over that prefix, an exact softmax restricted to each row's
//    unmasked columns (a branchless vectorized exp — libm's scalar expf is
//    ~28% of the kernel otherwise), and one P·V GEMM finish the block.
//    Scratch tops out at block · T floats per thread; nothing proportional to
//    T² is ever allocated. Backward recomputes each block's probabilities
//    from the cached QKV projections plus the per-row log-sum-exp the forward
//    saves — O(B·H·T) extra state instead of O(B·H·T²).
//
//    Per (b, h), both kernels first stage Q/K/V (and dO in backward) from the
//    packed [B*T, 3C] QKV projection into contiguous [T, head_dim] Workspace
//    panels: the prefix GEMMs re-read K and V once per query block, and the
//    contiguous panels keep that working set at T·head_dim floats instead of
//    smearing each head row across a 3C-strided footprint. Work is
//    parallelized over (b, h) pairs; within a pair, query blocks run in a
//    fixed sequential order, so outputs are byte-identical for any
//    thread-pool size.
//
// 2. Fused linear epilogues: bias, bias+GELU and bias+dropout applied during
//    the GEMM C write-back (see detail::GemmEpilogue) instead of as separate
//    passes over the output.
#pragma once

#include "tensor/dtype.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"

namespace caraml::tensor::fused {

// Query-block height for the attention kernels. The score prefix
// (block · T floats, 64 KiB at T = 256) plus the staged Q/K/V panels fit
// comfortably in a 256 KiB L2 slice at practical sequence lengths.
inline constexpr std::int64_t kAttentionBlock = 64;

/// Causal attention forward over a packed QKV projection.
///
/// qkv: [B*T, 3C] row-major, laid out [Q | K | V] per row with H heads of
/// head_dim = C/H columns each. For every (b, h):
///
///   out_h = softmax(mask(Q_h · K_h^T / sqrt(head_dim))) · V_h
///
/// heads_out: [B*T, C]; head h writes columns [h*hd, (h+1)*hd).
/// lse: [B*H, T] row-major; receives the per-query-row log-sum-exp of the
/// masked, scaled scores (the statistic backward needs to recompute
/// attention tiles). Masked (future) positions are excluded before the
/// softmax, exactly like the head-loop path: a NaN in a masked score slot
/// never leaks into the output.
void causal_attention_forward(const float* qkv, std::int64_t batch,
                              std::int64_t time, std::int64_t embed,
                              std::int64_t num_heads, float* heads_out,
                              float* lse);

/// Backward of causal_attention_forward.
///
/// Recomputes score tiles from qkv and lse (no stored attention matrices),
/// then accumulates dQ/dK/dV into d_qkv ([B*T, 3C], caller-zeroed) in the
/// same packed layout. heads_out / d_heads are the forward output and its
/// incoming gradient ([B*T, C]).
void causal_attention_backward(const float* qkv, const float* heads_out,
                               const float* d_heads, const float* lse,
                               std::int64_t batch, std::int64_t time,
                               std::int64_t embed, std::int64_t num_heads,
                               float* d_qkv);

/// out = x · W^T + b, bias added during the GEMM write-back.
/// x [N, in], w [out, in], bias [out] (nullptr for no bias).
Tensor linear(const Tensor& x, const Tensor& w, const Tensor* bias);

/// out = gelu(x · W^T + b). When `pre` is non-null it receives the post-bias
/// pre-activation (what gelu_backward consumes), captured during the same
/// write-back.
Tensor linear_gelu(const Tensor& x, const Tensor& w, const Tensor* bias,
                   Tensor* pre);

/// out = (x · W^T + b) ∘ mask, with `mask` a scaled keep-mask shaped [N, out]
/// (inverted-dropout convention: kept elements hold 1/(1-p), dropped 0).
Tensor linear_dropout(const Tensor& x, const Tensor& w, const Tensor* bias,
                      const Tensor& mask);

/// bf16 variants of the fused linears: x and w are stored bf16, the GEMM
/// widens while packing and accumulates fp32, and the bias/GELU/dropout
/// epilogue applies to the fp32 result exactly as in the fp32 path. The bias
/// and mask stay fp32 (they are O(N) next to the O(N·C) GEMM traffic).
Tensor linear_bf16(const Bf16Tensor& x, const Bf16Tensor& w,
                   const Tensor* bias);
Tensor linear_gelu_bf16(const Bf16Tensor& x, const Bf16Tensor& w,
                        const Tensor* bias, Tensor* pre);
Tensor linear_dropout_bf16(const Bf16Tensor& x, const Bf16Tensor& w,
                           const Tensor* bias, const Tensor& mask);

/// int8 inference linears: x per-tensor quantized, w per-channel quantized
/// ([out, in], one scale per output row). Integer accumulation with fp32
/// dequant fused into the same epilogue write-back, so bias/GELU compose
/// unchanged on the dequantized values.
Tensor linear_i8(const QuantizedTensor& x, const QuantizedTensor& w,
                 const Tensor* bias);
Tensor linear_gelu_i8(const QuantizedTensor& x, const QuantizedTensor& w,
                      const Tensor* bias, Tensor* pre);

}  // namespace caraml::tensor::fused
