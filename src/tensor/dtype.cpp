#include "tensor/dtype.hpp"

#include "tensor/gemm.hpp"
#include "util/error.hpp"

namespace caraml::tensor {

const char* dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return "fp32";
    case DType::kBf16:
      return "bf16";
    case DType::kI8:
      return "int8";
  }
  return "fp32";
}

std::optional<DType> dtype_from_string(const std::string& name) {
  if (name == "fp32") return DType::kF32;
  if (name == "bf16") return DType::kBf16;
  if (name == "int8") return DType::kI8;
  return std::nullopt;
}

std::size_t dtype_bytes(DType dtype) {
  switch (dtype) {
    case DType::kF32:
      return 4;
    case DType::kBf16:
      return 2;
    case DType::kI8:
      return 1;
  }
  return 4;
}

void bf16_to_float_n(const bf16_t* __restrict src, float* __restrict dst,
                     std::int64_t count) {
  for (std::int64_t i = 0; i < count; ++i) {
    const std::uint32_t bits = static_cast<std::uint32_t>(src[i]) << 16;
    std::memcpy(&dst[i], &bits, sizeof(float));
  }
}

void float_to_bf16_n(const float* __restrict src, bf16_t* __restrict dst,
                     std::int64_t count) {
  // Branch-free body of float_to_bf16 (the NaN case becomes a select) so the
  // loop vectorizes.
  for (std::int64_t i = 0; i < count; ++i) {
    std::uint32_t bits;
    std::memcpy(&bits, &src[i], sizeof(bits));
    const bool is_nan = (bits & 0x7f800000u) == 0x7f800000u &&
                        (bits & 0x007fffffu) != 0u;
    const std::uint32_t rounded = bits + 0x7fffu + ((bits >> 16) & 1u);
    const std::uint16_t quiet_nan =
        static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
    dst[i] = is_nan ? quiet_nan : static_cast<std::uint16_t>(rounded >> 16);
  }
}

Bf16Tensor::Bf16Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      data_(static_cast<std::size_t>(numel_), 0) {}

Bf16Tensor Bf16Tensor::from_float(const Tensor& t) {
  Bf16Tensor out(t.shape());
  float_to_bf16_n(t.data(), out.data(), t.numel());
  return out;
}

Tensor Bf16Tensor::to_float() const {
  Tensor out(shape_);
  bf16_to_float_n(data(), out.data(), numel_);
  return out;
}

std::int64_t Bf16Tensor::dim(std::size_t i) const {
  CARAML_CHECK_MSG(i < shape_.size(), "Bf16Tensor::dim: axis out of range");
  return shape_[i];
}

namespace {

void check_2d(const Bf16Tensor& t, const char* what) {
  CARAML_CHECK_MSG(t.rank() == 2, std::string(what) + ": operand must be 2-D");
}

}  // namespace

Tensor matmul_bf16(const Bf16Tensor& a, const Bf16Tensor& b) {
  check_2d(a, "matmul_bf16");
  check_2d(b, "matmul_bf16");
  CARAML_CHECK_MSG(a.dim(1) == b.dim(0), "matmul_bf16: inner dims mismatch");
  Tensor c({a.dim(0), b.dim(1)});
  detail::gemm_bf16(false, false, a.dim(0), b.dim(1), a.dim(1), a.data(),
                    a.dim(1), b.data(), b.dim(1), c.data(), b.dim(1));
  return c;
}

Tensor matmul_nt_bf16(const Bf16Tensor& a, const Bf16Tensor& b) {
  check_2d(a, "matmul_nt_bf16");
  check_2d(b, "matmul_nt_bf16");
  CARAML_CHECK_MSG(a.dim(1) == b.dim(1), "matmul_nt_bf16: inner dims mismatch");
  Tensor c({a.dim(0), b.dim(0)});
  detail::gemm_bf16(false, true, a.dim(0), b.dim(0), a.dim(1), a.data(),
                    a.dim(1), b.data(), b.dim(1), c.data(), b.dim(0));
  return c;
}

Tensor matmul_tn_bf16(const Bf16Tensor& a, const Bf16Tensor& b) {
  check_2d(a, "matmul_tn_bf16");
  check_2d(b, "matmul_tn_bf16");
  CARAML_CHECK_MSG(a.dim(0) == b.dim(0), "matmul_tn_bf16: inner dims mismatch");
  Tensor c({a.dim(1), b.dim(1)});
  detail::gemm_bf16(true, false, a.dim(1), b.dim(1), a.dim(0), a.data(),
                    a.dim(1), b.data(), b.dim(1), c.data(), b.dim(1));
  return c;
}

}  // namespace caraml::tensor
