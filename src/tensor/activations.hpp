// Scalar activation formulas shared by the elementwise kernels (tensor.cpp)
// and the GEMM epilogue hook (gemm.cpp). One definition keeps the fused
// bias+GELU write-back bit-identical to the separate gelu() pass.
#pragma once

#include <cmath>

namespace caraml::tensor::detail {

// tanh-approximation GELU, as used by GPT-style models.
inline float gelu_scalar(float x) {
  const float c = 0.7978845608028654f;  // sqrt(2/pi)
  const float inner = c * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float gelu_grad_scalar(float x) {
  const float c = 0.7978845608028654f;
  const float x3 = x * x * x;
  const float inner = c * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * c * (1.0f + 3.0f * 0.044715f * x * x);
}

}  // namespace caraml::tensor::detail
