// Blocked, packed, register-tiled single-precision GEMM.
//
// One kernel powers matmul / matmul_nt / matmul_tn: C += op(A)·op(B) with
// row-major operands and independent transpose flags. The implementation is
// the classic three-level cache blocking (BLIS/GotoBLAS structure):
//
//   for each KC slice of k:            (B slice stays in L2)
//     for each NC slice of n:
//       pack op(B) into NR-wide column panels   (contiguous, zero-padded)
//       parallel over rows:                     (grain-aware chunks)
//         for each MC slice of the chunk:
//           pack op(A) into MR-wide row panels  (per-thread workspace)
//           MR x NR micro-kernel: rank-KC update accumulated in registers
//
// Packing makes the micro-kernel's loads contiguous and transpose-agnostic,
// so `__restrict` plain loops auto-vectorize; accumulators live in registers
// for the whole KC depth, eliminating the k-fold C traffic of the naive
// kernel. Panels come from the per-thread Workspace, so steady-state
// training reuses the same slabs every step.
#pragma once

#include <cstdint>

namespace caraml::tensor::detail {

// Register tile (micro-kernel footprint) and cache blocking. 6x16 fills the
// 16 AVX2 ymm registers (12 accumulators + B row + A broadcast); KC keeps an
// A panel pair in L1/L2, NC bounds the packed B panel to ~L2.
inline constexpr int kGemmMR = 6;
inline constexpr int kGemmNR = 16;
inline constexpr std::int64_t kGemmMC = 72;    // multiple of kGemmMR
inline constexpr std::int64_t kGemmKC = 256;
inline constexpr std::int64_t kGemmNC = 1024;  // multiple of kGemmNR

// Below this many multiply-adds (m*n*k) the packed path's overhead is not
// worth it and a direct register-accumulating loop runs instead.
inline constexpr std::int64_t kGemmDirectThreshold = 32 * 32 * 32;

/// C[m,n] += op(A)·op(B).
///
/// op(A) is A[m,k] when !trans_a, else A is stored [k,m] and used transposed;
/// op(B) is B[k,n] when !trans_b, else B is stored [n,k] and used transposed.
/// lda/ldb/ldc are row strides of the *stored* matrices. C must be
/// initialized by the caller (the kernel accumulates). trans_a && trans_b is
/// unsupported (no caller needs it).
void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, const float* a, std::int64_t lda, const float* b,
          std::int64_t ldb, float* c, std::int64_t ldc);

/// Elementwise post-processing fused into the GEMM write-back.
///
/// Each C element is transformed exactly once, immediately after its final
/// KC-slice accumulation, while the row chunk is still cache-hot — no extra
/// pass over C. Application order per element:
///
///   v  = C[i][j] + bias[j]            (bias may be null)
///   pre_activation[i][j] = v          (optional post-bias capture — what a
///                                      GELU backward needs)
///   v  = gelu(v)                      (when gelu is set)
///   v *= dropout_mask[i][j]           (scaled keep-mask, may be null)
///   C[i][j] = v
///
/// pre_activation and dropout_mask are row-major [m, n] with row stride ldc
/// (callers pass dense outputs, so ldc == n in practice). The epilogue is
/// applied even for degenerate k <= 0 (C holds its initial value, usually 0).
struct GemmEpilogue {
  const float* bias = nullptr;          // [n], added to every row
  bool gelu = false;                    // tanh-GELU after the bias
  const float* dropout_mask = nullptr;  // [m, n], multiplied last
  float* pre_activation = nullptr;      // [m, n], receives the post-bias value

  bool empty() const {
    return bias == nullptr && !gelu && dropout_mask == nullptr &&
           pre_activation == nullptr;
  }
};

/// GEMM with a fused epilogue (see GemmEpilogue). C must still be
/// caller-initialized: the epilogue transforms the fully accumulated values.
void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, const float* a, std::int64_t lda, const float* b,
          std::int64_t ldb, float* c, std::int64_t ldc,
          const GemmEpilogue& epilogue);

/// bf16 GEMM: A and B are stored as bf16 (the top 16 bits of a binary32, see
/// dtype.hpp); the pack routines widen panels to fp32 so the fp32
/// micro-kernel and all accumulation run in full precision while A/B memory
/// traffic is halved. Semantics otherwise identical to the fp32 gemm: C is
/// fp32, caller-initialized, accumulated into; trans_a && trans_b
/// unsupported. Skinny shapes (m <= kGemmSkinnyRows) take a widen-on-load
/// streaming path that reads B exactly once instead of pack-then-reload —
/// that single pass is where bandwidth-bound decode GEMMs gain ~2x.
void gemm_bf16(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, const std::uint16_t* a, std::int64_t lda,
               const std::uint16_t* b, std::int64_t ldb, float* c,
               std::int64_t ldc);
void gemm_bf16(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
               std::int64_t k, const std::uint16_t* a, std::int64_t lda,
               const std::uint16_t* b, std::int64_t ldb, float* c,
               std::int64_t ldc, const GemmEpilogue& epilogue);

/// int8 inference GEMM with fused dequantization:
///
///   C[i,j] += (float(sum_p qa[i,p] * qb(p,j)) * scale_a) * scale_b[j]
///
/// qa/qb are symmetric int8 quantized operands (see quant.hpp): scale_a is
/// the per-tensor activation scale, scale_b the per-output-channel weight
/// scales ([n]; pass a broadcast array for per-tensor weights). The integer
/// product accumulates exactly in int32 per KC slice (safe for k <= 2^17:
/// pair sums of 127*127 products stay far below 2^31), then dequantizes into
/// fp32 C, so across-slice accumulation is fp32 just like the other paths.
/// The epilogue composes unchanged on the dequantized values. A is never
/// transposed (activations are row-major in every inference call site).
void gemm_i8(bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
             const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
             std::int64_t ldb, float scale_a, const float* scale_b, float* c,
             std::int64_t ldc);
void gemm_i8(bool trans_b, std::int64_t m, std::int64_t n, std::int64_t k,
             const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
             std::int64_t ldb, float scale_a, const float* scale_b, float* c,
             std::int64_t ldc, const GemmEpilogue& epilogue);

// Row count at or below which the bf16/int8 paths stream op(B) directly
// (widen/dequant on load, no packing): with so few rows the packed path
// writes and re-reads an op(B)-sized panel, doubling the traffic that
// dominates these bandwidth-bound shapes.
inline constexpr std::int64_t kGemmSkinnyRows = 2 * kGemmMR;

}  // namespace caraml::tensor::detail
