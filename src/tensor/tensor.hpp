// A small dense float32 tensor library — the compute substrate of the real
// (CPU-executed) training path of CARAML-cpp.
//
// The paper's workloads run on PyTorch/TensorFlow; this library provides the
// minimal op set those models need (GEMM, conv2d, normalization, softmax,
// elementwise, reductions), parallelized over the process thread pool.
// Row-major contiguous storage; shapes are vectors of int64.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace caraml::tensor {

using Shape = std::vector<std::int64_t>;

std::string shape_to_string(const Shape& shape);
std::int64_t shape_numel(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);  // zero-initialized
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor randn(Shape shape, Rng& rng, float stddev = 1.0f);
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);
  static Tensor arange(std::int64_t n);  // [0, 1, ..., n-1] as 1-D floats

  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const;
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& at(std::initializer_list<std::int64_t> index);
  float at(std::initializer_list<std::int64_t> index) const;
  float& operator[](std::int64_t flat) { return data_[static_cast<std::size_t>(flat)]; }
  float operator[](std::int64_t flat) const { return data_[static_cast<std::size_t>(flat)]; }

  /// Reshape to a compatible shape (same numel); returns a copy of the
  /// header sharing no data (data is copied — simplicity over aliasing).
  Tensor reshape(Shape new_shape) const;

  /// Fill with a value.
  void fill(float value);

  /// 2-D transpose.
  Tensor transpose2d() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::int64_t numel_ = 0;
  std::vector<float> data_;
};

// --- elementwise -----------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
void add_inplace(Tensor& a, const Tensor& b);
void axpy(Tensor& y, float alpha, const Tensor& x);  // y += alpha * x
Tensor relu(const Tensor& a);
Tensor gelu(const Tensor& a);
Tensor gelu_backward(const Tensor& x, const Tensor& grad_out);
Tensor relu_backward(const Tensor& x, const Tensor& grad_out);

// --- reductions ------------------------------------------------------------
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_abs(const Tensor& a);
/// Row-wise argmax of a [rows, cols] tensor.
std::vector<std::int64_t> argmax_rows(const Tensor& a);

// --- linear algebra --------------------------------------------------------
/// C = A[m,k] * B[k,n]; parallel blocked GEMM.
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A[m,k] * B[n,k]^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// C = A[k,m]^T * B[k,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);

// --- softmax / normalization ----------------------------------------------
/// Row-wise softmax of [rows, cols].
Tensor softmax_rows(const Tensor& a);
/// Backward of row-wise softmax given its output y and dL/dy.
Tensor softmax_rows_backward(const Tensor& y, const Tensor& grad_out);

// --- convolution (NCHW) ----------------------------------------------------
struct Conv2dArgs {
  std::int64_t stride = 1;
  std::int64_t padding = 0;
};
/// input [N,C,H,W], weight [O,C,kh,kw] -> output [N,O,H',W'] via im2col GEMM.
Tensor conv2d(const Tensor& input, const Tensor& weight, const Conv2dArgs& args);
/// Gradients of conv2d; returns dInput and writes dWeight.
Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                             const Shape& input_shape, const Conv2dArgs& args);
Tensor conv2d_backward_weight(const Tensor& grad_out, const Tensor& input,
                              const Shape& weight_shape, const Conv2dArgs& args);

/// 2x2 (or kxk) max pooling with stride == kernel; returns output and records
/// argmax indices into `indices` (same numel as output) for the backward pass.
Tensor maxpool2d(const Tensor& input, std::int64_t kernel,
                 std::vector<std::int64_t>* indices);
Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<std::int64_t>& indices);

/// Global average pool: [N,C,H,W] -> [N,C].
Tensor global_avg_pool(const Tensor& input);
Tensor global_avg_pool_backward(const Tensor& grad_out, const Shape& input_shape);

// --- im2col (exposed for tests) --------------------------------------------
Tensor im2col(const Tensor& input, std::int64_t kh, std::int64_t kw,
              const Conv2dArgs& args);

}  // namespace caraml::tensor
