// Storage dtypes of the kernel library beyond fp32: bf16 (brain float)
// storage with fp32 accumulation, and the DType tag the CLI / nn layers use
// to select a compute path.
//
// bf16 is the top 16 bits of an IEEE-754 binary32: same 8-bit exponent, a
// 7-bit mantissa. Every bf16 value is exactly representable in fp32, so the
// bf16 GEMM path stores A/B panels in bf16 (halving their memory traffic on
// bandwidth-bound shapes), widens to fp32 while packing, and accumulates in
// fp32 — the arithmetic is bit-identical to an fp32 GEMM over the rounded
// inputs. float -> bf16 uses round-to-nearest-even; NaNs keep their payload's
// quiet bit (a plain truncate-with-carry would overflow an all-ones exponent
// into the sign bit).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace caraml::tensor {

/// Compute/storage precision of a kernel path or model layer.
enum class DType { kF32, kBf16, kI8 };

/// "fp32" / "bf16" / "int8".
const char* dtype_name(DType dtype);

/// Parse a dtype name; nullopt for anything else.
std::optional<DType> dtype_from_string(const std::string& name);

/// Storage bytes per element: 4 / 2 / 1.
std::size_t dtype_bytes(DType dtype);

/// bf16 storage: raw top-16 bits of a binary32.
using bf16_t = std::uint16_t;

/// Widen one bf16 to the fp32 it exactly represents.
inline float bf16_to_float(bf16_t x) {
  const std::uint32_t bits = static_cast<std::uint32_t>(x) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

/// Round one fp32 to bf16 (round-to-nearest-even). NaN payloads are
/// truncated but the quiet bit is forced so a signalling-NaN mantissa can
/// never round to all-zeros (which would turn NaN into Inf).
inline bf16_t float_to_bf16(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu) != 0u) {
    return static_cast<bf16_t>((bits >> 16) | 0x0040u);
  }
  // RNE: add 0x7fff plus the round bit's own LSB; ties go to even.
  bits += 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<bf16_t>(bits >> 16);
}

/// Bulk converters — simple __restrict loops that vectorize (widening is a
/// shift, narrowing is branch-free except the NaN select).
void bf16_to_float_n(const bf16_t* __restrict src, float* __restrict dst,
                     std::int64_t count);
void float_to_bf16_n(const float* __restrict src, bf16_t* __restrict dst,
                     std::int64_t count);

/// A dense row-major bf16 tensor — the storage sidecar nn::Linear and the
/// attention projections use to run their hot path in bf16 while the fp32
/// master weights stay in the regular Tensor. Deliberately minimal: shape +
/// bits + conversions; all arithmetic happens in the bf16 GEMM entry points
/// below, which accumulate in fp32 and return fp32 Tensors.
class Bf16Tensor {
 public:
  Bf16Tensor() = default;
  explicit Bf16Tensor(Shape shape);  // zero-initialized

  /// Round an fp32 tensor to bf16 (RNE per element).
  static Bf16Tensor from_float(const Tensor& t);

  /// Widen back to fp32 (exact).
  Tensor to_float() const;

  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const;
  std::size_t rank() const { return shape_.size(); }
  std::int64_t numel() const { return numel_; }

  bf16_t* data() { return data_.data(); }
  const bf16_t* data() const { return data_.data(); }

 private:
  Shape shape_;
  std::int64_t numel_ = 0;
  std::vector<bf16_t> data_;
};

/// C = A[m,k] · B[k,n], bf16 storage, fp32 accumulation; returns fp32.
Tensor matmul_bf16(const Bf16Tensor& a, const Bf16Tensor& b);
/// C = A[m,k] · B[n,k]^T.
Tensor matmul_nt_bf16(const Bf16Tensor& a, const Bf16Tensor& b);
/// C = A[k,m]^T · B[k,n].
Tensor matmul_tn_bf16(const Bf16Tensor& a, const Bf16Tensor& b);

}  // namespace caraml::tensor
