#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "tensor/activations.hpp"
#include "tensor/gemm.hpp"
#include "tensor/workspace.hpp"
#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caraml::tensor {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    CARAML_CHECK_MSG(d >= 0, "negative dimension in shape");
    n *= d;
  }
  return n;
}

namespace {

// Minimum elements per parallel chunk: below this, dispatch overhead beats
// the win. Elementwise kernels run serial until 2x the grain.
constexpr std::int64_t kElementwiseGrain = 1 << 14;

// Run body(lo, hi) over [0, n), in parallel chunks when n is large enough.
template <typename F>
void for_each_span(std::int64_t n, F&& body) {
  if (n >= 2 * kElementwiseGrain) {
    parallel_for_range(0, static_cast<std::size_t>(n),
                       static_cast<std::size_t>(kElementwiseGrain),
                       [&body](std::size_t lo, std::size_t hi) {
                         body(static_cast<std::int64_t>(lo),
                              static_cast<std::int64_t>(hi));
                       });
  } else {
    body(0, n);
  }
}

// Row-count grain targeting ~kElementwiseGrain elements per chunk.
std::int64_t row_grain(std::int64_t cols) {
  return std::max<std::int64_t>(1,
                                kElementwiseGrain / std::max<std::int64_t>(1, cols));
}

}  // namespace

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)) {
  data_.assign(static_cast<std::size_t>(numel_), 0.0f);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)),
      data_(std::move(data)) {
  CARAML_CHECK_MSG(static_cast<std::int64_t>(data_.size()) == numel_,
                   "data size does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t({n});
  for (std::int64_t i = 0; i < n; ++i) t.data_[static_cast<std::size_t>(i)] = static_cast<float>(i);
  return t;
}

std::int64_t Tensor::dim(std::size_t i) const {
  CARAML_CHECK_MSG(i < shape_.size(), "dim index out of range");
  return shape_[i];
}

float& Tensor::at(std::initializer_list<std::int64_t> index) {
  CARAML_CHECK_MSG(index.size() == shape_.size(), "index rank mismatch");
  std::int64_t flat = 0;
  std::size_t d = 0;
  for (std::int64_t i : index) {
    CARAML_CHECK_MSG(i >= 0 && i < shape_[d], "index out of range");
    flat = flat * shape_[d] + i;
    ++d;
  }
  return data_[static_cast<std::size_t>(flat)];
}

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return const_cast<Tensor*>(this)->at(index);
}

Tensor Tensor::reshape(Shape new_shape) const {
  CARAML_CHECK_MSG(shape_numel(new_shape) == numel_,
                   "reshape numel mismatch: " + shape_to_string(shape_) +
                       " -> " + shape_to_string(new_shape));
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::transpose2d() const {
  CARAML_CHECK_MSG(rank() == 2, "transpose2d needs a 2-D tensor");
  const std::int64_t rows = shape_[0];
  const std::int64_t cols = shape_[1];
  Tensor out({cols, rows});
  const float* __restrict src = data();
  float* __restrict dst = out.data();
  for_each_span(rows, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        dst[c * rows + r] = src[r * cols + c];
      }
    }
  });
  return out;
}

// --- elementwise -----------------------------------------------------------

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  CARAML_CHECK_MSG(a.shape() == b.shape(),
                   std::string(op) + ": shape mismatch " +
                       shape_to_string(a.shape()) + " vs " +
                       shape_to_string(b.shape()));
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.shape());
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict po = out.data();
  for_each_span(a.numel(), [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = pa[i] + pb[i];
  });
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict po = out.data();
  for_each_span(a.numel(), [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = pa[i] - pb[i];
  });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.shape());
  const float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  float* __restrict po = out.data();
  for_each_span(a.numel(), [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = pa[i] * pb[i];
  });
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* __restrict pa = a.data();
  float* __restrict po = out.data();
  for_each_span(a.numel(), [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = pa[i] * s;
  });
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* __restrict pa = a.data();
  const float* __restrict pb = b.data();
  for_each_span(a.numel(), [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) pa[i] += pb[i];
  });
}

void axpy(Tensor& y, float alpha, const Tensor& x) {
  check_same_shape(y, x, "axpy");
  float* __restrict py = y.data();
  const float* __restrict px = x.data();
  for_each_span(y.numel(), [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) py[i] += alpha * px[i];
  });
}

Tensor relu(const Tensor& a) {
  Tensor out(a.shape());
  const float* __restrict pa = a.data();
  float* __restrict po = out.data();
  for_each_span(a.numel(), [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = pa[i] > 0.0f ? pa[i] : 0.0f;
  });
  return out;
}

Tensor relu_backward(const Tensor& x, const Tensor& grad_out) {
  check_same_shape(x, grad_out, "relu_backward");
  Tensor out(x.shape());
  const float* __restrict px = x.data();
  const float* __restrict pg = grad_out.data();
  float* __restrict po = out.data();
  for_each_span(x.numel(), [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      po[i] = px[i] > 0.0f ? pg[i] : 0.0f;
    }
  });
  return out;
}

using detail::gelu_grad_scalar;
using detail::gelu_scalar;

Tensor gelu(const Tensor& a) {
  Tensor out(a.shape());
  const float* __restrict pa = a.data();
  float* __restrict po = out.data();
  for_each_span(a.numel(), [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) po[i] = gelu_scalar(pa[i]);
  });
  return out;
}

Tensor gelu_backward(const Tensor& x, const Tensor& grad_out) {
  check_same_shape(x, grad_out, "gelu_backward");
  Tensor out(x.shape());
  const float* __restrict px = x.data();
  const float* __restrict pg = grad_out.data();
  float* __restrict po = out.data();
  for_each_span(x.numel(), [=](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      po[i] = pg[i] * gelu_grad_scalar(px[i]);
    }
  });
  return out;
}

// --- reductions ------------------------------------------------------------

float sum(const Tensor& a) {
  double total = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) total += a[i];
  return static_cast<float>(total);
}

float mean(const Tensor& a) {
  CARAML_CHECK_MSG(a.numel() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  float best = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    best = std::max(best, std::fabs(a[i]));
  }
  return best;
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  CARAML_CHECK_MSG(a.rank() == 2, "argmax_rows needs a 2-D tensor");
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t best = 0;
    float best_value = a[r * cols];
    for (std::int64_t c = 1; c < cols; ++c) {
      const float v = a[r * cols + c];
      if (v > best_value) {
        best_value = v;
        best = c;
      }
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

// --- GEMM ------------------------------------------------------------------
//
// All three variants are thin shims over the shared blocked/packed kernel in
// tensor/gemm.cpp; the transpose flags select the packing order, so no
// operand is ever materialized transposed.

Tensor matmul(const Tensor& a, const Tensor& b) {
  CARAML_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul needs 2-D tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  CARAML_CHECK_MSG(b.dim(0) == k,
                   "matmul inner dimension mismatch: " +
                       shape_to_string(a.shape()) + " x " +
                       shape_to_string(b.shape()));
  Tensor c({m, n});
  detail::gemm(false, false, m, n, k, a.data(), k, b.data(), n, c.data(), n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CARAML_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul_nt needs 2-D");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  CARAML_CHECK_MSG(b.dim(1) == k, "matmul_nt inner dimension mismatch");
  Tensor c({m, n});
  detail::gemm(false, true, m, n, k, a.data(), k, b.data(), k, c.data(), n);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  CARAML_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul_tn needs 2-D");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  CARAML_CHECK_MSG(b.dim(0) == k, "matmul_tn inner dimension mismatch");
  Tensor c({m, n});
  detail::gemm(true, false, m, n, k, a.data(), m, b.data(), n, c.data(), n);
  return c;
}

// --- softmax ---------------------------------------------------------------

Tensor softmax_rows(const Tensor& a) {
  CARAML_CHECK_MSG(a.rank() == 2, "softmax_rows needs a 2-D tensor");
  const std::int64_t rows = a.dim(0), cols = a.dim(1);
  // A zero-column row has no max to seed the stable reduction (reading
  // in_row[0] would be out of bounds) and no well-defined softmax.
  CARAML_CHECK_MSG(cols > 0, "softmax_rows: zero-column input " +
                                 shape_to_string(a.shape()) +
                                 " has no defined softmax");
  Tensor out(a.shape());
  const float* __restrict src = a.data();
  float* __restrict dst = out.data();
  parallel_for_range(
      0, static_cast<std::size_t>(rows),
      static_cast<std::size_t>(row_grain(cols)),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const float* __restrict in_row =
              src + static_cast<std::int64_t>(r) * cols;
          float* __restrict out_row =
              dst + static_cast<std::int64_t>(r) * cols;
          float max_value = in_row[0];
          for (std::int64_t c = 1; c < cols; ++c) {
            max_value = std::max(max_value, in_row[c]);
          }
          double total = 0.0;
          for (std::int64_t c = 0; c < cols; ++c) {
            out_row[c] = std::exp(in_row[c] - max_value);
            total += out_row[c];
          }
          const float inv = static_cast<float>(1.0 / total);
          for (std::int64_t c = 0; c < cols; ++c) out_row[c] *= inv;
        }
      });
  return out;
}

Tensor softmax_rows_backward(const Tensor& y, const Tensor& grad_out) {
  check_same_shape(y, grad_out, "softmax_rows_backward");
  CARAML_CHECK_MSG(y.rank() == 2, "softmax_rows_backward needs 2-D");
  const std::int64_t rows = y.dim(0), cols = y.dim(1);
  CARAML_CHECK_MSG(cols > 0, "softmax_rows_backward: zero-column input " +
                                 shape_to_string(y.shape()) +
                                 " has no defined softmax");
  Tensor out(y.shape());
  const float* __restrict py = y.data();
  const float* __restrict pg = grad_out.data();
  float* __restrict po = out.data();
  parallel_for_range(
      0, static_cast<std::size_t>(rows),
      static_cast<std::size_t>(row_grain(cols)),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const float* __restrict y_row =
              py + static_cast<std::int64_t>(r) * cols;
          const float* __restrict g_row =
              pg + static_cast<std::int64_t>(r) * cols;
          float* __restrict o_row = po + static_cast<std::int64_t>(r) * cols;
          double dot = 0.0;
          for (std::int64_t c = 0; c < cols; ++c) {
            dot += static_cast<double>(y_row[c]) * g_row[c];
          }
          for (std::int64_t c = 0; c < cols; ++c) {
            o_row[c] = y_row[c] * (g_row[c] - static_cast<float>(dot));
          }
        }
      });
  return out;
}

// --- conv2d ----------------------------------------------------------------

namespace {

std::int64_t conv_out_size(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}

// im2col core: write [n*oh*ow, c*kh*kw] patch rows into `cols`, in parallel
// over contiguous patch ranges.
void im2col_into(const Tensor& input, std::int64_t kh, std::int64_t kw,
                 const Conv2dArgs& args, std::int64_t oh, std::int64_t ow,
                 float* cols) {
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t patch = c * kh * kw;
  const float* __restrict src = input.data();
  parallel_for_range(
      0, static_cast<std::size_t>(n * oh * ow),
      static_cast<std::size_t>(row_grain(patch)),
      [=, &args](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t flat = static_cast<std::int64_t>(idx);
          const std::int64_t img = flat / (oh * ow);
          const std::int64_t oy = (flat / ow) % oh;
          const std::int64_t ox = flat % ow;
          float* __restrict dst = cols + flat * patch;
          for (std::int64_t ch = 0; ch < c; ++ch) {
            for (std::int64_t ky = 0; ky < kh; ++ky) {
              const std::int64_t iy = oy * args.stride + ky - args.padding;
              for (std::int64_t kx = 0; kx < kw; ++kx) {
                const std::int64_t ix = ox * args.stride + kx - args.padding;
                float value = 0.0f;
                if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
                  value = src[((img * c + ch) * h + iy) * w + ix];
                }
                *dst++ = value;
              }
            }
          }
        }
      });
}

// Transpose grad_out [n, o, oh*ow] (NCHW) into GEMM row layout [n*oh*ow, o],
// in parallel over pixel ranges (contiguous writes, strided reads).
void nchw_to_rows(const float* src, std::int64_t n, std::int64_t o,
                  std::int64_t pixels, float* dst) {
  parallel_for_range(
      0, static_cast<std::size_t>(n * pixels),
      static_cast<std::size_t>(row_grain(o)),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t flat = static_cast<std::int64_t>(idx);
          const std::int64_t img = flat / pixels;
          const std::int64_t pixel = flat % pixels;
          const float* __restrict s = src + (img * o) * pixels + pixel;
          float* __restrict d = dst + flat * o;
          for (std::int64_t ch = 0; ch < o; ++ch) d[ch] = s[ch * pixels];
        }
      });
}

}  // namespace

Tensor im2col(const Tensor& input, std::int64_t kh, std::int64_t kw,
              const Conv2dArgs& args) {
  CARAML_CHECK_MSG(input.rank() == 4, "im2col needs NCHW input");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = conv_out_size(h, kh, args.stride, args.padding);
  const std::int64_t ow = conv_out_size(w, kw, args.stride, args.padding);
  CARAML_CHECK_MSG(oh > 0 && ow > 0, "conv output would be empty");
  Tensor cols({n * oh * ow, c * kh * kw});
  im2col_into(input, kh, kw, args, oh, ow, cols.data());
  return cols;
}

Tensor conv2d(const Tensor& input, const Tensor& weight,
              const Conv2dArgs& args) {
  CARAML_CHECK_MSG(input.rank() == 4 && weight.rank() == 4,
                   "conv2d needs NCHW input and OCHW weight");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t o = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  CARAML_CHECK_MSG(weight.dim(1) == c, "conv2d channel mismatch");
  const std::int64_t oh = conv_out_size(h, kh, args.stride, args.padding);
  const std::int64_t ow = conv_out_size(w, kw, args.stride, args.padding);
  CARAML_CHECK_MSG(oh > 0 && ow > 0, "conv output would be empty");

  const std::int64_t rows = n * oh * ow;     // one row per output pixel
  const std::int64_t patch = c * kh * kw;    // im2col row width
  Workspace& workspace = Workspace::local();
  Workspace::Buffer cols = workspace.take(static_cast<std::size_t>(rows * patch));
  im2col_into(input, kh, kw, args, oh, ow, cols.data());

  // [rows, patch] x weight[o, patch]^T -> [rows, o]; weight's OCHW layout is
  // already the [o, patch] GEMM operand, no reshape copy needed.
  Workspace::Buffer out2 =
      workspace.take_zeroed(static_cast<std::size_t>(rows * o));
  detail::gemm(false, true, rows, o, patch, cols.data(), patch, weight.data(),
               patch, out2.data(), o);

  // Rearrange [n*oh*ow, o] -> [n, o, oh, ow].
  Tensor out({n, o, oh, ow});
  const float* __restrict src = out2.data();
  float* __restrict dst = out.data();
  const std::int64_t pixels = oh * ow;
  parallel_for_range(
      0, static_cast<std::size_t>(rows), static_cast<std::size_t>(row_grain(o)),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t flat = static_cast<std::int64_t>(idx);
          const std::int64_t img = flat / pixels;
          const std::int64_t pixel = flat % pixels;
          const float* __restrict s = src + flat * o;
          float* __restrict d = dst + (img * o) * pixels + pixel;
          for (std::int64_t ch = 0; ch < o; ++ch) d[ch * pixels] = s[ch];
        }
      });
  return out;
}

Tensor conv2d_backward_weight(const Tensor& grad_out, const Tensor& input,
                              const Shape& weight_shape,
                              const Conv2dArgs& args) {
  const std::int64_t n = input.dim(0);
  const std::int64_t o = weight_shape[0], c = weight_shape[1],
                     kh = weight_shape[2], kw = weight_shape[3];
  const std::int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  const std::int64_t rows = n * oh * ow;
  const std::int64_t patch = c * kh * kw;

  Workspace& workspace = Workspace::local();
  Workspace::Buffer cols = workspace.take(static_cast<std::size_t>(rows * patch));
  im2col_into(input, kh, kw, args, oh, ow, cols.data());

  // grad_out as [n*oh*ow, o].
  Workspace::Buffer g2 = workspace.take(static_cast<std::size_t>(rows * o));
  nchw_to_rows(grad_out.data(), n, o, oh * ow, g2.data());

  // dW[o, patch] = g2^T [o, rows] * cols [rows, patch].
  Tensor dw2({o, patch});
  detail::gemm(true, false, o, patch, rows, g2.data(), o, cols.data(), patch,
               dw2.data(), patch);
  return dw2.reshape({o, c, kh, kw});
}

Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                             const Shape& input_shape, const Conv2dArgs& args) {
  const std::int64_t n = input_shape[0], c = input_shape[1],
                     h = input_shape[2], w = input_shape[3];
  const std::int64_t o = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  const std::int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  const std::int64_t rows = n * oh * ow;
  const std::int64_t patch = c * kh * kw;

  // g2 [n*oh*ow, o] * W [o, patch] -> col gradients [n*oh*ow, patch].
  Workspace& workspace = Workspace::local();
  Workspace::Buffer g2 = workspace.take(static_cast<std::size_t>(rows * o));
  nchw_to_rows(grad_out.data(), n, o, oh * ow, g2.data());
  Workspace::Buffer dcols =
      workspace.take_zeroed(static_cast<std::size_t>(rows * patch));
  detail::gemm(false, false, rows, patch, o, g2.data(), o, weight.data(), patch,
               dcols.data(), patch);

  // col2im scatter-add, parallel over (image, channel) pairs: each pair owns
  // a disjoint h*w slab of dinput, so the += is race-free.
  Tensor dinput({n, c, h, w});
  const float* __restrict src = dcols.data();
  float* __restrict dst = dinput.data();
  parallel_for_range(
      0, static_cast<std::size_t>(n * c), 1,
      [=, &args](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t img = static_cast<std::int64_t>(idx) / c;
          const std::int64_t ch = static_cast<std::int64_t>(idx) % c;
          float* __restrict plane = dst + (img * c + ch) * h * w;
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              const std::int64_t flat = (img * oh + oy) * ow + ox;
              const float* __restrict patch_src =
                  src + flat * patch + ch * kh * kw;
              for (std::int64_t ky = 0; ky < kh; ++ky) {
                const std::int64_t iy = oy * args.stride + ky - args.padding;
                if (iy < 0 || iy >= h) continue;
                for (std::int64_t kx = 0; kx < kw; ++kx) {
                  const std::int64_t ix = ox * args.stride + kx - args.padding;
                  if (ix < 0 || ix >= w) continue;
                  plane[iy * w + ix] += patch_src[ky * kw + kx];
                }
              }
            }
          }
        }
      });
  return dinput;
}

Tensor maxpool2d(const Tensor& input, std::int64_t kernel,
                 std::vector<std::int64_t>* indices) {
  CARAML_CHECK_MSG(input.rank() == 4, "maxpool2d needs NCHW input");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = h / kernel;
  const std::int64_t ow = w / kernel;
  CARAML_CHECK_MSG(oh > 0 && ow > 0, "maxpool output would be empty");
  Tensor out({n, c, oh, ow});
  if (indices) indices->assign(static_cast<std::size_t>(out.numel()), 0);
  const float* __restrict src = input.data();
  float* __restrict dst = out.data();
  std::int64_t* __restrict idx_out = indices ? indices->data() : nullptr;
  parallel_for_range(
      0, static_cast<std::size_t>(n * c), 1,
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t plane = lo; plane < hi; ++plane) {
          const std::int64_t base = static_cast<std::int64_t>(plane);
          for (std::int64_t oy = 0; oy < oh; ++oy) {
            for (std::int64_t ox = 0; ox < ow; ++ox) {
              float best = -1e30f;
              std::int64_t best_index = 0;
              for (std::int64_t ky = 0; ky < kernel; ++ky) {
                for (std::int64_t kx = 0; kx < kernel; ++kx) {
                  const std::int64_t iy = oy * kernel + ky;
                  const std::int64_t ix = ox * kernel + kx;
                  const std::int64_t flat = (base * h + iy) * w + ix;
                  if (src[flat] > best) {
                    best = src[flat];
                    best_index = flat;
                  }
                }
              }
              const std::int64_t out_flat = (base * oh + oy) * ow + ox;
              dst[out_flat] = best;
              if (idx_out) idx_out[out_flat] = best_index;
            }
          }
        }
      });
  return out;
}

Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<std::int64_t>& indices) {
  CARAML_CHECK_MSG(static_cast<std::int64_t>(indices.size()) ==
                       grad_out.numel(),
                   "maxpool2d_backward indices mismatch");
  Tensor dinput(input_shape);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    dinput[indices[static_cast<std::size_t>(i)]] += grad_out[i];
  }
  return dinput;
}

Tensor global_avg_pool(const Tensor& input) {
  CARAML_CHECK_MSG(input.rank() == 4, "global_avg_pool needs NCHW input");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  Tensor out({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* __restrict src = input.data();
  float* __restrict dst = out.data();
  parallel_for_range(
      0, static_cast<std::size_t>(n * c),
      static_cast<std::size_t>(row_grain(h * w)),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t plane = lo; plane < hi; ++plane) {
          const std::int64_t base = static_cast<std::int64_t>(plane);
          double total = 0.0;
          const float* __restrict s = src + base * h * w;
          for (std::int64_t i = 0; i < h * w; ++i) total += s[i];
          dst[base] = static_cast<float>(total) * inv;
        }
      });
  return out;
}

Tensor global_avg_pool_backward(const Tensor& grad_out,
                                const Shape& input_shape) {
  const std::int64_t n = input_shape[0], c = input_shape[1],
                     h = input_shape[2], w = input_shape[3];
  CARAML_CHECK_MSG(grad_out.rank() == 2 && grad_out.dim(0) == n &&
                       grad_out.dim(1) == c,
                   "global_avg_pool_backward shape mismatch");
  Tensor dinput(input_shape);
  const float inv = 1.0f / static_cast<float>(h * w);
  const float* __restrict src = grad_out.data();
  float* __restrict dst = dinput.data();
  parallel_for_range(
      0, static_cast<std::size_t>(n * c),
      static_cast<std::size_t>(row_grain(h * w)),
      [=](std::size_t lo, std::size_t hi) {
        for (std::size_t plane = lo; plane < hi; ++plane) {
          const std::int64_t base = static_cast<std::int64_t>(plane);
          const float g = src[base] * inv;
          float* __restrict d = dst + base * h * w;
          for (std::int64_t i = 0; i < h * w; ++i) d[i] = g;
        }
      });
  return dinput;
}

}  // namespace caraml::tensor
