#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caraml::tensor {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) {
    CARAML_CHECK_MSG(d >= 0, "negative dimension in shape");
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)) {
  data_.assign(static_cast<std::size_t>(numel_), 0.0f);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), numel_(shape_numel(shape_)),
      data_(std::move(data)) {
  CARAML_CHECK_MSG(static_cast<std::int64_t>(data_.size()) == numel_,
                   "data size does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  Tensor t({n});
  for (std::int64_t i = 0; i < n; ++i) t.data_[static_cast<std::size_t>(i)] = static_cast<float>(i);
  return t;
}

std::int64_t Tensor::dim(std::size_t i) const {
  CARAML_CHECK_MSG(i < shape_.size(), "dim index out of range");
  return shape_[i];
}

float& Tensor::at(std::initializer_list<std::int64_t> index) {
  CARAML_CHECK_MSG(index.size() == shape_.size(), "index rank mismatch");
  std::int64_t flat = 0;
  std::size_t d = 0;
  for (std::int64_t i : index) {
    CARAML_CHECK_MSG(i >= 0 && i < shape_[d], "index out of range");
    flat = flat * shape_[d] + i;
    ++d;
  }
  return data_[static_cast<std::size_t>(flat)];
}

float Tensor::at(std::initializer_list<std::int64_t> index) const {
  return const_cast<Tensor*>(this)->at(index);
}

Tensor Tensor::reshape(Shape new_shape) const {
  CARAML_CHECK_MSG(shape_numel(new_shape) == numel_,
                   "reshape numel mismatch: " + shape_to_string(shape_) +
                       " -> " + shape_to_string(new_shape));
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::transpose2d() const {
  CARAML_CHECK_MSG(rank() == 2, "transpose2d needs a 2-D tensor");
  const std::int64_t rows = shape_[0];
  const std::int64_t cols = shape_[1];
  Tensor out({cols, rows});
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      out.data_[static_cast<std::size_t>(c * rows + r)] =
          data_[static_cast<std::size_t>(r * cols + c)];
    }
  }
  return out;
}

// --- elementwise -----------------------------------------------------------

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  CARAML_CHECK_MSG(a.shape() == b.shape(),
                   std::string(op) + ": shape mismatch " +
                       shape_to_string(a.shape()) + " vs " +
                       shape_to_string(b.shape()));
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] + b[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * s;
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  for (std::int64_t i = 0; i < a.numel(); ++i) a[i] += b[i];
}

void axpy(Tensor& y, float alpha, const Tensor& x) {
  check_same_shape(y, x, "axpy");
  for (std::int64_t i = 0; i < y.numel(); ++i) y[i] += alpha * x[i];
}

Tensor relu(const Tensor& a) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] > 0.0f ? a[i] : 0.0f;
  return out;
}

Tensor relu_backward(const Tensor& x, const Tensor& grad_out) {
  check_same_shape(x, grad_out, "relu_backward");
  Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = x[i] > 0.0f ? grad_out[i] : 0.0f;
  }
  return out;
}

namespace {
// tanh-approximation GELU, as used by GPT-style models.
inline float gelu_scalar(float x) {
  const float c = 0.7978845608028654f;  // sqrt(2/pi)
  const float inner = c * (x + 0.044715f * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float gelu_grad_scalar(float x) {
  const float c = 0.7978845608028654f;
  const float x3 = x * x * x;
  const float inner = c * (x + 0.044715f * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * c * (1.0f + 3.0f * 0.044715f * x * x);
}
}  // namespace

Tensor gelu(const Tensor& a) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = gelu_scalar(a[i]);
  return out;
}

Tensor gelu_backward(const Tensor& x, const Tensor& grad_out) {
  check_same_shape(x, grad_out, "gelu_backward");
  Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = grad_out[i] * gelu_grad_scalar(x[i]);
  }
  return out;
}

// --- reductions ------------------------------------------------------------

float sum(const Tensor& a) {
  double total = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) total += a[i];
  return static_cast<float>(total);
}

float mean(const Tensor& a) {
  CARAML_CHECK_MSG(a.numel() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_abs(const Tensor& a) {
  float best = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    best = std::max(best, std::fabs(a[i]));
  }
  return best;
}

std::vector<std::int64_t> argmax_rows(const Tensor& a) {
  CARAML_CHECK_MSG(a.rank() == 2, "argmax_rows needs a 2-D tensor");
  const std::int64_t rows = a.dim(0);
  const std::int64_t cols = a.dim(1);
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t best = 0;
    float best_value = a[r * cols];
    for (std::int64_t c = 1; c < cols; ++c) {
      const float v = a[r * cols + c];
      if (v > best_value) {
        best_value = v;
        best = c;
      }
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

// --- GEMM ------------------------------------------------------------------

namespace {

// Inner kernel: C[m,n] += A[m,k] * B[k,n] for a row range of C.
// B is accessed row-wise (k outer) so the inner loop is contiguous.
void gemm_rows(const float* a, const float* b, float* c, std::int64_t row_begin,
               std::int64_t row_end, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float a_val = a_row[p];
      if (a_val == 0.0f) continue;
      const float* b_row = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) {
        c_row[j] += a_val * b_row[j];
      }
    }
  }
}

constexpr std::int64_t kParallelGemmThreshold = 64 * 64;

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  CARAML_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul needs 2-D tensors");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  CARAML_CHECK_MSG(b.dim(0) == k,
                   "matmul inner dimension mismatch: " +
                       shape_to_string(a.shape()) + " x " +
                       shape_to_string(b.shape()));
  Tensor c({m, n});
  if (m * n < kParallelGemmThreshold || m == 1) {
    gemm_rows(a.data(), b.data(), c.data(), 0, m, k, n);
    return c;
  }
  parallel_for(0, static_cast<std::size_t>(m), [&](std::size_t i) {
    gemm_rows(a.data(), b.data(), c.data(), static_cast<std::int64_t>(i),
              static_cast<std::int64_t>(i + 1), k, n);
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  CARAML_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul_nt needs 2-D");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  CARAML_CHECK_MSG(b.dim(1) == k, "matmul_nt inner dimension mismatch");
  Tensor c({m, n});
  auto rows = [&](std::int64_t row_begin, std::int64_t row_end) {
    for (std::int64_t i = row_begin; i < row_end; ++i) {
      const float* a_row = a.data() + i * k;
      float* c_row = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* b_row = b.data() + j * k;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        c_row[j] = acc;
      }
    }
  };
  if (m * n < kParallelGemmThreshold || m == 1) {
    rows(0, m);
  } else {
    parallel_for(0, static_cast<std::size_t>(m), [&](std::size_t i) {
      rows(static_cast<std::int64_t>(i), static_cast<std::int64_t>(i + 1));
    });
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  CARAML_CHECK_MSG(a.rank() == 2 && b.rank() == 2, "matmul_tn needs 2-D");
  const std::int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  CARAML_CHECK_MSG(b.dim(0) == k, "matmul_tn inner dimension mismatch");
  Tensor c({m, n});
  // c[i,j] = sum_p a[p,i] * b[p,j]; accumulate row-wise over p for locality.
  for (std::int64_t p = 0; p < k; ++p) {
    const float* a_row = a.data() + p * m;
    const float* b_row = b.data() + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float a_val = a_row[i];
      if (a_val == 0.0f) continue;
      float* c_row = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
  return c;
}

// --- softmax ---------------------------------------------------------------

Tensor softmax_rows(const Tensor& a) {
  CARAML_CHECK_MSG(a.rank() == 2, "softmax_rows needs a 2-D tensor");
  const std::int64_t rows = a.dim(0), cols = a.dim(1);
  Tensor out(a.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* in_row = a.data() + r * cols;
    float* out_row = out.data() + r * cols;
    float max_value = in_row[0];
    for (std::int64_t c = 1; c < cols; ++c) max_value = std::max(max_value, in_row[c]);
    double total = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      out_row[c] = std::exp(in_row[c] - max_value);
      total += out_row[c];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (std::int64_t c = 0; c < cols; ++c) out_row[c] *= inv;
  }
  return out;
}

Tensor softmax_rows_backward(const Tensor& y, const Tensor& grad_out) {
  check_same_shape(y, grad_out, "softmax_rows_backward");
  CARAML_CHECK_MSG(y.rank() == 2, "softmax_rows_backward needs 2-D");
  const std::int64_t rows = y.dim(0), cols = y.dim(1);
  Tensor out(y.shape());
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* y_row = y.data() + r * cols;
    const float* g_row = grad_out.data() + r * cols;
    float* o_row = out.data() + r * cols;
    double dot = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) dot += static_cast<double>(y_row[c]) * g_row[c];
    for (std::int64_t c = 0; c < cols; ++c) {
      o_row[c] = y_row[c] * (g_row[c] - static_cast<float>(dot));
    }
  }
  return out;
}

// --- conv2d ----------------------------------------------------------------

namespace {
std::int64_t conv_out_size(std::int64_t in, std::int64_t kernel,
                           std::int64_t stride, std::int64_t padding) {
  return (in + 2 * padding - kernel) / stride + 1;
}
}  // namespace

Tensor im2col(const Tensor& input, std::int64_t kh, std::int64_t kw,
              const Conv2dArgs& args) {
  CARAML_CHECK_MSG(input.rank() == 4, "im2col needs NCHW input");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = conv_out_size(h, kh, args.stride, args.padding);
  const std::int64_t ow = conv_out_size(w, kw, args.stride, args.padding);
  CARAML_CHECK_MSG(oh > 0 && ow > 0, "conv output would be empty");
  // Columns: [n*oh*ow, c*kh*kw].
  Tensor cols({n * oh * ow, c * kh * kw});
  parallel_for(0, static_cast<std::size_t>(n * oh * ow), [&](std::size_t idx) {
    const std::int64_t flat = static_cast<std::int64_t>(idx);
    const std::int64_t img = flat / (oh * ow);
    const std::int64_t oy = (flat / ow) % oh;
    const std::int64_t ox = flat % ow;
    float* dst = cols.data() + flat * (c * kh * kw);
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const std::int64_t iy = oy * args.stride + ky - args.padding;
        for (std::int64_t kx = 0; kx < kw; ++kx) {
          const std::int64_t ix = ox * args.stride + kx - args.padding;
          float value = 0.0f;
          if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
            value = input[((img * c + ch) * h + iy) * w + ix];
          }
          *dst++ = value;
        }
      }
    }
  });
  return cols;
}

Tensor conv2d(const Tensor& input, const Tensor& weight,
              const Conv2dArgs& args) {
  CARAML_CHECK_MSG(input.rank() == 4 && weight.rank() == 4,
                   "conv2d needs NCHW input and OCHW weight");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t o = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  CARAML_CHECK_MSG(weight.dim(1) == c, "conv2d channel mismatch");
  const std::int64_t oh = conv_out_size(h, kh, args.stride, args.padding);
  const std::int64_t ow = conv_out_size(w, kw, args.stride, args.padding);

  const Tensor cols = im2col(input, kh, kw, args);          // [n*oh*ow, ckk]
  const Tensor w2 = weight.reshape({o, c * kh * kw});       // [o, ckk]
  const Tensor out2 = matmul_nt(cols, w2);                  // [n*oh*ow, o]

  // Rearrange [n*oh*ow, o] -> [n, o, oh, ow].
  Tensor out({n, o, oh, ow});
  parallel_for(0, static_cast<std::size_t>(n * oh * ow), [&](std::size_t idx) {
    const std::int64_t flat = static_cast<std::int64_t>(idx);
    const std::int64_t img = flat / (oh * ow);
    const std::int64_t pixel = flat % (oh * ow);
    for (std::int64_t ch = 0; ch < o; ++ch) {
      out[(img * o + ch) * oh * ow + pixel] = out2[flat * o + ch];
    }
  });
  return out;
}

Tensor conv2d_backward_weight(const Tensor& grad_out, const Tensor& input,
                              const Shape& weight_shape,
                              const Conv2dArgs& args) {
  const std::int64_t n = input.dim(0);
  const std::int64_t o = weight_shape[0], c = weight_shape[1],
                     kh = weight_shape[2], kw = weight_shape[3];
  const std::int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);
  const Tensor cols = im2col(input, kh, kw, args);  // [n*oh*ow, ckk]

  // grad_out as [n*oh*ow, o].
  Tensor g2({n * oh * ow, o});
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < o; ++ch) {
      for (std::int64_t pixel = 0; pixel < oh * ow; ++pixel) {
        g2[(img * oh * ow + pixel) * o + ch] =
            grad_out[(img * o + ch) * oh * ow + pixel];
      }
    }
  }
  // dW[o, ckk] = g2^T [o, n*oh*ow] * cols [n*oh*ow, ckk].
  Tensor dw2 = matmul_tn(g2, cols);
  return dw2.reshape({o, c, kh, kw});
}

Tensor conv2d_backward_input(const Tensor& grad_out, const Tensor& weight,
                             const Shape& input_shape, const Conv2dArgs& args) {
  const std::int64_t n = input_shape[0], c = input_shape[1],
                     h = input_shape[2], w = input_shape[3];
  const std::int64_t o = weight.dim(0), kh = weight.dim(2), kw = weight.dim(3);
  const std::int64_t oh = grad_out.dim(2), ow = grad_out.dim(3);

  // g2 [n*oh*ow, o] * W [o, ckk] -> col gradients [n*oh*ow, ckk].
  Tensor g2({n * oh * ow, o});
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < o; ++ch) {
      for (std::int64_t pixel = 0; pixel < oh * ow; ++pixel) {
        g2[(img * oh * ow + pixel) * o + ch] =
            grad_out[(img * o + ch) * oh * ow + pixel];
      }
    }
  }
  const Tensor w2 = weight.reshape({o, c * kh * kw});
  const Tensor dcols = matmul(g2, w2);  // [n*oh*ow, ckk]

  // col2im scatter-add.
  Tensor dinput({n, c, h, w});
  for (std::int64_t flat = 0; flat < n * oh * ow; ++flat) {
    const std::int64_t img = flat / (oh * ow);
    const std::int64_t oy = (flat / ow) % oh;
    const std::int64_t ox = flat % ow;
    const float* src = dcols.data() + flat * (c * kh * kw);
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t ky = 0; ky < kh; ++ky) {
        const std::int64_t iy = oy * args.stride + ky - args.padding;
        for (std::int64_t kx = 0; kx < kw; ++kx) {
          const std::int64_t ix = ox * args.stride + kx - args.padding;
          const float value = *src++;
          if (iy >= 0 && iy < h && ix >= 0 && ix < w) {
            dinput[((img * c + ch) * h + iy) * w + ix] += value;
          }
        }
      }
    }
  }
  return dinput;
}

Tensor maxpool2d(const Tensor& input, std::int64_t kernel,
                 std::vector<std::int64_t>* indices) {
  CARAML_CHECK_MSG(input.rank() == 4, "maxpool2d needs NCHW input");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = h / kernel;
  const std::int64_t ow = w / kernel;
  CARAML_CHECK_MSG(oh > 0 && ow > 0, "maxpool output would be empty");
  Tensor out({n, c, oh, ow});
  if (indices) indices->assign(static_cast<std::size_t>(out.numel()), 0);
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float best = -1e30f;
          std::int64_t best_index = 0;
          for (std::int64_t ky = 0; ky < kernel; ++ky) {
            for (std::int64_t kx = 0; kx < kernel; ++kx) {
              const std::int64_t iy = oy * kernel + ky;
              const std::int64_t ix = ox * kernel + kx;
              const std::int64_t flat = ((img * c + ch) * h + iy) * w + ix;
              if (input[flat] > best) {
                best = input[flat];
                best_index = flat;
              }
            }
          }
          const std::int64_t out_flat = ((img * c + ch) * oh + oy) * ow + ox;
          out[out_flat] = best;
          if (indices) (*indices)[static_cast<std::size_t>(out_flat)] = best_index;
        }
      }
    }
  }
  return out;
}

Tensor maxpool2d_backward(const Tensor& grad_out, const Shape& input_shape,
                          const std::vector<std::int64_t>& indices) {
  CARAML_CHECK_MSG(static_cast<std::int64_t>(indices.size()) ==
                       grad_out.numel(),
                   "maxpool2d_backward indices mismatch");
  Tensor dinput(input_shape);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    dinput[indices[static_cast<std::size_t>(i)]] += grad_out[i];
  }
  return dinput;
}

Tensor global_avg_pool(const Tensor& input) {
  CARAML_CHECK_MSG(input.rank() == 4, "global_avg_pool needs NCHW input");
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  Tensor out({n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double total = 0.0;
      const float* src = input.data() + (img * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) total += src[i];
      out[img * c + ch] = static_cast<float>(total) * inv;
    }
  }
  return out;
}

Tensor global_avg_pool_backward(const Tensor& grad_out,
                                const Shape& input_shape) {
  const std::int64_t n = input_shape[0], c = input_shape[1],
                     h = input_shape[2], w = input_shape[3];
  CARAML_CHECK_MSG(grad_out.rank() == 2 && grad_out.dim(0) == n &&
                       grad_out.dim(1) == c,
                   "global_avg_pool_backward shape mismatch");
  Tensor dinput(input_shape);
  const float inv = 1.0f / static_cast<float>(h * w);
  for (std::int64_t img = 0; img < n; ++img) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out[img * c + ch] * inv;
      float* dst = dinput.data() + (img * c + ch) * h * w;
      for (std::int64_t i = 0; i < h * w; ++i) dst[i] = g;
    }
  }
  return dinput;
}

}  // namespace caraml::tensor
