// Analytic cost model of ResNet training (He et al., the paper's reference
// [8]). The CARAML ResNet50 benchmark trains ResNet50 from scratch on
// ImageNet-sized inputs; ResNet18/34 are also supported with modified
// configuration (paper §III-A2). The model enumerates every convolution of
// the actual architecture and derives FLOPs, parameters and activation
// memory per image from the layer table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace caraml::models {

/// One convolutional (or fully connected) layer of the network.
struct ConvLayerSpec {
  std::string name;
  int in_channels = 0;
  int out_channels = 0;
  int kernel = 0;   // square kernel; 1 for the FC head
  int stride = 1;
  int out_h = 0;    // output spatial size (out_h == out_w)
  int out_w = 0;

  /// Multiply-add FLOPs (2 * MACs) for one image, forward pass.
  double forward_flops() const;
  /// Weights (+ batch-norm scale/shift) of this layer.
  double parameters() const;
  /// Output activation elements for one image.
  double activation_elements() const;
};

enum class ResNetVariant { kResNet18, kResNet34, kResNet50 };

std::string resnet_variant_name(ResNetVariant variant);

/// Full network description.
struct ResNetModel {
  ResNetVariant variant = ResNetVariant::kResNet50;
  int image_size = 224;  // ImageNet resolution
  int num_classes = 1000;
  std::vector<ConvLayerSpec> layers;

  static ResNetModel build(ResNetVariant variant, int image_size = 224,
                           int num_classes = 1000);

  double forward_flops_per_image() const;
  /// Training FLOPs: backward ~= 2x forward.
  double train_flops_per_image() const { return 3.0 * forward_flops_per_image(); }
  double total_parameters() const;

  /// Peak live activation bytes per image during training (stored for the
  /// backward pass), assuming mixed precision (2 bytes/element) and that all
  /// layer outputs are kept.
  double activation_bytes_per_image() const;

  /// Weights + gradients + SGD-momentum state, fp32 master copies
  /// (TensorFlow mixed-precision training).
  double model_state_bytes() const;

  /// Gradient bytes exchanged per step by Horovod-style data-parallel
  /// all-reduce (fp16 compressed gradients).
  double gradient_comm_bytes() const { return total_parameters() * 2.0; }

  /// Raw input bytes per image fed by the host input pipeline (decoded
  /// HWC uint8 at the training resolution).
  double input_bytes_per_image() const {
    return 3.0 * image_size * image_size;
  }
};

/// ImageNet epoch size used throughout the paper's ResNet results.
inline constexpr std::int64_t kImagenetTrainImages = 1281167;
/// Approximate on-disk size of the ImageNet train set (page-cache model).
inline constexpr double kImagenetBytes = 146.0e9;

}  // namespace caraml::models
