// Analytic cost model of GPT decoder training, following the Megatron-LM
// accounting (Narayanan et al., "Efficient large-scale language model
// training on GPU clusters using Megatron-LM", the paper's reference [2]).
//
// CARAML trains a GPT model from scratch on tokenized OSCAR data; the paper
// uses 117M (Graphcore), 800M (NVIDIA/AMD) and provides 13B / 175B configs.
// This model supplies FLOPs, parameter counts, memory footprints and
// communication volumes to the simulator.
#pragma once

#include <cstdint>
#include <string>

namespace caraml::models {

/// GPT decoder architecture description.
struct GptConfig {
  std::string name;
  int num_layers = 0;
  int hidden_size = 0;
  int num_heads = 0;
  int seq_length = 0;
  int vocab_size = 50257;  // GPT-2 tokenizer (paper §III-A1)

  // Optimization features the paper's Megatron-LM setup uses (§III-A1).
  bool flash_attention = true;
  bool rotary_embeddings = true;
  bool distributed_optimizer = true;
  bool mixed_precision = true;
  bool activation_recompute = false;  // full recompute off by default
  bool sequence_parallel = false;

  /// Presets matching the paper's model sizes.
  static GptConfig gpt_117m();  // GPT-2 small; Graphcore benchmark
  static GptConfig gpt_800m();  // NVIDIA / AMD benchmark (16 x 2048)
  static GptConfig gpt_13b();
  static GptConfig gpt_175b();

  /// Bytes per weight/activation value on the training hot path: bf16/fp16
  /// under mixed precision, fp32 otherwise. Every bytes-per-value derivation
  /// (model state, activations, comm volume) keys off this instead of a
  /// hardcoded constant so `--dtype fp32` and `dtype:` layout entries change
  /// exactly the places a real precision switch would.
  double training_value_bytes() const { return mixed_precision ? 2.0 : 4.0; }

  /// Scale on the device's fp16/bf16 tensor peak for the active training
  /// precision: fp32 GEMMs run at half the bf16 tensor-core rate on every
  /// system in the paper's Table I.
  double peak_flops_scale() const { return mixed_precision ? 1.0 : 0.5; }

  /// Transformer-block parameters: 12 * L * h^2 (+ biases/LN, included).
  double transformer_parameters() const;
  /// Embedding (+ LM head, tied) parameters: V * h.
  double embedding_parameters() const;
  double total_parameters() const;

  /// FLOPs for one token, forward pass only:
  /// 24*L*h^2 * (1 + s/(6h) + V/(16*L*h)) per token (Megatron formula).
  double flops_per_token_forward() const;

  /// Training FLOPs per token: 3x forward (backward = 2x forward), plus one
  /// extra forward when full activation recomputation is on.
  double flops_per_token_train() const;

  /// FLOPs per iteration for a given global batch (in sequences).
  double flops_per_iteration(std::int64_t global_batch) const;
  std::int64_t tokens_per_iteration(std::int64_t global_batch) const;
};

/// Memory footprint of one model replica shard.
struct GptMemoryModel {
  GptConfig config;
  int tensor_parallel = 1;
  int pipeline_parallel = 1;
  int data_parallel = 1;
  int micro_batch = 1;

  /// Weights + gradients + optimizer state per device, bytes.
  /// Mixed-precision Adam: 2 (fp16 weights) + 4 (fp32 grads) + 8 (Adam m,v)
  /// + 4 (fp32 master weights) = 18 bytes/param; the distributed optimizer
  /// shards the 12 bytes of optimizer+master state across data-parallel
  /// ranks (paper §III-A1 uses distributed optimizers).
  double model_state_bytes() const;

  /// Activation bytes per device for one micro-batch, following Korthikanti
  /// et al. (paper reference [4]): ~s*b*h*(34 + 5*a*s/h) bytes per layer
  /// without optimizations; flash attention + sequence parallelism reduce the
  /// attention term.
  double activation_bytes() const;

  /// Fixed framework overhead (CUDA context, NCCL buffers, workspace).
  double workspace_bytes() const { return 4.0e9; }

  double total_bytes() const {
    return model_state_bytes() + activation_bytes() + workspace_bytes();
  }

  /// Gradient bytes all-reduced (or reduce-scattered) per iteration.
  double gradient_comm_bytes() const;
};

}  // namespace caraml::models
