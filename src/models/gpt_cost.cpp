#include "models/gpt_cost.hpp"

#include <cmath>

#include "util/error.hpp"

namespace caraml::models {

GptConfig GptConfig::gpt_117m() {
  GptConfig c;
  c.name = "GPT-117M";
  c.num_layers = 12;
  c.hidden_size = 768;
  c.num_heads = 12;
  c.seq_length = 1024;
  return c;
}

GptConfig GptConfig::gpt_800m() {
  GptConfig c;
  c.name = "GPT-800M";
  c.num_layers = 16;
  c.hidden_size = 2048;
  c.num_heads = 16;
  c.seq_length = 2048;
  return c;
}

GptConfig GptConfig::gpt_13b() {
  GptConfig c;
  c.name = "GPT-13B";
  c.num_layers = 40;
  c.hidden_size = 5120;
  c.num_heads = 40;
  c.seq_length = 2048;
  return c;
}

GptConfig GptConfig::gpt_175b() {
  GptConfig c;
  c.name = "GPT-175B";
  c.num_layers = 96;
  c.hidden_size = 12288;
  c.num_heads = 96;
  c.seq_length = 2048;
  return c;
}

double GptConfig::transformer_parameters() const {
  const double h = hidden_size;
  const double l = num_layers;
  // Per layer: attention QKV (3h^2) + proj (h^2) + MLP (8h^2) = 12h^2,
  // plus biases and layer norms (~13h per layer).
  return l * (12.0 * h * h + 13.0 * h);
}

double GptConfig::embedding_parameters() const {
  const double h = hidden_size;
  // Token embedding (tied with LM head). Rotary embeddings add no parameters;
  // learned positional embeddings would add s*h.
  double params = static_cast<double>(vocab_size) * h;
  if (!rotary_embeddings) params += static_cast<double>(seq_length) * h;
  return params;
}

double GptConfig::total_parameters() const {
  return transformer_parameters() + embedding_parameters();
}

double GptConfig::flops_per_token_forward() const {
  const double h = hidden_size;
  const double l = num_layers;
  const double s = seq_length;
  const double v = vocab_size;
  // Megatron accounting: 24*l*h^2 per token for the GEMMs, the (s/6h) term
  // for attention score/value products, and the vocabulary projection term.
  return 24.0 * l * h * h *
         (1.0 + s / (6.0 * h) + v / (16.0 * l * h));
}

double GptConfig::flops_per_token_train() const {
  // Backward pass costs 2x forward; full activation recomputation replays
  // one extra forward pass (factor 4 instead of 3).
  const double factor = activation_recompute ? 4.0 : 3.0;
  return factor * flops_per_token_forward();
}

double GptConfig::flops_per_iteration(std::int64_t global_batch) const {
  CARAML_CHECK_MSG(global_batch > 0, "global batch must be positive");
  return flops_per_token_train() *
         static_cast<double>(tokens_per_iteration(global_batch));
}

std::int64_t GptConfig::tokens_per_iteration(std::int64_t global_batch) const {
  return global_batch * static_cast<std::int64_t>(seq_length);
}

double GptMemoryModel::model_state_bytes() const {
  CARAML_CHECK(tensor_parallel >= 1 && pipeline_parallel >= 1 &&
               data_parallel >= 1);
  const double params = config.total_parameters() /
                        (static_cast<double>(tensor_parallel) *
                         static_cast<double>(pipeline_parallel));
  // Resident per-param state: weights at the training precision plus fp32
  // gradients. Shardable state: Adam m,v (8 bytes) plus, under mixed
  // precision only, the fp32 master copy — fp32 training IS the master copy.
  // Mixed: 2 + 4 resident, 12 shardable (18 B/param); fp32: 4 + 4, 8 (16).
  const double resident = config.training_value_bytes() + 4.0;
  const double shardable = config.mixed_precision ? 12.0 : 8.0;
  const double optim = config.distributed_optimizer
                           ? shardable / data_parallel
                           : shardable;
  return params * (resident + optim);
}

double GptMemoryModel::activation_bytes() const {
  const double s = config.seq_length;
  const double b = micro_batch;
  const double h = config.hidden_size;
  const double a = config.num_heads;
  const double l = static_cast<double>(config.num_layers) / pipeline_parallel;
  const double t = tensor_parallel;

  // Korthikanti et al. per-layer activation memory for one micro-batch:
  // s*b*h*17 *values* for the GEMM activations — 34 bytes at the paper's
  // bf16/fp16 mixed precision, doubled under fp32 (divided by t with
  // sequence parallelism for the LN/dropout parts; approximate by dividing
  // all) — plus the attention matrix (2 value-sized score/softmax buffers +
  // 1-byte dropout mask = 5*a*s^2*b bytes at 2-byte values) unless flash
  // attention avoids materializing it.
  const double bytes = config.training_value_bytes();
  const double gemm_bytes = 17.0 * bytes;
  double per_layer = gemm_bytes * s * b * h / (config.sequence_parallel ? t : 1.0);
  if (!config.flash_attention) {
    per_layer += (2.0 * bytes + 1.0) * a * s * s * b / t;
  }
  if (config.activation_recompute) {
    // Full recompute stores only the layer inputs.
    per_layer = bytes * s * b * h;
  }
  // Embedding/dropout + final LN + logits buffer (logits stay fp32 at every
  // training precision — they feed the softmax).
  const double head = 4.0 * s * b * config.vocab_size / t / pipeline_parallel;
  return per_layer * l + head;
}

double GptMemoryModel::gradient_comm_bytes() const {
  const double params = config.total_parameters() /
                        (static_cast<double>(tensor_parallel) *
                         static_cast<double>(pipeline_parallel));
  // Distributed optimizer: reduce-scatter fp32 grads + all-gather fp16
  // params; plain DP: all-reduce fp32 grads. Either way ~= params * 4 bytes
  // of traffic entering the ring per rank.
  return params * 4.0;
}

}  // namespace caraml::models
