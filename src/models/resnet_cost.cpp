#include "models/resnet_cost.hpp"

#include "util/error.hpp"

namespace caraml::models {

double ConvLayerSpec::forward_flops() const {
  // 2 * MACs; the FC head is expressed as a 1x1 "conv" over a 1x1 map.
  return 2.0 * kernel * kernel * in_channels * out_channels *
         static_cast<double>(out_h) * out_w;
}

double ConvLayerSpec::parameters() const {
  double weights = static_cast<double>(kernel) * kernel * in_channels *
                   out_channels;
  // Batch-norm gamma/beta per output channel (the FC head instead has a
  // bias; same count).
  weights += 2.0 * out_channels;
  return weights;
}

double ConvLayerSpec::activation_elements() const {
  return static_cast<double>(out_channels) * out_h * out_w;
}

std::string resnet_variant_name(ResNetVariant variant) {
  switch (variant) {
    case ResNetVariant::kResNet18: return "ResNet18";
    case ResNetVariant::kResNet34: return "ResNet34";
    case ResNetVariant::kResNet50: return "ResNet50";
  }
  return "unknown";
}

namespace {

struct StagePlan {
  int blocks;
  int width;  // base width of the stage (64, 128, 256, 512)
};

void add_conv(ResNetModel& model, const std::string& name, int in_ch,
              int out_ch, int kernel, int stride, int in_size) {
  ConvLayerSpec layer;
  layer.name = name;
  layer.in_channels = in_ch;
  layer.out_channels = out_ch;
  layer.kernel = kernel;
  layer.stride = stride;
  layer.out_h = (in_size + stride - 1) / stride;
  layer.out_w = layer.out_h;
  model.layers.push_back(layer);
}

// A basic residual block (ResNet18/34): two 3x3 convs.
int add_basic_block(ResNetModel& model, const std::string& name, int in_ch,
                    int width, int stride, int in_size) {
  add_conv(model, name + ".conv1", in_ch, width, 3, stride, in_size);
  const int mid_size = (in_size + stride - 1) / stride;
  add_conv(model, name + ".conv2", width, width, 3, 1, mid_size);
  if (stride != 1 || in_ch != width) {
    add_conv(model, name + ".downsample", in_ch, width, 1, stride, in_size);
  }
  return mid_size;
}

// A bottleneck block (ResNet50): 1x1 reduce, 3x3, 1x1 expand (4x width).
int add_bottleneck_block(ResNetModel& model, const std::string& name,
                         int in_ch, int width, int stride, int in_size) {
  const int out_ch = width * 4;
  add_conv(model, name + ".conv1", in_ch, width, 1, 1, in_size);
  add_conv(model, name + ".conv2", width, width, 3, stride, in_size);
  const int mid_size = (in_size + stride - 1) / stride;
  add_conv(model, name + ".conv3", width, out_ch, 1, 1, mid_size);
  if (stride != 1 || in_ch != out_ch) {
    add_conv(model, name + ".downsample", in_ch, out_ch, 1, stride, in_size);
  }
  return mid_size;
}

}  // namespace

ResNetModel ResNetModel::build(ResNetVariant variant, int image_size,
                               int num_classes) {
  CARAML_CHECK_MSG(image_size >= 32, "image size too small for ResNet");
  ResNetModel model;
  model.variant = variant;
  model.image_size = image_size;
  model.num_classes = num_classes;

  const bool bottleneck = variant == ResNetVariant::kResNet50;
  std::vector<StagePlan> stages;
  switch (variant) {
    case ResNetVariant::kResNet18:
      stages = {{2, 64}, {2, 128}, {2, 256}, {2, 512}};
      break;
    case ResNetVariant::kResNet34:
    case ResNetVariant::kResNet50:
      stages = {{3, 64}, {4, 128}, {6, 256}, {3, 512}};
      break;
  }

  // Stem: 7x7/2 conv + 3x3/2 max-pool.
  add_conv(model, "conv1", 3, 64, 7, 2, image_size);
  int size = (image_size + 1) / 2;  // after conv1
  size = (size + 1) / 2;            // after max-pool
  int channels = 64;

  for (std::size_t s = 0; s < stages.size(); ++s) {
    const StagePlan& stage = stages[s];
    for (int b = 0; b < stage.blocks; ++b) {
      const int stride = (b == 0 && s > 0) ? 2 : 1;
      const std::string name =
          "layer" + std::to_string(s + 1) + "." + std::to_string(b);
      if (bottleneck) {
        size = add_bottleneck_block(model, name, channels, stage.width, stride,
                                    size);
        channels = stage.width * 4;
      } else {
        size = add_basic_block(model, name, channels, stage.width, stride,
                               size);
        channels = stage.width;
      }
    }
  }

  // Global average pool + FC head, expressed as a 1x1 conv over a 1x1 map.
  add_conv(model, "fc", channels, num_classes, 1, 1, 1);
  return model;
}

double ResNetModel::forward_flops_per_image() const {
  double total = 0.0;
  for (const auto& layer : layers) total += layer.forward_flops();
  return total;
}

double ResNetModel::total_parameters() const {
  double total = 0.0;
  for (const auto& layer : layers) total += layer.parameters();
  return total;
}

double ResNetModel::activation_bytes_per_image() const {
  double elements = 0.0;
  for (const auto& layer : layers) elements += layer.activation_elements();
  // Mixed precision stores fp16 activations; BN/ReLU bookkeeping and
  // gradient buffers roughly double the footprint.
  return elements * 2.0 * 2.0;
}

double ResNetModel::model_state_bytes() const {
  // fp32 weights + fp32 gradients + fp32 momentum + fp16 compute copy.
  return total_parameters() * (4.0 + 4.0 + 4.0 + 2.0);
}

}  // namespace caraml::models
