// JUBE-layer lint rules: benchmark script structure, parameter reference
// graph, step depend graph, analyse regexes, tag coverage — plus the static
// workload checks (sim/invalid-layout, sim/static-oom) that predict, from
// the same cost models the simulator uses, which workpackages cannot run
// before a single simulation step executes.
#include <algorithm>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/layout_model.hpp"
#include "check/lint.hpp"
#include "jube/jube.hpp"
#include "models/gpt_cost.hpp"
#include "models/resnet_cost.hpp"
#include "topo/specs.hpp"
#include "util/strings.hpp"

namespace caraml::check {

namespace {

struct ParamDecl {
  std::string name;
  std::string tag;
  std::vector<std::string> values;
  std::vector<yaml::Mark> value_marks;  // parallel to values
  yaml::Mark mark;
};

struct StepDecl {
  std::string name;
  std::string action;
  std::string tag;
  std::vector<std::pair<std::string, yaml::Mark>> depends;
  yaml::Mark mark;
};

struct PatternDecl {
  std::string name;
  std::string regex;
  yaml::Mark regex_mark;
  yaml::Mark mark;
};

std::set<std::string> placeholder_names(const std::string& text) {
  std::set<std::string> names;
  std::size_t pos = 0;
  while ((pos = text.find("${", pos)) != std::string::npos) {
    const std::size_t close = text.find('}', pos + 2);
    if (close == std::string::npos) break;
    names.insert(text.substr(pos + 2, close - pos - 2));
    pos = close + 1;
  }
  return names;
}

bool tag_active(const std::string& tag, const std::set<std::string>& tags) {
  if (tag.empty()) return true;
  if (tag.front() == '!') return tags.count(tag.substr(1)) == 0;
  return tags.count(tag) > 0;
}

std::string tag_set_name(const std::set<std::string>& tags) {
  return tags.empty() ? "(no tags)" : "{" + str::join({tags.begin(), tags.end()}, ", ") + "}";
}

double gib(double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); }

std::string fmt_gib(double bytes) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << gib(bytes) << " GiB";
  return os.str();
}

/// One expanded workpackage value with the source mark of the parameter
/// value it came from.
struct Binding {
  std::string value;
  yaml::Mark mark;
};
using MarkedContext = std::map<std::string, Binding>;

class JubeLinter {
 public:
  JubeLinter(const yaml::Node& root, const std::string& file,
             const LintOptions& options, DiagnosticList& diags)
      : root_(root), file_(file), options_(options), diags_(diags) {}

  void run() {
    collect();
    check_parameters();
    check_steps();
    check_patterns();
    check_tag_coverage();
    check_workloads();
    emit_layout_findings();
  }

 private:
  SourceLocation loc(const yaml::Mark& mark) const {
    return SourceLocation::at(file_, mark);
  }

  void type_mismatch(const yaml::Node& node, const std::string& what,
                     const std::string& expected) {
    diags_.report("yaml/type-mismatch", loc(node.mark()),
                  what + " must be a " + expected);
  }

  // --- collection ----------------------------------------------------------

  void collect() {
    if (const yaml::NodePtr sets = root_.find("parametersets")) {
      if (!sets->is_sequence()) {
        type_mismatch(*sets, "'parametersets'", "sequence");
        return;
      }
      for (const auto& set : sets->items()) collect_set(*set);
    }
    if (const yaml::NodePtr steps = root_.find("steps")) {
      if (!steps->is_sequence()) {
        type_mismatch(*steps, "'steps'", "sequence");
      } else {
        for (const auto& step : steps->items()) collect_step(*step);
      }
    }
    if (const yaml::NodePtr patterns = root_.find("patterns")) {
      if (!patterns->is_sequence()) {
        type_mismatch(*patterns, "'patterns'", "sequence");
      } else {
        for (const auto& pattern : patterns->items()) collect_pattern(*pattern);
      }
    }
  }

  void collect_set(const yaml::Node& set) {
    if (!set.is_map()) {
      type_mismatch(set, "parameterset entry", "mapping");
      return;
    }
    if (set.get_or("name", "").empty()) {
      diags_.report("jube/missing-name", loc(set.mark()),
                    "parameterset without a 'name'");
    }
    const yaml::NodePtr parameters = set.find("parameters");
    if (!parameters) return;
    if (!parameters->is_sequence()) {
      type_mismatch(*parameters, "'parameters'", "sequence");
      return;
    }
    for (const auto& node : parameters->items()) {
      if (!node->is_map()) {
        type_mismatch(*node, "parameter entry", "mapping");
        continue;
      }
      ParamDecl param;
      param.name = node->get_or("name", "");
      param.tag = node->get_or("tag", "");
      param.mark = node->mark();
      if (param.name.empty()) {
        diags_.report("jube/missing-name", loc(node->mark()),
                      "parameter without a 'name'");
        continue;
      }
      const yaml::NodePtr values = node->find("values");
      if (values && values->is_sequence()) {
        for (const auto& value : values->items()) {
          if (!value->is_scalar()) {
            type_mismatch(*value, "parameter value", "scalar");
            continue;
          }
          param.values.push_back(value->as_string());
          param.value_marks.push_back(value->mark());
        }
      } else if (values && values->is_scalar()) {
        for (const auto& piece : str::split(values->as_string(), ',')) {
          param.values.push_back(str::trim(piece));
          param.value_marks.push_back(values->mark());
        }
      }
      if (param.values.empty()) {
        diags_.report("jube/empty-values", loc(node->mark()),
                      "parameter '" + param.name + "' declares no values");
        continue;
      }
      params_.push_back(std::move(param));
    }
  }

  void collect_step(const yaml::Node& node) {
    if (!node.is_map()) {
      type_mismatch(node, "step entry", "mapping");
      return;
    }
    StepDecl step;
    step.name = node.get_or("name", "");
    step.action = node.get_or("do", step.name);
    step.tag = node.get_or("tag", "");
    step.mark = node.mark();
    if (step.name.empty()) {
      diags_.report("jube/missing-name", loc(node.mark()),
                    "step without a 'name'");
      return;
    }
    if (const yaml::NodePtr deps = node.find("depend")) {
      if (deps->is_sequence()) {
        for (const auto& d : deps->items()) {
          if (d->is_scalar()) step.depends.emplace_back(d->as_string(), d->mark());
        }
      } else if (deps->is_scalar()) {
        step.depends.emplace_back(deps->as_string(), deps->mark());
      } else {
        type_mismatch(*deps, "step 'depend'", "scalar or sequence");
      }
    }
    steps_.push_back(std::move(step));
  }

  void collect_pattern(const yaml::Node& node) {
    if (!node.is_map()) {
      type_mismatch(node, "pattern entry", "mapping");
      return;
    }
    PatternDecl pattern;
    pattern.name = node.get_or("name", "");
    pattern.mark = node.mark();
    if (pattern.name.empty()) {
      diags_.report("jube/missing-name", loc(node.mark()),
                    "pattern without a 'name'");
      return;
    }
    const yaml::NodePtr regex = node.find("regex");
    if (!regex || !regex->is_scalar()) {
      diags_.report("jube/bad-regex", loc(node.mark()),
                    "pattern '" + pattern.name + "' has no 'regex'");
      return;
    }
    pattern.regex = regex->as_string();
    pattern.regex_mark = regex->mark();
    patterns_.push_back(std::move(pattern));
  }

  // --- parameter rules -----------------------------------------------------

  void check_parameters() {
    std::set<std::string> declared;
    for (const auto& param : params_) declared.insert(param.name);

    // Unresolved ${refs} in values.
    for (const auto& param : params_) {
      for (std::size_t i = 0; i < param.values.size(); ++i) {
        for (const auto& ref : placeholder_names(param.values[i])) {
          if (!declared.count(ref)) {
            diags_.report("jube/unresolved-param", loc(param.value_marks[i]),
                          "parameter '" + param.name + "' references ${" +
                              ref + "}, which no parameterset declares");
          }
        }
      }
    }

    // Reference cycles: edges param -> declared params referenced by any of
    // its values. Iterative elimination of reference-free parameters leaves
    // exactly the cyclic core.
    std::map<std::string, std::set<std::string>> refs;
    for (const auto& param : params_) {
      for (const auto& value : param.values) {
        for (const auto& ref : placeholder_names(value)) {
          if (declared.count(ref) && ref != param.name) {
            refs[param.name].insert(ref);
          } else if (ref == param.name) {
            refs[param.name].insert(ref);  // self-cycle
          }
        }
      }
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (auto it = refs.begin(); it != refs.end();) {
        bool all_resolved = true;
        for (const auto& ref : it->second) {
          if (refs.count(ref)) all_resolved = false;
        }
        if (all_resolved) {
          it = refs.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
    }
    if (!refs.empty()) {
      std::vector<std::string> cycle;
      for (const auto& [name, _] : refs) cycle.push_back(name);
      for (const auto& param : params_) {
        if (refs.count(param.name)) {
          diags_.report("jube/param-cycle", loc(param.mark),
                        "parameter '" + param.name +
                            "' is part of a reference cycle involving {" +
                            str::join(cycle, ", ") + "}");
          cyclic_params_ = true;
          break;  // one finding names the whole cycle
        }
      }
    }
  }

  // --- step rules ----------------------------------------------------------

  void check_steps() {
    if (steps_.empty()) {
      diags_.report("jube/no-steps", loc(root_.mark()),
                    "benchmark declares no steps");
      return;
    }
    std::map<std::string, const StepDecl*> by_name;
    for (const auto& step : steps_) {
      const auto [it, inserted] = by_name.emplace(step.name, &step);
      if (!inserted) {
        diags_.report("jube/duplicate-step", loc(step.mark),
                      "step '" + step.name + "' is declared twice");
      }
    }
    for (const auto& step : steps_) {
      for (const auto& [dep, mark] : step.depends) {
        if (!by_name.count(dep)) {
          diags_.report("jube/dangling-depend", loc(mark),
                        "step '" + step.name + "' depends on unknown step '" +
                            dep + "'");
        }
      }
      if (options_.known_action && !options_.known_action(step.action)) {
        diags_.report("jube/unknown-action", loc(step.mark),
                      "step '" + step.name + "' invokes unregistered action '" +
                          step.action + "'");
      }
    }
    // Kahn's algorithm; whatever cannot be scheduled is the cyclic core.
    std::map<std::string, int> in_degree;
    for (const auto& step : steps_) in_degree[step.name] = 0;
    for (const auto& step : steps_) {
      for (const auto& [dep, _] : step.depends) {
        if (in_degree.count(dep)) ++in_degree[step.name];
      }
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (auto& [name, degree] : in_degree) {
        if (degree != 0) continue;
        for (const auto& step : steps_) {
          for (const auto& [dep, _] : step.depends) {
            if (dep == name && in_degree.count(step.name) &&
                in_degree[step.name] > 0) {
              --in_degree[step.name];
              changed = true;
            }
          }
        }
        degree = -1;  // scheduled
      }
    }
    std::vector<std::string> cyclic;
    for (const auto& [name, degree] : in_degree) {
      if (degree > 0) cyclic.push_back(name);
    }
    if (!cyclic.empty()) {
      for (const auto& step : steps_) {
        if (std::find(cyclic.begin(), cyclic.end(), step.name) !=
            cyclic.end()) {
          diags_.report("jube/step-cycle", loc(step.mark),
                        "step depend graph has a cycle involving {" +
                            str::join(cyclic, ", ") + "}");
          break;
        }
      }
    }
  }

  // --- pattern rules -------------------------------------------------------

  void check_patterns() {
    std::set<std::string> seen;
    for (const auto& pattern : patterns_) {
      if (!seen.insert(pattern.name).second) {
        diags_.report("jube/duplicate-pattern", loc(pattern.mark),
                      "pattern '" + pattern.name + "' is declared twice");
      }
      try {
        const std::regex re(pattern.regex);
        if (re.mark_count() == 0) {
          diags_.report("jube/regex-no-capture", loc(pattern.regex_mark),
                        "pattern '" + pattern.name +
                            "' has no capture group; the analyser extracts "
                            "group 1");
        }
      } catch (const std::regex_error& e) {
        diags_.report("jube/bad-regex", loc(pattern.regex_mark),
                      "pattern '" + pattern.name +
                          "' regex does not compile: " + e.what());
      }
    }
  }

  // --- tag coverage --------------------------------------------------------

  std::vector<std::set<std::string>> tag_sets() const {
    std::set<std::string> declared;
    for (const auto& param : params_) {
      if (!param.tag.empty() && param.tag.front() != '!')
        declared.insert(param.tag);
      if (!param.tag.empty() && param.tag.front() == '!')
        declared.insert(param.tag.substr(1));
    }
    for (const auto& step : steps_) {
      if (!step.tag.empty() && step.tag.front() != '!')
        declared.insert(step.tag);
      if (!step.tag.empty() && step.tag.front() == '!')
        declared.insert(step.tag.substr(1));
    }
    std::vector<std::set<std::string>> sets = {{}};
    for (const auto& tag : declared) sets.push_back({tag});
    return sets;
  }

  void check_tag_coverage() {
    if (steps_.empty()) return;
    for (const auto& tags : tag_sets()) {
      bool any_active = false;
      for (const auto& step : steps_) {
        if (tag_active(step.tag, tags)) any_active = true;
      }
      if (!any_active) {
        diags_.report("jube/tag-selects-nothing", loc(root_.mark()),
                      "tag set " + tag_set_name(tags) +
                          " activates no steps — a run would do no work");
      }
    }
  }

  // --- static workload checks (sim layer) ----------------------------------

  std::vector<MarkedContext> expand(const std::set<std::string>& tags) const {
    // JUBE override semantics: a later active parameter of the same name
    // replaces an earlier one.
    std::vector<const ParamDecl*> active;
    for (const auto& param : params_) {
      if (!tag_active(param.tag, tags)) continue;
      const auto it =
          std::find_if(active.begin(), active.end(), [&](const ParamDecl* p) {
            return p->name == param.name;
          });
      if (it != active.end()) {
        *it = &param;
      } else {
        active.push_back(&param);
      }
    }
    std::vector<MarkedContext> contexts = {MarkedContext{}};
    for (const ParamDecl* param : active) {
      std::vector<MarkedContext> expanded;
      for (const auto& base : contexts) {
        for (std::size_t i = 0; i < param->values.size(); ++i) {
          MarkedContext next = base;
          next[param->name] = Binding{param->values[i], param->value_marks[i]};
          expanded.push_back(std::move(next));
          if (expanded.size() > 4096) return {};  // refuse runaway products
        }
      }
      contexts = std::move(expanded);
    }
    return contexts;
  }

  std::string context_get(const MarkedContext& context, const std::string& key,
                          const std::string& fallback) const {
    const auto it = context.find(key);
    if (it == context.end()) return fallback;
    jube::Context plain;
    for (const auto& [name, binding] : context) plain[name] = binding.value;
    return jube::substitute_context(it->second.value, plain);
  }

  yaml::Mark context_mark(const MarkedContext& context, const std::string& key,
                          const yaml::Mark& fallback) const {
    const auto it = context.find(key);
    return it == context.end() ? fallback : it->second.mark;
  }

  std::optional<std::int64_t> get_int(const MarkedContext& context,
                                      const std::string& key,
                                      const std::string& fallback,
                                      const yaml::Mark& step_mark) {
    const std::string raw = context_get(context, key, fallback);
    try {
      return str::parse_int(raw);
    } catch (const ParseError&) {
      diags_.report("yaml/type-mismatch",
                    loc(context_mark(context, key, step_mark)),
                    "parameter '" + key + "' value '" + raw +
                        "' is not an integer");
      return std::nullopt;
    }
  }

  void check_workloads() {
    if (cyclic_params_) return;  // expansion would not converge
    for (const auto& tags : tag_sets()) {
      std::vector<MarkedContext> contexts;
      try {
        contexts = expand(tags);
      } catch (const Error&) {
        continue;  // unresolved refs already reported statically
      }
      for (const auto& step : steps_) {
        if (!tag_active(step.tag, tags)) continue;
        for (const auto& context : contexts) {
          try {
            if (step.action == "llm_train") check_llm(context, step);
            if (step.action == "resnet_train") check_resnet(context, step);
          } catch (const Error&) {
            // Substitution failures inside individual values were already
            // reported by the parameter rules; don't double-report here.
          }
        }
      }
    }
  }

  const topo::NodeSpec* lookup_system(const MarkedContext& context,
                                      const StepDecl& step,
                                      std::string* tag_out) {
    const std::string tag = context_get(context, "system", "A100");
    if (tag_out) *tag_out = tag;
    const auto& registry = topo::SystemRegistry::instance();
    if (!registry.has_tag(tag)) {
      diags_.report("sim/unknown-system",
                    loc(context_mark(context, "system", step.mark)),
                    "system '" + tag + "' is not in the built-in registry");
      return nullptr;
    }
    return &registry.by_tag(tag);
  }

  void check_llm(const MarkedContext& context, const StepDecl& step) {
    std::string tag;
    const topo::NodeSpec* node = lookup_system(context, step, &tag);
    if (!node || node->device.arch != topo::ArchClass::kGpuSimd) return;

    const auto batch = get_int(context, "global_batch", "256", step.mark);
    const auto micro = get_int(context, "micro_batch", "4", step.mark);
    const auto devices = get_int(context, "devices", "-1", step.mark);
    const auto tp = get_int(context, "tp", "1", step.mark);
    const auto pp = get_int(context, "pp", "1", step.mark);
    if (!batch || !micro || !devices || !tp || !pp) return;

    const std::string model_tag = context_get(context, "model", "800M");
    models::GptConfig model;
    if (model_tag == "117M") model = models::GptConfig::gpt_117m();
    else if (model_tag == "800M") model = models::GptConfig::gpt_800m();
    else if (model_tag == "13B") model = models::GptConfig::gpt_13b();
    else if (model_tag == "175B") model = models::GptConfig::gpt_175b();
    else {
      diags_.report("yaml/type-mismatch",
                    loc(context_mark(context, "model", step.mark)),
                    "model '" + model_tag +
                        "' is not one of 117M/800M/13B/175B");
      return;
    }
    const std::string dtype = context_get(context, "dtype", "bf16");
    if (dtype == "fp32") {
      model.mixed_precision = false;
    } else if (dtype != "bf16") {
      diags_.report("yaml/type-mismatch",
                    loc(context_mark(context, "dtype", step.mark)),
                    "llm_train dtype '" + dtype +
                        "' is not bf16 or fp32 (int8 is inference-only)");
      return;
    }

    const int num_devices = *devices > 0 ? static_cast<int>(*devices)
                                         : node->devices_per_node;
    const yaml::Mark batch_mark = context_mark(context, "global_batch", step.mark);
    if (*tp <= 0 || *pp <= 0 || num_devices % (*tp * *pp) != 0) {
      diags_.report("sim/invalid-layout", loc(batch_mark),
                    "system " + tag + ": " + std::to_string(num_devices) +
                        " device(s) not divisible by tp x pp = " +
                        std::to_string(*tp) + " x " + std::to_string(*pp));
      return;
    }
    const int dp = num_devices / static_cast<int>(*tp * *pp);
    if (*micro <= 0 || *batch <= 0 || *batch % (*micro * dp) != 0) {
      diags_.report("sim/invalid-layout", loc(batch_mark),
                    "system " + tag + ": global batch " +
                        std::to_string(*batch) +
                        " not divisible by micro-batch x data-parallel (" +
                        std::to_string(*micro) + " x " + std::to_string(dp) +
                        ")");
      return;
    }

    models::GptMemoryModel memory;
    memory.config = model;
    memory.tensor_parallel = static_cast<int>(*tp);
    memory.pipeline_parallel = static_cast<int>(*pp);
    memory.data_parallel = dp;
    memory.micro_batch = static_cast<int>(*micro);
    const double need = memory.total_bytes();
    const double capacity = node->device.mem_capacity_bytes;
    if (need > capacity) {
      diags_.report("sim/static-oom", loc(batch_mark),
                    "llm_train on " + tag + " (model " + model_tag +
                        ", global batch " + std::to_string(*batch) +
                        ", micro " + std::to_string(*micro) + ", dp " +
                        std::to_string(dp) + ") needs " + fmt_gib(need) +
                        " per device but " + node->device.name + " has " +
                        fmt_gib(capacity));
    }

    // Full layout analysis (memory at scale, comm volume, schedule bubble,
    // power feasibility, predicted time/energy). Collected per unique cell
    // and emitted after all tag sets ran, so the predicted-time ranking is
    // consistent regardless of which tag set discovered a cell first.
    LayoutSpec layout;
    layout.node = *node;
    layout.model = model;
    layout.tensor_parallel = static_cast<int>(*tp);
    layout.pipeline_parallel = static_cast<int>(*pp);
    layout.data_parallel = dp;
    layout.micro_batch = *micro;
    layout.global_batch = *batch;
    const std::string cell_key =
        layout_label(layout) + " b" + std::to_string(*batch) + " m" +
        std::to_string(*micro) + " @" + std::to_string(batch_mark.line) + ":" +
        std::to_string(batch_mark.column);
    if (!layout_cells_seen_.insert(cell_key).second) return;
    const LayoutAnalysis analysis = analyze_layout(layout);
    if (!analysis.valid) {
      // Divisibility problems were already reported as sim/invalid-layout
      // above; what reaches here is node packing / missing links — defects
      // the simulator would only hit at run time.
      diags_.report("layout/invalid", loc(batch_mark),
                    "llm_train: " + analysis.invalid_reason);
      return;
    }
    layout_cells_.push_back({layout, analysis, batch_mark});
  }

  /// Emit the collected per-cell layout findings, ranking the feasible cells
  /// by predicted iteration time. layout/oom is skipped here: sim/static-oom
  /// already covers guaranteed OOM in JUBE scripts.
  void emit_layout_findings() {
    std::vector<const LayoutCell*> feasible;
    for (const auto& cell : layout_cells_) {
      for (const auto& finding : layout_findings(cell.spec, cell.analysis)) {
        if (finding.rule == "layout/oom") continue;
        diags_.report(finding.rule, loc(cell.mark), finding.message);
      }
      if (!cell.analysis.prediction.oom) feasible.push_back(&cell);
    }
    std::stable_sort(feasible.begin(), feasible.end(),
                     [](const LayoutCell* a, const LayoutCell* b) {
                       return a->analysis.prediction.iteration_time_s <
                              b->analysis.prediction.iteration_time_s;
                     });
    for (std::size_t i = 0; i < feasible.size(); ++i) {
      diags_.report(
          "layout/predicted-time", loc(feasible[i]->mark),
          predicted_time_message(feasible[i]->spec, feasible[i]->analysis) +
              ", rank " + std::to_string(i + 1) + "/" +
              std::to_string(feasible.size()));
    }
  }

  void check_resnet(const MarkedContext& context, const StepDecl& step) {
    std::string tag;
    const topo::NodeSpec* node = lookup_system(context, step, &tag);
    if (!node || node->device.arch != topo::ArchClass::kGpuSimd) return;

    const auto batch = get_int(context, "global_batch", "256", step.mark);
    const auto devices = get_int(context, "devices", "1", step.mark);
    if (!batch || !devices) return;

    const std::string variant_tag = context_get(context, "variant", "resnet50");
    models::ResNetVariant variant;
    if (variant_tag == "resnet18") variant = models::ResNetVariant::kResNet18;
    else if (variant_tag == "resnet34") variant = models::ResNetVariant::kResNet34;
    else if (variant_tag == "resnet50") variant = models::ResNetVariant::kResNet50;
    else {
      diags_.report("yaml/type-mismatch",
                    loc(context_mark(context, "variant", step.mark)),
                    "variant '" + variant_tag +
                        "' is not one of resnet18/resnet34/resnet50");
      return;
    }

    const yaml::Mark batch_mark = context_mark(context, "global_batch", step.mark);
    if (*devices <= 0 || *batch <= 0 || *batch % *devices != 0) {
      diags_.report("sim/invalid-layout", loc(batch_mark),
                    "system " + tag + ": global batch " +
                        std::to_string(*batch) + " not divisible by " +
                        std::to_string(*devices) + " device(s)");
      return;
    }
    const models::ResNetModel model = models::ResNetModel::build(variant);
    const std::int64_t b_dev = *batch / *devices;
    // Mirrors core/resnet.cpp run_resnet_gpu's memory accounting:
    // activations + model/optimizer state + 3 GB framework workspace.
    const double need = model.activation_bytes_per_image() *
                            static_cast<double>(b_dev) +
                        model.model_state_bytes() + 3.0e9;
    const double capacity = node->device.mem_capacity_bytes;
    if (need > capacity) {
      diags_.report("sim/static-oom", loc(batch_mark),
                    "resnet_train on " + tag + " (" + variant_tag +
                        ", global batch " + std::to_string(*batch) + ", " +
                        std::to_string(*devices) + " device(s)) needs " +
                        fmt_gib(need) + " per device but " +
                        node->device.name + " has " + fmt_gib(capacity));
    }
  }

  /// One analyzed llm_train workpackage cell, unique per (layout, mark).
  struct LayoutCell {
    LayoutSpec spec;
    LayoutAnalysis analysis;
    yaml::Mark mark;
  };

  const yaml::Node& root_;
  const std::string& file_;
  const LintOptions& options_;
  DiagnosticList& diags_;
  std::vector<ParamDecl> params_;
  std::vector<StepDecl> steps_;
  std::vector<PatternDecl> patterns_;
  bool cyclic_params_ = false;
  std::vector<LayoutCell> layout_cells_;
  std::set<std::string> layout_cells_seen_;
};

}  // namespace

void lint_jube(const yaml::Node& root, const std::string& file,
               const LintOptions& options, DiagnosticList& diags) {
  JubeLinter(root, file, options, diags).run();
}

}  // namespace caraml::check
