// Sim-layer lint rules over hardware calibration tables (topo/spec_yaml):
// quantities that must be positive for the performance/power model to mean
// anything, overrides that drift implausibly far from the paper's Table I
// anchors, duplicate/unknown tags, and keys the loader would ignore.
#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "check/lint.hpp"
#include "topo/spec_yaml.hpp"
#include "topo/specs.hpp"

namespace caraml::check {

namespace {

std::string fmt(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

/// Overrides further than this factor from the registry anchor are suspect:
/// a mistyped exponent (e15 vs e12) lands far outside it, a refit does not.
constexpr double kAnchorTolerance = 0.5;

void warn_unknown_keys(const yaml::Node& section,
                       const std::set<std::string>& known,
                       const std::string& what, const std::string& file,
                       DiagnosticList& diags) {
  if (!section.is_map()) return;
  for (const auto& [key, value] : section.entries()) {
    if (!known.count(key)) {
      diags.report("sim/unknown-field", SourceLocation::at(file, value->mark()),
                   what + " key '" + key +
                       "' is not part of the calibration schema and is "
                       "ignored by the loader");
    }
  }
}

std::set<std::string> device_known_keys() {
  std::set<std::string> keys;
  for (const auto& field : topo::device_double_fields()) keys.insert(field.name);
  for (const auto& field : topo::device_int_fields()) keys.insert(field.name);
  for (const auto& name : topo::device_string_fields()) keys.insert(name);
  return keys;
}

std::set<std::string> node_known_keys() {
  std::set<std::string> keys;
  for (const auto& field : topo::node_double_fields()) keys.insert(field.name);
  for (const auto& field : topo::node_int_fields()) keys.insert(field.name);
  for (const auto& name : topo::node_string_fields()) keys.insert(name);
  return keys;
}

std::set<std::string> link_known_keys() {
  std::set<std::string> keys = {"name"};
  for (const auto& field : topo::link_double_fields()) keys.insert(field.name);
  return keys;
}

/// Numeric value of a section key, or nothing when absent/non-numeric
/// (non-numeric gets a yaml/type-mismatch).
template <typename Check>
void each_numeric(const yaml::Node& section, const char* name,
                  const std::string& file, DiagnosticList& diags,
                  Check&& check) {
  const yaml::NodePtr value = section.find(name);
  if (!value || !value->is_scalar()) return;
  double parsed = 0.0;
  try {
    parsed = value->as_double();
  } catch (const ParseError&) {
    diags.report("yaml/type-mismatch", SourceLocation::at(file, value->mark()),
                 std::string("'") + name + "' must be a number");
    return;
  }
  check(parsed, SourceLocation::at(file, value->mark()));
}

void lint_entry(const yaml::Node& entry, const std::string& file,
                DiagnosticList& diags) {
  auto loc = [&](const yaml::Mark& mark) {
    return SourceLocation::at(file, mark);
  };
  const std::string tag = entry.get_or("tag", "");
  if (tag.empty()) {
    diags.report("sim/missing-tag", loc(entry.mark()),
                 "calibration entry without a 'tag'");
    return;
  }
  const auto& registry = topo::SystemRegistry::instance();
  const bool known = registry.has_tag(tag);
  if (!known) {
    diags.report("sim/unknown-system", loc(entry.at("tag")->mark()),
                 "system '" + tag +
                     "' is not in the built-in registry; the entry starts "
                     "from an empty spec and must set every field");
  }

  warn_unknown_keys(entry, {"tag", "device", "node", "links"},
                    "calibration entry", file, diags);

  const yaml::NodePtr device = entry.find("device");
  if (device && device->is_map()) {
    warn_unknown_keys(*device, device_known_keys(), "device", file, diags);
    // Anchor check: overrides of datasheet quantities that land far from the
    // paper's Table I values are almost certainly unit mistakes.
    if (known) {
      const topo::DeviceSpec& anchor = registry.by_tag(tag).device;
      for (const auto& field : topo::device_double_fields()) {
        const double reference = anchor.*(field.member);
        if (reference <= 0.0) continue;
        each_numeric(*device, field.name, file, diags,
                     [&](double value, SourceLocation where) {
                       const double ratio = value / reference;
                       if (ratio < 1.0 - kAnchorTolerance ||
                           ratio > 1.0 + kAnchorTolerance) {
                         diags.report(
                             "sim/anchor-mismatch", where,
                             std::string(field.name) + " = " + fmt(value) +
                                 " deviates " +
                                 fmt(std::abs(ratio - 1.0) * 100.0) +
                                 "% from the Table I anchor " +
                                 fmt(reference) + " for " + tag);
                       }
                     });
      }
    }
  } else if (device) {
    diags.report("yaml/type-mismatch", loc(device->mark()),
                 "'device' must be a mapping");
  }
  const yaml::NodePtr node = entry.find("node");
  if (node && node->is_map()) {
    warn_unknown_keys(*node, node_known_keys(), "node", file, diags);
  } else if (node) {
    diags.report("yaml/type-mismatch", loc(node->mark()),
                 "'node' must be a mapping");
  }
  if (const yaml::NodePtr links = entry.find("links")) {
    if (!links->is_map()) {
      diags.report("yaml/type-mismatch", loc(links->mark()),
                   "'links' must be a mapping");
    } else {
      warn_unknown_keys(*links, {"host", "peer", "inter"}, "links", file,
                        diags);
      for (const char* role : {"host", "peer", "inter"}) {
        const yaml::NodePtr link = links->find(role);
        if (!link) continue;
        if (!link->is_map()) {
          diags.report("yaml/type-mismatch", loc(link->mark()),
                       std::string("'") + role + "' link must be a mapping");
          continue;
        }
        warn_unknown_keys(*link, link_known_keys(),
                          std::string(role) + " link", file, diags);
      }
    }
  }

  // Resolve the entry over its base spec and validate the *result* — an
  // override file that zeroes TDP and one that inherits a zero both produce
  // a model-breaking spec.
  topo::NodeSpec resolved;
  try {
    resolved = topo::node_spec_from_yaml(entry);
  } catch (const Error& e) {
    diags.report("yaml/type-mismatch", loc(entry.mark()), e.what());
    return;
  }
  auto field_loc = [&](const yaml::NodePtr& section,
                       const char* name) -> SourceLocation {
    if (section && section->is_map()) {
      if (const yaml::NodePtr value = section->find(name)) {
        return loc(value->mark());
      }
    }
    return loc(entry.mark());
  };
  for (const auto& field : topo::device_double_fields()) {
    const double value = resolved.device.*(field.member);
    if (field.required_positive && value <= 0.0) {
      diags.report("sim/nonpositive-spec", field_loc(device, field.name),
                   "system " + tag + ": device " + field.name + " = " +
                       fmt(value) + " must be positive");
    } else if (value < 0.0) {
      diags.report("sim/nonpositive-spec", field_loc(device, field.name),
                   "system " + tag + ": device " + field.name + " = " +
                       fmt(value) + " must not be negative");
    }
  }
  for (const auto& field : topo::device_int_fields()) {
    const int value = resolved.device.*(field.member);
    if (field.required_positive && value <= 0) {
      diags.report("sim/nonpositive-spec", field_loc(device, field.name),
                   "system " + tag + ": device " + field.name + " = " +
                       std::to_string(value) + " must be positive");
    }
  }
  for (const auto& field : topo::node_int_fields()) {
    const int value = resolved.*(field.member);
    if (field.required_positive && value <= 0) {
      diags.report("sim/nonpositive-spec", field_loc(node, field.name),
                   "system " + tag + ": node " + field.name + " = " +
                       std::to_string(value) + " must be positive");
    }
  }
  for (const auto& field : topo::node_double_fields()) {
    const double value = resolved.*(field.member);
    if (field.required_positive && value <= 0.0) {
      diags.report("sim/nonpositive-spec", field_loc(node, field.name),
                   "system " + tag + ": node " + field.name + " = " +
                       fmt(value) + " must be positive");
    } else if (value < 0.0) {
      diags.report("sim/nonpositive-spec", field_loc(node, field.name),
                   "system " + tag + ": node " + field.name + " = " +
                       fmt(value) + " must not be negative");
    }
  }
  // The host link must move bytes; a peer link only exists with more than
  // one device per node (GH200-JRDC is a single-device node), and inter-node
  // bandwidth 0 legitimately means "single node only" (paper Table I).
  struct LinkCheck {
    const char* role;
    const topo::LinkSpec* link;
    bool bandwidth_required;
  };
  const LinkCheck link_checks[] = {
      {"host", &resolved.host_link, true},
      {"peer", &resolved.peer_link, resolved.devices_per_node > 1},
      {"inter", &resolved.inter_node, resolved.max_nodes > 1},
  };
  for (const auto& check : link_checks) {
    if (check.bandwidth_required && check.link->bandwidth <= 0.0) {
      diags.report("sim/nonpositive-spec", loc(entry.mark()),
                   "system " + tag + ": " + check.role +
                       " link bandwidth = " + fmt(check.link->bandwidth) +
                       " must be positive");
    }
    if (check.link->latency_s < 0.0) {
      diags.report("sim/nonpositive-spec", loc(entry.mark()),
                   "system " + tag + ": " + check.role +
                       " link latency_s must not be negative");
    }
    // Efficiency is the achievable fraction of the nominal bandwidth; the
    // effective bandwidth (bandwidth * efficiency) divides collective times.
    if (check.link->efficiency <= 0.0 || check.link->efficiency > 1.0) {
      diags.report("sim/nonpositive-spec", loc(entry.mark()),
                   "system " + tag + ": " + check.role +
                       " link efficiency = " + fmt(check.link->efficiency) +
                       " must be in (0, 1]");
    }
  }
}

}  // namespace

void lint_spec_table(const yaml::Node& root, const std::string& file,
                     DiagnosticList& diags) {
  const yaml::NodePtr systems = root.find("systems");
  if (!systems || !systems->is_sequence()) {
    diags.report("yaml/type-mismatch",
                 SourceLocation::at(
                     file, systems ? systems->mark() : root.mark()),
                 "'systems' must be a sequence of calibration entries");
    return;
  }
  std::set<std::string> seen;
  for (const auto& entry : systems->items()) {
    if (!entry->is_map()) {
      diags.report("yaml/type-mismatch",
                   SourceLocation::at(file, entry->mark()),
                   "calibration entry must be a mapping");
      continue;
    }
    const std::string tag = entry->get_or("tag", "");
    if (!tag.empty() && !seen.insert(tag).second) {
      diags.report("sim/duplicate-tag",
                   SourceLocation::at(file, entry->at("tag")->mark()),
                   "calibration entry for '" + tag +
                       "' appears twice; the later entry wins downstream");
    }
    lint_entry(*entry, file, diags);
  }
}

}  // namespace caraml::check
