// layout-layer lint rules: static analysis of `layouts:` manifests.
//
// A layout manifest declares candidate TP x PP x DP layouts of LLM training
// jobs over calibrated systems. For every entry the analyzer derives, in
// closed form, the per-device memory footprint at scale, per-iteration
// communication volume and exposed time per link class, pipeline-schedule
// validity, and power-cap feasibility — then ranks the feasible layouts by
// predicted iteration time (layout/predicted-* info rules). The formulas are
// the sim/layout_analytic.hpp hooks the simulator itself runs on, so `caraml
// lint --strict` rejects exactly the layouts a simulation would reject.
#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "check/layout_model.hpp"
#include "check/lint.hpp"
#include "par/pipeline.hpp"
#include "topo/spec_yaml.hpp"

namespace caraml::check {

namespace {

struct AnalyzedEntry {
  LayoutSpec spec;
  LayoutAnalysis analysis;
  yaml::Mark mark;
};

class LayoutLinter {
 public:
  LayoutLinter(const yaml::Node& root, const std::string& file,
               DiagnosticList& diags)
      : root_(root), file_(file), diags_(diags) {}

  void run() {
    load_calibration();
    const yaml::NodePtr layouts = root_.find("layouts");
    if (!layouts || !layouts->is_sequence()) {
      diags_.report("yaml/type-mismatch",
                    loc(layouts ? layouts->mark() : root_.mark()),
                    "'layouts' must be a sequence of layout entries");
      return;
    }
    std::vector<AnalyzedEntry> analyzed;
    for (std::size_t i = 0; i < layouts->items().size(); ++i) {
      if (auto entry = lint_entry(*layouts->item(i), i)) {
        analyzed.push_back(std::move(*entry));
      }
    }
    rank(analyzed);
  }

 private:
  SourceLocation loc(const yaml::Mark& mark) const {
    return SourceLocation::at(file_, mark);
  }

  void load_calibration() {
    const yaml::NodePtr calibration = root_.find("calibration");
    if (!calibration) return;
    if (!calibration->is_scalar()) {
      diags_.report("yaml/type-mismatch", loc(calibration->mark()),
                    "'calibration' must be a file path");
      return;
    }
    namespace fs = std::filesystem;
    fs::path path(calibration->as_string());
    if (path.is_relative()) {
      path = fs::path(file_).parent_path() / path;
    }
    try {
      const topo::SpecTable table = topo::load_spec_table_file(path.string());
      for (const auto& spec : table.systems) {
        calibrated_[spec.jube_tag] = spec;
      }
    } catch (const Error& e) {
      diags_.report("yaml/parse-error", loc(calibration->mark()),
                    "calibration table '" + calibration->as_string() +
                        "': " + e.what());
    }
  }

  /// Lints one entry; returns the analyzed layout when it is valid (so it
  /// participates in ranking), nullopt otherwise.
  std::optional<AnalyzedEntry> lint_entry(const yaml::Node& entry,
                                          std::size_t index) {
    if (!entry.is_map()) {
      diags_.report("yaml/type-mismatch", loc(entry.mark()),
                    "layout entry must be a mapping");
      return std::nullopt;
    }
    LayoutSpec spec;
    spec.name = entry.get_or("name", "layout" + std::to_string(index));

    const std::string system = entry.get_or("system", "");
    if (system.empty()) {
      diags_.report("layout/invalid", loc(entry.mark()),
                    spec.name + ": entry declares no 'system'");
      return std::nullopt;
    }
    if (const auto it = calibrated_.find(system); it != calibrated_.end()) {
      spec.node = it->second;
    } else if (topo::SystemRegistry::instance().has_tag(system)) {
      spec.node = topo::SystemRegistry::instance().by_tag(system);
    } else {
      diags_.report("layout/invalid", loc(entry.mark()),
                    spec.name + ": system '" + system +
                        "' is neither in the calibration table nor the "
                        "built-in registry");
      return std::nullopt;
    }

    const std::string model_tag = entry.get_or("model", "800M");
    const auto model = gpt_config_from_tag(model_tag);
    if (!model) {
      diags_.report("layout/invalid", loc(entry.mark()),
                    spec.name + ": model '" + model_tag +
                        "' is not one of 117M/800M/13B/175B");
      return std::nullopt;
    }
    spec.model = *model;

    // Optional training precision: bf16 (the paper's mixed-precision default)
    // or fp32 — drives the memory model's bytes-per-value, the comm-volume
    // derivations, and the tensor-peak scale, exactly as `caraml llm --dtype`.
    const std::string dtype = entry.get_or("dtype", "bf16");
    if (dtype == "fp32") {
      spec.model.mixed_precision = false;
    } else if (dtype != "bf16") {
      diags_.report("layout/invalid", loc(entry.mark()),
                    spec.name + ": dtype '" + dtype +
                        "' is not bf16 or fp32 (int8 is inference-only)");
      return std::nullopt;
    }

    try {
      spec.tensor_parallel = static_cast<int>(entry.get_int_or("tp", 1));
      spec.pipeline_parallel = static_cast<int>(entry.get_int_or("pp", 1));
      spec.data_parallel = static_cast<int>(entry.get_int_or("dp", 1));
      spec.micro_batch = entry.get_int_or("micro_batch", 1);
      spec.global_batch = entry.get_int_or(
          "global_batch",
          spec.micro_batch * std::max(1, spec.data_parallel));
      if (entry.get_bool_or("recompute", false)) {
        spec.model.activation_recompute = true;
      }
    } catch (const ParseError& e) {
      diags_.report("yaml/type-mismatch", loc(entry.mark()),
                    spec.name + ": " + e.what());
      return std::nullopt;
    }

    if (!lint_schedule(entry, spec)) return std::nullopt;

    const LayoutAnalysis analysis = analyze_layout(spec);
    if (!analysis.valid) {
      diags_.report("layout/invalid", loc(entry.mark()),
                    spec.name + ": " + analysis.invalid_reason);
      return std::nullopt;
    }
    for (const LayoutFinding& finding : layout_findings(spec, analysis)) {
      diags_.report(finding.rule, loc(entry.mark()), finding.message);
    }
    return AnalyzedEntry{spec, analysis, entry.mark()};
  }

  /// Parses `schedule:` (named or custom) and runs the custom-slot validator.
  /// Returns false only on a malformed schedule node (the entry is dropped);
  /// schedule *defects* are reported but keep the entry analyzable.
  bool lint_schedule(const yaml::Node& entry, LayoutSpec& spec) {
    const yaml::NodePtr schedule = entry.find("schedule");
    if (!schedule) return true;  // default 1F1B
    if (schedule->is_scalar()) {
      const std::string kind = schedule->as_string();
      if (kind == "gpipe") {
        spec.schedule = LayoutSchedule::kGpipe;
      } else if (kind == "1f1b") {
        spec.schedule = LayoutSchedule::kOneFOneB;
      } else {
        diags_.report("yaml/type-mismatch", loc(schedule->mark()),
                      spec.name + ": schedule '" + kind +
                          "' is not gpipe, 1f1b, or a custom slot mapping");
        return false;
      }
      return true;
    }
    if (!schedule->is_map()) {
      diags_.report("yaml/type-mismatch", loc(schedule->mark()),
                    spec.name +
                        ": 'schedule' must be gpipe, 1f1b, or a custom slot "
                        "mapping");
      return false;
    }

    // Custom schedule: explicit slot timeline, validated structurally.
    par::PipelineSchedule custom;
    try {
      custom.num_stages = static_cast<int>(
          schedule->get_int_or("stages", spec.pipeline_parallel));
      custom.num_micro = static_cast<int>(schedule->get_int_or(
          "micro",
          spec.global_batch / std::max<std::int64_t>(
                                  1, spec.micro_batch * spec.data_parallel)));
      const double backward_cost =
          schedule->get_double_or("backward_cost", 2.0);
      const yaml::NodePtr slots = schedule->find("slots");
      if (!slots || !slots->is_sequence()) {
        diags_.report("yaml/type-mismatch",
                      loc(slots ? slots->mark() : schedule->mark()),
                      spec.name +
                          ": custom schedule needs a 'slots' sequence of "
                          "{stage, micro, forward, time} entries");
        return false;
      }
      for (const auto& slot_node : slots->items()) {
        if (!slot_node->is_map()) {
          diags_.report("yaml/type-mismatch", loc(slot_node->mark()),
                        spec.name + ": schedule slot must be a mapping");
          return false;
        }
        par::PipelineSlot slot;
        slot.stage = static_cast<int>(slot_node->get_int_or("stage", 0));
        slot.micro = static_cast<int>(slot_node->get_int_or("micro", 0));
        slot.forward = slot_node->get_bool_or("forward", true);
        slot.time = static_cast<int>(slot_node->get_int_or("time", 0));
        custom.slots.push_back(slot);
      }
      if (custom.num_stages < 1 || custom.num_micro < 1 ||
          backward_cost <= 0.0) {
        diags_.report("yaml/type-mismatch", loc(schedule->mark()),
                      spec.name +
                          ": custom schedule needs stages >= 1, micro >= 1 "
                          "and backward_cost > 0");
        return false;
      }
      for (const auto& issue :
           par::validate_pipeline_schedule(custom, backward_cost)) {
        diags_.report(schedule_rule(issue.kind), loc(schedule->mark()),
                      spec.name + ": " + issue.message);
      }
    } catch (const ParseError& e) {
      diags_.report("yaml/type-mismatch", loc(schedule->mark()),
                    spec.name + ": " + e.what());
      return false;
    }
    return true;
  }

  static std::string schedule_rule(par::ScheduleIssue::Kind kind) {
    switch (kind) {
      case par::ScheduleIssue::Kind::kOverlap:
        return "layout/schedule-overlap";
      case par::ScheduleIssue::Kind::kStarved:
        return "layout/schedule-starved";
      case par::ScheduleIssue::Kind::kMissingSlot:
      case par::ScheduleIssue::Kind::kDependency:
        break;
    }
    return "layout/schedule-deadlock";
  }

  /// Rank the feasible (valid, non-OOM) layouts by predicted iteration time
  /// and emit the ranked layout/predicted-time info per entry.
  void rank(const std::vector<AnalyzedEntry>& analyzed) {
    std::vector<const AnalyzedEntry*> feasible;
    for (const auto& entry : analyzed) {
      if (!entry.analysis.prediction.oom) feasible.push_back(&entry);
    }
    std::stable_sort(feasible.begin(), feasible.end(),
                     [](const AnalyzedEntry* a, const AnalyzedEntry* b) {
                       return a->analysis.prediction.iteration_time_s <
                              b->analysis.prediction.iteration_time_s;
                     });
    for (std::size_t i = 0; i < feasible.size(); ++i) {
      diags_.report(
          "layout/predicted-time", loc(feasible[i]->mark),
          predicted_time_message(feasible[i]->spec, feasible[i]->analysis) +
              ", rank " + std::to_string(i + 1) + "/" +
              std::to_string(feasible.size()));
    }
  }

  const yaml::Node& root_;
  const std::string& file_;
  DiagnosticList& diags_;
  std::map<std::string, topo::NodeSpec> calibrated_;
};

}  // namespace

void lint_layouts(const yaml::Node& root, const std::string& file,
                  DiagnosticList& diags) {
  LayoutLinter(root, file, diags).run();
}

}  // namespace caraml::check
