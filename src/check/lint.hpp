// `caraml lint` driver: classify suite inputs and run the per-layer rule
// passes over them, without executing anything.
//
// A file is classified by its top-level keys:
//   * "benchmark" / "parametersets" / "steps"  -> JUBE benchmark script
//   * "fault_plan" / "events"                  -> fault-injection schedule
//   * "systems"                                -> hardware calibration table
//   * "campaign"                               -> chaos campaign
//   * "layouts"                                -> parallel-layout manifest
// Unclassifiable files get a yaml/unknown-schema warning; YAML-layer rules
// (parse errors, duplicate keys) run on every file regardless of kind.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "check/diagnostics.hpp"
#include "yaml/yaml.hpp"

namespace caraml::check {

enum class FileKind {
  kJube,
  kFaultPlan,
  kSpecTable,
  kCampaign,
  kLayouts,
  kUnknown,
};

FileKind classify(const yaml::Node& root);

struct LintOptions {
  /// Predicate for jube/unknown-action: true when the name is a registered
  /// step action. Unset disables the rule (tests and callers without an
  /// action registry).
  std::function<bool(const std::string&)> known_action;
};

/// Lint one parsed document (yaml-layer duplicate keys have already been
/// recorded on `doc`). `file` is only used for diagnostic locations.
void lint_document(const yaml::Document& doc, const std::string& file,
                   const LintOptions& options, DiagnosticList& diags);

/// Parse + lint YAML text. Parse failures become yaml/parse-error.
void lint_text(const std::string& text, const std::string& file,
               const LintOptions& options, DiagnosticList& diags);

/// Lint one file on disk.
void lint_file(const std::string& path, const LintOptions& options,
               DiagnosticList& diags);

/// Expand paths (directories recurse into *.yaml / *.yml, sorted) and lint
/// every file. Missing paths produce a yaml/parse-error diagnostic rather
/// than throwing, so one bad argument cannot hide other findings.
DiagnosticList lint_paths(const std::vector<std::string>& paths,
                          const LintOptions& options = {});

// --- per-layer passes (exposed for tests) -----------------------------------
void lint_jube(const yaml::Node& root, const std::string& file,
               const LintOptions& options, DiagnosticList& diags);
void lint_fault_plan(const yaml::Node& root, const std::string& file,
                     DiagnosticList& diags);
void lint_spec_table(const yaml::Node& root, const std::string& file,
                     DiagnosticList& diags);
void lint_campaign(const yaml::Node& root, const std::string& file,
                   DiagnosticList& diags);
void lint_layouts(const yaml::Node& root, const std::string& file,
                  DiagnosticList& diags);

}  // namespace caraml::check
