// Rule registry for `caraml lint`.
//
// Every diagnostic a lint pass can emit is registered here with its id,
// default severity and a one-line summary. The catalogue is the single
// source of truth: DiagnosticList::report refuses ids that are not
// registered, `caraml lint --list-rules` prints the table, and
// docs/static-analysis.md documents the same set.
#pragma once

#include <string>
#include <vector>

#include "check/diagnostics.hpp"

namespace caraml::check {

struct RuleInfo {
  std::string id;        // "<layer>/<rule>", e.g. "sim/static-oom"
  Severity severity = Severity::kError;
  std::string summary;   // one line, shown by --list-rules
};

/// All registered rules, grouped by layer (yaml, jube, fault, sim).
const std::vector<RuleInfo>& rule_catalogue();

/// nullptr when the id is not registered.
const RuleInfo* find_rule(const std::string& id);

}  // namespace caraml::check
