// Fault-layer lint rules: injection schedule sanity. Everything here mirrors
// what fault::FaultPlan::from_yaml would reject at load time (as errors) or
// silently tolerate (as warnings: ignored keys, windows that can never fire,
// events past the horizon).
#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/lint.hpp"
#include "fault/fault.hpp"
#include "topo/specs.hpp"
#include "util/strings.hpp"

namespace caraml::check {

namespace {

const std::set<std::string>& known_kinds() {
  static const std::set<std::string> kinds = {
      "device_failure", "thermal_throttle", "link_degrade", "sensor_dropout"};
  return kinds;
}

std::string fmt(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

bool is_window_kind(const std::string& kind) {
  return kind == "thermal_throttle" || kind == "link_degrade" ||
         kind == "sensor_dropout";
}

/// Largest per-node device count of any registered system (MI250: 8 GCDs) —
/// device indices at or beyond it reference hardware no system has.
int max_registry_devices() {
  int max_devices = 1;
  for (const auto& node : topo::SystemRegistry::instance().all()) {
    max_devices = std::max(max_devices, node.devices_per_node);
  }
  return max_devices;
}

void warn_unknown_fields(const yaml::Node& map,
                         const std::set<std::string>& known,
                         const std::string& what, const std::string& file,
                         DiagnosticList& diags) {
  for (const auto& [key, value] : map.entries()) {
    if (!known.count(key)) {
      diags.report("fault/unknown-field",
                   SourceLocation::at(file, value->mark()),
                   what + " key '" + key + "' is not part of the schema and "
                   "is ignored by the loader");
    }
  }
}

struct ParsedEvent {
  std::string kind;
  double time_s = 0.0;
  double duration_s = 0.0;
  int device = -1;
  yaml::Mark mark;
  bool usable = false;  // fields parsed well enough for cross-event checks
};

}  // namespace

void lint_fault_plan(const yaml::Node& root, const std::string& file,
                     DiagnosticList& diags) {
  const yaml::NodePtr body_ptr = root.find("fault_plan");
  const yaml::Node& body = body_ptr ? *body_ptr : root;
  if (!body.is_map()) {
    diags.report("yaml/type-mismatch", SourceLocation::at(file, body.mark()),
                 "'fault_plan' must be a mapping");
    return;
  }
  auto loc = [&](const yaml::Mark& mark) {
    return SourceLocation::at(file, mark);
  };

  warn_unknown_fields(body,
                      {"seed", "rate", "horizon_s", "events", "retry",
                       "fault_plan"},
                      "fault plan", file, diags);

  double rate = 0.0;
  if (const yaml::NodePtr node = body.find("rate");
      node && node->is_scalar()) {
    try {
      rate = node->as_double();
    } catch (const ParseError&) {
      diags.report("yaml/type-mismatch", loc(node->mark()),
                   "'rate' must be a number");
    }
    if (rate < 0.0) {
      diags.report("fault/bad-rate", loc(node->mark()),
                   "fault rate must be >= 0");
    }
  }
  double horizon_s = 0.0;
  if (const yaml::NodePtr node = body.find("horizon_s");
      node && node->is_scalar()) {
    try {
      horizon_s = node->as_double();
    } catch (const ParseError&) {
      diags.report("yaml/type-mismatch", loc(node->mark()),
                   "'horizon_s' must be a number");
    }
  }

  // --- events --------------------------------------------------------------
  std::vector<ParsedEvent> events;
  if (const yaml::NodePtr list = body.find("events")) {
    if (!list->is_sequence()) {
      diags.report("yaml/type-mismatch", loc(list->mark()),
                   "'events' must be a sequence");
    } else {
      for (const auto& node : list->items()) {
        if (!node->is_map()) {
          diags.report("yaml/type-mismatch", loc(node->mark()),
                       "event entry must be a mapping");
          continue;
        }
        warn_unknown_fields(
            *node, {"kind", "time_s", "duration_s", "device", "severity"},
            "event", file, diags);
        ParsedEvent event;
        event.mark = node->mark();
        event.kind = node->get_or("kind", "");
        if (!known_kinds().count(event.kind)) {
          const yaml::NodePtr kind = node->find("kind");
          diags.report("fault/unknown-kind",
                       loc(kind ? kind->mark() : node->mark()),
                       "unknown fault kind '" + event.kind +
                           "' (expected device_failure, thermal_throttle, "
                           "link_degrade or sensor_dropout)");
          continue;
        }
        try {
          event.time_s = node->get_double_or("time_s", 0.0);
          event.duration_s = node->get_double_or("duration_s", 0.0);
          event.device = static_cast<int>(node->get_int_or("device", -1));
          const double severity = node->get_double_or("severity", 0.5);
          if (severity <= 0.0 || severity > 1.0) {
            diags.report("fault/bad-severity", loc(node->mark()),
                         "severity " + fmt(severity) +
                             " outside (0, 1]");
          }
        } catch (const ParseError& e) {
          diags.report("yaml/type-mismatch", loc(node->mark()), e.what());
          continue;
        }
        event.usable = true;
        if (event.time_s < 0.0 || event.duration_s < 0.0) {
          diags.report("fault/negative-time", loc(node->mark()),
                       "negative time_s/duration_s");
        }
        if (event.device < -1) {
          diags.report("fault/bad-device", loc(node->mark()),
                       "device index " + std::to_string(event.device) +
                           " is invalid (-1 = all devices)");
        } else if (event.device >= max_registry_devices()) {
          diags.report("fault/bad-device", loc(node->mark()),
                       "device index " + std::to_string(event.device) +
                           " exceeds every registered system's device count "
                           "(max " +
                           std::to_string(max_registry_devices() - 1) + ")");
        }
        if (is_window_kind(event.kind) && event.duration_s == 0.0) {
          diags.report("fault/zero-window", loc(node->mark()),
                       event.kind +
                           " with duration_s 0 can never be active");
        }
        if (horizon_s > 0.0 && event.time_s >= horizon_s) {
          diags.report("fault/beyond-horizon", loc(node->mark()),
                       "event at t=" + fmt(event.time_s) +
                           "s lies past horizon_s=" +
                           fmt(horizon_s) + "s");
        }
        events.push_back(event);
      }
    }
  }

  // Overlapping same-kind windows on the same device compound silently.
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const ParsedEvent& a = events[i];
      const ParsedEvent& b = events[j];
      if (!a.usable || !b.usable) continue;
      if (a.kind != b.kind || !is_window_kind(a.kind)) continue;
      if (a.duration_s <= 0.0 || b.duration_s <= 0.0) continue;
      const bool same_device =
          a.device == b.device || a.device < 0 || b.device < 0;
      if (!same_device) continue;
      const bool overlap = a.time_s < b.time_s + b.duration_s &&
                           b.time_s < a.time_s + a.duration_s;
      if (overlap) {
        diags.report("fault/overlap", loc(b.mark),
                     a.kind + " windows at t=" +
                         fmt(a.time_s) + "s and t=" +
                         fmt(b.time_s) +
                         "s overlap on the same device; derates compound");
      }
    }
  }

  // --- retry policy --------------------------------------------------------
  if (const yaml::NodePtr retry = body.find("retry")) {
    if (!retry->is_map()) {
      diags.report("yaml/type-mismatch", loc(retry->mark()),
                   "'retry' must be a mapping");
      return;
    }
    warn_unknown_fields(*retry,
                        {"max_attempts", "base_delay_s", "multiplier",
                         "jitter_frac", "max_delay_s", "seed"},
                        "retry", file, diags);
    try {
      const std::int64_t max_attempts = retry->get_int_or("max_attempts", 3);
      if (max_attempts <= 0) {
        diags.report("fault/retry-unbounded", loc(retry->mark()),
                     "max_attempts " + std::to_string(max_attempts) +
                         " — a policy with no attempt budget can never "
                         "terminate");
      }
      const double base_delay_s = retry->get_double_or("base_delay_s", 0.25);
      const double multiplier = retry->get_double_or("multiplier", 2.0);
      const double jitter_frac = retry->get_double_or("jitter_frac", 0.1);
      const double max_delay_s = retry->get_double_or("max_delay_s", 60.0);
      if (!std::isfinite(base_delay_s) || base_delay_s < 0.0) {
        diags.report("fault/retry-invalid", loc(retry->mark()),
                     "base_delay_s must be finite and >= 0");
      }
      if (!std::isfinite(multiplier) || multiplier <= 0.0) {
        diags.report("fault/retry-invalid", loc(retry->mark()),
                     "multiplier must be finite and > 0");
      }
      if (jitter_frac < 0.0 || jitter_frac > 1.0) {
        diags.report("fault/retry-invalid", loc(retry->mark()),
                     "jitter_frac must be in [0, 1]");
      }
      if (!std::isfinite(max_delay_s) || max_delay_s < 0.0) {
        diags.report("fault/retry-invalid", loc(retry->mark()),
                     "max_delay_s must be finite and >= 0 (the backoff "
                     "ceiling that caps exponential growth)");
      }
    } catch (const ParseError& e) {
      diags.report("yaml/type-mismatch", loc(retry->mark()), e.what());
    }
  }
}

}  // namespace caraml::check
