#include "check/diagnostics.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "check/rules.hpp"
#include "telemetry/json.hpp"
#include "util/error.hpp"

namespace caraml::check {

std::string severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  throw Error("unreachable severity");
}

void DiagnosticList::add(Diagnostic diagnostic) {
  for (const auto& existing : diagnostics_) {
    if (existing.rule_id == diagnostic.rule_id &&
        existing.location.file == diagnostic.location.file &&
        existing.location.line == diagnostic.location.line &&
        existing.location.column == diagnostic.location.column &&
        existing.message == diagnostic.message) {
      return;  // same defect rediscovered (e.g. in another tag set)
    }
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticList::report(const std::string& rule_id,
                            SourceLocation location, std::string message) {
  const RuleInfo* rule = find_rule(rule_id);
  if (rule == nullptr) {
    throw NotFound("lint rule '" + rule_id + "' is not in the catalogue");
  }
  add(Diagnostic{rule_id, rule->severity, std::move(location),
                 std::move(message)});
}

std::size_t DiagnosticList::count(Severity severity) const {
  std::size_t n = 0;
  for (const auto& diagnostic : diagnostics_) {
    if (diagnostic.severity == severity) ++n;
  }
  return n;
}

void DiagnosticList::sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.location.file, a.location.line,
                                     a.location.column, a.rule_id) <
                            std::tie(b.location.file, b.location.line,
                                     b.location.column, b.rule_id);
                   });
}

std::string DiagnosticList::render_human() const {
  std::ostringstream os;
  for (const auto& d : diagnostics_) {
    os << d.location.file;
    if (d.location.line > 0) {
      os << ':' << d.location.line;
      if (d.location.column > 0) os << ':' << d.location.column;
    }
    os << ": " << severity_name(d.severity) << ": " << d.message << " ["
       << d.rule_id << "]\n";
  }
  os << count(Severity::kError) << " error(s), " << count(Severity::kWarning)
     << " warning(s), " << count(Severity::kInfo) << " info(s)\n";
  return os.str();
}

namespace {

// Lint findings quote bytes straight out of user config files (system names,
// parameter values, regexes), which need not be valid UTF-8. The JSON escape
// layer handles control characters, but raw invalid UTF-8 sequences would
// still yield an invalid JSON document — replace them with U+FFFD so
// --json-out artifacts always parse.
std::string sanitize_utf8(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size();) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (c < 0x80) {
      out += static_cast<char>(c);
      ++i;
      continue;
    }
    const std::size_t len = c >= 0xf0 ? 4 : c >= 0xe0 ? 3 : c >= 0xc0 ? 2 : 0;
    bool valid = len > 0 && i + len <= text.size();
    for (std::size_t k = 1; valid && k < len; ++k) {
      valid = (static_cast<unsigned char>(text[i + k]) & 0xc0) == 0x80;
    }
    if (valid) {
      out.append(text, i, len);
      i += len;
    } else {
      out += "\xef\xbf\xbd";  // U+FFFD replacement character
      ++i;
    }
  }
  return out;
}

}  // namespace

std::string DiagnosticList::render_json() const {
  namespace json = telemetry::json;
  json::Array results;
  results.reserve(diagnostics_.size());
  for (const auto& d : diagnostics_) {
    json::Value entry{json::Object{}};
    entry.set("rule", d.rule_id);
    entry.set("severity", severity_name(d.severity));
    entry.set("file", sanitize_utf8(d.location.file));
    entry.set("line", static_cast<std::int64_t>(d.location.line));
    entry.set("column", static_cast<std::int64_t>(d.location.column));
    entry.set("message", sanitize_utf8(d.message));
    results.push_back(std::move(entry));
  }
  json::Value summary{json::Object{}};
  summary.set("errors", static_cast<std::int64_t>(count(Severity::kError)));
  summary.set("warnings",
              static_cast<std::int64_t>(count(Severity::kWarning)));
  summary.set("infos", static_cast<std::int64_t>(count(Severity::kInfo)));
  json::Value document{json::Object{}};
  document.set("version", 1);
  document.set("diagnostics", json::Value{std::move(results)});
  document.set("summary", std::move(summary));
  return json::dump(document);
}

}  // namespace caraml::check
