#include "check/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace caraml::check {

namespace fs = std::filesystem;

FileKind classify(const yaml::Node& root) {
  if (!root.is_map()) return FileKind::kUnknown;
  if (root.has("benchmark") || root.has("parametersets") || root.has("steps")) {
    return FileKind::kJube;
  }
  if (root.has("fault_plan") || root.has("events")) return FileKind::kFaultPlan;
  if (root.has("systems")) return FileKind::kSpecTable;
  if (root.has("campaign")) return FileKind::kCampaign;
  if (root.has("layouts")) return FileKind::kLayouts;
  return FileKind::kUnknown;
}

void lint_document(const yaml::Document& doc, const std::string& file,
                   const LintOptions& options, DiagnosticList& diags) {
  for (const auto& dup : doc.duplicate_keys) {
    diags.report("yaml/duplicate-key", SourceLocation::at(file, dup.duplicate),
                 "duplicate mapping key '" + dup.key + "' (first defined at " +
                     "line " + std::to_string(dup.first.line) +
                     "); the last value silently wins");
  }
  switch (classify(*doc.root)) {
    case FileKind::kJube:
      lint_jube(*doc.root, file, options, diags);
      break;
    case FileKind::kFaultPlan:
      lint_fault_plan(*doc.root, file, diags);
      break;
    case FileKind::kSpecTable:
      lint_spec_table(*doc.root, file, diags);
      break;
    case FileKind::kCampaign:
      lint_campaign(*doc.root, file, diags);
      break;
    case FileKind::kLayouts:
      lint_layouts(*doc.root, file, diags);
      break;
    case FileKind::kUnknown:
      diags.report("yaml/unknown-schema",
                   SourceLocation::at(file, doc.root->mark()),
                   "file matches no suite input schema (expected a JUBE "
                   "benchmark, fault plan, calibration table, chaos "
                   "campaign, or layout manifest)");
      break;
  }
}

void lint_text(const std::string& text, const std::string& file,
               const LintOptions& options, DiagnosticList& diags) {
  yaml::Document doc;
  try {
    yaml::ParseOptions parse_options;
    parse_options.allow_duplicate_keys = true;
    doc = yaml::parse_document(text, parse_options);
  } catch (const yaml::LocatedParseError& e) {
    diags.report("yaml/parse-error", SourceLocation::at(file, e.mark()),
                 e.what());
    return;
  } catch (const ParseError& e) {
    diags.report("yaml/parse-error", SourceLocation{file, 0, 0}, e.what());
    return;
  }
  lint_document(doc, file, options, diags);
}

void lint_file(const std::string& path, const LintOptions& options,
               DiagnosticList& diags) {
  std::ifstream in(path);
  if (!in) {
    diags.report("yaml/parse-error", SourceLocation{path, 0, 0},
                 "cannot open file");
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  lint_text(buffer.str(), path, options, diags);
}

namespace {

bool is_yaml_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".yaml" || ext == ".yml";
}

}  // namespace

DiagnosticList lint_paths(const std::vector<std::string>& paths,
                          const LintOptions& options) {
  DiagnosticList diags;
  for (const auto& arg : paths) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      std::vector<std::string> files;
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file() && is_yaml_file(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) lint_file(file, options, diags);
    } else if (fs::exists(arg, ec)) {
      lint_file(arg, options, diags);
    } else {
      diags.report("yaml/parse-error", SourceLocation{arg, 0, 0},
                   "no such file or directory");
    }
  }
  diags.sort();
  return diags;
}

}  // namespace caraml::check
