#include "check/layout_model.hpp"

#include <algorithm>
#include <sstream>

#include "models/resnet_cost.hpp"
#include "par/pipeline.hpp"
#include "sim/power_model.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml::check {

namespace {

double gib(double bytes) { return bytes / (1024.0 * 1024.0 * 1024.0); }

std::string fmt_fixed(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

std::string fmt_gib(double bytes) { return fmt_fixed(gib(bytes), 1) + " GiB"; }

std::string fmt_ms(double seconds) {
  return fmt_fixed(seconds * 1000.0, 1) + " ms";
}

std::string fmt_pct(double fraction) {
  return fmt_fixed(fraction * 100.0, 1) + "%";
}

std::string system_tag(const topo::NodeSpec& node) {
  return node.jube_tag.empty() ? node.display_name : node.jube_tag;
}

LayoutAnalysis invalid(std::string why) {
  LayoutAnalysis analysis;
  analysis.invalid_reason = std::move(why);
  return analysis;
}

}  // namespace

std::optional<models::GptConfig> gpt_config_from_tag(const std::string& tag) {
  if (tag == "117M") return models::GptConfig::gpt_117m();
  if (tag == "800M") return models::GptConfig::gpt_800m();
  if (tag == "13B") return models::GptConfig::gpt_13b();
  if (tag == "175B") return models::GptConfig::gpt_175b();
  return std::nullopt;
}

std::string layout_label(const LayoutSpec& spec) {
  std::string label = spec.name.empty() ? std::string() : spec.name + ": ";
  label += "system " + system_tag(spec.node) + " model " + spec.model.name +
           " tp=" + std::to_string(spec.tensor_parallel) +
           " pp=" + std::to_string(spec.pipeline_parallel) +
           " dp=" + std::to_string(spec.data_parallel);
  return label;
}

LayoutAnalysis analyze_layout(const LayoutSpec& spec) {
  const int tp = spec.tensor_parallel;
  const int pp = spec.pipeline_parallel;
  const int dp = spec.data_parallel;
  if (spec.node.device.arch != topo::ArchClass::kGpuSimd) {
    return invalid("system " + system_tag(spec.node) +
                   " is not a GPU system; layout analysis covers GPU "
                   "training");
  }
  if (tp < 1 || pp < 1 || dp < 1) {
    return invalid("tp/pp/dp must all be >= 1 (got tp=" + std::to_string(tp) +
                   " pp=" + std::to_string(pp) + " dp=" + std::to_string(dp) +
                   ")");
  }
  if (spec.micro_batch <= 0 || spec.global_batch <= 0) {
    return invalid("micro/global batch must be positive");
  }
  if (spec.global_batch % (spec.micro_batch * dp) != 0) {
    return invalid("global batch " + std::to_string(spec.global_batch) +
                   " is not divisible by micro-batch x data-parallel (" +
                   std::to_string(spec.micro_batch) + " x " +
                   std::to_string(dp) + ")");
  }

  LayoutAnalysis analysis;
  const int n = spec.num_devices();
  if (spec.node.devices_per_node <= 0) {
    return invalid("system " + system_tag(spec.node) +
                   " declares no devices per node");
  }
  if (n <= spec.node.devices_per_node) {
    analysis.devices_per_node = n;
    analysis.num_nodes = 1;
  } else if (n % spec.node.devices_per_node == 0) {
    analysis.devices_per_node = spec.node.devices_per_node;
    analysis.num_nodes = n / spec.node.devices_per_node;
  } else {
    return invalid(std::to_string(n) + " devices do not pack into " +
                   std::to_string(spec.node.devices_per_node) +
                   "-device nodes of " + system_tag(spec.node));
  }
  if (analysis.num_nodes > 1 && spec.node.inter_node.bandwidth <= 0.0) {
    return invalid("layout needs " + std::to_string(analysis.num_nodes) +
                   " nodes but " + system_tag(spec.node) +
                   " has no inter-node interconnect calibrated");
  }
  if ((tp > 1 || pp > 1 || (dp > 1 && analysis.devices_per_node > 1)) &&
      spec.node.peer_link.bandwidth <= 0.0) {
    return invalid("layout needs the intra-node peer link but " +
                   system_tag(spec.node) + " has none calibrated");
  }

  sim::LlmLayoutCost cost;
  cost.model = spec.model;
  cost.tensor_parallel = tp;
  cost.pipeline_parallel = pp;
  cost.data_parallel = dp;
  cost.micro_batch = spec.micro_batch;
  cost.global_batch = spec.global_batch;
  cost.devices_per_node = analysis.devices_per_node;
  cost.num_nodes = analysis.num_nodes;
  try {
    analysis.prediction = sim::predict_llm_iteration(spec.node, cost);
  } catch (const Error& e) {
    return invalid(e.what());
  }
  analysis.valid = true;

  // Schedule-dependent in-flight activation pressure. total_bytes() holds
  // one micro-batch of activations; the pipeline schedule multiplies that.
  models::GptMemoryModel memory;
  memory.config = spec.model;
  memory.tensor_parallel = tp;
  memory.pipeline_parallel = pp;
  memory.data_parallel = dp;
  memory.micro_batch = static_cast<int>(spec.micro_batch);
  const std::int64_t n_micro = analysis.prediction.n_micro;
  if (pp <= 1) {
    analysis.inflight_factor = 1.0;
  } else if (spec.schedule == LayoutSchedule::kGpipe) {
    analysis.inflight_factor = static_cast<double>(n_micro);
  } else {
    analysis.inflight_factor =
        static_cast<double>(std::min<std::int64_t>(pp, n_micro));
  }
  analysis.inflight_bytes =
      memory.model_state_bytes() +
      memory.activation_bytes() * analysis.inflight_factor +
      memory.workspace_bytes();
  analysis.activation_pressure =
      !analysis.prediction.oom &&
      analysis.inflight_bytes > spec.node.device.mem_capacity_bytes;

  analysis.comm_bound =
      analysis.prediction.exposed_comm_s >
      static_cast<double>(n_micro) * analysis.prediction.t_compute_s;

  if (pp > 1) {
    analysis.bubble_lower_bound =
        par::pipeline_bubble_lower_bound(pp, static_cast<int>(n_micro));
  }

  // Power feasibility: the compute phase's sustained draw vs the calibrated
  // caps (0 = uncapped). Node draw assumes every device of the node runs the
  // same schedule — true for the homogeneous layouts modeled here.
  analysis.sustained_device_power_w =
      sim::busy_power_watts(spec.node.device, analysis.prediction.power_util);
  analysis.device_power_infeasible =
      spec.node.device.power_cap_watts > 0.0 &&
      analysis.sustained_device_power_w > spec.node.device.power_cap_watts;
  analysis.predicted_node_power_w =
      analysis.sustained_device_power_w * analysis.devices_per_node;
  analysis.node_power_infeasible =
      spec.node.node_power_cap_watts > 0.0 &&
      analysis.predicted_node_power_w > spec.node.node_power_cap_watts;
  return analysis;
}

std::vector<LayoutFinding> layout_findings(const LayoutSpec& spec,
                                           const LayoutAnalysis& analysis) {
  std::vector<LayoutFinding> findings;
  if (!analysis.valid) return findings;
  const std::string label = layout_label(spec);
  const sim::LlmPrediction& p = analysis.prediction;
  const double capacity = spec.node.device.mem_capacity_bytes;

  if (p.oom) {
    findings.push_back(
        {"layout/oom",
         label + " needs " + fmt_gib(p.memory_per_device_bytes) +
             " per device but " + spec.node.device.name + " has " +
             fmt_gib(capacity) + " (margin " + fmt_gib(p.memory_margin_bytes) +
             ")"});
  } else if (analysis.activation_pressure) {
    findings.push_back(
        {"layout/activation-pressure",
         label + " fits at rest but the " +
             (spec.schedule == LayoutSchedule::kGpipe ? "GPipe" : "1F1B") +
             " schedule keeps " + fmt_fixed(analysis.inflight_factor, 0) +
             " micro-batches of activations in flight: " +
             fmt_gib(analysis.inflight_bytes) + " > " + fmt_gib(capacity)});
  }
  findings.push_back(
      {"layout/predicted-oom-margin",
       label + " footprint " + fmt_gib(p.memory_per_device_bytes) + " of " +
           fmt_gib(capacity) + " HBM (margin " +
           fmt_gib(p.memory_margin_bytes) + ")"});

  if (analysis.comm_bound) {
    findings.push_back(
        {"layout/comm-bound",
         label + " exposes " + fmt_ms(p.exposed_comm_s) +
             " of communication vs " +
             fmt_ms(static_cast<double>(p.n_micro) * p.t_compute_s) +
             " of compute per iteration — the layout is communication-bound"});
  }
  if (analysis.bubble_lower_bound > 0.0) {
    findings.push_back(
        {"layout/schedule-bubble",
         label + " pipeline bubble lower bound " +
             fmt_pct(analysis.bubble_lower_bound) + " (" +
             std::to_string(spec.pipeline_parallel) + " stages, " +
             std::to_string(p.n_micro) + " micro-batches)"});
  }
  if (analysis.device_power_infeasible) {
    findings.push_back(
        {"layout/power-infeasible",
         label + " predicted sustained device power " +
             fmt_fixed(analysis.sustained_device_power_w, 0) +
             " W exceeds the " +
             fmt_fixed(spec.node.device.power_cap_watts, 0) +
             " W device cap — the layout throttles"});
  }
  if (analysis.node_power_infeasible) {
    findings.push_back(
        {"layout/power-infeasible",
         label + " predicted node power " +
             fmt_fixed(analysis.predicted_node_power_w, 0) + " W (" +
             std::to_string(analysis.devices_per_node) + " devices) exceeds "
             "the " +
             fmt_fixed(spec.node.node_power_cap_watts, 0) +
             " W node cap — the layout throttles"});
  }
  if (!p.oom) {
    findings.push_back(
        {"layout/predicted-energy",
         label + " predicted " + fmt_fixed(p.energy_per_device_j, 0) +
             " J per iteration per device (avg " + fmt_fixed(p.avg_power_w, 0) +
             " W)"});
  }
  return findings;
}

std::string predicted_time_message(const LayoutSpec& spec,
                                   const LayoutAnalysis& analysis) {
  const sim::LlmPrediction& p = analysis.prediction;
  return layout_label(spec) + " predicted iteration " +
         fmt_ms(p.iteration_time_s) + " (" +
         fmt_fixed(p.tokens_per_s_per_device, 0) + " tok/s/device, MFU " +
         fmt_pct(p.mfu) + ")";
}

namespace {

std::string ctx_get(const jube::Context& context, const std::string& key,
                    const std::string& fallback) {
  const auto it = context.find(key);
  if (it == context.end()) return fallback;
  return jube::substitute_context(it->second, context);
}

std::int64_t ctx_int(const jube::Context& context, const std::string& key,
                     const std::string& fallback) {
  return str::parse_int(ctx_get(context, key, fallback));
}

std::string llm_doom_reason(const jube::Context& context) {
  const std::string tag = ctx_get(context, "system", "A100");
  const auto& registry = topo::SystemRegistry::instance();
  if (!registry.has_tag(tag)) return "";
  const topo::NodeSpec& node = registry.by_tag(tag);
  if (node.device.arch != topo::ArchClass::kGpuSimd) return "";

  const std::int64_t batch = ctx_int(context, "global_batch", "256");
  const std::int64_t micro = ctx_int(context, "micro_batch", "4");
  const std::int64_t devices = ctx_int(context, "devices", "-1");
  const std::int64_t tp = ctx_int(context, "tp", "1");
  const std::int64_t pp = ctx_int(context, "pp", "1");
  auto model = gpt_config_from_tag(ctx_get(context, "model", "800M"));
  if (!model) return "";
  const std::string dtype = ctx_get(context, "dtype", "bf16");
  if (dtype == "fp32") {
    model->mixed_precision = false;
  } else if (dtype != "bf16") {
    return "invalid layout: llm_train dtype '" + dtype +
           "' is not bf16 or fp32 (int8 is inference-only)";
  }

  const int num_devices =
      devices > 0 ? static_cast<int>(devices) : node.devices_per_node;
  if (tp <= 0 || pp <= 0 || num_devices % (tp * pp) != 0) {
    return "invalid layout: " + std::to_string(num_devices) +
           " device(s) not divisible by tp x pp = " + std::to_string(tp) +
           " x " + std::to_string(pp);
  }
  const int dp = num_devices / static_cast<int>(tp * pp);

  LayoutSpec spec;
  spec.node = node;
  spec.model = *model;
  spec.tensor_parallel = static_cast<int>(tp);
  spec.pipeline_parallel = static_cast<int>(pp);
  spec.data_parallel = dp;
  spec.micro_batch = micro;
  spec.global_batch = batch;
  const LayoutAnalysis analysis = analyze_layout(spec);
  if (!analysis.valid) return "invalid layout: " + analysis.invalid_reason;
  if (analysis.prediction.oom) {
    return "static OOM: needs " +
           fmt_gib(analysis.prediction.memory_per_device_bytes) +
           " per device but " + node.device.name + " has " +
           fmt_gib(node.device.mem_capacity_bytes);
  }
  return "";
}

std::string resnet_doom_reason(const jube::Context& context) {
  const std::string tag = ctx_get(context, "system", "A100");
  const auto& registry = topo::SystemRegistry::instance();
  if (!registry.has_tag(tag)) return "";
  const topo::NodeSpec& node = registry.by_tag(tag);
  if (node.device.arch != topo::ArchClass::kGpuSimd) return "";

  const std::int64_t batch = ctx_int(context, "global_batch", "256");
  const std::int64_t devices = ctx_int(context, "devices", "1");
  const std::string variant_tag = ctx_get(context, "variant", "resnet50");
  models::ResNetVariant variant;
  if (variant_tag == "resnet18") variant = models::ResNetVariant::kResNet18;
  else if (variant_tag == "resnet34") variant = models::ResNetVariant::kResNet34;
  else if (variant_tag == "resnet50") variant = models::ResNetVariant::kResNet50;
  else return "";

  if (devices <= 0 || batch <= 0 || batch % devices != 0) {
    return "invalid layout: global batch " + std::to_string(batch) +
           " not divisible by " + std::to_string(devices) + " device(s)";
  }
  // Mirrors core/resnet.cpp run_resnet_gpu's memory accounting.
  const models::ResNetModel model = models::ResNetModel::build(variant);
  const double need = model.activation_bytes_per_image() *
                          static_cast<double>(batch / devices) +
                      model.model_state_bytes() + 3.0e9;
  if (need > node.device.mem_capacity_bytes) {
    return "static OOM: needs " + fmt_gib(need) + " per device but " +
           node.device.name + " has " +
           fmt_gib(node.device.mem_capacity_bytes);
  }
  return "";
}

}  // namespace

std::string workpackage_doom_reason(const jube::Context& context,
                                    const std::vector<std::string>& actions) {
  for (const std::string& action : actions) {
    try {
      std::string reason;
      if (action == "llm_train") reason = llm_doom_reason(context);
      if (action == "resnet_train") reason = resnet_doom_reason(context);
      if (!reason.empty()) return action + ": " + reason;
    } catch (const Error&) {
      // Unparseable parameters: let the run report its own error.
    }
  }
  return "";
}

}  // namespace caraml::check
