// Diagnostics engine for `caraml lint` (src/check).
//
// A Diagnostic is one finding: rule id, severity, file:line:col source
// location, message. DiagnosticList collects findings across files, sorts
// them into a stable order, and renders them for humans
// (`file:line:col: error: message [rule-id]`, the gcc/clang convention) or
// as a JSON document (SARIF-style flat result list) for CI artifacts.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "yaml/yaml.hpp"

namespace caraml::check {

enum class Severity { kError, kWarning, kInfo };

std::string severity_name(Severity severity);

struct SourceLocation {
  std::string file;
  std::size_t line = 0;    // 1-based; 0 = whole file
  std::size_t column = 0;  // 1-based; 0 = whole line

  static SourceLocation at(const std::string& file, const yaml::Mark& mark) {
    return SourceLocation{file, mark.line, mark.column};
  }
};

struct Diagnostic {
  std::string rule_id;  // e.g. "jube/param-cycle"
  Severity severity = Severity::kError;
  SourceLocation location;
  std::string message;
};

class DiagnosticList {
 public:
  /// Append a finding with an explicit severity. Exact duplicates (same
  /// rule, location and message — e.g. the same defect rediscovered in two
  /// tag sets) are dropped.
  void add(Diagnostic diagnostic);

  /// Append a finding whose severity comes from the rule catalogue
  /// (rules.hpp). Throws caraml::NotFound for an unregistered rule id, so a
  /// rule cannot ship without catalogue documentation.
  void report(const std::string& rule_id, SourceLocation location,
              std::string message);

  const std::vector<Diagnostic>& items() const { return diagnostics_; }
  std::size_t count(Severity severity) const;
  bool has_errors() const { return count(Severity::kError) > 0; }
  bool empty() const { return diagnostics_.empty(); }

  /// Stable order: file, then line, then column, then rule id.
  void sort();

  /// One line per finding plus a trailing summary line.
  std::string render_human() const;

  /// {"version":1,"diagnostics":[...],"summary":{...}} as compact JSON.
  std::string render_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace caraml::check
