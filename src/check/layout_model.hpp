// Static TP x PP x DP layout analysis shared by the `caraml lint` layout/*
// rules (rules_layout.cpp for `layouts:` files, rules_jube.cpp for llm_train
// workpackages) and the `caraml run --skip-doomed` gate.
//
// Everything here is closed-form: the analysis wraps the same analytic cost
// hooks (sim/layout_analytic.hpp) the simulator's hot path runs on, so a
// 10k+-device layout analyzes in microseconds and cannot drift from what a
// simulation would measure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "jube/jube.hpp"
#include "models/gpt_cost.hpp"
#include "sim/layout_analytic.hpp"
#include "topo/specs.hpp"

namespace caraml::check {

/// Model preset by tag ("117M"/"800M"/"13B"/"175B"); nullopt otherwise.
std::optional<models::GptConfig> gpt_config_from_tag(const std::string& tag);

/// Pipeline schedule the layout trains under; decides how many micro-batches
/// of activations are simultaneously in flight per stage.
enum class LayoutSchedule { kGpipe, kOneFOneB };

/// One candidate layout to analyze.
struct LayoutSpec {
  std::string name;      ///< for messages; may be empty (jube cells)
  topo::NodeSpec node;   ///< resolved system (registry or calibration file)
  models::GptConfig model;
  int tensor_parallel = 1;
  int pipeline_parallel = 1;
  int data_parallel = 1;
  std::int64_t micro_batch = 1;
  std::int64_t global_batch = 1;
  LayoutSchedule schedule = LayoutSchedule::kOneFOneB;

  int num_devices() const {
    return tensor_parallel * pipeline_parallel * data_parallel;
  }
};

struct LayoutAnalysis {
  /// False when the layout cannot run at all (divisibility, node packing, a
  /// link the layout needs is missing, non-GPU system); `invalid_reason`
  /// explains. All other fields are meaningful only when valid.
  bool valid = false;
  std::string invalid_reason;

  int devices_per_node = 0;
  int num_nodes = 0;

  /// Per-iteration memory/time/power/comm prediction (the analytic mirror of
  /// core run_llm_gpu's task graph).
  sim::LlmPrediction prediction;

  /// Schedule-dependent activation pressure: GPipe keeps all m micro-batches
  /// of stage activations alive until the backward phase; 1F1B at most
  /// min(p, m). `inflight_bytes` is the footprint with that multiplier.
  double inflight_factor = 1.0;
  double inflight_bytes = 0.0;
  bool activation_pressure = false;  ///< fits at rest, not in flight

  /// Exposed communication exceeds compute time per iteration.
  bool comm_bound = false;

  /// Analytic bubble-fraction lower bound (p - 1)/(m + p - 1); 0 when pp==1.
  double bubble_lower_bound = 0.0;

  /// Sustained power during the compute phase vs calibrated caps
  /// (DeviceSpec::power_cap_watts / NodeSpec::node_power_cap_watts; a cap of
  /// 0 means uncapped).
  double sustained_device_power_w = 0.0;
  double predicted_node_power_w = 0.0;
  bool device_power_infeasible = false;
  bool node_power_infeasible = false;
};

LayoutAnalysis analyze_layout(const LayoutSpec& spec);

/// One lint finding derived from an analysis: rule id + message body.
struct LayoutFinding {
  std::string rule;
  std::string message;
};

/// "system TAG model 13B tp=4 pp=8 dp=16" (prefixed with `name: ` if set).
std::string layout_label(const LayoutSpec& spec);

/// The non-ranked findings for one *valid* analysis: layout/oom,
/// layout/activation-pressure, layout/comm-bound, layout/power-infeasible,
/// layout/schedule-bubble, layout/predicted-energy and
/// layout/predicted-oom-margin. (layout/invalid and the ranked
/// layout/predicted-time are the caller's responsibility.)
std::vector<LayoutFinding> layout_findings(const LayoutSpec& spec,
                                           const LayoutAnalysis& analysis);

/// Message body for the ranked layout/predicted-time info; the caller
/// appends ", rank k/N".
std::string predicted_time_message(const LayoutSpec& spec,
                                   const LayoutAnalysis& analysis);

/// Static gate for `caraml run --skip-doomed`: "" means run the workpackage;
/// otherwise a one-line reason why it is statically doomed (invalid layout
/// or guaranteed OOM, from the same models the lint pass uses). `actions`
/// are the workpackage's active step actions; parameter defaults mirror the
/// lint pass (system A100, model 800M, ...). Never throws — unparseable
/// contexts simply run.
std::string workpackage_doom_reason(const jube::Context& context,
                                    const std::vector<std::string>& actions);

}  // namespace caraml::check
