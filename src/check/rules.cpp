#include "check/rules.hpp"

#include <set>

#include "util/error.hpp"

namespace caraml::check {

namespace {

// Fail fast at first catalogue access if two rules ever register the same id
// — a duplicate would make severity lookup and --list-rules ambiguous.
const std::vector<RuleInfo>& verify_unique_ids(
    const std::vector<RuleInfo>& catalogue) {
  std::set<std::string> seen;
  for (const auto& rule : catalogue) {
    CARAML_CHECK_MSG(seen.insert(rule.id).second,
                     "rule id '" + rule.id + "' registered twice");
  }
  return catalogue;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> catalogue = {
      // --- yaml: structural problems in any suite input ---------------------
      {"yaml/parse-error", Severity::kError,
       "file is not parseable YAML (subset)"},
      {"yaml/duplicate-key", Severity::kError,
       "mapping repeats a key; the last value silently wins"},
      {"yaml/type-mismatch", Severity::kError,
       "node kind differs from what the schema expects (map/sequence/scalar)"},
      {"yaml/unknown-schema", Severity::kWarning,
       "file matches no suite input schema (JUBE / fault plan / calibration "
       "table)"},

      // --- jube: benchmark scripts ------------------------------------------
      {"jube/missing-name", Severity::kError,
       "parameterset, parameter, step or pattern without a name"},
      {"jube/empty-values", Severity::kError,
       "parameter declares no values; expansion aborts at run time"},
      {"jube/unresolved-param", Severity::kError,
       "${ref} names a parameter no parameterset declares"},
      {"jube/param-cycle", Severity::kError,
       "parameter values reference each other in a cycle"},
      {"jube/duplicate-step", Severity::kError,
       "two steps share a name; dependency resolution is ambiguous"},
      {"jube/dangling-depend", Severity::kError,
       "step depends on a step that does not exist"},
      {"jube/step-cycle", Severity::kError,
       "step depend graph contains a cycle"},
      {"jube/bad-regex", Severity::kError,
       "analyse pattern regex does not compile"},
      {"jube/regex-no-capture", Severity::kError,
       "analyse pattern has no capture group; JUBE reduces group 1"},
      {"jube/duplicate-pattern", Severity::kWarning,
       "two analyse patterns share a name; the later one wins"},
      {"jube/no-steps", Severity::kWarning,
       "benchmark declares no steps; a run produces empty workpackages"},
      {"jube/unknown-action", Severity::kWarning,
       "step 'do' names no registered action"},
      {"jube/tag-selects-nothing", Severity::kWarning,
       "a tag set activates zero steps — the sweep would do no work"},

      // --- fault: injection schedules ---------------------------------------
      {"fault/unknown-kind", Severity::kError,
       "event kind is not device_failure/thermal_throttle/link_degrade/"
       "sensor_dropout"},
      {"fault/bad-severity", Severity::kError,
       "severity outside (0, 1]"},
      {"fault/negative-time", Severity::kError,
       "negative time_s or duration_s"},
      {"fault/bad-rate", Severity::kError, "negative fault rate"},
      {"fault/bad-device", Severity::kError,
       "device index below -1 or beyond any system's device count"},
      {"fault/zero-window", Severity::kWarning,
       "window fault with duration 0 can never be active"},
      {"fault/overlap", Severity::kWarning,
       "two same-kind windows overlap on the same device; effects compound"},
      {"fault/beyond-horizon", Severity::kWarning,
       "event scheduled past the declared horizon never fires"},
      {"fault/retry-unbounded", Severity::kError,
       "retry policy with max_attempts <= 0 can never terminate"},
      {"fault/retry-invalid", Severity::kError,
       "retry policy field out of range (delay < 0, multiplier <= 0, "
       "jitter outside [0, 1])"},
      {"fault/unknown-field", Severity::kWarning,
       "key is not part of the fault-plan schema and is ignored by the "
       "loader"},
      {"fault/checkpoint-corrupt", Severity::kError,
       "checkpoint file rejected on load (invalid JSON, schema mismatch, or "
       "content-fingerprint mismatch)"},

      // --- chaos: fault-space campaigns + recovery invariants ---------------
      {"chaos/bad-workload", Severity::kError,
       "campaign workload is not llm/resnet/inference"},
      {"chaos/bad-mode", Severity::kError,
       "campaign mode is not grid/random (random also needs scenarios >= 1)"},
      {"chaos/bad-tolerance", Severity::kError,
       "convergence tolerance is non-finite or <= 0"},
      {"chaos/bad-deadline", Severity::kError,
       "scenario deadline is non-finite (<= 0 disables the watchdog)"},
      {"chaos/empty-axis", Severity::kError,
       "a fault-space axis (kinds/times/devices/severities) has no values"},
      {"chaos/bad-axis", Severity::kError,
       "fault-space axis value out of range (time outside [0, 1), severity "
       "outside (0, 1], unknown kind, window_frac outside (0, 1])"},
      {"chaos/small-campaign", Severity::kWarning,
       "campaign expands to fewer than 12 scenarios; coverage of the fault "
       "space is thin"},
      {"chaos/unknown-field", Severity::kWarning,
       "key is not part of the campaign schema and is ignored by the loader"},
      {"chaos/invariant-convergence", Severity::kError,
       "survivable fault did not converge to the fault-free oracle within "
       "tolerance (or a non-survivable fault did not fail honestly)"},
      {"chaos/invariant-checkpoint", Severity::kError,
       "checkpoint did not restore byte-exactly at the expected step with "
       "consistent sample/sampler accounting"},
      {"chaos/invariant-manifest", Severity::kError,
       "manifest line missing, unparseable, or carrying wrong status / fault "
       "provenance"},
      {"chaos/invariant-deadline", Severity::kError,
       "scenario exceeded its wall-clock deadline; the watchdog detached it"},

      // --- sim: hardware calibration tables + static workload checks --------
      {"sim/missing-tag", Severity::kError,
       "calibration entry without a 'tag'"},
      {"sim/nonpositive-spec", Severity::kError,
       "spec quantity that must be positive (peak FLOP/s, memory, TDP, ...) "
       "is zero or negative"},
      {"sim/anchor-mismatch", Severity::kWarning,
       "override deviates >50% from the paper's Table I anchor for this "
       "system"},
      {"sim/duplicate-tag", Severity::kWarning,
       "two calibration entries share a tag; the later one wins downstream"},
      {"sim/unknown-system", Severity::kWarning,
       "tag not in the built-in registry; entry starts from an empty spec"},
      {"sim/unknown-field", Severity::kWarning,
       "key is not part of the calibration schema and is ignored by the "
       "loader"},
      {"sim/invalid-layout", Severity::kError,
       "workpackage layout cannot run (batch not divisible by "
       "micro-batch x data-parallel, or devices not divisible by tp x pp)"},
      {"sim/static-oom", Severity::kWarning,
       "predicted per-device memory footprint exceeds HBM capacity; the "
       "workpackage is guaranteed to OOM"},

      // --- analysis: automated trace bottleneck detection -------------------
      {"analysis/trace-error", Severity::kError,
       "trace file is missing, malformed, or violates the Chrome-trace event "
       "schema"},
      {"analysis/no-data", Severity::kWarning,
       "trace has no device compute spans; detectors have nothing to rank"},
      {"analysis/critical-path", Severity::kInfo,
       "device track the makespan runs through, with per-phase busy-time "
       "decomposition"},
      {"analysis/pipeline-bubble", Severity::kInfo,
       "fill/drain bubbles plus dependency stalls on the critical device "
       "track"},
      {"analysis/comm-pattern", Severity::kInfo,
       "collective pattern classification (ring / hierarchical / broadcast "
       "chain / all-to-all) and link-busy share"},
      {"analysis/load-imbalance", Severity::kWarning,
       "inter-device busy-time skew; the makespan a balanced layout would "
       "recover"},
      {"analysis/queue-wait", Severity::kWarning,
       "resource whose tasks spend comparable time queued as running"},
      {"analysis/energy-attribution", Severity::kInfo,
       "power counters integrated per phase: joules for compute, collective, "
       "bubble, idle"},
      {"analysis/recovery-time", Severity::kInfo,
       "recovery and retry spans (restarts, backoff) and their share of the "
       "makespan"},

      // --- layout: static TP x PP x DP layout analysis ----------------------
      {"layout/invalid", Severity::kError,
       "layout cannot run: tp*pp*dp does not match the device count, batch "
       "does not divide, the model/system is unknown, or a needed link is "
       "missing"},
      {"layout/oom", Severity::kWarning,
       "sharded per-device footprint (params + grads + optimizer + "
       "activations under the pipeline schedule) exceeds HBM capacity"},
      {"layout/activation-pressure", Severity::kWarning,
       "model state fits but in-flight activations of the pipeline schedule "
       "(GPipe holds all m micros, 1F1B min(p, m)) push the footprint over "
       "capacity"},
      {"layout/comm-bound", Severity::kWarning,
       "exposed communication time (TP all-reduces + PP exchanges + DP "
       "gradient all-reduce) exceeds the layout's compute time"},
      {"layout/schedule-deadlock", Severity::kError,
       "custom pipeline schedule misses slots or orders them against their "
       "data dependencies; it deadlocks under blocking sends"},
      {"layout/schedule-overlap", Severity::kError,
       "custom pipeline schedule runs two slots on one stage at the same "
       "time"},
      {"layout/schedule-starved", Severity::kWarning,
       "schedule's realized bubble fraction is far above the analytic "
       "(p-1)/(m+p-1) lower bound; stages sit idle"},
      {"layout/schedule-bubble", Severity::kInfo,
       "analytic pipeline-bubble lower bound for the layout's stage/micro "
       "grid"},
      {"layout/power-infeasible", Severity::kWarning,
       "predicted sustained device (or node) power exceeds the calibrated "
       "power cap; the layout throttles below its predicted throughput"},
      {"layout/predicted-time", Severity::kInfo,
       "predicted training iteration time and throughput, ranked across the "
       "file's feasible layouts"},
      {"layout/predicted-energy", Severity::kInfo,
       "predicted energy per iteration per device from the calibrated power "
       "model"},
      {"layout/predicted-oom-margin", Severity::kInfo,
       "per-device memory footprint and margin to HBM capacity"},
  };
  verify_unique_ids(catalogue);
  return catalogue;
}

const RuleInfo* find_rule(const std::string& id) {
  for (const auto& rule : rule_catalogue()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

}  // namespace caraml::check
