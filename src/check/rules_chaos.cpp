// Chaos-campaign lint rules: validate a `campaign:` document structurally,
// mirroring what chaos::CampaignConfig::from_yaml / enumerate_grid would
// reject at load time — without linking the chaos library (check sits below
// it in the dependency order).
#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "check/lint.hpp"

namespace caraml::check {

namespace {

const std::set<std::string>& campaign_known_fields() {
  static const std::set<std::string> fields = {
      "name",          "seed",
      "workload",      "system",
      "mode",          "scenarios",
      "steps",         "checkpoint_every",
      "checkpoint_cost_s", "restart_cost_s",
      "retries",       "deadline_s",
      "tolerance",     "model",
      "global_batch",  "micro_batch",
      "devices",       "prompt_tokens",
      "generate_tokens", "space"};
  return fields;
}

const std::set<std::string>& chaos_known_kinds() {
  static const std::set<std::string> kinds = {
      "device_failure", "thermal_throttle", "link_degrade", "sensor_dropout"};
  return kinds;
}

std::string fmt(double value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

bool is_window_kind(const std::string& kind) {
  return kind == "thermal_throttle" || kind == "link_degrade" ||
         kind == "sensor_dropout";
}

}  // namespace

void lint_campaign(const yaml::Node& root, const std::string& file,
                   DiagnosticList& diags) {
  const yaml::NodePtr body_ptr = root.find("campaign");
  const yaml::Node& body = body_ptr ? *body_ptr : root;
  if (!body.is_map()) {
    diags.report("yaml/type-mismatch", SourceLocation::at(file, body.mark()),
                 "'campaign' must be a mapping");
    return;
  }
  auto loc = [&](const yaml::Mark& mark) {
    return SourceLocation::at(file, mark);
  };

  for (const auto& [key, value] : body.entries()) {
    if (!campaign_known_fields().count(key)) {
      diags.report("chaos/unknown-field", loc(value->mark()),
                   "campaign key '" + key + "' is not part of the schema and "
                   "is ignored by the loader");
    }
  }

  const std::string workload = body.get_or("workload", "llm");
  if (workload != "llm" && workload != "resnet" && workload != "inference") {
    diags.report("chaos/bad-workload", loc(body.mark()),
                 "workload '" + workload +
                     "' is not llm, resnet or inference");
  }
  const std::string mode = body.get_or("mode", "grid");
  std::int64_t scenarios = 0;
  if (mode != "grid" && mode != "random") {
    diags.report("chaos/bad-mode", loc(body.mark()),
                 "mode '" + mode + "' is not grid or random");
  } else if (mode == "random") {
    scenarios = body.get_int_or("scenarios", 0);
    if (scenarios < 1) {
      diags.report("chaos/bad-mode", loc(body.mark()),
                   "random mode needs scenarios >= 1, got " +
                       std::to_string(scenarios));
    }
  }
  const double tolerance = body.get_double_or("tolerance", 0.25);
  if (!std::isfinite(tolerance) || tolerance <= 0.0) {
    diags.report("chaos/bad-tolerance", loc(body.mark()),
                 "tolerance " + fmt(tolerance) + " must be finite and > 0");
  }
  const double deadline_s = body.get_double_or("deadline_s", 120.0);
  if (!std::isfinite(deadline_s)) {
    diags.report("chaos/bad-deadline", loc(body.mark()),
                 "deadline_s must be finite (<= 0 disables the watchdog)");
  }

  // --- fault-space axes ----------------------------------------------------
  // Defaults (FaultSpace::defaults) expand to 4 kinds x 2 times = 8 arms; an
  // explicit `space:` block overrides each axis independently.
  std::size_t kind_arms = 4;
  std::size_t window_kind_arms = 3;
  std::size_t time_arms = 2;
  std::size_t device_arms = 1;
  std::size_t severity_arms = 1;
  const yaml::NodePtr space = body.find("space");
  if (space) {
    if (!space->is_map()) {
      diags.report("yaml/type-mismatch", loc(space->mark()),
                   "'space' must be a mapping");
      return;
    }
    const auto check_axis = [&](const char* axis,
                                const yaml::NodePtr& node) -> bool {
      if (!node) return true;
      if (!node->is_sequence()) {
        diags.report("yaml/type-mismatch", loc(node->mark()),
                     std::string("space ") + axis + " must be a list");
        return false;
      }
      if (node->items().empty()) {
        diags.report("chaos/empty-axis", loc(node->mark()),
                     std::string("space ") + axis +
                         " lists no values; the grid is empty");
        return false;
      }
      return true;
    };
    if (const yaml::NodePtr kinds = space->find("kinds");
        check_axis("kinds", kinds) && kinds) {
      kind_arms = 0;
      window_kind_arms = 0;
      for (const auto& item : kinds->items()) {
        const std::string kind = item->as_string();
        if (!chaos_known_kinds().count(kind)) {
          diags.report("chaos/bad-axis", loc(item->mark()),
                       "unknown fault kind '" + kind + "'");
          continue;
        }
        ++kind_arms;
        if (is_window_kind(kind)) ++window_kind_arms;
      }
    }
    if (const yaml::NodePtr times = space->find("times");
        check_axis("times", times) && times) {
      time_arms = times->items().size();
      for (const auto& item : times->items()) {
        const double t = item->as_double();
        if (!std::isfinite(t) || t < 0.0 || t >= 1.0) {
          diags.report("chaos/bad-axis", loc(item->mark()),
                       "injection time " + fmt(t) +
                           " outside [0, 1) of the horizon");
        }
      }
    }
    if (const yaml::NodePtr devices = space->find("devices");
        check_axis("devices", devices) && devices) {
      device_arms = devices->items().size();
      for (const auto& item : devices->items()) {
        if (item->as_int() < -1) {
          diags.report("chaos/bad-axis", loc(item->mark()),
                       "device index " + std::to_string(item->as_int()) +
                           " below -1 (-1 = all devices)");
        }
      }
    }
    if (const yaml::NodePtr severities = space->find("severities");
        check_axis("severities", severities) && severities) {
      severity_arms = severities->items().size();
      for (const auto& item : severities->items()) {
        const double s = item->as_double();
        if (!std::isfinite(s) || s <= 0.0 || s > 1.0) {
          diags.report("chaos/bad-axis", loc(item->mark()),
                       "severity " + fmt(s) + " outside (0, 1]");
        }
      }
    }
    const double window_frac = space->get_double_or("window_frac", 0.2);
    if (!std::isfinite(window_frac) || window_frac <= 0.0 ||
        window_frac > 1.0) {
      diags.report("chaos/bad-axis", loc(space->mark()),
                   "window_frac " + fmt(window_frac) + " outside (0, 1]");
    }
  }

  // Grid size mirrors FaultSpace::grid_size: the severity axis collapses for
  // point faults.
  const std::size_t point_kind_arms = kind_arms - window_kind_arms;
  const std::size_t grid =
      time_arms * device_arms *
      (point_kind_arms + window_kind_arms * severity_arms);
  const std::size_t expanded =
      mode == "random" ? static_cast<std::size_t>(std::max<std::int64_t>(
                             scenarios, 0))
                       : grid;
  if (expanded > 0 && expanded < 12) {
    diags.report("chaos/small-campaign", loc(body.mark()),
                 "campaign expands to " + std::to_string(expanded) +
                     " scenario(s); fewer than 12 gives thin fault-space "
                     "coverage");
  }
}

}  // namespace caraml::check
