#include "yaml/yaml.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml::yaml {

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

NodePtr Node::make_scalar(std::string value) {
  auto node = NodePtr(new Node(NodeKind::kScalar));
  node->scalar_ = std::move(value);
  return node;
}

NodePtr Node::make_map() { return NodePtr(new Node(NodeKind::kMap)); }

NodePtr Node::make_sequence() { return NodePtr(new Node(NodeKind::kSequence)); }

const std::string& Node::as_string() const {
  if (!is_scalar()) throw InvalidArgument("YAML node is not a scalar");
  return scalar_;
}

std::int64_t Node::as_int() const { return str::parse_int(as_string()); }

double Node::as_double() const { return str::parse_double(as_string()); }

bool Node::as_bool() const { return str::parse_bool(as_string()); }

bool Node::has(const std::string& key) const {
  if (!is_map()) return false;
  for (const auto& [k, v] : map_) {
    if (k == key) return true;
  }
  return false;
}

const NodePtr& Node::at(const std::string& key) const {
  if (!is_map()) throw InvalidArgument("YAML node is not a map");
  for (const auto& [k, v] : map_) {
    if (k == key) return v;
  }
  throw NotFound("YAML map has no key '" + key + "'");
}

NodePtr Node::find(const std::string& key) const {
  if (!is_map()) return nullptr;
  for (const auto& [k, v] : map_) {
    if (k == key) return v;
  }
  return nullptr;
}

std::string Node::get_or(const std::string& key,
                         const std::string& fallback) const {
  const NodePtr node = find(key);
  return node && node->is_scalar() ? node->as_string() : fallback;
}

std::int64_t Node::get_int_or(const std::string& key,
                              std::int64_t fallback) const {
  const NodePtr node = find(key);
  return node && node->is_scalar() ? node->as_int() : fallback;
}

double Node::get_double_or(const std::string& key, double fallback) const {
  const NodePtr node = find(key);
  return node && node->is_scalar() ? node->as_double() : fallback;
}

bool Node::get_bool_or(const std::string& key, bool fallback) const {
  const NodePtr node = find(key);
  return node && node->is_scalar() ? node->as_bool() : fallback;
}

void Node::set(const std::string& key, NodePtr value) {
  if (!is_map()) throw InvalidArgument("YAML node is not a map");
  for (auto& [k, v] : map_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  map_.emplace_back(key, std::move(value));
}

const std::vector<std::pair<std::string, NodePtr>>& Node::entries() const {
  if (!is_map()) throw InvalidArgument("YAML node is not a map");
  return map_;
}

std::size_t Node::size() const {
  switch (kind_) {
    case NodeKind::kScalar: return 1;
    case NodeKind::kMap: return map_.size();
    case NodeKind::kSequence: return seq_.size();
  }
  return 0;
}

const NodePtr& Node::item(std::size_t index) const {
  if (!is_sequence()) throw InvalidArgument("YAML node is not a sequence");
  CARAML_CHECK(index < seq_.size());
  return seq_[index];
}

void Node::push_back(NodePtr value) {
  if (!is_sequence()) throw InvalidArgument("YAML node is not a sequence");
  seq_.push_back(std::move(value));
}

const std::vector<NodePtr>& Node::items() const {
  if (!is_sequence()) throw InvalidArgument("YAML node is not a sequence");
  return seq_;
}

namespace {
bool scalar_needs_quotes(const std::string& s) {
  if (s.empty()) return true;
  return s.find_first_of(":#[]{},\"'\n") != std::string::npos ||
         s.front() == ' ' || s.back() == ' ' || s.front() == '-';
}
}  // namespace

std::string Node::dump(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream os;
  switch (kind_) {
    case NodeKind::kScalar:
      if (scalar_needs_quotes(scalar_)) {
        os << '"' << str::replace_all(scalar_, "\"", "\\\"") << '"';
      } else {
        os << scalar_;
      }
      break;
    case NodeKind::kMap:
      for (const auto& [key, value] : map_) {
        os << pad << key << ":";
        if (value->is_scalar()) {
          os << " " << value->dump(0) << "\n";
        } else {
          os << "\n" << value->dump(indent + 1);
        }
      }
      break;
    case NodeKind::kSequence:
      for (const auto& value : seq_) {
        if (value->is_scalar()) {
          os << pad << "- " << value->dump(0) << "\n";
        } else if (value->is_sequence()) {
          // A nested sequence cannot share the dash line; emit a bare dash
          // and indent the inner sequence below it.
          os << pad << "-\n" << value->dump(indent + 1);
        } else {
          // Maps render with the first entry on the dash line.
          std::string body = value->dump(indent + 1);
          const std::string child_pad(static_cast<std::size_t>(indent + 1) * 2,
                                      ' ');
          if (str::starts_with(body, child_pad)) {
            body = pad + "- " + body.substr(child_pad.size());
          }
          os << body;
        }
      }
      break;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Line {
  int indent = 0;
  std::string content;  // without indentation, comment stripped
  std::size_t number = 0;
};

[[noreturn]] void fail(const Line& line, const std::string& message) {
  throw ParseError("YAML line " + std::to_string(line.number) + ": " + message +
                   " — '" + line.content + "'");
}

// Strip a trailing comment, honoring quotes. A '#' starts a comment when at
// start of content or preceded by whitespace.
std::string strip_comment(const std::string& s) {
  bool in_single = false;
  bool in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (c == '#' && !in_single && !in_double &&
             (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      return s.substr(0, i);
    }
  }
  return s;
}

std::vector<Line> tokenize(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream is(text);
  std::string raw;
  std::size_t number = 0;
  while (std::getline(is, raw)) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    if (raw.find('\t') != std::string::npos) {
      // Tabs in indentation are a classic YAML pitfall; reject clearly.
      const std::size_t first_non_ws = raw.find_first_not_of(" \t");
      if (first_non_ws != std::string::npos &&
          raw.substr(0, first_non_ws).find('\t') != std::string::npos) {
        throw ParseError("YAML line " + std::to_string(number) +
                         ": tab character in indentation");
      }
    }
    std::string content = strip_comment(raw);
    const std::size_t first = content.find_first_not_of(' ');
    if (first == std::string::npos) continue;  // blank / comment-only
    Line line;
    line.indent = static_cast<int>(first);
    line.content = str::rtrim(content.substr(first));
    line.number = number;
    if (line.content == "---") continue;  // document start marker
    lines.push_back(std::move(line));
  }
  return lines;
}

// Parse one scalar token, removing quotes.
NodePtr parse_scalar_token(const std::string& raw, const Line& line) {
  const std::string s = str::trim(raw);
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    std::string out;
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
      if (s[i] == '\\' && i + 2 < s.size()) {
        const char next = s[i + 1];
        if (next == '"' || next == '\\') {
          out.push_back(next);
          ++i;
          continue;
        }
        if (next == 'n') {
          out.push_back('\n');
          ++i;
          continue;
        }
        if (next == 't') {
          out.push_back('\t');
          ++i;
          continue;
        }
      }
      out.push_back(s[i]);
    }
    return Node::make_scalar(out);
  }
  if (s.size() >= 2 && s.front() == '\'' && s.back() == '\'') {
    return Node::make_scalar(
        str::replace_all(s.substr(1, s.size() - 2), "''", "'"));
  }
  if (!s.empty() && (s.front() == '"' || s.front() == '\'')) {
    fail(line, "unterminated quoted scalar");
  }
  return Node::make_scalar(s);
}

// Split a flow sequence "[a, b, c]" body on top-level commas.
std::vector<std::string> split_flow_items(const std::string& body,
                                          const Line& line) {
  std::vector<std::string> items;
  std::string current;
  int depth = 0;
  bool in_single = false, in_double = false;
  for (char c : body) {
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    if (!in_single && !in_double) {
      if (c == '[' || c == '{') ++depth;
      if (c == ']' || c == '}') --depth;
      if (depth < 0) fail(line, "unbalanced brackets in flow sequence");
      if (c == ',' && depth == 0) {
        items.push_back(current);
        current.clear();
        continue;
      }
    }
    current.push_back(c);
  }
  if (depth != 0 || in_single || in_double) {
    fail(line, "unterminated flow sequence");
  }
  if (!str::trim(current).empty() || !items.empty()) items.push_back(current);
  return items;
}

std::size_t find_map_colon(const std::string& s);

NodePtr parse_flow_or_scalar(const std::string& raw, const Line& line) {
  const std::string s = str::trim(raw);
  if (!s.empty() && s.front() == '[') {
    if (s.back() != ']') fail(line, "unterminated flow sequence");
    auto seq = Node::make_sequence();
    for (const auto& item : split_flow_items(s.substr(1, s.size() - 2), line)) {
      const std::string trimmed = str::trim(item);
      if (trimmed.empty()) fail(line, "empty item in flow sequence");
      if (trimmed.front() == '[' || trimmed.front() == '{') {
        seq->push_back(parse_flow_or_scalar(trimmed, line));
      } else {
        seq->push_back(parse_scalar_token(trimmed, line));
      }
    }
    return seq;
  }
  if (!s.empty() && s.front() == '{') {
    if (s.back() != '}') fail(line, "unterminated flow mapping");
    auto map = Node::make_map();
    for (const auto& item : split_flow_items(s.substr(1, s.size() - 2), line)) {
      const std::string trimmed = str::trim(item);
      if (trimmed.empty()) fail(line, "empty entry in flow mapping");
      const std::size_t colon = find_map_colon(trimmed);
      if (colon == std::string::npos) {
        fail(line, "flow mapping entry without ':'");
      }
      const std::string key = str::trim(trimmed.substr(0, colon));
      if (key.empty()) fail(line, "empty key in flow mapping");
      map->set(key, parse_flow_or_scalar(trimmed.substr(colon + 1), line));
    }
    return map;
  }
  return parse_scalar_token(s, line);
}

// Find the position of the key/value separating ':' outside quotes/brackets.
// Returns npos when the line is not a mapping entry.
std::size_t find_map_colon(const std::string& s) {
  bool in_single = false, in_double = false;
  int depth = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (!in_single && !in_double) {
      if (c == '[' || c == '{') ++depth;
      if (c == ']' || c == '}') --depth;
      if (c == ':' && depth == 0 &&
          (i + 1 == s.size() || s[i + 1] == ' ')) {
        return i;
      }
    }
  }
  return std::string::npos;
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  NodePtr parse_document() {
    if (lines_.empty()) return Node::make_map();
    NodePtr root = parse_block(lines_.front().indent);
    if (pos_ != lines_.size()) fail(lines_[pos_], "trailing content");
    return root;
  }

 private:
  bool done() const { return pos_ >= lines_.size(); }
  const Line& current() const { return lines_[pos_]; }

  NodePtr parse_block(int indent) {
    const Line& first = current();
    if (first.indent != indent) fail(first, "unexpected indentation");
    if (str::starts_with(first.content, "- ") || first.content == "-") {
      return parse_sequence(indent);
    }
    if (find_map_colon(first.content) != std::string::npos) {
      return parse_map(indent);
    }
    // Bare scalar document.
    NodePtr scalar = parse_flow_or_scalar(first.content, first);
    ++pos_;
    return scalar;
  }

  NodePtr parse_map(int indent) {
    auto map = Node::make_map();
    while (!done() && current().indent == indent) {
      const Line line = current();
      const std::size_t colon = find_map_colon(line.content);
      if (colon == std::string::npos) fail(line, "expected 'key: value'");
      std::string key = str::trim(line.content.substr(0, colon));
      if (key.size() >= 2 &&
          ((key.front() == '"' && key.back() == '"') ||
           (key.front() == '\'' && key.back() == '\''))) {
        key = parse_scalar_token(key, line)->as_string();
      }
      if (key.empty()) fail(line, "empty map key");
      if (map->has(key)) fail(line, "duplicate map key '" + key + "'");
      const std::string value_text = str::trim(line.content.substr(colon + 1));
      ++pos_;
      if (!value_text.empty()) {
        map->set(key, parse_flow_or_scalar(value_text, line));
      } else if (!done() && current().indent > indent) {
        map->set(key, parse_block(current().indent));
      } else if (!done() && current().indent == indent &&
                 (str::starts_with(current().content, "- ") ||
                  current().content == "-")) {
        // "key:" followed by sequence items at the same indentation — valid
        // and common YAML.
        map->set(key, parse_sequence(indent));
      } else {
        map->set(key, Node::make_scalar(""));
      }
    }
    if (!done() && current().indent > indent) {
      fail(current(), "unexpected deeper indentation");
    }
    return map;
  }

  NodePtr parse_sequence(int indent) {
    auto seq = Node::make_sequence();
    while (!done() && current().indent == indent &&
           (str::starts_with(current().content, "- ") ||
            current().content == "-")) {
      const Line line = current();
      const std::string after_dash =
          line.content == "-" ? "" : str::trim(line.content.substr(2));
      if (after_dash.empty()) {
        ++pos_;
        if (!done() && current().indent > indent) {
          seq->push_back(parse_block(current().indent));
        } else {
          seq->push_back(Node::make_scalar(""));
        }
        continue;
      }
      const std::size_t colon = find_map_colon(after_dash);
      if (colon != std::string::npos) {
        // "- key: value" — an inline map item; rewrite the current line as a
        // map entry at the dash-content indentation and parse a map block.
        const int item_indent = indent + 2;
        lines_[pos_].indent = item_indent;
        lines_[pos_].content = after_dash;
        seq->push_back(parse_map(item_indent));
        continue;
      }
      seq->push_back(parse_flow_or_scalar(after_dash, line));
      ++pos_;
    }
    if (!done() && current().indent > indent) {
      fail(current(), "unexpected deeper indentation after sequence");
    }
    return seq;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

NodePtr parse(const std::string& text) {
  return Parser(tokenize(text)).parse_document();
}

NodePtr parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open YAML file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace caraml::yaml
