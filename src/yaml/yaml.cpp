#include "yaml/yaml.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml::yaml {

// ---------------------------------------------------------------------------
// Node
// ---------------------------------------------------------------------------

NodePtr Node::make_scalar(std::string value) {
  auto node = NodePtr(new Node(NodeKind::kScalar));
  node->scalar_ = std::move(value);
  return node;
}

NodePtr Node::make_map() { return NodePtr(new Node(NodeKind::kMap)); }

NodePtr Node::make_sequence() { return NodePtr(new Node(NodeKind::kSequence)); }

const std::string& Node::as_string() const {
  if (!is_scalar()) throw InvalidArgument("YAML node is not a scalar");
  return scalar_;
}

std::int64_t Node::as_int() const { return str::parse_int(as_string()); }

double Node::as_double() const { return str::parse_double(as_string()); }

bool Node::as_bool() const { return str::parse_bool(as_string()); }

bool Node::has(const std::string& key) const {
  if (!is_map()) return false;
  for (const auto& [k, v] : map_) {
    if (k == key) return true;
  }
  return false;
}

const NodePtr& Node::at(const std::string& key) const {
  if (!is_map()) throw InvalidArgument("YAML node is not a map");
  for (const auto& [k, v] : map_) {
    if (k == key) return v;
  }
  throw NotFound("YAML map has no key '" + key + "'");
}

NodePtr Node::find(const std::string& key) const {
  if (!is_map()) return nullptr;
  for (const auto& [k, v] : map_) {
    if (k == key) return v;
  }
  return nullptr;
}

std::string Node::get_or(const std::string& key,
                         const std::string& fallback) const {
  const NodePtr node = find(key);
  return node && node->is_scalar() ? node->as_string() : fallback;
}

std::int64_t Node::get_int_or(const std::string& key,
                              std::int64_t fallback) const {
  const NodePtr node = find(key);
  return node && node->is_scalar() ? node->as_int() : fallback;
}

double Node::get_double_or(const std::string& key, double fallback) const {
  const NodePtr node = find(key);
  return node && node->is_scalar() ? node->as_double() : fallback;
}

bool Node::get_bool_or(const std::string& key, bool fallback) const {
  const NodePtr node = find(key);
  return node && node->is_scalar() ? node->as_bool() : fallback;
}

void Node::set(const std::string& key, NodePtr value) {
  if (!is_map()) throw InvalidArgument("YAML node is not a map");
  for (auto& [k, v] : map_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  map_.emplace_back(key, std::move(value));
}

const std::vector<std::pair<std::string, NodePtr>>& Node::entries() const {
  if (!is_map()) throw InvalidArgument("YAML node is not a map");
  return map_;
}

std::size_t Node::size() const {
  switch (kind_) {
    case NodeKind::kScalar: return 1;
    case NodeKind::kMap: return map_.size();
    case NodeKind::kSequence: return seq_.size();
  }
  return 0;
}

const NodePtr& Node::item(std::size_t index) const {
  if (!is_sequence()) throw InvalidArgument("YAML node is not a sequence");
  CARAML_CHECK(index < seq_.size());
  return seq_[index];
}

void Node::push_back(NodePtr value) {
  if (!is_sequence()) throw InvalidArgument("YAML node is not a sequence");
  seq_.push_back(std::move(value));
}

const std::vector<NodePtr>& Node::items() const {
  if (!is_sequence()) throw InvalidArgument("YAML node is not a sequence");
  return seq_;
}

namespace {
bool scalar_needs_quotes(const std::string& s) {
  if (s.empty()) return true;
  return s.find_first_of(":#[]{},\"'\n") != std::string::npos ||
         s.front() == ' ' || s.back() == ' ' || s.front() == '-';
}
}  // namespace

std::string Node::dump(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream os;
  switch (kind_) {
    case NodeKind::kScalar:
      if (scalar_needs_quotes(scalar_)) {
        os << '"' << str::replace_all(scalar_, "\"", "\\\"") << '"';
      } else {
        os << scalar_;
      }
      break;
    case NodeKind::kMap:
      for (const auto& [key, value] : map_) {
        os << pad << key << ":";
        if (value->is_scalar()) {
          os << " " << value->dump(0) << "\n";
        } else {
          os << "\n" << value->dump(indent + 1);
        }
      }
      break;
    case NodeKind::kSequence:
      for (const auto& value : seq_) {
        if (value->is_scalar()) {
          os << pad << "- " << value->dump(0) << "\n";
        } else if (value->is_sequence()) {
          // A nested sequence cannot share the dash line; emit a bare dash
          // and indent the inner sequence below it.
          os << pad << "-\n" << value->dump(indent + 1);
        } else {
          // Maps render with the first entry on the dash line.
          std::string body = value->dump(indent + 1);
          const std::string child_pad(static_cast<std::size_t>(indent + 1) * 2,
                                      ' ');
          if (str::starts_with(body, child_pad)) {
            body = pad + "- " + body.substr(child_pad.size());
          }
          os << body;
        }
      }
      break;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Line {
  int indent = 0;
  std::string content;  // without indentation, comment stripped
  std::size_t number = 0;

  /// Column (1-based) of content[index] in the original source line.
  std::size_t column(std::size_t index) const {
    return static_cast<std::size_t>(indent) + index + 1;
  }
};

[[noreturn]] void fail(const Line& line, const std::string& message) {
  throw LocatedParseError(
      "YAML line " + std::to_string(line.number) + ": " + message + " — '" +
          line.content + "'",
      Mark{line.number, line.column(0)});
}

// Strip a trailing comment, honoring quotes. A '#' starts a comment when at
// start of content or preceded by whitespace.
std::string strip_comment(const std::string& s) {
  bool in_single = false;
  bool in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (c == '#' && !in_single && !in_double &&
             (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      return s.substr(0, i);
    }
  }
  return s;
}

std::vector<Line> tokenize(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream is(text);
  std::string raw;
  std::size_t number = 0;
  while (std::getline(is, raw)) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    if (raw.find('\t') != std::string::npos) {
      // Tabs in indentation are a classic YAML pitfall; reject clearly.
      const std::size_t first_non_ws = raw.find_first_not_of(" \t");
      if (first_non_ws != std::string::npos &&
          raw.substr(0, first_non_ws).find('\t') != std::string::npos) {
        throw LocatedParseError(
            "YAML line " + std::to_string(number) +
                ": tab character in indentation",
            Mark{number, 1});
      }
    }
    std::string content = strip_comment(raw);
    const std::size_t first = content.find_first_not_of(' ');
    if (first == std::string::npos) continue;  // blank / comment-only
    Line line;
    line.indent = static_cast<int>(first);
    line.content = str::rtrim(content.substr(first));
    line.number = number;
    if (line.content == "---") continue;  // document start marker
    lines.push_back(std::move(line));
  }
  return lines;
}

// Find the position of the key/value separating ':' outside quotes/brackets.
// Returns npos when the line is not a mapping entry.
std::size_t find_map_colon(const std::string& s) {
  bool in_single = false, in_double = false;
  int depth = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (!in_single && !in_double) {
      if (c == '[' || c == '{') ++depth;
      if (c == ']' || c == '}') --depth;
      if (c == ':' && depth == 0 &&
          (i + 1 == s.size() || s[i + 1] == ' ')) {
        return i;
      }
    }
  }
  return std::string::npos;
}

/// Leading-space count, for translating trimmed substrings back to columns.
std::size_t leading_spaces(const std::string& s) {
  std::size_t n = 0;
  while (n < s.size() && s[n] == ' ') ++n;
  return n;
}

class Parser {
 public:
  Parser(std::vector<Line> lines, const ParseOptions& options)
      : lines_(std::move(lines)), options_(options) {}

  Document parse_document() {
    Document doc;
    if (lines_.empty()) {
      doc.root = Node::make_map();
    } else {
      doc.root = parse_block(lines_.front().indent);
      if (pos_ != lines_.size()) fail(lines_[pos_], "trailing content");
    }
    doc.duplicate_keys = std::move(duplicates_);
    return doc;
  }

 private:
  bool done() const { return pos_ >= lines_.size(); }
  const Line& current() const { return lines_[pos_]; }

  /// Record (lenient) or reject (strict) a repeated mapping key.
  void handle_duplicate(const Line& line, const std::string& key, Mark first,
                        Mark repeat) {
    if (!options_.allow_duplicate_keys) {
      fail(line, "duplicate map key '" + key + "'");
    }
    duplicates_.push_back(DuplicateKey{key, first, repeat});
  }

  // Parse one scalar token, removing quotes. `col` is the column of raw[0].
  NodePtr parse_scalar_token(const std::string& raw, const Line& line,
                             std::size_t col) {
    col += leading_spaces(raw);
    const std::string s = str::trim(raw);
    NodePtr node;
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
      std::string out;
      for (std::size_t i = 1; i + 1 < s.size(); ++i) {
        if (s[i] == '\\' && i + 2 < s.size()) {
          const char next = s[i + 1];
          if (next == '"' || next == '\\') {
            out.push_back(next);
            ++i;
            continue;
          }
          if (next == 'n') {
            out.push_back('\n');
            ++i;
            continue;
          }
          if (next == 't') {
            out.push_back('\t');
            ++i;
            continue;
          }
        }
        out.push_back(s[i]);
      }
      node = Node::make_scalar(out);
    } else if (s.size() >= 2 && s.front() == '\'' && s.back() == '\'') {
      node = Node::make_scalar(
          str::replace_all(s.substr(1, s.size() - 2), "''", "'"));
    } else if (!s.empty() && (s.front() == '"' || s.front() == '\'')) {
      fail(line, "unterminated quoted scalar");
    } else {
      node = Node::make_scalar(s);
    }
    node->set_mark(Mark{line.number, col});
    return node;
  }

  /// Split a flow sequence "[a, b, c]" body on top-level commas, returning
  /// each item together with its offset within `body` (for column tracking).
  std::vector<std::pair<std::string, std::size_t>> split_flow_items(
      const std::string& body, const Line& line) {
    std::vector<std::pair<std::string, std::size_t>> items;
    std::string current;
    std::size_t current_start = 0;
    int depth = 0;
    bool in_single = false, in_double = false;
    for (std::size_t i = 0; i < body.size(); ++i) {
      const char c = body[i];
      if (c == '\'' && !in_double) in_single = !in_single;
      else if (c == '"' && !in_single) in_double = !in_double;
      if (!in_single && !in_double) {
        if (c == '[' || c == '{') ++depth;
        if (c == ']' || c == '}') --depth;
        if (depth < 0) fail(line, "unbalanced brackets in flow sequence");
        if (c == ',' && depth == 0) {
          items.emplace_back(current, current_start);
          current.clear();
          current_start = i + 1;
          continue;
        }
      }
      current.push_back(c);
    }
    if (depth != 0 || in_single || in_double) {
      fail(line, "unterminated flow sequence");
    }
    if (!str::trim(current).empty() || !items.empty()) {
      items.emplace_back(current, current_start);
    }
    return items;
  }

  /// Parse a flow collection or scalar. `col` is the column of raw[0].
  NodePtr parse_flow_or_scalar(const std::string& raw, const Line& line,
                               std::size_t col) {
    col += leading_spaces(raw);
    const std::string s = str::trim(raw);
    if (!s.empty() && s.front() == '[') {
      if (s.back() != ']') fail(line, "unterminated flow sequence");
      auto seq = Node::make_sequence();
      seq->set_mark(Mark{line.number, col});
      const std::size_t body_col = col + 1;
      for (const auto& [item, offset] :
           split_flow_items(s.substr(1, s.size() - 2), line)) {
        const std::string trimmed = str::trim(item);
        if (trimmed.empty()) fail(line, "empty item in flow sequence");
        seq->push_back(parse_flow_or_scalar(item, line, body_col + offset));
      }
      return seq;
    }
    if (!s.empty() && s.front() == '{') {
      if (s.back() != '}') fail(line, "unterminated flow mapping");
      auto map = Node::make_map();
      map->set_mark(Mark{line.number, col});
      const std::size_t body_col = col + 1;
      std::map<std::string, Mark> seen;
      for (const auto& [item, offset] :
           split_flow_items(s.substr(1, s.size() - 2), line)) {
        const std::string trimmed = str::trim(item);
        if (trimmed.empty()) fail(line, "empty entry in flow mapping");
        const std::size_t colon = find_map_colon(trimmed);
        if (colon == std::string::npos) {
          fail(line, "flow mapping entry without ':'");
        }
        const std::string key = str::trim(trimmed.substr(0, colon));
        if (key.empty()) fail(line, "empty key in flow mapping");
        const std::size_t key_col =
            body_col + offset + leading_spaces(item);
        const Mark key_mark{line.number, key_col};
        const auto [it, inserted] = seen.emplace(key, key_mark);
        if (!inserted) handle_duplicate(line, key, it->second, key_mark);
        map->set(key,
                 parse_flow_or_scalar(trimmed.substr(colon + 1), line,
                                      key_col + colon + 1));
      }
      return map;
    }
    return parse_scalar_token(s, line, col);
  }

  NodePtr parse_block(int indent) {
    const Line& first = current();
    if (first.indent != indent) fail(first, "unexpected indentation");
    if (str::starts_with(first.content, "- ") || first.content == "-") {
      return parse_sequence(indent);
    }
    if (find_map_colon(first.content) != std::string::npos) {
      return parse_map(indent);
    }
    // Bare scalar document.
    NodePtr scalar = parse_flow_or_scalar(first.content, first, first.column(0));
    ++pos_;
    return scalar;
  }

  NodePtr parse_map(int indent) {
    auto map = Node::make_map();
    map->set_mark(Mark{current().number, current().column(0)});
    std::map<std::string, Mark> seen;
    while (!done() && current().indent == indent) {
      const Line line = current();
      const std::size_t colon = find_map_colon(line.content);
      if (colon == std::string::npos) fail(line, "expected 'key: value'");
      std::string key = str::trim(line.content.substr(0, colon));
      if (key.size() >= 2 &&
          ((key.front() == '"' && key.back() == '"') ||
           (key.front() == '\'' && key.back() == '\''))) {
        key = parse_scalar_token(key, line, line.column(0))->as_string();
      }
      if (key.empty()) fail(line, "empty map key");
      const Mark key_mark{line.number, line.column(0)};
      const auto [it, inserted] = seen.emplace(key, key_mark);
      if (!inserted) handle_duplicate(line, key, it->second, key_mark);
      const std::string value_raw = line.content.substr(colon + 1);
      const std::string value_text = str::trim(value_raw);
      ++pos_;
      if (!value_text.empty()) {
        map->set(key,
                 parse_flow_or_scalar(value_raw, line, line.column(colon + 1)));
      } else if (!done() && current().indent > indent) {
        map->set(key, parse_block(current().indent));
      } else if (!done() && current().indent == indent &&
                 (str::starts_with(current().content, "- ") ||
                  current().content == "-")) {
        // "key:" followed by sequence items at the same indentation — valid
        // and common YAML.
        map->set(key, parse_sequence(indent));
      } else {
        auto empty = Node::make_scalar("");
        empty->set_mark(key_mark);
        map->set(key, std::move(empty));
      }
    }
    if (!done() && current().indent > indent) {
      fail(current(), "unexpected deeper indentation");
    }
    return map;
  }

  NodePtr parse_sequence(int indent) {
    auto seq = Node::make_sequence();
    seq->set_mark(Mark{current().number, current().column(0)});
    while (!done() && current().indent == indent &&
           (str::starts_with(current().content, "- ") ||
            current().content == "-")) {
      const Line line = current();
      const std::string after_dash =
          line.content == "-" ? "" : line.content.substr(2);
      if (str::trim(after_dash).empty()) {
        ++pos_;
        if (!done() && current().indent > indent) {
          seq->push_back(parse_block(current().indent));
        } else {
          auto empty = Node::make_scalar("");
          empty->set_mark(Mark{line.number, line.column(0)});
          seq->push_back(std::move(empty));
        }
        continue;
      }
      const std::size_t colon = find_map_colon(str::trim(after_dash));
      if (colon != std::string::npos) {
        // "- key: value" — an inline map item; rewrite the current line as a
        // map entry at the dash-content indentation and parse a map block.
        const int item_indent =
            indent + 2 + static_cast<int>(leading_spaces(after_dash));
        lines_[pos_].indent = item_indent;
        lines_[pos_].content = str::trim(after_dash);
        seq->push_back(parse_map(item_indent));
        continue;
      }
      seq->push_back(parse_flow_or_scalar(after_dash, line, line.column(2)));
      ++pos_;
    }
    if (!done() && current().indent > indent) {
      fail(current(), "unexpected deeper indentation after sequence");
    }
    return seq;
  }

  std::vector<Line> lines_;
  ParseOptions options_;
  std::vector<DuplicateKey> duplicates_;
  std::size_t pos_ = 0;
};

}  // namespace

Document parse_document(const std::string& text, const ParseOptions& options) {
  return Parser(tokenize(text), options).parse_document();
}

Document parse_document_file(const std::string& path,
                             const ParseOptions& options) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open YAML file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_document(buffer.str(), options);
}

NodePtr parse(const std::string& text) { return parse_document(text).root; }

NodePtr parse_file(const std::string& path) {
  return parse_document_file(path).root;
}

}  // namespace caraml::yaml
