// Minimal YAML-subset parser.
//
// JUBE scripts in CARAML are YAML files (the paper ships
// llm_benchmark_nvidia_amd.yaml / llm_benchmark_ipu.yaml). This parser covers
// the subset those configs need:
//   * block mappings and sequences nested by indentation,
//   * inline flow sequences `[a, b, c]` and flow mappings `{k: v, ...}`,
//   * scalars (plain / single- / double-quoted), `#` comments,
//   * lazily typed scalar access (string/int/double/bool).
// Anchors, aliases, multi-document streams and block scalars are out of scope.
//
// Every node carries the source location (1-based line/column) it was parsed
// from, so downstream consumers — most importantly the `caraml lint` static
// analyser (src/check) — can report file:line:col diagnostics. Duplicate
// mapping keys are rejected by the strict entry points (parse / parse_file)
// and recorded, with both occurrences' locations, by parse_document when
// ParseOptions::allow_duplicate_keys is set.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace caraml::yaml {

class Node;
using NodePtr = std::shared_ptr<Node>;

/// Source position of a parsed node; 1-based, {0, 0} = unknown (nodes built
/// programmatically via make_*).
struct Mark {
  std::size_t line = 0;
  std::size_t column = 0;
};

/// ParseError that carries the source position of the offending token.
class LocatedParseError : public ParseError {
 public:
  LocatedParseError(const std::string& what, Mark mark)
      : ParseError(what), mark_(mark) {}
  const Mark& mark() const { return mark_; }

 private:
  Mark mark_;
};

enum class NodeKind { kScalar, kMap, kSequence };

class Node {
 public:
  static NodePtr make_scalar(std::string value);
  static NodePtr make_map();
  static NodePtr make_sequence();

  NodeKind kind() const { return kind_; }
  bool is_scalar() const { return kind_ == NodeKind::kScalar; }
  bool is_map() const { return kind_ == NodeKind::kMap; }
  bool is_sequence() const { return kind_ == NodeKind::kSequence; }

  /// Where this node started in the source text ({0,0} when synthesized).
  const Mark& mark() const { return mark_; }
  void set_mark(const Mark& mark) { mark_ = mark; }

  // --- scalar access -------------------------------------------------------
  const std::string& as_string() const;
  std::int64_t as_int() const;
  double as_double() const;
  bool as_bool() const;

  // --- map access ----------------------------------------------------------
  bool has(const std::string& key) const;
  /// Throws caraml::NotFound when the key is absent.
  const NodePtr& at(const std::string& key) const;
  /// Returns nullptr when absent.
  NodePtr find(const std::string& key) const;
  /// Scalar convenience with default.
  std::string get_or(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;
  void set(const std::string& key, NodePtr value);
  const std::vector<std::pair<std::string, NodePtr>>& entries() const;

  // --- sequence access -----------------------------------------------------
  std::size_t size() const;  // map: #entries, sequence: #items, scalar: 1
  const NodePtr& item(std::size_t index) const;
  void push_back(NodePtr value);
  const std::vector<NodePtr>& items() const;

  /// Serialize back to YAML text (round-trip for debugging / tests).
  std::string dump(int indent = 0) const;

 private:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  Mark mark_;
  std::string scalar_;
  std::vector<std::pair<std::string, NodePtr>> map_;
  std::vector<NodePtr> seq_;
};

struct ParseOptions {
  /// When true, a repeated mapping key is recorded on the Document (last
  /// value wins, matching permissive YAML loaders) instead of throwing.
  /// Strict loads (parse / parse_file) reject duplicates — in block *and*
  /// flow mappings — so a typo'd config cannot silently drop a setting.
  bool allow_duplicate_keys = false;
};

/// One recorded duplicate mapping key (allow_duplicate_keys mode).
struct DuplicateKey {
  std::string key;
  Mark first;      // first occurrence
  Mark duplicate;  // the repeated key
};

/// A parsed document: the root node plus parse-time observations that do not
/// live in the tree (currently duplicate mapping keys).
struct Document {
  NodePtr root;
  std::vector<DuplicateKey> duplicate_keys;
};

/// Parse a YAML document; throws caraml::ParseError (LocatedParseError, with
/// a source mark) on malformed input.
Document parse_document(const std::string& text,
                        const ParseOptions& options = {});
Document parse_document_file(const std::string& path,
                             const ParseOptions& options = {});

/// Strict parse: like parse_document with default options (duplicate mapping
/// keys throw); returns just the root.
NodePtr parse(const std::string& text);

/// Parse from a file path (strict).
NodePtr parse_file(const std::string& path);

}  // namespace caraml::yaml
