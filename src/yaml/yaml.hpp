// Minimal YAML-subset parser.
//
// JUBE scripts in CARAML are YAML files (the paper ships
// llm_benchmark_nvidia_amd.yaml / llm_benchmark_ipu.yaml). This parser covers
// the subset those configs need:
//   * block mappings and sequences nested by indentation,
//   * inline flow sequences `[a, b, c]` and flow mappings `{k: v, ...}`,
//   * scalars (plain / single- / double-quoted), `#` comments,
//   * lazily typed scalar access (string/int/double/bool).
// Anchors, aliases, multi-document streams and block scalars are out of scope.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace caraml::yaml {

class Node;
using NodePtr = std::shared_ptr<Node>;

enum class NodeKind { kScalar, kMap, kSequence };

class Node {
 public:
  static NodePtr make_scalar(std::string value);
  static NodePtr make_map();
  static NodePtr make_sequence();

  NodeKind kind() const { return kind_; }
  bool is_scalar() const { return kind_ == NodeKind::kScalar; }
  bool is_map() const { return kind_ == NodeKind::kMap; }
  bool is_sequence() const { return kind_ == NodeKind::kSequence; }

  // --- scalar access -------------------------------------------------------
  const std::string& as_string() const;
  std::int64_t as_int() const;
  double as_double() const;
  bool as_bool() const;

  // --- map access ----------------------------------------------------------
  bool has(const std::string& key) const;
  /// Throws caraml::NotFound when the key is absent.
  const NodePtr& at(const std::string& key) const;
  /// Returns nullptr when absent.
  NodePtr find(const std::string& key) const;
  /// Scalar convenience with default.
  std::string get_or(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;
  void set(const std::string& key, NodePtr value);
  const std::vector<std::pair<std::string, NodePtr>>& entries() const;

  // --- sequence access -----------------------------------------------------
  std::size_t size() const;  // map: #entries, sequence: #items, scalar: 1
  const NodePtr& item(std::size_t index) const;
  void push_back(NodePtr value);
  const std::vector<NodePtr>& items() const;

  /// Serialize back to YAML text (round-trip for debugging / tests).
  std::string dump(int indent = 0) const;

 private:
  explicit Node(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  std::string scalar_;
  std::vector<std::pair<std::string, NodePtr>> map_;
  std::vector<NodePtr> seq_;
};

/// Parse a YAML document; throws caraml::ParseError on malformed input.
NodePtr parse(const std::string& text);

/// Parse from a file path.
NodePtr parse_file(const std::string& path);

}  // namespace caraml::yaml
