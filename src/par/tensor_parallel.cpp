#include "par/tensor_parallel.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace caraml::par {

using nn::Tensor;

ColumnParallelLinear::ColumnParallelLinear(std::int64_t in_features,
                                           std::int64_t out_features,
                                           Communicator& comm, Rng& rng)
    : comm_(comm), local_out_(out_features / comm.size()) {
  CARAML_CHECK_MSG(out_features % comm.size() == 0,
                   "out_features must divide by tensor-parallel size");
  local_ = std::make_shared<nn::Linear>(in_features, local_out_, rng);
}

Tensor ColumnParallelLinear::forward(const Tensor& input) {
  return local_->forward(input);
}

Tensor ColumnParallelLinear::backward(const Tensor& grad_output) {
  Tensor d_input = local_->backward(grad_output);
  // The input was replicated; its gradient is the sum of all shards'
  // contributions (Megatron's g operator).
  comm_.all_reduce_sum(d_input);
  return d_input;
}

std::vector<nn::Parameter*> ColumnParallelLinear::parameters() {
  return local_->parameters();
}

RowParallelLinear::RowParallelLinear(std::int64_t in_features,
                                     std::int64_t out_features,
                                     Communicator& comm, Rng& rng)
    : comm_(comm) {
  CARAML_CHECK_MSG(in_features % comm.size() == 0,
                   "in_features must divide by tensor-parallel size");
  // Bias is applied once (rank 0) so the all-reduced sum adds it exactly once.
  local_ = std::make_shared<nn::Linear>(in_features / comm.size(), out_features,
                                        rng, /*bias=*/comm.rank() == 0);
}

Tensor RowParallelLinear::forward(const Tensor& input) {
  Tensor partial = local_->forward(input);
  // Partial sums across the input shards (Megatron's f operator).
  comm_.all_reduce_sum(partial);
  return partial;
}

Tensor RowParallelLinear::backward(const Tensor& grad_output) {
  // grad_output is replicated across ranks (the upstream loss gradient is
  // computed from the all-reduced output); no communication needed.
  return local_->backward(grad_output);
}

std::vector<nn::Parameter*> RowParallelLinear::parameters() {
  return local_->parameters();
}

TensorParallelMlp::TensorParallelMlp(std::int64_t hidden, Communicator& comm,
                                     Rng& rng)
    : fc_in_(std::make_shared<ColumnParallelLinear>(hidden, 4 * hidden, comm,
                                                    rng)),
      act_(std::make_shared<nn::Gelu>()),
      fc_out_(std::make_shared<RowParallelLinear>(4 * hidden, hidden, comm,
                                                  rng)) {}

Tensor TensorParallelMlp::forward(const Tensor& input) {
  return fc_out_->forward(act_->forward(fc_in_->forward(input)));
}

Tensor TensorParallelMlp::backward(const Tensor& grad_output) {
  return fc_in_->backward(act_->backward(fc_out_->backward(grad_output)));
}

std::vector<nn::Parameter*> TensorParallelMlp::parameters() {
  std::vector<nn::Parameter*> out = fc_in_->parameters();
  for (nn::Parameter* p : fc_out_->parameters()) out.push_back(p);
  return out;
}

// ---------------------------------------------------------------------------
// TensorParallelAttention
// ---------------------------------------------------------------------------

namespace {

// Extract the q/k/v slice of one local head from packed [B*T, 3*localC].
Tensor local_head_slice(const Tensor& qkv, std::int64_t b, std::int64_t h,
                        std::int64_t which, std::int64_t time,
                        std::int64_t local_c, std::int64_t head_dim) {
  Tensor out({time, head_dim});
  const std::int64_t base_col = which * local_c + h * head_dim;
  const std::int64_t row_stride = 3 * local_c;
  for (std::int64_t t = 0; t < time; ++t) {
    const float* src = qkv.data() + (b * time + t) * row_stride + base_col;
    float* dst = out.data() + t * head_dim;
    for (std::int64_t j = 0; j < head_dim; ++j) dst[j] = src[j];
  }
  return out;
}

void local_head_scatter(Tensor& d_qkv, const Tensor& grad, std::int64_t b,
                        std::int64_t h, std::int64_t which, std::int64_t time,
                        std::int64_t local_c, std::int64_t head_dim) {
  const std::int64_t base_col = which * local_c + h * head_dim;
  const std::int64_t row_stride = 3 * local_c;
  for (std::int64_t t = 0; t < time; ++t) {
    float* dst = d_qkv.data() + (b * time + t) * row_stride + base_col;
    const float* src = grad.data() + t * head_dim;
    for (std::int64_t j = 0; j < head_dim; ++j) dst[j] += src[j];
  }
}

}  // namespace

TensorParallelAttention::TensorParallelAttention(std::int64_t embed_dim,
                                                 std::int64_t num_heads,
                                                 Communicator& comm, Rng& rng)
    : comm_(comm),
      embed_dim_(embed_dim),
      num_heads_(num_heads),
      local_heads_(num_heads / comm.size()),
      head_dim_(embed_dim / num_heads) {
  CARAML_CHECK_MSG(embed_dim % num_heads == 0,
                   "embed_dim must divide by num_heads");
  CARAML_CHECK_MSG(num_heads % comm.size() == 0,
                   "heads must divide by tensor-parallel size");
  const std::int64_t local_c = local_heads_ * head_dim_;
  qkv_ = std::make_shared<nn::Linear>(embed_dim, 3 * local_c, rng);
  proj_ = std::make_shared<nn::Linear>(local_c, embed_dim, rng,
                                       /*bias=*/comm.rank() == 0);
}

Tensor TensorParallelAttention::forward(const Tensor& input) {
  CARAML_CHECK_MSG(input.rank() == 3 && input.dim(2) == embed_dim_,
                   "tp attention expects [B, T, C]");
  batch_ = input.dim(0);
  time_ = input.dim(1);
  const std::int64_t local_c = local_heads_ * head_dim_;
  const Tensor flat = input.reshape({batch_ * time_, embed_dim_});
  cached_qkv_ = qkv_->forward(flat);  // [B*T, 3*localC]

  // Pre-sized for indexed assignment — the head loop is parallel and
  // push_back would race.
  cached_att_.assign(static_cast<std::size_t>(batch_ * local_heads_),
                     Tensor());
  Tensor heads_out({batch_ * time_, local_c});
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  caraml::parallel_for_range(
      0, static_cast<std::size_t>(batch_ * local_heads_), 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t b =
              static_cast<std::int64_t>(idx) / local_heads_;
          const std::int64_t h =
              static_cast<std::int64_t>(idx) % local_heads_;
          const Tensor q =
              local_head_slice(cached_qkv_, b, h, 0, time_, local_c, head_dim_);
          const Tensor k =
              local_head_slice(cached_qkv_, b, h, 1, time_, local_c, head_dim_);
          const Tensor v =
              local_head_slice(cached_qkv_, b, h, 2, time_, local_c, head_dim_);
          Tensor scores = tensor::matmul_nt(q, k);
          for (std::int64_t i = 0; i < time_; ++i) {
            for (std::int64_t j = 0; j < time_; ++j) {
              if (j > i) scores[i * time_ + j] = -1e30f;
              else scores[i * time_ + j] *= scale;
            }
          }
          Tensor att = tensor::softmax_rows(scores);
          Tensor y = tensor::matmul(att, v);
          cached_att_[idx] = std::move(att);
          for (std::int64_t t = 0; t < time_; ++t) {
            float* dst =
                heads_out.data() + (b * time_ + t) * local_c + h * head_dim_;
            const float* src = y.data() + t * head_dim_;
            for (std::int64_t j = 0; j < head_dim_; ++j) dst[j] = src[j];
          }
        }
      });

  // Row-parallel output projection: partial sums all-reduced across ranks.
  Tensor out = proj_->forward(heads_out);
  comm_.all_reduce_sum(out);
  return out.reshape({batch_, time_, embed_dim_});
}

Tensor TensorParallelAttention::backward(const Tensor& grad_output) {
  const std::int64_t local_c = local_heads_ * head_dim_;
  const Tensor g_flat = grad_output.reshape({batch_ * time_, embed_dim_});
  const Tensor d_heads = proj_->backward(g_flat);  // [B*T, localC]

  Tensor d_qkv({batch_ * time_, 3 * local_c});
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  // Parallel over (b, h): disjoint (row, column) blocks of d_qkv per pair.
  caraml::parallel_for_range(
      0, static_cast<std::size_t>(batch_ * local_heads_), 1,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
          const std::int64_t b =
              static_cast<std::int64_t>(idx) / local_heads_;
          const std::int64_t h =
              static_cast<std::int64_t>(idx) % local_heads_;
          const Tensor q =
              local_head_slice(cached_qkv_, b, h, 0, time_, local_c, head_dim_);
          const Tensor k =
              local_head_slice(cached_qkv_, b, h, 1, time_, local_c, head_dim_);
          const Tensor v =
              local_head_slice(cached_qkv_, b, h, 2, time_, local_c, head_dim_);
          const Tensor& att = cached_att_[idx];
          Tensor dy({time_, head_dim_});
          for (std::int64_t t = 0; t < time_; ++t) {
            const float* src =
                d_heads.data() + (b * time_ + t) * local_c + h * head_dim_;
            float* dst = dy.data() + t * head_dim_;
            for (std::int64_t j = 0; j < head_dim_; ++j) dst[j] = src[j];
          }
          Tensor datt = tensor::matmul_nt(dy, v);
          Tensor dv = tensor::matmul_tn(att, dy);
          Tensor dscores = tensor::softmax_rows_backward(att, datt);
          for (std::int64_t i = 0; i < time_; ++i) {
            for (std::int64_t j = 0; j < time_; ++j) {
              if (j > i) dscores[i * time_ + j] = 0.0f;
              else dscores[i * time_ + j] *= scale;
            }
          }
          Tensor dq = tensor::matmul(dscores, k);
          Tensor dk = tensor::matmul_tn(dscores, q);
          local_head_scatter(d_qkv, dq, b, h, 0, time_, local_c, head_dim_);
          local_head_scatter(d_qkv, dk, b, h, 1, time_, local_c, head_dim_);
          local_head_scatter(d_qkv, dv, b, h, 2, time_, local_c, head_dim_);
        }
      });

  Tensor d_input = qkv_->backward(d_qkv);
  // Column-parallel input gradient: sum of all shards' contributions.
  comm_.all_reduce_sum(d_input);
  return d_input.reshape({batch_, time_, embed_dim_});
}

std::vector<nn::Parameter*> TensorParallelAttention::parameters() {
  std::vector<nn::Parameter*> out = qkv_->parameters();
  for (nn::Parameter* p : proj_->parameters()) out.push_back(p);
  return out;
}

void TensorParallelAttention::load_from_serial(const nn::Tensor& qkv_weight,
                                               const nn::Tensor& qkv_bias,
                                               const nn::Tensor& proj_weight,
                                               const nn::Tensor& proj_bias) {
  const std::int64_t c = embed_dim_;
  const std::int64_t local_c = local_heads_ * head_dim_;
  CARAML_CHECK_MSG(qkv_weight.rank() == 2 && qkv_weight.dim(0) == 3 * c &&
                       qkv_weight.dim(1) == c,
                   "serial qkv weight must be [3C, C]");
  CARAML_CHECK_MSG(proj_weight.rank() == 2 && proj_weight.dim(0) == c &&
                       proj_weight.dim(1) == c,
                   "serial proj weight must be [C, C]");
  const std::int64_t head_offset = comm_.rank() * local_c;
  auto& local_qkv = *qkv_->parameters()[0];   // [3*localC, C]
  auto& local_qkv_bias = *qkv_->parameters()[1];
  for (std::int64_t which = 0; which < 3; ++which) {
    for (std::int64_t row = 0; row < local_c; ++row) {
      const std::int64_t src_row = which * c + head_offset + row;
      const std::int64_t dst_row = which * local_c + row;
      for (std::int64_t col = 0; col < c; ++col) {
        local_qkv.value[dst_row * c + col] =
            qkv_weight[src_row * c + col];
      }
      local_qkv_bias.value[dst_row] = qkv_bias[src_row];
    }
  }
  auto& local_proj = *proj_->parameters()[0];  // [C, localC]
  for (std::int64_t row = 0; row < c; ++row) {
    for (std::int64_t col = 0; col < local_c; ++col) {
      local_proj.value[row * local_c + col] =
          proj_weight[row * c + head_offset + col];
    }
  }
  if (comm_.rank() == 0) {
    proj_->parameters()[1]->value = proj_bias;
  }
}

// ---------------------------------------------------------------------------
// TensorParallelBlock
// ---------------------------------------------------------------------------

TensorParallelBlock::TensorParallelBlock(std::int64_t embed_dim,
                                         std::int64_t num_heads,
                                         Communicator& comm, Rng& rng)
    : embed_dim_(embed_dim),
      ln1_(std::make_shared<nn::LayerNorm>(embed_dim)),
      attn_(std::make_shared<TensorParallelAttention>(embed_dim, num_heads,
                                                      comm, rng)),
      ln2_(std::make_shared<nn::LayerNorm>(embed_dim)),
      fc_in_(std::make_shared<ColumnParallelLinear>(embed_dim, 4 * embed_dim,
                                                    comm, rng)),
      act_(std::make_shared<nn::Gelu>()),
      fc_out_(std::make_shared<RowParallelLinear>(4 * embed_dim, embed_dim,
                                                  comm, rng)) {}

Tensor TensorParallelBlock::forward(const Tensor& input) {
  CARAML_CHECK_MSG(input.rank() == 3 && input.dim(2) == embed_dim_,
                   "tp block expects [B, T, C]");
  batch_ = input.dim(0);
  time_ = input.dim(1);
  const std::int64_t n = batch_ * time_;

  Tensor ln1_out = ln1_->forward(input.reshape({n, embed_dim_}));
  Tensor attn_out =
      attn_->forward(ln1_out.reshape({batch_, time_, embed_dim_}));
  Tensor x = tensor::add(input, attn_out);

  Tensor ln2_out = ln2_->forward(x.reshape({n, embed_dim_}));
  Tensor mlp = fc_out_->forward(act_->forward(fc_in_->forward(ln2_out)));
  return tensor::add(x, mlp.reshape({batch_, time_, embed_dim_}));
}

Tensor TensorParallelBlock::backward(const Tensor& grad_output) {
  const std::int64_t n = batch_ * time_;
  Tensor g_flat = grad_output.reshape({n, embed_dim_});
  Tensor d_mlp = fc_in_->backward(act_->backward(fc_out_->backward(g_flat)));
  Tensor d_x = tensor::add(g_flat, ln2_->backward(d_mlp));

  Tensor d_attn_in =
      attn_->backward(d_x.reshape({batch_, time_, embed_dim_}));
  Tensor d_input =
      tensor::add(d_x, ln1_->backward(d_attn_in.reshape({n, embed_dim_})));
  return d_input.reshape({batch_, time_, embed_dim_});
}

std::vector<nn::Parameter*> TensorParallelBlock::parameters() {
  std::vector<nn::Parameter*> out;
  for (auto* m :
       {static_cast<nn::Module*>(ln1_.get()), static_cast<nn::Module*>(attn_.get()),
        static_cast<nn::Module*>(ln2_.get()),
        static_cast<nn::Module*>(fc_in_.get()),
        static_cast<nn::Module*>(fc_out_.get())}) {
    for (nn::Parameter* p : m->parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace caraml::par
