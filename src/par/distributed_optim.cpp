#include "par/distributed_optim.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caraml::par {

DistributedAdam::DistributedAdam(std::vector<nn::Parameter*> params,
                                 Communicator& comm, float lr, float beta1,
                                 float beta2, float eps)
    : params_(std::move(params)),
      comm_(comm),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  CARAML_CHECK_MSG(!params_.empty(), "no parameters to optimize");
  offsets_.reserve(params_.size() + 1);
  offsets_.push_back(0);
  for (const nn::Parameter* p : params_) {
    total_ += p->numel();
    offsets_.push_back(total_);
  }
  const int p = comm_.size();
  const std::int64_t shard = (total_ + p - 1) / p;
  shard_begin_ = std::min<std::int64_t>(total_, comm_.rank() * shard);
  shard_end_ = std::min<std::int64_t>(total_, shard_begin_ + shard);
  m_.assign(static_cast<std::size_t>(shard_end_ - shard_begin_), 0.0f);
  v_.assign(static_cast<std::size_t>(shard_end_ - shard_begin_), 0.0f);
}

float DistributedAdam::read_param(std::int64_t flat) const {
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), flat) - 1;
  const std::size_t index = static_cast<std::size_t>(it - offsets_.begin());
  return params_[index]->value[flat - *it];
}

void DistributedAdam::write_param(std::int64_t flat, float value) {
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), flat) - 1;
  const std::size_t index = static_cast<std::size_t>(it - offsets_.begin());
  params_[index]->value[flat - *it] = value;
}

float DistributedAdam::read_grad(std::int64_t flat) const {
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), flat) - 1;
  const std::size_t index = static_cast<std::size_t>(it - offsets_.begin());
  return params_[index]->grad[flat - *it];
}

void DistributedAdam::zero_grad() {
  for (nn::Parameter* p : params_) p->zero_grad();
}

void DistributedAdam::step() {
  // 1. Average gradients across ranks (stands in for reduce-scatter).
  for (nn::Parameter* p : params_) {
    comm_.all_reduce_mean(p->grad);
  }

  // 2. Adam update on the local shard only.
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const std::int64_t p = comm_.size();
  const std::int64_t shard = (total_ + p - 1) / p;
  nn::Tensor local({shard});  // padded shard of updated values
  for (std::int64_t i = shard_begin_; i < shard_end_; ++i) {
    const std::size_t s = static_cast<std::size_t>(i - shard_begin_);
    const float g = read_grad(i);
    m_[s] = beta1_ * m_[s] + (1.0f - beta1_) * g;
    v_[s] = beta2_ * v_[s] + (1.0f - beta2_) * g * g;
    const float m_hat = m_[s] / bc1;
    const float v_hat = v_[s] / bc2;
    local[i - shard_begin_] =
        read_param(i) - lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }

  // 3. All-gather the updated shards and install them everywhere.
  const auto shards = comm_.all_gather(local);
  for (int r = 0; r < comm_.size(); ++r) {
    const std::int64_t begin = std::min<std::int64_t>(total_, r * shard);
    const std::int64_t end = std::min<std::int64_t>(total_, begin + shard);
    for (std::int64_t i = begin; i < end; ++i) {
      write_param(i, shards[static_cast<std::size_t>(r)][i - begin]);
    }
  }
}

std::int64_t DistributedAdam::local_state_bytes() const {
  return static_cast<std::int64_t>((m_.size() + v_.size()) * sizeof(float));
}

}  // namespace caraml::par
