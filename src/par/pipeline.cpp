#include "par/pipeline.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/error.hpp"

namespace caraml::par {

double gpipe_bubble_fraction(int stages, int micro) {
  CARAML_CHECK_MSG(stages >= 1 && micro >= 1, "need positive stages/micro");
  return static_cast<double>(stages - 1) /
         static_cast<double>(micro + stages - 1);
}

double pipeline_bubble_lower_bound(int stages, int micro) {
  return gpipe_bubble_fraction(stages, micro);
}

namespace {

std::string slot_name(int stage, int micro, bool forward) {
  return std::string(forward ? "forward" : "backward") + " of micro " +
         std::to_string(micro) + " on stage " + std::to_string(stage);
}

}  // namespace

std::vector<ScheduleIssue> validate_pipeline_schedule(
    const PipelineSchedule& schedule, double backward_cost,
    double starvation_slack) {
  CARAML_CHECK_MSG(schedule.num_stages >= 1 && schedule.num_micro >= 1,
                   "schedule must declare positive stages/micro");
  CARAML_CHECK_MSG(backward_cost > 0.0, "backward cost must be positive");
  constexpr double kEps = 1e-9;
  const int p = schedule.num_stages;
  const int m = schedule.num_micro;
  std::vector<ScheduleIssue> issues;

  const auto duration = [backward_cost](bool forward) {
    return forward ? 1.0 : backward_cost;
  };

  // Index slots; out-of-grid references and duplicates are structural errors.
  std::map<std::tuple<int, int, bool>, int> count;
  std::map<std::tuple<int, int, bool>, double> finish;
  for (const PipelineSlot& slot : schedule.slots) {
    if (slot.stage < 0 || slot.stage >= p || slot.micro < 0 ||
        slot.micro >= m) {
      issues.push_back({ScheduleIssue::Kind::kMissingSlot, slot.stage,
                        slot.micro, slot.forward,
                        slot_name(slot.stage, slot.micro, slot.forward) +
                            " lies outside the declared " + std::to_string(p) +
                            "-stage x " + std::to_string(m) + "-micro grid"});
      continue;
    }
    const std::tuple<int, int, bool> key{slot.stage, slot.micro, slot.forward};
    ++count[key];
    const double end = static_cast<double>(slot.time) + duration(slot.forward);
    const auto [it, inserted] = finish.emplace(key, end);
    if (!inserted) it->second = std::max(it->second, end);
  }
  bool complete = true;
  for (int s = 0; s < p; ++s) {
    for (int i = 0; i < m; ++i) {
      for (const bool forward : {true, false}) {
        const int n = count.count({s, i, forward}) ? count[{s, i, forward}] : 0;
        if (n == 1) continue;
        complete = false;
        issues.push_back(
            {ScheduleIssue::Kind::kMissingSlot, s, i, forward,
             n == 0 ? slot_name(s, i, forward) +
                          " is never scheduled — the pipeline cannot complete"
                    : slot_name(s, i, forward) + " is scheduled " +
                          std::to_string(n) + " times"});
      }
    }
  }

  // Data dependencies: a slot starting before its producer finishes would
  // block forever under synchronous (blocking) sends — a deadlock.
  for (const PipelineSlot& slot : schedule.slots) {
    if (slot.stage < 0 || slot.stage >= p || slot.micro < 0 ||
        slot.micro >= m) {
      continue;
    }
    int dep_stage = -1;
    bool dep_forward = true;
    if (slot.forward) {
      if (slot.stage == 0) continue;  // stage 0 forwards have no producer
      dep_stage = slot.stage - 1;
    } else if (slot.stage < p - 1) {
      dep_stage = slot.stage + 1;
      dep_forward = false;
    } else {
      dep_stage = slot.stage;  // last stage: backward follows own forward
    }
    const auto it = finish.find({dep_stage, slot.micro, dep_forward});
    if (it == finish.end()) continue;  // already reported as missing
    if (static_cast<double>(slot.time) + kEps < it->second) {
      issues.push_back(
          {ScheduleIssue::Kind::kDependency, slot.stage, slot.micro,
           slot.forward,
           slot_name(slot.stage, slot.micro, slot.forward) + " starts at t=" +
               std::to_string(slot.time) + " before its dependency " +
               slot_name(dep_stage, slot.micro, dep_forward) +
               " finishes — the schedule deadlocks under blocking sends"});
    }
  }

  // Stage exclusivity: one slot at a time per stage.
  std::vector<std::vector<const PipelineSlot*>> per_stage(
      static_cast<std::size_t>(p));
  for (const PipelineSlot& slot : schedule.slots) {
    if (slot.stage >= 0 && slot.stage < p) {
      per_stage[static_cast<std::size_t>(slot.stage)].push_back(&slot);
    }
  }
  double makespan = 0.0;
  for (int s = 0; s < p; ++s) {
    auto& slots = per_stage[static_cast<std::size_t>(s)];
    std::sort(slots.begin(), slots.end(),
              [](const PipelineSlot* a, const PipelineSlot* b) {
                return a->time < b->time;
              });
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const double end =
          static_cast<double>(slots[i]->time) + duration(slots[i]->forward);
      makespan = std::max(makespan, end);
      if (i + 1 < slots.size() &&
          static_cast<double>(slots[i + 1]->time) + kEps < end) {
        issues.push_back(
            {ScheduleIssue::Kind::kOverlap, s, slots[i + 1]->micro,
             slots[i + 1]->forward,
             slot_name(s, slots[i + 1]->micro, slots[i + 1]->forward) +
                 " overlaps " +
                 slot_name(s, slots[i]->micro, slots[i]->forward) +
                 " — a stage executes one slot at a time"});
      }
    }
  }

  // Starvation: realized bubble far above the analytic floor means slots are
  // ordered so stages sit idle (e.g. all-forward-then-all-backward with a
  // 1F1B-sized grid, or gratuitous gaps).
  if (complete && makespan > 0.0) {
    const double useful = static_cast<double>(m) * (1.0 + backward_cost);
    const double bubble = 1.0 - useful / makespan;
    const double bound = pipeline_bubble_lower_bound(p, m);
    if (bubble > bound + starvation_slack) {
      char text[128];
      std::snprintf(text, sizeof(text),
                    "schedule realizes a %.1f%% bubble fraction vs the "
                    "%.1f%% analytic lower bound — stages are starved",
                    bubble * 100.0, bound * 100.0);
      issues.push_back({ScheduleIssue::Kind::kStarved, -1, -1, true, text});
    }
  }
  return issues;
}

namespace {

struct QueueItem {
  int micro;
  bool forward;
};

// Per-stage work queues in execution order.
std::vector<std::vector<QueueItem>> build_queues(PipelineScheduleKind kind,
                                                 int stages, int micro) {
  std::vector<std::vector<QueueItem>> queues(static_cast<std::size_t>(stages));
  if (kind == PipelineScheduleKind::kGPipe) {
    // All forwards (micro order), then all backwards (reverse micro order).
    for (int s = 0; s < stages; ++s) {
      for (int i = 0; i < micro; ++i) queues[static_cast<std::size_t>(s)].push_back({i, true});
      for (int i = micro - 1; i >= 0; --i) queues[static_cast<std::size_t>(s)].push_back({i, false});
    }
    return queues;
  }
  // 1F1B (non-interleaved): stage s warms up with (p - s - 1) forwards, then
  // alternates one-forward-one-backward, then drains remaining backwards.
  for (int s = 0; s < stages; ++s) {
    auto& queue = queues[static_cast<std::size_t>(s)];
    const int warmup = std::min(stages - s - 1, micro);
    int next_fwd = 0;
    int next_bwd = 0;
    for (int i = 0; i < warmup; ++i) queue.push_back({next_fwd++, true});
    while (next_fwd < micro) {
      queue.push_back({next_fwd++, true});
      queue.push_back({next_bwd++, false});
    }
    while (next_bwd < micro) queue.push_back({next_bwd++, false});
  }
  return queues;
}

}  // namespace

PipelineSchedule build_pipeline_schedule(PipelineScheduleKind kind, int stages,
                                         int micro, double backward_cost) {
  CARAML_CHECK_MSG(stages >= 1, "need at least one stage");
  CARAML_CHECK_MSG(micro >= 1, "need at least one micro-batch");
  CARAML_CHECK_MSG(backward_cost > 0.0, "backward cost must be positive");

  auto queues = build_queues(kind, stages, micro);

  // finish[(s, i, fwd)] once scheduled.
  std::map<std::tuple<int, int, bool>, double> finish;
  std::vector<std::size_t> head(static_cast<std::size_t>(stages), 0);
  std::vector<double> stage_free(static_cast<std::size_t>(stages), 0.0);

  PipelineSchedule schedule;
  schedule.num_stages = stages;
  schedule.num_micro = micro;
  schedule.kind = kind;

  bool progress = true;
  std::size_t remaining = static_cast<std::size_t>(stages) *
                          static_cast<std::size_t>(micro) * 2;
  while (remaining > 0) {
    CARAML_CHECK_MSG(progress, "pipeline schedule deadlocked");
    progress = false;
    for (int s = 0; s < stages; ++s) {
      auto& queue = queues[static_cast<std::size_t>(s)];
      while (head[static_cast<std::size_t>(s)] < queue.size()) {
        const QueueItem item = queue[head[static_cast<std::size_t>(s)]];
        // Dependency: forward needs previous stage's forward of the same
        // micro; backward needs the next stage's backward (or own forward on
        // the last stage).
        double dep_time = 0.0;
        bool dep_ready = true;
        if (item.forward) {
          if (s > 0) {
            const auto it = finish.find({s - 1, item.micro, true});
            if (it == finish.end()) dep_ready = false;
            else dep_time = it->second;
          }
        } else {
          if (s < stages - 1) {
            const auto it = finish.find({s + 1, item.micro, false});
            if (it == finish.end()) dep_ready = false;
            else dep_time = it->second;
          } else {
            const auto it = finish.find({s, item.micro, true});
            if (it == finish.end()) dep_ready = false;
            else dep_time = it->second;
          }
        }
        if (!dep_ready) break;  // FIFO: head blocks the stage

        const double duration = item.forward ? 1.0 : backward_cost;
        const double start =
            std::max(stage_free[static_cast<std::size_t>(s)], dep_time);
        const double end = start + duration;
        stage_free[static_cast<std::size_t>(s)] = end;
        finish[{s, item.micro, item.forward}] = end;
        schedule.slots.push_back(PipelineSlot{
            s, item.micro, item.forward, static_cast<int>(start)});
        schedule.makespan = std::max(schedule.makespan, end);
        ++head[static_cast<std::size_t>(s)];
        --remaining;
        progress = true;
      }
    }
  }

  const double useful_per_stage =
      static_cast<double>(micro) * (1.0 + backward_cost);
  schedule.bubble_fraction =
      1.0 - useful_per_stage / schedule.makespan;
  return schedule;
}

PipelineTrainer::PipelineTrainer(
    std::vector<std::shared_ptr<nn::Module>> stages)
    : stages_(std::move(stages)) {
  CARAML_CHECK_MSG(!stages_.empty(), "pipeline needs at least one stage");
}

std::vector<nn::Parameter*> PipelineTrainer::parameters() {
  std::vector<nn::Parameter*> out;
  for (auto& stage : stages_) {
    for (nn::Parameter* p : stage->parameters()) out.push_back(p);
  }
  return out;
}

float PipelineTrainer::train_iteration(
    const std::vector<nn::Tensor>& micro_batches, const LossFn& loss) {
  CARAML_CHECK_MSG(!micro_batches.empty(), "need at least one micro-batch");
  const int p = static_cast<int>(stages_.size());
  const int m = static_cast<int>(micro_batches.size());
  // Tag space: [0, m) activations downstream, [m, 2m) gradients upstream.
  const int grad_tag_base = m;

  std::vector<float> micro_losses(static_cast<std::size_t>(m), 0.0f);
  DeviceGroup group(p);
  group.run([&](Communicator& comm) {
    const int s = comm.rank();
    nn::Module& stage = *stages_[static_cast<std::size_t>(s)];
    std::vector<nn::Tensor> stage_inputs(static_cast<std::size_t>(m));
    std::vector<nn::Tensor> last_stage_grads;
    if (s == p - 1) last_stage_grads.resize(static_cast<std::size_t>(m));

    // --- forward phase: stream all micro-batches through the pipeline.
    // Only the stage *inputs* are retained (activation recomputation).
    for (int i = 0; i < m; ++i) {
      nn::Tensor input =
          s == 0 ? micro_batches[static_cast<std::size_t>(i)]
                 : comm.recv(s - 1, /*tag=*/i);
      nn::Tensor output = stage.forward(input);
      stage_inputs[static_cast<std::size_t>(i)] = std::move(input);
      if (s + 1 < p) {
        comm.send(output, s + 1, /*tag=*/i);
      } else {
        const MicroLoss micro = loss(output, static_cast<std::size_t>(i));
        micro_losses[static_cast<std::size_t>(i)] = micro.loss;
        last_stage_grads[static_cast<std::size_t>(i)] = micro.grad;
      }
    }

    // --- backward phase (GPipe: reverse micro order). The stage replays
    // each micro's forward to restore its caches, then back-propagates.
    // (Stages must be deterministic in forward — no live dropout.)
    for (int i = m - 1; i >= 0; --i) {
      nn::Tensor grad_out =
          s == p - 1 ? std::move(last_stage_grads[static_cast<std::size_t>(i)])
                     : comm.recv(s + 1, grad_tag_base + i);
      stage.forward(stage_inputs[static_cast<std::size_t>(i)]);  // recompute
      nn::Tensor grad_in = stage.backward(grad_out);
      if (s > 0 && grad_in.numel() > 0) {
        comm.send(grad_in, s - 1, grad_tag_base + i);
      }
    }
  });

  float total = 0.0f;
  for (float value : micro_losses) total += value;
  return total / static_cast<float>(m);
}

std::vector<nn::Tensor> run_pipeline_inference(
    const std::vector<std::shared_ptr<nn::Module>>& stages,
    const std::vector<nn::Tensor>& micro_batches) {
  CARAML_CHECK_MSG(!stages.empty(), "pipeline needs at least one stage");
  const int p = static_cast<int>(stages.size());
  const int m = static_cast<int>(micro_batches.size());

  std::vector<nn::Tensor> outputs(static_cast<std::size_t>(m));
  DeviceGroup group(p);
  group.run([&](Communicator& comm) {
    const int s = comm.rank();
    for (int i = 0; i < m; ++i) {
      nn::Tensor activation =
          s == 0 ? micro_batches[static_cast<std::size_t>(i)]
                 : comm.recv(s - 1, /*tag=*/i);
      nn::Tensor out = stages[static_cast<std::size_t>(s)]->forward(activation);
      if (s + 1 < p) {
        comm.send(out, s + 1, /*tag=*/i);
      } else {
        outputs[static_cast<std::size_t>(i)] = std::move(out);
      }
    }
  });
  return outputs;
}

}  // namespace caraml::par
