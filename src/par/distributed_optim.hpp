// ZeRO-style distributed Adam — the "distributed optimizers" feature the
// paper's Megatron-LM configuration enables (§III-A1). Each data-parallel
// rank keeps Adam moments (and performs the update) only for its 1/p shard
// of the flattened parameter space; after the shard update, parameter values
// are re-assembled on every rank with an all-gather. Gradient averaging is a
// reduce-scatter in real Megatron; over thread-shared memory we average the
// full gradient and let each rank consume its shard.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.hpp"
#include "par/comm.hpp"

namespace caraml::par {

class DistributedAdam {
 public:
  DistributedAdam(std::vector<nn::Parameter*> params, Communicator& comm,
                  float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                  float eps = 1e-8f);

  /// Average gradients across ranks, update this rank's shard, all-gather
  /// the updated parameter values. Collective: all ranks must call it.
  void step();

  void zero_grad();

  /// Bytes of optimizer state held by this rank (the ZeRO memory saving:
  /// ~1/p of the full Adam state).
  std::int64_t local_state_bytes() const;

  std::int64_t total_parameters() const { return total_; }
  std::int64_t shard_begin() const { return shard_begin_; }
  std::int64_t shard_end() const { return shard_end_; }
  std::int64_t step_count() const { return t_; }

 private:
  // Flattened-view helpers.
  float read_param(std::int64_t flat) const;
  void write_param(std::int64_t flat, float value);
  float read_grad(std::int64_t flat) const;

  std::vector<nn::Parameter*> params_;
  Communicator& comm_;
  float lr_, beta1_, beta2_, eps_;
  std::int64_t total_ = 0;
  std::int64_t shard_begin_ = 0;
  std::int64_t shard_end_ = 0;
  std::int64_t t_ = 0;
  // Adam moments for the local shard only.
  std::vector<float> m_;
  std::vector<float> v_;
  // Cumulative parameter offsets for flat indexing.
  std::vector<std::int64_t> offsets_;
};

}  // namespace caraml::par
