// Megatron-style tensor parallelism (paper §II-A references [2], [6]): the
// transformer MLP's first linear is split by output columns, the second by
// input rows, so the only communication is one all-reduce of the block
// output per direction.
#pragma once

#include <memory>

#include "nn/layers.hpp"
#include "nn/module.hpp"
#include "par/comm.hpp"

namespace caraml::par {

/// Y = X * W^T with W row-partitioned across ranks (each rank owns
/// out_features/p of the outputs). Forward produces the *local* output
/// shard; backward all-reduces dX (since every rank needs the full input
/// gradient).
class ColumnParallelLinear : public nn::Module {
 public:
  ColumnParallelLinear(std::int64_t in_features, std::int64_t out_features,
                       Communicator& comm, Rng& rng);

  nn::Tensor forward(const nn::Tensor& input) override;   // [N,in] -> [N,out/p]
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;

  std::int64_t local_out() const { return local_out_; }

 private:
  Communicator& comm_;
  std::int64_t local_out_;
  std::shared_ptr<nn::Linear> local_;
};

/// Y = X * W^T with W column-partitioned (each rank owns in_features/p of
/// the inputs); forward computes a partial product and all-reduces the sum.
class RowParallelLinear : public nn::Module {
 public:
  RowParallelLinear(std::int64_t in_features, std::int64_t out_features,
                    Communicator& comm, Rng& rng);

  nn::Tensor forward(const nn::Tensor& input) override;   // [N,in/p] -> [N,out]
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;

 private:
  Communicator& comm_;
  std::shared_ptr<nn::Linear> local_;  // bias only applied on rank 0
};

/// The classic Megatron MLP block: ColumnParallel(in, 4h) -> GELU ->
/// RowParallel(4h, out). One all-reduce forward, one backward.
class TensorParallelMlp : public nn::Module {
 public:
  TensorParallelMlp(std::int64_t hidden, Communicator& comm, Rng& rng);

  nn::Tensor forward(const nn::Tensor& input) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;

 private:
  std::shared_ptr<ColumnParallelLinear> fc_in_;
  std::shared_ptr<nn::Gelu> act_;
  std::shared_ptr<RowParallelLinear> fc_out_;
};

/// Megatron tensor-parallel causal self-attention: attention heads are
/// partitioned across ranks (the QKV projection is column-parallel by head,
/// the output projection row-parallel), so each rank computes a disjoint
/// head subset and one all-reduce assembles the block output.
class TensorParallelAttention : public nn::Module {
 public:
  TensorParallelAttention(std::int64_t embed_dim, std::int64_t num_heads,
                          Communicator& comm, Rng& rng);

  std::int64_t local_heads() const { return local_heads_; }

  nn::Tensor forward(const nn::Tensor& input) override;   // [B, T, C]
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;

  /// Install shards of a serial attention's weights (tests / checkpoint
  /// loading): qkv [3C, C] split by this rank's heads, proj [C, C] split by
  /// input columns.
  void load_from_serial(const nn::Tensor& qkv_weight,
                        const nn::Tensor& qkv_bias,
                        const nn::Tensor& proj_weight,
                        const nn::Tensor& proj_bias);

 private:
  Communicator& comm_;
  std::int64_t embed_dim_;
  std::int64_t num_heads_;
  std::int64_t local_heads_;
  std::int64_t head_dim_;
  std::shared_ptr<nn::Linear> qkv_;   // [3 * local_heads * hd, C]
  std::shared_ptr<nn::Linear> proj_;  // [C, local_heads * hd], bias on rank 0

  std::int64_t batch_ = 0, time_ = 0;
  nn::Tensor cached_qkv_;
  std::vector<nn::Tensor> cached_att_;
};

/// A full Megatron-parallel pre-norm transformer block:
///   x += TPAttention(LN1(x));  x += TPMlp(LN2(x))
/// Layer norms are replicated (cheap); attention heads and MLP columns are
/// sharded; four all-reduces per block per direction, exactly Megatron's
/// communication pattern.
class TensorParallelBlock : public nn::Module {
 public:
  TensorParallelBlock(std::int64_t embed_dim, std::int64_t num_heads,
                      Communicator& comm, Rng& rng);

  nn::Tensor forward(const nn::Tensor& input) override;   // [B, T, C]
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;

  TensorParallelAttention& attention() { return *attn_; }
  nn::LayerNorm& ln1() { return *ln1_; }
  nn::LayerNorm& ln2() { return *ln2_; }
  ColumnParallelLinear& mlp_in() { return *fc_in_; }
  RowParallelLinear& mlp_out() { return *fc_out_; }

 private:
  std::int64_t embed_dim_;
  std::shared_ptr<nn::LayerNorm> ln1_;
  std::shared_ptr<TensorParallelAttention> attn_;
  std::shared_ptr<nn::LayerNorm> ln2_;
  std::shared_ptr<ColumnParallelLinear> fc_in_;
  std::shared_ptr<nn::Gelu> act_;
  std::shared_ptr<RowParallelLinear> fc_out_;
  std::int64_t batch_ = 0, time_ = 0;
};

}  // namespace caraml::par
