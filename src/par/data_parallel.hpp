// Data-parallel training driver (Horovod / PyTorch-DDP style, paper §II-B,
// §III-A): every rank holds a full model replica, computes gradients on its
// own micro-batch, and the replicas average gradients with all-reduce before
// each optimizer step — keeping all replicas bit-identical.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/module.hpp"
#include "nn/optim.hpp"
#include "par/comm.hpp"

namespace caraml::par {

/// Average the gradients of `params` across ranks (in place).
void all_reduce_gradients(Communicator& comm,
                          const std::vector<nn::Parameter*>& params);

/// Broadcast parameter values from rank 0 so all replicas start identical.
void broadcast_parameters(Communicator& comm,
                          const std::vector<nn::Parameter*>& params);

/// Maximum absolute difference of parameters across ranks (sync check).
double parameter_divergence(Communicator& comm,
                            const std::vector<nn::Parameter*>& params);

struct DataParallelResult {
  std::vector<float> losses;          // mean loss per step (averaged over ranks)
  double samples_per_second = 0.0;    // aggregate training throughput
  std::int64_t steps = 0;
};

/// Runs synchronous data-parallel training.
///
/// `make_replica(rank)` builds one model replica plus optimizer;
/// `make_batch(rank, step)` produces that rank's micro-batch and must return
/// the loss from a forward/backward on the replica.
class DataParallelTrainer {
 public:
  struct Replica {
    std::shared_ptr<nn::Module> model;
    std::shared_ptr<nn::Optimizer> optimizer;
  };

  using ReplicaFactory = std::function<Replica(int rank)>;
  /// Returns the loss of one local forward+backward at (rank, step).
  using StepFn = std::function<float(int rank, std::int64_t step,
                                     Replica& replica)>;

  DataParallelTrainer(int world_size, ReplicaFactory factory)
      : world_size_(world_size), factory_(std::move(factory)) {}

  DataParallelResult train(std::int64_t steps, const StepFn& local_step);

 private:
  int world_size_;
  ReplicaFactory factory_;
};

}  // namespace caraml::par
