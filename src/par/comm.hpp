// Thread-backed device group and collective communication.
//
// The paper's workloads scale with PyTorch Distributed (LLM) and Horovod
// (ResNet): data-parallel replicas exchange gradients with all-reduce, and
// pipeline stages exchange activations point-to-point. This module provides
// those primitives over OS threads — each "rank" is a thread standing in for
// one accelerator — in MPI-like style (cf. the LLNL MPI tutorial idioms):
// every collective is called collectively by all ranks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "tensor/tensor.hpp"

namespace caraml::par {

using tensor::Tensor;

class DeviceGroup;

/// Per-rank handle passed to the worker function.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Block until all ranks arrive.
  void barrier();

  /// In-place sum all-reduce over all ranks (all ranks end with the sum).
  void all_reduce_sum(Tensor& value);

  /// In-place mean all-reduce (gradient averaging à la Horovod).
  void all_reduce_mean(Tensor& value);

  /// Broadcast `value` from `root` to everyone (in-place).
  void broadcast(Tensor& value, int root);

  /// Gather each rank's tensor; returns all contributions (index = rank) on
  /// every rank.
  std::vector<Tensor> all_gather(const Tensor& value);

  /// Point-to-point: blocking send/recv matched by (source, destination, tag).
  void send(const Tensor& value, int destination, int tag = 0);
  Tensor recv(int source, int tag = 0);

 private:
  friend class DeviceGroup;
  Communicator(DeviceGroup* group, int rank) : group_(group), rank_(rank) {}

  DeviceGroup* group_;
  int rank_;
};

/// Spawns one thread per rank and runs `fn(comm)` on each; joins on run().
/// Exceptions thrown by any rank are rethrown from run() (first one wins).
class DeviceGroup {
 public:
  explicit DeviceGroup(int size);

  int size() const { return size_; }

  /// Execute `fn` collectively; blocks until all ranks finish.
  void run(const std::function<void(Communicator&)>& fn);

 private:
  friend class Communicator;

  // Collective rendezvous state.
  void barrier_impl();
  void collect_pointer(int rank, const void* pointer);
  const void* pointer_of(int rank) const { return pointers_[static_cast<std::size_t>(rank)]; }

  int size_;

  std::mutex mutex_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<const void*> pointers_;

  // Point-to-point mailboxes keyed by (source, destination, tag).
  struct Mailbox {
    std::vector<Tensor> queue;
  };
  std::map<std::tuple<int, int, int>, Mailbox> mailboxes_;
  std::mutex mail_mutex_;
  std::condition_variable mail_cv_;
};

}  // namespace caraml::par
