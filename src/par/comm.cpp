#include "par/comm.hpp"

#include <exception>
#include <thread>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"

namespace caraml::par {

namespace {

// Collective-traffic telemetry. Every rank's call counts once, matching how
// NCCL/Horovod profilers attribute per-rank traffic; bytes are the tensor
// payload (fp32).
telemetry::Counter& collective_counter(const char* name) {
  return telemetry::Registry::global().counter(name);
}

std::int64_t tensor_bytes(const Tensor& value) {
  return value.numel() * static_cast<std::int64_t>(sizeof(float));
}

}  // namespace

DeviceGroup::DeviceGroup(int size) : size_(size) {
  CARAML_CHECK_MSG(size >= 1, "device group needs at least one rank");
  pointers_.assign(static_cast<std::size_t>(size), nullptr);
}

void DeviceGroup::barrier_impl() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint64_t my_generation = generation_;
  if (++arrived_ == size_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
}

void DeviceGroup::collect_pointer(int rank, const void* pointer) {
  std::lock_guard<std::mutex> lock(mutex_);
  pointers_[static_cast<std::size_t>(rank)] = pointer;
}

void DeviceGroup::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      Communicator comm(this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

int Communicator::size() const { return group_->size(); }

void Communicator::barrier() {
  collective_counter("par/barriers").add();
  group_->barrier_impl();
}

void Communicator::all_reduce_sum(Tensor& value) {
  collective_counter("par/allreduce_calls").add();
  collective_counter("par/allreduce_bytes").add(tensor_bytes(value));
  // Rendezvous: publish pointers, barrier, everyone reads all contributions
  // into a private sum, barrier (so no one mutates while others read), then
  // each rank installs its privately computed sum.
  group_->collect_pointer(rank_, &value);
  barrier();
  Tensor sum(value.shape());
  for (int r = 0; r < size(); ++r) {
    const auto* contribution =
        static_cast<const Tensor*>(group_->pointer_of(r));
    CARAML_CHECK_MSG(contribution->same_shape(value),
                     "all_reduce shape mismatch across ranks");
    tensor::add_inplace(sum, *contribution);
  }
  barrier();  // all reads done before anyone overwrites
  value = std::move(sum);
  barrier();  // all writes done before pointers are reused
}

void Communicator::all_reduce_mean(Tensor& value) {
  all_reduce_sum(value);
  const float inv = 1.0f / static_cast<float>(size());
  for (std::int64_t i = 0; i < value.numel(); ++i) value[i] *= inv;
}

void Communicator::broadcast(Tensor& value, int root) {
  CARAML_CHECK_MSG(root >= 0 && root < size(), "broadcast root out of range");
  collective_counter("par/broadcasts").add();
  group_->collect_pointer(rank_, &value);
  barrier();
  if (rank_ != root) {
    const auto* source = static_cast<const Tensor*>(group_->pointer_of(root));
    value = *source;  // deep copy
  }
  barrier();
}

std::vector<Tensor> Communicator::all_gather(const Tensor& value) {
  collective_counter("par/allgather_calls").add();
  group_->collect_pointer(rank_, &value);
  barrier();
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    out.push_back(*static_cast<const Tensor*>(group_->pointer_of(r)));
  }
  barrier();
  return out;
}

void Communicator::send(const Tensor& value, int destination, int tag) {
  CARAML_CHECK_MSG(destination >= 0 && destination < size(),
                   "send destination out of range");
  collective_counter("par/p2p_messages").add();
  collective_counter("par/p2p_bytes").add(tensor_bytes(value));
  std::lock_guard<std::mutex> lock(group_->mail_mutex_);
  group_->mailboxes_[{rank_, destination, tag}].queue.push_back(value);
  group_->mail_cv_.notify_all();
}

Tensor Communicator::recv(int source, int tag) {
  CARAML_CHECK_MSG(source >= 0 && source < size(), "recv source out of range");
  std::unique_lock<std::mutex> lock(group_->mail_mutex_);
  auto& mailbox = group_->mailboxes_[{source, rank_, tag}];
  group_->mail_cv_.wait(lock, [&] { return !mailbox.queue.empty(); });
  Tensor out = std::move(mailbox.queue.front());
  mailbox.queue.erase(mailbox.queue.begin());
  return out;
}

}  // namespace caraml::par
