#include "par/data_parallel.hpp"

#include <atomic>
#include <cmath>

#include "util/error.hpp"
#include "util/stopwatch.hpp"

namespace caraml::par {

void all_reduce_gradients(Communicator& comm,
                          const std::vector<nn::Parameter*>& params) {
  for (nn::Parameter* p : params) {
    comm.all_reduce_mean(p->grad);
  }
}

void broadcast_parameters(Communicator& comm,
                          const std::vector<nn::Parameter*>& params) {
  for (nn::Parameter* p : params) {
    comm.broadcast(p->value, /*root=*/0);
  }
}

double parameter_divergence(Communicator& comm,
                            const std::vector<nn::Parameter*>& params) {
  double worst = 0.0;
  for (nn::Parameter* p : params) {
    const auto contributions = comm.all_gather(p->value);
    for (const auto& other : contributions) {
      for (std::int64_t i = 0; i < p->value.numel(); ++i) {
        worst = std::max(
            worst, static_cast<double>(std::fabs(other[i] - p->value[i])));
      }
    }
  }
  return worst;
}

DataParallelResult DataParallelTrainer::train(std::int64_t steps,
                                              const StepFn& local_step) {
  CARAML_CHECK_MSG(steps >= 1, "need at least one step");
  DeviceGroup group(world_size_);
  std::vector<float> loss_sums(static_cast<std::size_t>(steps), 0.0f);
  std::mutex loss_mutex;

  Stopwatch watch;
  group.run([&](Communicator& comm) {
    Replica replica = factory_(comm.rank());
    auto params = replica.model->parameters();
    broadcast_parameters(comm, params);

    for (std::int64_t step = 0; step < steps; ++step) {
      replica.optimizer->zero_grad();
      const float loss = local_step(comm.rank(), step, replica);
      all_reduce_gradients(comm, params);
      replica.optimizer->step();
      {
        std::lock_guard<std::mutex> lock(loss_mutex);
        loss_sums[static_cast<std::size_t>(step)] +=
            loss / static_cast<float>(world_size_);
      }
      comm.barrier();
    }
  });
  const double elapsed = watch.elapsed_seconds();

  DataParallelResult result;
  result.losses = std::move(loss_sums);
  result.steps = steps;
  result.samples_per_second =
      elapsed > 0.0 ? static_cast<double>(steps * world_size_) / elapsed : 0.0;
  return result;
}

}  // namespace caraml::par
