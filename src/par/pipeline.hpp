// Pipeline parallelism (paper §III-A1: the Graphcore GPT splits layers over
// 4 IPUs; §IV-A attributes the IPU's low throughput to the pipeline bubble).
//
// Two parts:
//  * schedule computation (GPipe and 1F1B) returning exact per-slot
//    timelines and bubble fractions — consumed by the simulator and the
//    Table II reproduction, and
//  * a real threaded pipeline executor that streams micro-batches through
//    stage modules living on different "devices" (threads) using
//    Communicator send/recv.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "par/comm.hpp"

namespace caraml::par {

enum class PipelineScheduleKind { kGPipe, kOneFOneB };

/// One schedule slot: stage s executes forward/backward of micro-batch m at
/// time step t (unit stage-times).
struct PipelineSlot {
  int stage = 0;
  int micro = 0;
  bool forward = true;
  int time = 0;
};

struct PipelineSchedule {
  int num_stages = 0;
  int num_micro = 0;
  PipelineScheduleKind kind = PipelineScheduleKind::kGPipe;
  std::vector<PipelineSlot> slots;
  /// Total time steps until the last slot finishes (in unit stage-times;
  /// backward slots count `backward_cost` units).
  double makespan = 0.0;
  /// Idle fraction of the stage-time grid: bubble = 1 - useful/total.
  double bubble_fraction = 0.0;
};

/// Build a schedule for `stages` pipeline stages and `micro` micro-batches.
/// `backward_cost` is the backward slot duration relative to forward
/// (Megatron uses ~2.0).
PipelineSchedule build_pipeline_schedule(PipelineScheduleKind kind, int stages,
                                         int micro, double backward_cost = 2.0);

/// Closed-form GPipe bubble fraction: (p - 1) / (m + p - 1).
double gpipe_bubble_fraction(int stages, int micro);

/// Analytic lower bound on the bubble fraction of *any* synchronous pipeline
/// schedule of `micro` micro-batches over `stages` stages: the (p - 1)
/// fill/drain slots are unavoidable, so no valid schedule beats
/// (p - 1) / (m + p - 1) — both GPipe and non-interleaved 1F1B attain it.
double pipeline_bubble_lower_bound(int stages, int micro);

/// A structural defect in a pipeline schedule found by
/// validate_pipeline_schedule().
struct ScheduleIssue {
  enum class Kind {
    kMissingSlot,  ///< a (stage, micro, direction) slot absent or duplicated
    kDependency,   ///< slot starts before its data dependency finishes
    kOverlap,      ///< two slots occupy the same stage at the same time
    kStarved,      ///< bubble fraction far above the analytic lower bound
  };
  Kind kind = Kind::kMissingSlot;
  int stage = -1;
  int micro = -1;
  bool forward = true;
  std::string message;
};

/// Validate that `schedule.slots` forms an executable synchronous-pipeline
/// timeline: every (stage, micro) pair has exactly one forward and one
/// backward slot, no two slots overlap on a stage, and every slot starts at
/// or after its data dependency finishes — forward(s, m) needs
/// forward(s-1, m); backward(s, m) needs backward(s+1, m), or the local
/// forward on the last stage. A dependency violation means the schedule
/// deadlocks under blocking sends. Additionally flags starvation: a realized
/// bubble fraction more than `starvation_slack` above
/// pipeline_bubble_lower_bound(). Durations are 1 stage-time (forward) and
/// `backward_cost` (backward), matching build_pipeline_schedule().
std::vector<ScheduleIssue> validate_pipeline_schedule(
    const PipelineSchedule& schedule, double backward_cost = 2.0,
    double starvation_slack = 0.15);

/// A real threaded pipeline: stage s (one rank) applies its module to each
/// incoming micro-batch and forwards the activation to stage s+1. Returns
/// the outputs of the last stage, in micro-batch order. Forward-only
/// (inference); training pipelines are modeled via the schedule above.
std::vector<nn::Tensor> run_pipeline_inference(
    const std::vector<std::shared_ptr<nn::Module>>& stages,
    const std::vector<nn::Tensor>& micro_batches);

/// Real GPipe *training* over thread stages with activation recomputation:
/// the forward phase streams every micro-batch through the pipeline (stages
/// keep only each micro's stage *input*); the backward phase replays each
/// micro's forward on its stage to restore the module caches — exactly the
/// recomputation trade the paper's Megatron configuration uses — before
/// back-propagating and forwarding the gradient upstream. Parameter
/// gradients accumulate across micro-batches, giving bit-identical results
/// to serial training on the concatenated batch (asserted in tests).
class PipelineTrainer {
 public:
  /// `stages[s]` lives on rank s. `loss` maps the last stage's output for
  /// micro i to (loss_i, dL/d(output_i)); the total loss is the mean.
  struct MicroLoss {
    float loss = 0.0f;
    nn::Tensor grad;
  };
  using LossFn = std::function<MicroLoss(const nn::Tensor& output,
                                         std::size_t micro_index)>;

  explicit PipelineTrainer(std::vector<std::shared_ptr<nn::Module>> stages);

  /// One training iteration over `micro_batches`; accumulates parameter
  /// gradients in the stage modules and returns the mean micro loss.
  /// (Callers zero gradients and step optimizers between iterations.)
  float train_iteration(const std::vector<nn::Tensor>& micro_batches,
                        const LossFn& loss);

  std::size_t num_stages() const { return stages_.size(); }
  std::vector<nn::Parameter*> parameters();

 private:
  std::vector<std::shared_ptr<nn::Module>> stages_;
};

}  // namespace caraml::par
