#include "analysis/trace_reader.hpp"

#include <fstream>
#include <sstream>

#include "telemetry/json.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"

namespace caraml::analysis {

namespace json = telemetry::json;

std::string Trace::track_name(std::uint32_t tid) const {
  if (tid < tracks.size() && !tracks[tid].empty()) return tracks[tid];
  return "tid" + std::to_string(tid);
}

namespace {

[[noreturn]] void schema_fail(const std::string& file, std::size_t index,
                              const std::string& message) {
  throw ParseError(file + ": event #" + std::to_string(index) + ": " +
                   message);
}

double number_or_fail(const json::Value& event, const char* key,
                      const std::string& file, std::size_t index) {
  try {
    return event.at(key).as_number();
  } catch (const std::exception&) {
    schema_fail(file, index,
                std::string("missing or non-numeric \"") + key + "\"");
  }
}

std::uint32_t tid_of(const json::Value& event, const std::string& file,
                     std::size_t index) {
  const double tid = number_or_fail(event, "tid", file, index);
  if (tid < 0 || tid > 4e9) schema_fail(file, index, "tid out of range");
  return static_cast<std::uint32_t>(tid);
}

}  // namespace

Trace parse_chrome_trace(const std::string& text, const std::string& file) {
  json::Value root;
  try {
    root = json::parse(text);
  } catch (const ParseError& e) {
    // json::parse messages already carry "at offset N"; prefix the file so
    // the user gets a clickable file:offset diagnostic.
    throw ParseError(file + ": " + e.what());
  }

  const json::Array* events = nullptr;
  if (root.is_array()) {
    events = &root.as_array();
  } else if (root.is_object() && root.contains("traceEvents") &&
             root.at("traceEvents").is_array()) {
    events = &root.at("traceEvents").as_array();
  } else {
    throw ParseError(file +
                     ": not a Chrome trace (expected {\"traceEvents\":[...]} "
                     "or a bare event array)");
  }

  Trace trace;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Value& event = (*events)[i];
    if (!event.is_object()) schema_fail(file, i, "event is not an object");
    if (!event.contains("ph") || !event.at("ph").is_string()) {
      schema_fail(file, i, "missing \"ph\" phase");
    }
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M") {
      // Only thread_name metadata names tracks; other metadata is skipped.
      if (!event.contains("name") || !event.at("name").is_string() ||
          event.at("name").as_string() != "thread_name") {
        ++trace.skipped_events;
        continue;
      }
      const std::uint32_t tid = tid_of(event, file, i);
      std::string name;
      try {
        name = event.at("args").at("name").as_string();
      } catch (const std::exception&) {
        schema_fail(file, i, "thread_name metadata without args.name");
      }
      if (tid >= trace.tracks.size()) trace.tracks.resize(tid + 1);
      trace.tracks[tid] = name;
    } else if (ph == "X") {
      TraceSpan span;
      if (!event.contains("name") || !event.at("name").is_string()) {
        schema_fail(file, i, "span without a \"name\"");
      }
      span.name = event.at("name").as_string();
      span.track = tid_of(event, file, i);
      span.ts_us = number_or_fail(event, "ts", file, i);
      span.dur_us = number_or_fail(event, "dur", file, i);
      if (event.contains("args") && event.at("args").is_object() &&
          !event.at("args").as_object().empty()) {
        const auto& [key, value] = event.at("args").as_object().front();
        if (value.is_number()) {
          span.arg_name = key;
          span.arg_value = value.as_number();
          span.has_arg = true;
        }
      }
      trace.spans.push_back(std::move(span));
    } else if (ph == "C") {
      TraceCounter counter;
      if (!event.contains("name") || !event.at("name").is_string()) {
        schema_fail(file, i, "counter without a \"name\"");
      }
      counter.name = event.at("name").as_string();
      counter.track = tid_of(event, file, i);
      counter.ts_us = number_or_fail(event, "ts", file, i);
      if (!event.contains("args") || !event.at("args").is_object() ||
          event.at("args").as_object().empty()) {
        schema_fail(file, i, "counter without an args series");
      }
      const auto& [series, value] = event.at("args").as_object().front();
      if (!value.is_number()) {
        schema_fail(file, i, "counter series value is not a number");
      }
      counter.series = series;
      counter.value = value.as_number();
      trace.counters.push_back(std::move(counter));
    } else {
      ++trace.skipped_events;
    }
  }
  return trace;
}

Trace read_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw NotFound("cannot read trace: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_chrome_trace(buffer.str(), path);
}

Trace snapshot(const telemetry::Tracer& tracer) {
  Trace trace;
  trace.tracks = tracer.track_names();
  for (const auto& span : tracer.spans()) {
    trace.spans.push_back(TraceSpan{span.name, span.track, span.start_s * 1e6,
                                    span.dur_s * 1e6, span.arg_name,
                                    span.arg_value, span.has_arg});
  }
  for (const auto& counter : tracer.counters()) {
    trace.counters.push_back(TraceCounter{counter.name, counter.series,
                                          counter.track, counter.t_s * 1e6,
                                          counter.value});
  }
  return trace;
}

std::string to_chrome_trace(const Trace& trace) {
  // Mirrors Tracer::to_chrome_trace event for event; keep the two writers in
  // sync or the round-trip test under tests/ will flag the drift.
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) os << ",";
    first = false;
  };
  for (std::size_t t = 0; t < trace.tracks.size(); ++t) {
    separator();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << t
       << ",\"args\":{\"name\":\"" << json::escape(trace.tracks[t]) << "\"}}";
  }
  for (const auto& span : trace.spans) {
    separator();
    os << "{\"name\":\"" << json::escape(span.name)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.track
       << ",\"ts\":" << json::format_number(span.ts_us)
       << ",\"dur\":" << json::format_number(span.dur_us);
    if (span.has_arg) {
      os << ",\"args\":{\"" << json::escape(span.arg_name)
         << "\":" << json::format_number(span.arg_value) << "}";
    }
    os << "}";
  }
  for (const auto& counter : trace.counters) {
    separator();
    os << "{\"name\":\"" << json::escape(counter.name)
       << "\",\"ph\":\"C\",\"pid\":1,\"tid\":" << counter.track
       << ",\"ts\":" << json::format_number(counter.ts_us)
       << ",\"args\":{\"" << json::escape(counter.series)
       << "\":" << json::format_number(counter.value) << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace caraml::analysis
