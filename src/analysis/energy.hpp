// Energy attribution: integrate a power counter series (piecewise-constant
// watts samples, as the telemetry exporters emit) over labelled interval
// sets to report joules per phase — the ML.ENERGY-style "where did the
// joules go" decomposition behind the analysis/energy-attribution detector.
#pragma once

#include <string>
#include <vector>

#include "analysis/timeline.hpp"

namespace caraml::analysis {

/// Integral of the step function defined by `samples` over [t0, t1].
/// Semantics match Chrome-trace counters: the value holds from one sample
/// until the next, 0 before the first sample, and the last value holds
/// forever. Empty series integrate to 0; a single sample (t, v) contributes
/// v * (t1 - max(t0, t)). Samples must be sorted by time.
double integrate_step(const std::vector<std::pair<double, double>>& samples,
                      double t0, double t1);

/// Integral over a disjoint interval list.
double integrate_over(const std::vector<std::pair<double, double>>& samples,
                      const std::vector<Interval>& intervals);

struct EnergyShare {
  std::string label;  // phase name ("compute", "collective", "idle", ...)
  double joules = 0.0;
  double intervals_s = 0.0;  // wall time the label covers
};

struct EnergyBreakdown {
  std::vector<EnergyShare> shares;  // in the order the labels were given
  double total_j = 0.0;             // integral over [0, end_s]
};

/// Attribute the series' energy to labelled interval sets (which should be
/// disjoint and cover [0, end_s] if the caller wants shares to sum to
/// total_j). The caller typically passes a device track's per-phase unions
/// plus "collective" (idle under link activity) and "idle" (the rest).
EnergyBreakdown attribute_energy(
    const CounterSeries& series,
    const std::vector<std::pair<std::string, std::vector<Interval>>>& labels,
    double end_s);

}  // namespace caraml::analysis
