#include "analysis/energy.hpp"

#include <algorithm>

namespace caraml::analysis {

double integrate_step(const std::vector<std::pair<double, double>>& samples,
                      double t0, double t1) {
  if (t1 <= t0 || samples.empty()) return 0.0;
  double energy = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double seg_start = samples[i].first;
    const double seg_end =
        i + 1 < samples.size() ? samples[i + 1].first : t1;
    const double lo = std::max(t0, seg_start);
    const double hi = std::min(t1, std::max(seg_end, seg_start));
    if (hi > lo) energy += samples[i].second * (hi - lo);
  }
  return energy;
}

double integrate_over(const std::vector<std::pair<double, double>>& samples,
                      const std::vector<Interval>& intervals) {
  double energy = 0.0;
  for (const auto& interval : intervals) {
    energy += integrate_step(samples, interval.start, interval.end);
  }
  return energy;
}

EnergyBreakdown attribute_energy(
    const CounterSeries& series,
    const std::vector<std::pair<std::string, std::vector<Interval>>>& labels,
    double end_s) {
  EnergyBreakdown breakdown;
  breakdown.total_j = integrate_step(series.samples, 0.0, end_s);
  for (const auto& [label, intervals] : labels) {
    EnergyShare share;
    share.label = label;
    share.joules = integrate_over(series.samples, intervals);
    share.intervals_s = total_length(intervals);
    breakdown.shares.push_back(std::move(share));
  }
  return breakdown;
}

}  // namespace caraml::analysis
