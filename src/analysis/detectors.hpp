// Bottleneck detectors over a Timeline (PerFlow-style automated analysis).
//
// Each detector inspects the timeline and emits at most one Finding whose
// score estimates, on a common [0, 1] scale, what fraction of the run's
// makespan (or energy budget) the bottleneck explains — roughly "how much
// faster/cheaper could this run be if only this problem were fixed". Scores
// are therefore comparable across detectors and the ranked list reads as a
// priority order, which is what the sweep --analyse hook stores per
// workpackage.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/timeline.hpp"
#include "check/diagnostics.hpp"

namespace caraml::analysis {

struct Finding {
  std::string detector;  // short name, e.g. "load-imbalance"
  std::string rule_id;   // catalogue id, e.g. "analysis/load-imbalance"
  check::Severity severity = check::Severity::kInfo;
  double score = 0.0;  // [0, 1] share of makespan/energy explained
  std::string message;
  /// Quantified evidence, rendered into the JSON report ("skew": 2.96, ...).
  std::vector<std::pair<std::string, double>> metrics;
};

struct DetectorInfo {
  std::string name;
  std::string rule_id;
  std::string summary;
};

/// Every registered detector (for `caraml analyse-trace --list-detectors`).
const std::vector<DetectorInfo>& detector_catalogue();

/// Run all detectors; findings come back ranked by descending score.
/// An empty/unusable trace yields a single analysis/no-data finding.
std::vector<Finding> run_detectors(const Timeline& timeline);

}  // namespace caraml::analysis
