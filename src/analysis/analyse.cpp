#include "analysis/analyse.hpp"

#include <fstream>
#include <sstream>

#include "analysis/timeline.hpp"
#include "check/rules.hpp"
#include "telemetry/json.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace caraml::analysis {

namespace {

namespace json = telemetry::json;

std::string value_to_string(const json::Value& value) {
  switch (value.kind()) {
    case json::Value::Kind::kString: return value.as_string();
    case json::Value::Kind::kNumber: return json::format_number(value.as_number());
    case json::Value::Kind::kBool: return value.as_bool() ? "true" : "false";
    case json::Value::Kind::kNull: return "null";
    default: return json::dump(value);
  }
}

/// Last manifest.jsonl row of a telemetry directory, flattened to strings.
/// Best-effort: a missing or malformed manifest yields an empty list.
std::vector<std::pair<std::string, std::string>> read_manifest_info(
    const std::string& metrics_dir) {
  std::vector<std::pair<std::string, std::string>> info;
  if (metrics_dir.empty()) return info;
  std::ifstream in(metrics_dir + "/manifest.jsonl");
  if (!in) return info;
  std::string line, last;
  while (std::getline(in, line)) {
    if (!line.empty()) last = line;
  }
  if (last.empty()) return info;
  try {
    const json::Value row = json::parse(last);
    for (const auto& [key, value] : row.as_object()) {
      info.emplace_back(key, value_to_string(value));
    }
  } catch (const Error&) {
    // Companion metadata only; the trace analysis stands on its own.
  }
  return info;
}

}  // namespace

AnalysisReport analyse(const Trace& trace, const AnalyseOptions& options) {
  const Timeline timeline = build_timeline(trace);
  AnalysisReport report;
  report.num_tracks = timeline.tracks.size();
  report.num_spans = trace.spans.size();
  report.num_counters = trace.counters.size();
  report.makespan_s = timeline.makespan_s;
  report.manifest_info = read_manifest_info(options.metrics_dir);
  report.findings = run_detectors(timeline);
  return report;
}

AnalysisReport analyse_file(const std::string& path,
                            const AnalyseOptions& options) {
  const Trace trace = read_chrome_trace_file(path);
  AnalysisReport report = analyse(trace, options);
  report.trace_file = path;
  return report;
}

void to_diagnostics(const AnalysisReport& report,
                    check::DiagnosticList& diags) {
  for (const auto& finding : report.findings) {
    CARAML_CHECK_MSG(check::find_rule(finding.rule_id) != nullptr,
                     "detector emitted unregistered rule id: " + finding.rule_id);
    check::Diagnostic diagnostic;
    diagnostic.rule_id = finding.rule_id;
    diagnostic.severity = finding.severity;
    diagnostic.location.file =
        report.trace_file.empty() ? "<trace>" : report.trace_file;
    diagnostic.message = finding.message;
    diags.add(std::move(diagnostic));
  }
}

std::string render_human(const AnalysisReport& report) {
  std::ostringstream os;
  os << (report.trace_file.empty() ? "<trace>" : report.trace_file) << ": "
     << report.num_tracks << " track(s), " << report.num_spans
     << " span(s), " << report.num_counters << " counter(s), makespan "
     << units::format_fixed(report.makespan_s, 3) << " s\n";
  if (!report.manifest_info.empty()) {
    os << "run:";
    for (const auto& [key, value] : report.manifest_info) {
      os << " " << key << "=" << value;
    }
    os << "\n";
  }
  if (report.findings.empty()) {
    os << "no findings\n";
    return os.str();
  }
  int rank = 1;
  for (const auto& finding : report.findings) {
    os << "  " << rank++ << ". [" << check::severity_name(finding.severity)
       << "] " << finding.detector << " (score "
       << units::format_fixed(finding.score, 2) << "): " << finding.message
       << " [" << finding.rule_id << "]\n";
  }
  return os.str();
}

std::string render_json(const AnalysisReport& report) {
  json::Object summary;
  summary.emplace_back("tracks",
                       json::Value(static_cast<std::int64_t>(report.num_tracks)));
  summary.emplace_back("spans",
                       json::Value(static_cast<std::int64_t>(report.num_spans)));
  summary.emplace_back(
      "counters", json::Value(static_cast<std::int64_t>(report.num_counters)));
  summary.emplace_back("makespan_s", json::Value(report.makespan_s));
  summary.emplace_back(
      "findings", json::Value(static_cast<std::int64_t>(report.findings.size())));

  json::Array findings;
  int rank = 1;
  for (const auto& finding : report.findings) {
    json::Object entry;
    entry.emplace_back("rank", json::Value(rank++));
    entry.emplace_back("detector", json::Value(finding.detector));
    entry.emplace_back("rule", json::Value(finding.rule_id));
    entry.emplace_back("severity",
                       json::Value(check::severity_name(finding.severity)));
    entry.emplace_back("score", json::Value(finding.score));
    entry.emplace_back("message", json::Value(finding.message));
    json::Object metrics;
    for (const auto& [key, value] : finding.metrics) {
      metrics.emplace_back(key, json::Value(value));
    }
    entry.emplace_back("metrics", json::Value(std::move(metrics)));
    findings.push_back(json::Value(std::move(entry)));
  }

  json::Object root;
  root.emplace_back("version", json::Value(1));
  root.emplace_back("trace", json::Value(report.trace_file.empty()
                                             ? "<trace>"
                                             : report.trace_file));
  root.emplace_back("summary", json::Value(std::move(summary)));
  if (!report.manifest_info.empty()) {
    json::Object manifest;
    for (const auto& [key, value] : report.manifest_info) {
      manifest.emplace_back(key, json::Value(value));
    }
    root.emplace_back("manifest", json::Value(std::move(manifest)));
  }
  root.emplace_back("findings", json::Value(std::move(findings)));
  return json::dump(json::Value(std::move(root)));
}

std::string bottleneck_summary(const AnalysisReport& report, int top_n) {
  if (report.findings.empty()) return "none";
  std::ostringstream os;
  int emitted = 0;
  for (const auto& finding : report.findings) {
    if (emitted >= top_n) break;
    if (emitted > 0) os << ";";
    os << finding.rule_id << ":" << units::format_fixed(finding.score, 2);
    ++emitted;
  }
  return os.str();
}

}  // namespace caraml::analysis
