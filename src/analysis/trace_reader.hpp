// Chrome-trace reader: the inverse of telemetry::Tracer::to_chrome_trace().
//
// The suite has always been able to *write* trace-event JSON for Perfetto;
// `caraml analyse-trace` needs to read those files back into a structured
// model. The reader understands the subset our writers emit — "M" thread_name
// metadata, "X" complete spans, "C" counters, all on pid 1 — and tolerates
// (skips) other phase types so hand-edited or foreign traces still load.
//
// Numbers are kept in the file's native unit (microseconds) exactly as
// parsed: converting to seconds and back multiplies by 1e6 twice, which is
// not an identity in IEEE arithmetic. Storing the raw values is what lets
// to_chrome_trace(read(text)) reproduce `text` byte for byte (the writers
// share telemetry::json::format_number).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace caraml::telemetry {
class Tracer;
}

namespace caraml::analysis {

/// One "ph":"X" complete span, timestamps in microseconds as parsed.
struct TraceSpan {
  std::string name;
  std::uint32_t track = 0;  // tid
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::string arg_name;
  double arg_value = 0.0;
  bool has_arg = false;

  double start_s() const { return ts_us / 1e6; }
  double dur_s() const { return dur_us / 1e6; }
  double end_s() const { return (ts_us + dur_us) / 1e6; }
};

/// One "ph":"C" counter sample.
struct TraceCounter {
  std::string name;    // e.g. "power/dev0_w"
  std::string series;  // the single args key, e.g. "watts"
  std::uint32_t track = 0;
  double ts_us = 0.0;
  double value = 0.0;

  double t_s() const { return ts_us / 1e6; }
};

/// A parsed trace: named tracks plus spans/counters in file order.
struct Trace {
  /// Track names from "thread_name" metadata, indexed by tid. Entries may be
  /// empty when a tid never received metadata; use track_name() for lookup.
  std::vector<std::string> tracks;
  std::vector<TraceSpan> spans;
  std::vector<TraceCounter> counters;
  /// Events with a phase the reader does not model ("B", "E", ...).
  std::size_t skipped_events = 0;

  /// Name for a tid; synthesizes "tid<N>" when no metadata named it.
  std::string track_name(std::uint32_t tid) const;
};

/// Parse Chrome-trace JSON: either {"traceEvents":[...]} or a bare event
/// array. Throws caraml::ParseError whose message carries `file` plus the
/// byte offset of the malformed construct ("<file>: json: ... at offset N").
Trace parse_chrome_trace(const std::string& text,
                         const std::string& file = "<trace>");

/// Read and parse a trace file; errors include the path.
Trace read_chrome_trace_file(const std::string& path);

/// Snapshot a live tracer into the same model (for in-process analysis of a
/// run that never went through a file, e.g. the sweep --analyse hook).
Trace snapshot(const telemetry::Tracer& tracer);

/// Re-serialize; byte-identical to Tracer::to_chrome_trace() for traces
/// produced by it (same event order, same number formatting).
std::string to_chrome_trace(const Trace& trace);

}  // namespace caraml::analysis
