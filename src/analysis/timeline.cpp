#include "analysis/timeline.hpp"

#include <algorithm>
#include <cctype>

namespace caraml::analysis {

std::vector<Interval> union_intervals(std::vector<Interval> intervals) {
  intervals.erase(
      std::remove_if(intervals.begin(), intervals.end(),
                     [](const Interval& i) { return i.end <= i.start; }),
      intervals.end());
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  std::vector<Interval> merged;
  for (const auto& interval : intervals) {
    if (!merged.empty() && interval.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, interval.end);
    } else {
      merged.push_back(interval);
    }
  }
  return merged;
}

std::vector<Interval> intersect_intervals(const std::vector<Interval>& a,
                                          const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const double start = std::max(a[i].start, b[j].start);
    const double end = std::min(a[i].end, b[j].end);
    if (end > start) out.push_back(Interval{start, end});
    if (a[i].end < b[j].end) ++i;
    else ++j;
  }
  return out;
}

std::vector<Interval> subtract_intervals(const std::vector<Interval>& a,
                                         const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t j = 0;
  for (const auto& interval : a) {
    double cursor = interval.start;
    while (j < b.size() && b[j].end <= cursor) ++j;
    std::size_t k = j;
    while (k < b.size() && b[k].start < interval.end) {
      if (b[k].start > cursor) out.push_back(Interval{cursor, b[k].start});
      cursor = std::max(cursor, b[k].end);
      ++k;
    }
    if (cursor < interval.end) out.push_back(Interval{cursor, interval.end});
  }
  return out;
}

double total_length(const std::vector<Interval>& intervals) {
  double total = 0.0;
  for (const auto& interval : intervals) total += interval.length();
  return total;
}

namespace {

bool prefix_then_digits(const std::string& name, const char* prefix) {
  const std::size_t n = std::char_traits<char>::length(prefix);
  if (name.compare(0, n, prefix) != 0 || name.size() == n) return false;
  for (std::size_t i = n; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
  }
  return true;
}

}  // namespace

TrackKind classify_track(const std::string& name) {
  if (prefix_then_digits(name, "dev") || prefix_then_digits(name, "stage")) {
    return TrackKind::kCompute;
  }
  if (prefix_then_digits(name, "host")) return TrackKind::kHost;
  if (prefix_then_digits(name, "link")) return TrackKind::kLink;
  if (name == "power") return TrackKind::kPower;
  return TrackKind::kOther;
}

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kCompute: return "compute";
    case Phase::kBubble: return "bubble";
    case Phase::kOptimizer: return "optimizer";
    case Phase::kHost: return "host";
    case Phase::kCollective: return "collective";
    case Phase::kPrefill: return "prefill";
    case Phase::kDecode: return "decode";
  }
  return "unknown";
}

Phase classify_span(const std::string& name, TrackKind kind) {
  if (kind == TrackKind::kLink) return Phase::kCollective;
  if (kind == TrackKind::kHost) return Phase::kHost;
  if (name == "bubble") return Phase::kBubble;
  if (name == "optimizer" || name == "sgd") return Phase::kOptimizer;
  if (name == "host" || name == "input") return Phase::kHost;
  if (name == "prefill") return Phase::kPrefill;
  if (name == "decode") return Phase::kDecode;
  return Phase::kCompute;
}

std::vector<const TrackTimeline*> Timeline::compute_tracks() const {
  std::vector<const TrackTimeline*> out;
  for (const auto& track : tracks) {
    if (track.kind == TrackKind::kCompute && !track.spans.empty()) {
      out.push_back(&track);
    }
  }
  return out;
}

const TrackTimeline* Timeline::critical_compute() const {
  const TrackTimeline* critical = nullptr;
  for (const TrackTimeline* track : compute_tracks()) {
    if (critical == nullptr || track->last_end_s > critical->last_end_s ||
        (track->last_end_s == critical->last_end_s &&
         track->busy_s > critical->busy_s)) {
      critical = track;
    }
  }
  return critical;
}

std::vector<Interval> Timeline::link_busy_union() const {
  std::vector<Interval> intervals;
  for (const auto& track : tracks) {
    if (track.kind != TrackKind::kLink) continue;
    intervals.insert(intervals.end(), track.busy.begin(), track.busy.end());
  }
  return union_intervals(intervals);
}

Timeline build_timeline(const Trace& trace) {
  Timeline timeline;

  // One TrackTimeline per tid that actually carries spans (counter-only
  // tracks like "power" never become span tracks).
  std::map<std::uint32_t, std::size_t> by_tid;
  for (const auto& span : trace.spans) {
    auto it = by_tid.find(span.track);
    if (it == by_tid.end()) {
      TrackTimeline track;
      track.tid = span.track;
      track.name = trace.track_name(span.track);
      track.kind = classify_track(track.name);
      by_tid.emplace(span.track, timeline.tracks.size());
      timeline.tracks.push_back(std::move(track));
      it = by_tid.find(span.track);
    }
    timeline.tracks[it->second].spans.push_back(span);
  }

  for (auto& track : timeline.tracks) {
    std::sort(track.spans.begin(), track.spans.end(),
              [](const TraceSpan& a, const TraceSpan& b) {
                return a.ts_us < b.ts_us;
              });
    std::vector<Interval> intervals;
    track.first_start_s = track.spans.front().start_s();
    track.last_end_s = track.spans.front().end_s();
    for (const auto& span : track.spans) {
      track.first_start_s = std::min(track.first_start_s, span.start_s());
      track.last_end_s = std::max(track.last_end_s, span.end_s());
      const Phase phase = classify_span(span.name, track.kind);
      track.phase_time[phase] += span.dur_s();
      track.phase_intervals[phase].push_back(
          Interval{span.start_s(), span.end_s()});
      if (phase == Phase::kBubble) track.bubble_s += span.dur_s();
      intervals.push_back(Interval{span.start_s(), span.end_s()});
    }
    track.busy = union_intervals(std::move(intervals));
    track.busy_s = total_length(track.busy);
    track.gap_s = std::max(0.0, track.extent_s() - track.busy_s);
    for (auto& [phase, list] : track.phase_intervals) {
      list = union_intervals(std::move(list));
    }
    if (track.kind != TrackKind::kPower) {
      timeline.makespan_s = std::max(timeline.makespan_s, track.last_end_s);
    }
  }

  // Counter series: power overlays keep their full sample list; queue-wait
  // counters aggregate into per-resource wait statistics.
  std::map<std::string, std::size_t> series_index;
  for (const auto& counter : trace.counters) {
    if (counter.name.rfind("queue_wait/", 0) == 0) {
      QueueWaitStat& stat = timeline.queue_wait[counter.name.substr(11)];
      stat.total_s += counter.value;
      stat.max_s = std::max(stat.max_s, counter.value);
      ++stat.samples;
      continue;
    }
    if (counter.series != "watts") continue;
    auto it = series_index.find(counter.name);
    if (it == series_index.end()) {
      CounterSeries series;
      series.name = counter.name;
      series.series = counter.series;
      series_index.emplace(counter.name, timeline.power.size());
      timeline.power.push_back(std::move(series));
      it = series_index.find(counter.name);
    }
    timeline.power[it->second].samples.emplace_back(counter.t_s(),
                                                    counter.value);
  }
  for (auto& series : timeline.power) {
    std::sort(series.samples.begin(), series.samples.end());
  }
  return timeline;
}

}  // namespace caraml::analysis
