#include "analysis/detectors.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "analysis/energy.hpp"
#include "util/units.hpp"

namespace caraml::analysis {

namespace {

double clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

std::string fixed(double value, int digits = 3) {
  return units::format_fixed(value, digits);
}

std::string percent(double fraction) {
  return units::format_fixed(100.0 * fraction, 1) + "%";
}

// --- critical path ---------------------------------------------------------

void detect_critical_path(const Timeline& timeline,
                          std::vector<Finding>& findings) {
  const TrackTimeline* critical = timeline.critical_compute();
  if (critical == nullptr || timeline.makespan_s <= 0.0) return;

  Finding finding;
  finding.detector = "critical-path";
  finding.rule_id = "analysis/critical-path";
  finding.severity = check::Severity::kInfo;
  const double busy_fraction = clamp01(critical->busy_s / timeline.makespan_s);
  finding.score = clamp01(1.0 - busy_fraction);

  std::ostringstream os;
  os << "critical path runs through " << critical->name << ": busy "
     << fixed(critical->busy_s) << " s of " << fixed(timeline.makespan_s)
     << " s makespan (" << percent(busy_fraction) << ")";
  bool first = true;
  for (const auto& [phase, seconds] : critical->phase_time) {
    os << (first ? "; " : ", ") << phase_name(phase) << " "
       << fixed(seconds) << " s";
    first = false;
  }
  finding.message = os.str();

  finding.metrics = {{"busy_s", critical->busy_s},
                     {"makespan_s", timeline.makespan_s},
                     {"busy_fraction", busy_fraction},
                     {"idle_fraction", finding.score}};
  for (const auto& [phase, seconds] : critical->phase_time) {
    finding.metrics.emplace_back(std::string(phase_name(phase)) + "_s",
                                 seconds);
  }
  findings.push_back(std::move(finding));
}

// --- pipeline bubble -------------------------------------------------------

void detect_pipeline_bubble(const Timeline& timeline,
                            std::vector<Finding>& findings) {
  const TrackTimeline* critical = timeline.critical_compute();
  if (critical == nullptr || timeline.makespan_s <= 0.0) return;

  // Only bubbles/stalls on the *critical* track cost makespan; idle on the
  // other tracks is load imbalance and scored by that detector instead.
  const double stall_s = critical->gap_s;
  const double bubble_s = critical->bubble_s;
  const double total_s = stall_s + bubble_s;

  double mean_fraction = 0.0;
  const auto compute = timeline.compute_tracks();
  for (const TrackTimeline* track : compute) {
    if (track->extent_s() > 0.0) {
      mean_fraction +=
          (track->gap_s + track->bubble_s) / track->extent_s();
    }
  }
  if (!compute.empty()) mean_fraction /= static_cast<double>(compute.size());

  Finding finding;
  finding.detector = "pipeline-bubble";
  finding.rule_id = "analysis/pipeline-bubble";
  finding.score = clamp01(total_s / timeline.makespan_s);
  finding.severity = finding.score >= 0.25 ? check::Severity::kWarning
                                           : check::Severity::kInfo;
  std::ostringstream os;
  os << "bubbles + stalls occupy " << fixed(total_s)
     << " s of critical track " << critical->name << " ("
     << percent(finding.score) << " of makespan; explicit bubble spans "
     << fixed(bubble_s) << " s, dependency stalls " << fixed(stall_s)
     << " s; mean bubble fraction across " << compute.size()
     << " device track(s) " << percent(clamp01(mean_fraction)) << ")";
  finding.message = os.str();
  finding.metrics = {
      {"bubble_fraction", finding.score},
      {"explicit_bubble_s", bubble_s},
      {"stall_s", stall_s},
      {"mean_bubble_fraction", clamp01(mean_fraction)},
  };
  findings.push_back(std::move(finding));
}

// --- communication pattern -------------------------------------------------

struct CollectiveGroup {
  std::set<std::uint32_t> participants;
  std::map<std::uint32_t, int> spans_per_track;
  std::set<int> steps;
  bool hierarchical = false;
  bool broadcast = false;
  double time_s = 0.0;  // wall sum across participating links
};

bool parse_ring_suffix(const std::string& suffix, int& step) {
  // ".s<digits>.d<digits>"
  if (suffix.size() < 4 || suffix[0] != '.' || suffix[1] != 's') return false;
  std::size_t i = 2;
  int value = 0;
  bool digits = false;
  while (i < suffix.size() &&
         std::isdigit(static_cast<unsigned char>(suffix[i]))) {
    value = value * 10 + (suffix[i] - '0');
    digits = true;
    ++i;
  }
  if (!digits || i + 2 > suffix.size() || suffix[i] != '.' ||
      suffix[i + 1] != 'd') {
    return false;
  }
  step = value;
  return true;
}

void detect_comm_pattern(const Timeline& timeline,
                         std::vector<Finding>& findings) {
  std::map<std::string, CollectiveGroup> groups;
  for (const auto& track : timeline.tracks) {
    if (track.kind != TrackKind::kLink) continue;
    for (const auto& span : track.spans) {
      const std::size_t dot = span.name.find('.');
      const std::string base = span.name.substr(0, dot);
      const std::string suffix =
          dot == std::string::npos ? "" : span.name.substr(dot);
      CollectiveGroup& group = groups[base];
      group.participants.insert(track.tid);
      ++group.spans_per_track[track.tid];
      group.time_s += span.dur_s();
      int step = 0;
      if (suffix.find(".intra") == 0 || suffix.find(".inter") == 0 ||
          suffix.find(".bcast") == 0) {
        group.hierarchical = true;
      } else if (suffix.find(".hop") == 0) {
        group.broadcast = true;
      } else if (parse_ring_suffix(suffix, step)) {
        group.steps.insert(step);
      }
    }
  }
  if (groups.empty() || timeline.makespan_s <= 0.0) return;

  const double comm_time_s = total_length(timeline.link_busy_union());
  Finding finding;
  finding.detector = "comm-pattern";
  finding.rule_id = "analysis/comm-pattern";
  finding.severity = check::Severity::kInfo;
  finding.score = clamp01(comm_time_s / timeline.makespan_s);

  std::ostringstream os;
  os << "collectives occupy " << fixed(comm_time_s) << " s ("
     << percent(finding.score) << " of makespan): ";
  bool first = true;
  for (const auto& [name, group] : groups) {
    const std::size_t p = group.participants.size();
    std::string pattern;
    if (group.hierarchical) {
      pattern = "hierarchical (intra-ring + inter-ring + bcast)";
    } else if (group.broadcast) {
      pattern = "broadcast chain";
    } else if (!group.steps.empty()) {
      if (group.steps.size() == 2 * (p - 1)) pattern = "ring all-reduce";
      else if (group.steps.size() == p - 1) pattern = "ring all-gather";
      else pattern = "ring";
      pattern += " (" + std::to_string(group.steps.size()) + " steps)";
    } else if (p > 1) {
      int min_spans = 0;
      bool have = false;
      for (const auto& [tid, count] : group.spans_per_track) {
        min_spans = have ? std::min(min_spans, count) : count;
        have = true;
      }
      pattern = min_spans + 1 >= static_cast<int>(p) ? "all-to-all"
                                                     : "point-to-point";
    } else {
      pattern = "point-to-point";
    }
    os << (first ? "" : ", ") << name << "=" << pattern << " ["
       << p << " link(s), " << fixed(group.time_s) << " s]";
    first = false;
  }
  finding.message = os.str();
  finding.metrics = {
      {"comm_time_s", comm_time_s},
      {"comm_fraction", finding.score},
      {"collective_groups", static_cast<double>(groups.size())},
  };
  findings.push_back(std::move(finding));
}

// --- load imbalance --------------------------------------------------------

void detect_load_imbalance(const Timeline& timeline,
                           std::vector<Finding>& findings) {
  const auto compute = timeline.compute_tracks();
  if (compute.size() < 2 || timeline.makespan_s <= 0.0) return;

  double max_busy = 0.0, min_busy = 0.0, sum_busy = 0.0;
  const TrackTimeline* busiest = nullptr;
  for (const TrackTimeline* track : compute) {
    sum_busy += track->busy_s;
    if (busiest == nullptr || track->busy_s > max_busy) {
      busiest = track;
      max_busy = track->busy_s;
    }
    min_busy = (track == compute.front()) ? track->busy_s
                                          : std::min(min_busy, track->busy_s);
  }
  const double mean_busy = sum_busy / static_cast<double>(compute.size());
  if (max_busy <= 0.0) return;
  const double skew = mean_busy > 0.0 ? max_busy / mean_busy : 0.0;
  const double saving_s = max_busy - mean_busy;

  Finding finding;
  finding.detector = "load-imbalance";
  finding.rule_id = "analysis/load-imbalance";
  finding.score = clamp01(saving_s / timeline.makespan_s);
  finding.severity = finding.score >= 0.1 ? check::Severity::kWarning
                                          : check::Severity::kInfo;
  std::ostringstream os;
  os << "compute busy-time skew across " << compute.size() << " devices: "
     << busiest->name << " " << fixed(max_busy) << " s vs mean "
     << fixed(mean_busy) << " s (skew " << fixed(skew, 2)
     << "x, min " << fixed(min_busy) << " s) — balanced work would save ~"
     << fixed(saving_s) << " s (" << percent(finding.score)
     << " of makespan)";
  finding.message = os.str();
  finding.metrics = {
      {"skew", skew},
      {"busy_max_s", max_busy},
      {"busy_mean_s", mean_busy},
      {"busy_min_s", min_busy},
      {"devices", static_cast<double>(compute.size())},
      {"saving_s", saving_s},
  };
  findings.push_back(std::move(finding));
}

// --- queue wait ------------------------------------------------------------

void detect_queue_wait(const Timeline& timeline,
                       std::vector<Finding>& findings) {
  if (timeline.queue_wait.empty() || timeline.makespan_s <= 0.0) return;
  const std::string* worst_name = nullptr;
  const QueueWaitStat* worst = nullptr;
  for (const auto& [name, stat] : timeline.queue_wait) {
    if (worst == nullptr || stat.total_s > worst->total_s) {
      worst_name = &name;
      worst = &stat;
    }
  }
  if (worst->total_s <= 0.0) return;

  double busy_s = 0.0;
  for (const auto& track : timeline.tracks) {
    if (track.name == *worst_name) busy_s = track.busy_s;
  }
  const double dominance =
      busy_s > 0.0 ? worst->total_s / (worst->total_s + busy_s) : 1.0;

  Finding finding;
  finding.detector = "queue-wait";
  finding.rule_id = "analysis/queue-wait";
  finding.score = clamp01(worst->total_s / timeline.makespan_s);
  finding.severity = dominance >= 0.5 || finding.score >= 0.25
                         ? check::Severity::kWarning
                         : check::Severity::kInfo;
  std::ostringstream os;
  os << "queue wait concentrates on " << *worst_name << ": "
     << worst->samples << " task(s) waited " << fixed(worst->total_s)
     << " s total (max " << fixed(worst->max_s) << " s) vs "
     << fixed(busy_s) << " s busy (" << percent(clamp01(dominance))
     << " of the resource's wall time spent queued)";
  finding.message = os.str();
  finding.metrics = {
      {"wait_total_s", worst->total_s},
      {"wait_max_s", worst->max_s},
      {"wait_samples", static_cast<double>(worst->samples)},
      {"busy_s", busy_s},
      {"wait_dominance", clamp01(dominance)},
  };
  findings.push_back(std::move(finding));
}

// --- energy attribution ----------------------------------------------------

const TrackTimeline* device_for_series(const Timeline& timeline,
                                       const std::string& counter_name) {
  // "power/dev0_w" -> "dev0"
  const std::size_t slash = counter_name.find('/');
  if (slash != std::string::npos) {
    const std::size_t under = counter_name.find('_', slash);
    const std::string device = counter_name.substr(
        slash + 1,
        under == std::string::npos ? std::string::npos : under - slash - 1);
    for (const auto& track : timeline.tracks) {
      if (track.name == device) return &track;
    }
  }
  return timeline.critical_compute();
}

void detect_energy_attribution(const Timeline& timeline,
                               std::vector<Finding>& findings) {
  if (timeline.power.empty() || timeline.makespan_s <= 0.0) return;
  const CounterSeries& series = timeline.power.front();
  const TrackTimeline* device = device_for_series(timeline, series.name);
  if (device == nullptr) return;

  std::vector<std::pair<std::string, std::vector<Interval>>> labels;
  for (const auto& [phase, intervals] : device->phase_intervals) {
    labels.emplace_back(phase_name(phase), intervals);
  }
  const std::vector<Interval> whole = {Interval{0.0, timeline.makespan_s}};
  const auto idle = subtract_intervals(whole, device->busy);
  const auto links = timeline.link_busy_union();
  const auto collective = intersect_intervals(idle, links);
  labels.emplace_back("collective", collective);
  labels.emplace_back("idle", subtract_intervals(idle, collective));

  const EnergyBreakdown breakdown =
      attribute_energy(series, labels, timeline.makespan_s);
  if (breakdown.total_j <= 0.0) return;

  double productive_j = 0.0;
  for (const auto& share : breakdown.shares) {
    if (share.label == "compute" || share.label == "prefill" ||
        share.label == "decode" || share.label == "optimizer") {
      productive_j += share.joules;
    }
  }
  const double overhead_fraction =
      clamp01(1.0 - productive_j / breakdown.total_j);

  Finding finding;
  finding.detector = "energy-attribution";
  finding.rule_id = "analysis/energy-attribution";
  finding.severity = check::Severity::kInfo;
  finding.score = overhead_fraction;
  std::ostringstream os;
  os << device->name << " drew " << fixed(breakdown.total_j, 1) << " J over "
     << fixed(timeline.makespan_s) << " s (" << series.name << "):";
  bool first = true;
  for (const auto& share : breakdown.shares) {
    if (share.joules <= 0.0) continue;
    os << (first ? " " : ", ") << share.label << " "
       << percent(share.joules / breakdown.total_j) << " ("
       << fixed(share.joules, 1) << " J)";
    first = false;
  }
  finding.message = os.str();
  finding.metrics = {{"total_j", breakdown.total_j},
                     {"overhead_fraction", overhead_fraction}};
  for (const auto& share : breakdown.shares) {
    finding.metrics.emplace_back("energy_" + share.label + "_j",
                                 share.joules);
  }
  findings.push_back(std::move(finding));
}

// --- recovery time ---------------------------------------------------------

void detect_recovery_time(const Timeline& timeline,
                          std::vector<Finding>& findings) {
  if (timeline.makespan_s <= 0.0) return;
  // Resilient runners emit "recovery/*" spans (restart + backoff windows)
  // on a dedicated track and retry_with_backoff emits "retry/<name>" attempt
  // spans; both are recovery spend rather than useful work.
  double recovery_s = 0.0;
  double retry_s = 0.0;
  std::size_t restarts = 0;
  std::size_t retry_spans = 0;
  for (const auto& track : timeline.tracks) {
    for (const auto& span : track.spans) {
      if (span.name.rfind("recovery/", 0) == 0) {
        recovery_s += span.dur_s();
        ++restarts;
      } else if (span.name.rfind("retry/", 0) == 0) {
        retry_s += span.dur_s();
        ++retry_spans;
      }
    }
  }
  const double total_s = recovery_s + retry_s;
  if (total_s <= 0.0 && restarts == 0 && retry_spans == 0) return;

  Finding finding;
  finding.detector = "recovery-time";
  finding.rule_id = "analysis/recovery-time";
  finding.severity = check::Severity::kInfo;
  finding.score = clamp01(total_s / timeline.makespan_s);
  std::ostringstream os;
  os << "recovery spend " << fixed(total_s) << " s ("
     << percent(finding.score) << " of makespan): " << restarts
     << " restart window(s) totalling " << fixed(recovery_s) << " s, "
     << retry_spans << " retry attempt span(s) totalling " << fixed(retry_s)
     << " s";
  finding.message = os.str();
  finding.metrics = {
      {"recovery_s", recovery_s},
      {"retry_s", retry_s},
      {"recovery_fraction", finding.score},
      {"restart_windows", static_cast<double>(restarts)},
      {"retry_spans", static_cast<double>(retry_spans)},
  };
  findings.push_back(std::move(finding));
}

}  // namespace

const std::vector<DetectorInfo>& detector_catalogue() {
  static const std::vector<DetectorInfo> catalogue = {
      {"critical-path", "analysis/critical-path",
       "which device track the makespan runs through, with a per-phase "
       "decomposition of its busy time"},
      {"pipeline-bubble", "analysis/pipeline-bubble",
       "explicit fill/drain bubble spans plus dependency stalls on the "
       "critical device track"},
      {"comm-pattern", "analysis/comm-pattern",
       "collective pattern classification per group: ring / hierarchical / "
       "broadcast chain / all-to-all"},
      {"load-imbalance", "analysis/load-imbalance",
       "inter-device busy-time skew (max vs mean); the makespan a balanced "
       "layout would save"},
      {"queue-wait", "analysis/queue-wait",
       "resources whose tasks spend comparable time queued as running"},
      {"energy-attribution", "analysis/energy-attribution",
       "power counters integrated per phase: J for compute / collective / "
       "bubble / idle (prefill vs decode for inference)"},
      {"recovery-time", "analysis/recovery-time",
       "recovery/retry span share of the makespan: restart windows and "
       "backoff spend from resilient runs"},
  };
  return catalogue;
}

std::vector<Finding> run_detectors(const Timeline& timeline) {
  std::vector<Finding> findings;
  if (timeline.compute_tracks().empty()) {
    Finding finding;
    finding.detector = "no-data";
    finding.rule_id = "analysis/no-data";
    finding.severity = check::Severity::kWarning;
    finding.message =
        "trace contains no device compute spans (dev*/stage* tracks); "
        "nothing to analyse — was the run traced with --trace-out?";
    findings.push_back(std::move(finding));
    return findings;
  }
  detect_critical_path(timeline, findings);
  detect_pipeline_bubble(timeline, findings);
  detect_comm_pattern(timeline, findings);
  detect_load_imbalance(timeline, findings);
  detect_queue_wait(timeline, findings);
  detect_energy_attribution(timeline, findings);
  detect_recovery_time(timeline, findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.score > b.score;
                   });
  return findings;
}

}  // namespace caraml::analysis
