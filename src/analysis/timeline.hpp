// Timeline model over a parsed trace: tracks classified by role (device
// compute, host pipeline, interconnect link, power counters), per-track busy
// unions / gaps / phase decomposition, power counter series, and queue-wait
// statistics. This is the shared substrate the bottleneck detectors
// (detectors.hpp) query, so every detector agrees on what "busy", "idle" and
// "the makespan" mean.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/trace_reader.hpp"

namespace caraml::analysis {

/// Half-open interval [start, end) in seconds.
struct Interval {
  double start = 0.0;
  double end = 0.0;

  double length() const { return end > start ? end - start : 0.0; }
};

/// Merge overlapping/touching intervals; result is sorted and disjoint.
std::vector<Interval> union_intervals(std::vector<Interval> intervals);

/// Pairwise intersection of two disjoint sorted interval lists.
std::vector<Interval> intersect_intervals(const std::vector<Interval>& a,
                                          const std::vector<Interval>& b);

/// a minus b, both disjoint and sorted.
std::vector<Interval> subtract_intervals(const std::vector<Interval>& a,
                                         const std::vector<Interval>& b);

double total_length(const std::vector<Interval>& intervals);

/// What a track represents, derived from the sim/telemetry naming scheme:
/// "dev<N>"/"stage<N>" compute queues, "host<N>" input pipelines, "link<N>"
/// interconnect directions, "power" counter tracks, everything else
/// (thread/<N>, queue_wait, ...) is kOther.
enum class TrackKind { kCompute, kHost, kLink, kPower, kOther };

TrackKind classify_track(const std::string& name);

/// Phase of one span, from its name and the owning track's kind.
enum class Phase {
  kCompute,    // micro-steps, fwd+bwd, GEMMs — the useful work
  kBubble,     // explicit pipeline fill/drain slots
  kOptimizer,  // optimizer/sgd update
  kHost,       // host data pipeline / fixed iteration overhead
  kCollective, // anything on a link track
  kPrefill,    // inference prompt processing
  kDecode,     // inference token generation
};

const char* phase_name(Phase phase);
Phase classify_span(const std::string& name, TrackKind kind);

/// One track's view of the trace.
struct TrackTimeline {
  std::string name;
  std::uint32_t tid = 0;
  TrackKind kind = TrackKind::kOther;
  std::vector<TraceSpan> spans;  // sorted by start time
  std::vector<Interval> busy;    // union of span intervals
  double busy_s = 0.0;           // total_length(busy)
  double first_start_s = 0.0;
  double last_end_s = 0.0;
  double gap_s = 0.0;     // idle inside [first_start, last_end]
  double bubble_s = 0.0;  // explicit Phase::kBubble span time
  std::map<Phase, double> phase_time;
  std::map<Phase, std::vector<Interval>> phase_intervals;

  double extent_s() const { return last_end_s - first_start_s; }
};

/// One counter's sample series (t_s, value), sorted by time.
struct CounterSeries {
  std::string name;
  std::string series;
  std::vector<std::pair<double, double>> samples;
};

/// Aggregated queue-wait samples for one simulated resource, from the
/// "queue_wait/<resource>" counters sim::append_queue_wait_counters emits
/// (each sample = seconds one task waited between ready and start).
struct QueueWaitStat {
  double total_s = 0.0;
  double max_s = 0.0;
  std::size_t samples = 0;
};

struct Timeline {
  std::vector<TrackTimeline> tracks;
  std::vector<CounterSeries> power;  // series "watts" (power overlays)
  std::map<std::string, QueueWaitStat> queue_wait;  // resource -> stats
  /// End of the last span on a non-power track (the run's makespan).
  double makespan_s = 0.0;

  std::vector<const TrackTimeline*> compute_tracks() const;
  /// The compute track that finishes last (ties: most busy time); nullptr
  /// when the trace has no compute spans.
  const TrackTimeline* critical_compute() const;
  /// Union of busy intervals across every link track.
  std::vector<Interval> link_busy_union() const;
};

Timeline build_timeline(const Trace& trace);

}  // namespace caraml::analysis
