// End-to-end trace analysis: parse → timeline → detectors → report.
//
// This is the layer `caraml analyse-trace` and the sweep --analyse hook call
// into. It owns the report model, its human/JSON renderers (mirroring the
// lint renderers in src/check), the bridge into the diagnostics engine, and
// the compact "top-N bottleneck" string that annotates sweep manifest rows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/detectors.hpp"
#include "analysis/trace_reader.hpp"
#include "check/diagnostics.hpp"

namespace caraml::analysis {

struct AnalyseOptions {
  /// Findings kept in bottleneck_summary(); the report itself keeps all.
  int top_n = 5;
  /// Optional telemetry directory (--metrics): the last manifest.jsonl row
  /// is folded into the report header so the analysis names the run it
  /// describes. Missing/unreadable manifests are ignored, not errors.
  std::string metrics_dir;
};

struct AnalysisReport {
  std::string trace_file;
  std::size_t num_tracks = 0;
  std::size_t num_spans = 0;
  std::size_t num_counters = 0;
  double makespan_s = 0.0;
  /// Key/value pairs from the companion run manifest (may be empty).
  std::vector<std::pair<std::string, std::string>> manifest_info;
  /// Ranked findings, highest score first.
  std::vector<Finding> findings;
};

/// Analyse an already-parsed trace.
AnalysisReport analyse(const Trace& trace, const AnalyseOptions& options = {});

/// Read, parse and analyse a trace file. Throws caraml::ParseError with
/// "<path>: ... at offset N" context on malformed input.
AnalysisReport analyse_file(const std::string& path,
                            const AnalyseOptions& options = {});

/// Feed the report's findings into the shared diagnostics engine. Every
/// finding's rule id must be registered in the check catalogue.
void to_diagnostics(const AnalysisReport& report, check::DiagnosticList& diags);

/// Multi-line human rendering: summary header + ranked findings.
std::string render_human(const AnalysisReport& report);

/// Compact JSON document:
/// {"version":1,"trace":...,"summary":{...},"manifest":{...},"findings":[...]}
std::string render_json(const AnalysisReport& report);

/// Whitespace-free ranked summary for sweep manifest rows, e.g.
/// "analysis/load-imbalance:0.47;analysis/comm-pattern:0.12" — or "none"
/// when the trace produced no findings.
std::string bottleneck_summary(const AnalysisReport& report, int top_n = 3);

}  // namespace caraml::analysis
