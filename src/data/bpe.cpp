#include "data/bpe.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml::data {

BpeTokenizer::BpeTokenizer() { rebuild_vocab(); }

void BpeTokenizer::rebuild_vocab() {
  vocab_.clear();
  vocab_.reserve(256 + merges_.size());
  for (int b = 0; b < 256; ++b) {
    vocab_.push_back(std::string(1, static_cast<char>(b)));
  }
  for (const auto& [a, b] : merges_) {
    vocab_.push_back(vocab_[static_cast<std::size_t>(a)] +
                     vocab_[static_cast<std::size_t>(b)]);
  }
}

void BpeTokenizer::train(const std::string& corpus, std::size_t vocab_size) {
  CARAML_CHECK_MSG(vocab_size >= 256, "vocab size must be at least 256");
  merges_.clear();
  merge_rank_.clear();

  std::vector<std::int32_t> tokens;
  tokens.reserve(corpus.size());
  for (unsigned char c : corpus) tokens.push_back(static_cast<std::int32_t>(c));

  while (256 + merges_.size() < vocab_size && tokens.size() >= 2) {
    // Count adjacent pairs.
    std::map<std::pair<std::int32_t, std::int32_t>, std::size_t> counts;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      ++counts[{tokens[i], tokens[i + 1]}];
    }
    // Most frequent pair; ties broken by smaller ids for determinism.
    std::pair<std::int32_t, std::int32_t> best{0, 0};
    std::size_t best_count = 0;
    for (const auto& [pair, count] : counts) {
      if (count > best_count) {
        best = pair;
        best_count = count;
      }
    }
    if (best_count < 2) break;  // nothing worth merging

    const auto new_id = static_cast<std::int32_t>(256 + merges_.size());
    merges_.push_back(best);
    merge_rank_[best] = new_id;

    // Apply the merge to the working token stream.
    std::vector<std::int32_t> merged;
    merged.reserve(tokens.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (i + 1 < tokens.size() && tokens[i] == best.first &&
          tokens[i + 1] == best.second) {
        merged.push_back(new_id);
        ++i;
      } else {
        merged.push_back(tokens[i]);
      }
    }
    tokens = std::move(merged);
  }
  rebuild_vocab();
}

std::vector<std::int32_t> BpeTokenizer::encode(const std::string& text) const {
  std::vector<std::int32_t> tokens;
  tokens.reserve(text.size());
  for (unsigned char c : text) tokens.push_back(static_cast<std::int32_t>(c));

  // Repeatedly apply the lowest-rank (earliest learned) applicable merge,
  // exactly like GPT-2's encoder.
  while (tokens.size() >= 2) {
    std::int32_t best_rank = -1;
    std::size_t best_pos = 0;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      const auto it = merge_rank_.find({tokens[i], tokens[i + 1]});
      if (it != merge_rank_.end() &&
          (best_rank < 0 || it->second < best_rank)) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank < 0) break;
    tokens[best_pos] = best_rank;
    tokens.erase(tokens.begin() + static_cast<std::ptrdiff_t>(best_pos) + 1);
  }
  return tokens;
}

std::string BpeTokenizer::decode(const std::vector<std::int32_t>& ids) const {
  std::string out;
  for (std::int32_t id : ids) out += token_text(id);
  return out;
}

const std::string& BpeTokenizer::token_text(std::int32_t id) const {
  CARAML_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < vocab_.size(),
                   "token id out of range: " + std::to_string(id));
  return vocab_[static_cast<std::size_t>(id)];
}

std::string BpeTokenizer::save() const {
  std::ostringstream os;
  for (const auto& [a, b] : merges_) os << a << " " << b << "\n";
  return os.str();
}

BpeTokenizer BpeTokenizer::load(const std::string& serialized) {
  BpeTokenizer tok;
  std::istringstream is(serialized);
  std::string line;
  while (std::getline(is, line)) {
    if (str::trim(line).empty()) continue;
    const auto parts = str::split_ws(line);
    if (parts.size() != 2) throw ParseError("malformed merge line: " + line);
    const auto a = static_cast<std::int32_t>(str::parse_int(parts[0]));
    const auto b = static_cast<std::int32_t>(str::parse_int(parts[1]));
    const auto limit = static_cast<std::int32_t>(256 + tok.merges_.size());
    if (a < 0 || b < 0 || a >= limit || b >= limit) {
      throw ParseError("merge references unknown token: " + line);
    }
    const auto new_id = static_cast<std::int32_t>(256 + tok.merges_.size());
    tok.merges_.emplace_back(a, b);
    tok.merge_rank_[{a, b}] = new_id;
  }
  tok.rebuild_vocab();
  return tok;
}

}  // namespace caraml::data
