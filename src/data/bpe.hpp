// Byte-level byte-pair-encoding tokenizer.
//
// The paper's LLM benchmark trains on a subset of OSCAR "preprocessed using
// GPT-2 tokenizers" (§III-A1). This is a real, trainable GPT-2-style BPE:
// the base alphabet is the 256 byte values, and training greedily merges the
// most frequent adjacent token pair until the requested vocabulary size is
// reached. encode/decode round-trip any byte string exactly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace caraml::data {

class BpeTokenizer {
 public:
  BpeTokenizer();

  /// Learn merges from `corpus` until the vocabulary has `vocab_size`
  /// entries (>= 256). Retraining resets previous merges.
  void train(const std::string& corpus, std::size_t vocab_size);

  std::size_t vocab_size() const { return vocab_.size(); }
  std::size_t num_merges() const { return merges_.size(); }

  std::vector<std::int32_t> encode(const std::string& text) const;
  std::string decode(const std::vector<std::int32_t>& ids) const;

  /// The byte string a token id expands to.
  const std::string& token_text(std::int32_t id) const;

  /// Serialize / restore the merge table (one "left right" pair per line).
  std::string save() const;
  static BpeTokenizer load(const std::string& serialized);

 private:
  // merges_[i] = (a, b) merged into token 256 + i.
  std::vector<std::pair<std::int32_t, std::int32_t>> merges_;
  std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> merge_rank_;
  std::vector<std::string> vocab_;  // id -> byte string

  void rebuild_vocab();
};

}  // namespace caraml::data
