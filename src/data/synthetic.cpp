#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace caraml::data {

namespace {
// Invent a pronounceable word for vocabulary slot `index`.
std::string invent_word(std::size_t index, Rng& rng) {
  static const char* consonants = "bcdfghjklmnprstvwz";
  static const char* vowels = "aeiou";
  const std::size_t syllables = 1 + index % 3;
  std::string word;
  for (std::size_t s = 0; s < syllables; ++s) {
    word += consonants[static_cast<std::size_t>(rng.uniform_int(0, 17))];
    word += vowels[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  }
  return word;
}
}  // namespace

std::string synthetic_oscar_text(std::size_t num_words, Rng& rng,
                                 std::size_t vocabulary_words) {
  CARAML_CHECK_MSG(vocabulary_words >= 2, "need at least two words");
  std::vector<std::string> vocabulary;
  vocabulary.reserve(vocabulary_words);
  for (std::size_t i = 0; i < vocabulary_words; ++i) {
    vocabulary.push_back(invent_word(i, rng));
  }
  // Zipf weights: w_i ~ 1 / (i+1)^1.1.
  std::vector<double> cumulative(vocabulary_words);
  double total = 0.0;
  for (std::size_t i = 0; i < vocabulary_words; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), 1.1);
    cumulative[i] = total;
  }

  std::string text;
  std::size_t words_in_sentence = 0;
  for (std::size_t w = 0; w < num_words; ++w) {
    const double r = rng.uniform(0.0, total);
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), r);
    const std::size_t index =
        static_cast<std::size_t>(it - cumulative.begin());
    std::string word = vocabulary[std::min(index, vocabulary_words - 1)];
    if (words_in_sentence == 0 && !word.empty()) {
      word[0] = static_cast<char>(std::toupper(word[0]));
    }
    if (!text.empty()) text += " ";
    text += word;
    ++words_in_sentence;
    if (words_in_sentence >= 5 &&
        (words_in_sentence >= 14 || rng.next_double() < 0.2)) {
      text += ".";
      words_in_sentence = 0;
    }
  }
  if (words_in_sentence > 0) text += ".";
  return text;
}

TokenStream::TokenStream(std::vector<std::int32_t> tokens)
    : tokens_(std::move(tokens)) {
  CARAML_CHECK_MSG(tokens_.size() >= 2, "token stream too short");
  for (std::int32_t t : tokens_) {
    CARAML_CHECK_MSG(t >= 0, "negative token id");
    max_token_ = std::max(max_token_, t);
  }
}

TokenStream::Batch TokenStream::sample_batch(std::int64_t batch,
                                             std::int64_t seq_len,
                                             Rng& rng) const {
  CARAML_CHECK_MSG(batch > 0 && seq_len > 0, "batch/seq must be positive");
  CARAML_CHECK_MSG(static_cast<std::size_t>(seq_len) + 1 <= tokens_.size(),
                   "sequence longer than the stream");
  Batch out;
  out.inputs = tensor::Tensor({batch, seq_len});
  out.targets.resize(static_cast<std::size_t>(batch * seq_len));
  const std::int64_t max_start =
      static_cast<std::int64_t>(tokens_.size()) - seq_len - 1;
  for (std::int64_t b = 0; b < batch; ++b) {
    const std::int64_t start = rng.uniform_int(0, max_start);
    for (std::int64_t t = 0; t < seq_len; ++t) {
      out.inputs[b * seq_len + t] =
          static_cast<float>(tokens_[static_cast<std::size_t>(start + t)]);
      out.targets[static_cast<std::size_t>(b * seq_len + t)] =
          tokens_[static_cast<std::size_t>(start + t + 1)];
    }
  }
  return out;
}

SyntheticImageDataset::SyntheticImageDataset(std::int64_t num_classes,
                                             std::int64_t channels,
                                             std::int64_t height,
                                             std::int64_t width,
                                             std::uint64_t seed)
    : num_classes_(num_classes),
      channels_(channels),
      height_(height),
      width_(width) {
  CARAML_CHECK_MSG(num_classes >= 2, "need at least two classes");
  Rng rng(seed);
  class_means_.resize(static_cast<std::size_t>(num_classes * channels));
  for (auto& m : class_means_) {
    m = static_cast<float>(rng.uniform(-1.5, 1.5));
  }
}

SyntheticImageDataset::Batch SyntheticImageDataset::sample_batch(
    std::int64_t batch, Rng& rng) const {
  CARAML_CHECK_MSG(batch > 0, "batch must be positive");
  Batch out;
  out.images = tensor::Tensor({batch, channels_, height_, width_});
  out.labels.resize(static_cast<std::size_t>(batch));
  for (std::int64_t i = 0; i < batch; ++i) {
    const std::int64_t label = rng.uniform_int(0, num_classes_ - 1);
    out.labels[static_cast<std::size_t>(i)] = label;
    for (std::int64_t c = 0; c < channels_; ++c) {
      const float mu =
          class_means_[static_cast<std::size_t>(label * channels_ + c)];
      float* dst = out.images.data() + (i * channels_ + c) * height_ * width_;
      for (std::int64_t p = 0; p < height_ * width_; ++p) {
        dst[p] = mu + static_cast<float>(rng.normal(0.0, 1.0));
      }
    }
  }
  return out;
}

}  // namespace caraml::data
