// Epoch-based data loading: deterministic shuffled epochs without
// replacement (the input-pipeline semantics of the paper's ResNet benchmark,
// which processes "all images of the input dataset once" per epoch), for
// both token streams and indexable datasets.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace caraml::data {

/// Yields every index in [0, size) exactly once per epoch, reshuffled with a
/// deterministic per-epoch seed derived from (base_seed, epoch).
class ShuffledIndexSampler {
 public:
  ShuffledIndexSampler(std::int64_t size, std::uint64_t base_seed);

  std::int64_t size() const { return size_; }
  std::int64_t epoch() const { return epoch_; }
  std::int64_t position() const { return position_; }
  std::int64_t remaining_in_epoch() const { return size_ - position_; }

  /// Next index; rolls into a freshly shuffled epoch when exhausted.
  std::int64_t next();

  /// Next `n` indices (may span an epoch boundary).
  std::vector<std::int64_t> next_batch(std::int64_t n);

  /// Jump to the start of a specific epoch (for resumable training).
  void seek_epoch(std::int64_t epoch);

 private:
  void reshuffle();

  std::int64_t size_;
  std::uint64_t base_seed_;
  std::int64_t epoch_ = 0;
  std::int64_t position_ = 0;
  std::vector<std::int64_t> order_;
};

/// Splits an epoch's samples across data-parallel ranks (Horovod-style
/// sharding): rank r of w sees indices where (i % w) == r of the shuffled
/// order, so ranks never overlap within an epoch.
class ShardedEpochPlan {
 public:
  ShardedEpochPlan(std::int64_t dataset_size, int world_size,
                   std::uint64_t seed);

  /// Shuffled indices owned by `rank` in `epoch`, identical on every caller.
  std::vector<std::int64_t> shard(int rank, std::int64_t epoch) const;

  std::int64_t dataset_size() const { return size_; }
  int world_size() const { return world_; }

 private:
  std::int64_t size_;
  int world_;
  std::uint64_t seed_;
};

}  // namespace caraml::data
