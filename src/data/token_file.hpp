// Binary token-file format — the stand-in for Megatron-LM's preprocessed
// dataset files (the paper ships "tokenized OSCAR data provided with the
// repository"). Layout: 8-byte magic "CARAMLTK", u32 version, u64 token
// count, then int32 token ids. Includes a one-call corpus preprocessor
// (train tokenizer -> encode -> write) mirroring the Megatron preprocessing
// step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/bpe.hpp"

namespace caraml::data {

/// Write tokens to `path`; throws caraml::Error on I/O failure.
void save_token_file(const std::string& path,
                     const std::vector<std::int32_t>& tokens);

/// Read a token file written by save_token_file; validates magic/version
/// and the token count against the file size.
std::vector<std::int32_t> load_token_file(const std::string& path);

struct PreprocessResult {
  std::size_t corpus_bytes = 0;
  std::size_t num_tokens = 0;
  std::size_t vocab_size = 0;
  double bytes_per_token = 0.0;  // compression achieved by BPE
};

/// The Megatron-style preprocessing pipeline: train a BPE tokenizer on the
/// corpus, encode it, and write tokens + tokenizer merge table next to each
/// other ("<prefix>.tokens" / "<prefix>.bpe").
PreprocessResult preprocess_corpus(const std::string& corpus,
                                   std::size_t vocab_size,
                                   const std::string& output_prefix);

/// Load the artifacts written by preprocess_corpus.
std::vector<std::int32_t> load_preprocessed_tokens(
    const std::string& output_prefix);
BpeTokenizer load_preprocessed_tokenizer(const std::string& output_prefix);

}  // namespace caraml::data
