#include "data/token_file.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace caraml::data {

namespace {
constexpr char kMagic[8] = {'C', 'A', 'R', 'A', 'M', 'L', 'T', 'K'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_token_file(const std::string& path,
                     const std::vector<std::int32_t>& tokens) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open token file for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const std::uint64_t count = tokens.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  if (!tokens.empty()) {
    out.write(reinterpret_cast<const char*>(tokens.data()),
              static_cast<std::streamsize>(tokens.size() * sizeof(std::int32_t)));
  }
  if (!out) throw Error("short write to token file: " + path);
}

std::vector<std::int32_t> load_token_file(const std::string& path) {
  constexpr std::uint64_t kHeaderBytes =
      sizeof(kMagic) + sizeof(kVersion) + sizeof(std::uint64_t);
  constexpr std::uint64_t kCountOffset = sizeof(kMagic) + sizeof(kVersion);
  constexpr std::uint64_t kTokenBytes = sizeof(std::int32_t);

  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open token file: " + path);
  in.seekg(0, std::ios::end);
  const auto end_pos = in.tellg();
  if (end_pos < 0) throw Error("cannot determine size of token file: " + path);
  const std::uint64_t file_size = static_cast<std::uint64_t>(end_pos);
  in.seekg(0, std::ios::beg);

  if (file_size < kHeaderBytes) {
    throw ParseError("truncated token file " + path + ": " +
                     std::to_string(file_size) +
                     " bytes, but the header alone needs " +
                     std::to_string(kHeaderBytes));
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw ParseError("bad magic in token file " + path +
                     " (offset 0): expected \"CARAMLTK\"");
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    throw ParseError("unsupported token-file version " +
                     std::to_string(version) + " in " + path + " (offset " +
                     std::to_string(sizeof(kMagic)) + "): expected " +
                     std::to_string(kVersion));
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw ParseError("truncated token-file header: " + path);

  // Validate the declared count against the real file size BEFORE allocating:
  // a corrupt count must produce a diagnostic, not a multi-terabyte
  // allocation. This also rejects trailing garbage after the payload.
  const bool count_overflows =
      count > (std::numeric_limits<std::uint64_t>::max() - kHeaderBytes) /
                  kTokenBytes;
  if (count_overflows || kHeaderBytes + count * kTokenBytes != file_size) {
    const std::string expected =
        count_overflows ? "> 2^64"
                        : std::to_string(kHeaderBytes + count * kTokenBytes);
    throw ParseError("corrupt token file " + path + ": count at offset " +
                     std::to_string(kCountOffset) + " claims " +
                     std::to_string(count) + " token(s), expected file size " +
                     expected + " bytes but found " +
                     std::to_string(file_size) + " bytes");
  }
  std::vector<std::int32_t> tokens(count);
  if (count > 0) {
    in.read(reinterpret_cast<char*>(tokens.data()),
            static_cast<std::streamsize>(count * kTokenBytes));
  }
  if (!in) {
    throw ParseError("short read from token file " + path + " at offset " +
                     std::to_string(kHeaderBytes) + ": wanted " +
                     std::to_string(count * kTokenBytes) + " payload bytes");
  }
  return tokens;
}

PreprocessResult preprocess_corpus(const std::string& corpus,
                                   std::size_t vocab_size,
                                   const std::string& output_prefix) {
  CARAML_CHECK_MSG(!corpus.empty(), "empty corpus");
  BpeTokenizer tokenizer;
  tokenizer.train(corpus, vocab_size);
  const auto tokens = tokenizer.encode(corpus);
  save_token_file(output_prefix + ".tokens", tokens);
  {
    std::ofstream out(output_prefix + ".bpe");
    if (!out) throw Error("cannot write tokenizer: " + output_prefix + ".bpe");
    out << tokenizer.save();
  }
  PreprocessResult result;
  result.corpus_bytes = corpus.size();
  result.num_tokens = tokens.size();
  result.vocab_size = tokenizer.vocab_size();
  result.bytes_per_token =
      tokens.empty() ? 0.0
                     : static_cast<double>(corpus.size()) /
                           static_cast<double>(tokens.size());
  return result;
}

std::vector<std::int32_t> load_preprocessed_tokens(
    const std::string& output_prefix) {
  return load_token_file(output_prefix + ".tokens");
}

BpeTokenizer load_preprocessed_tokenizer(const std::string& output_prefix) {
  std::ifstream in(output_prefix + ".bpe");
  if (!in) throw Error("cannot read tokenizer: " + output_prefix + ".bpe");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return BpeTokenizer::load(buffer.str());
}

}  // namespace caraml::data
