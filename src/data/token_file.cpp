#include "data/token_file.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace caraml::data {

namespace {
constexpr char kMagic[8] = {'C', 'A', 'R', 'A', 'M', 'L', 'T', 'K'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

void save_token_file(const std::string& path,
                     const std::vector<std::int32_t>& tokens) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open token file for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const std::uint64_t count = tokens.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  if (!tokens.empty()) {
    out.write(reinterpret_cast<const char*>(tokens.data()),
              static_cast<std::streamsize>(tokens.size() * sizeof(std::int32_t)));
  }
  if (!out) throw Error("short write to token file: " + path);
}

std::vector<std::int32_t> load_token_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open token file: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw ParseError("bad magic in token file: " + path);
  }
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    throw ParseError("unsupported token-file version in " + path);
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw ParseError("truncated token-file header: " + path);
  std::vector<std::int32_t> tokens(count);
  if (count > 0) {
    in.read(reinterpret_cast<char*>(tokens.data()),
            static_cast<std::streamsize>(count * sizeof(std::int32_t)));
  }
  if (!in) throw ParseError("token file shorter than its header claims: " + path);
  return tokens;
}

PreprocessResult preprocess_corpus(const std::string& corpus,
                                   std::size_t vocab_size,
                                   const std::string& output_prefix) {
  CARAML_CHECK_MSG(!corpus.empty(), "empty corpus");
  BpeTokenizer tokenizer;
  tokenizer.train(corpus, vocab_size);
  const auto tokens = tokenizer.encode(corpus);
  save_token_file(output_prefix + ".tokens", tokens);
  {
    std::ofstream out(output_prefix + ".bpe");
    if (!out) throw Error("cannot write tokenizer: " + output_prefix + ".bpe");
    out << tokenizer.save();
  }
  PreprocessResult result;
  result.corpus_bytes = corpus.size();
  result.num_tokens = tokens.size();
  result.vocab_size = tokenizer.vocab_size();
  result.bytes_per_token =
      tokens.empty() ? 0.0
                     : static_cast<double>(corpus.size()) /
                           static_cast<double>(tokens.size());
  return result;
}

std::vector<std::int32_t> load_preprocessed_tokens(
    const std::string& output_prefix) {
  return load_token_file(output_prefix + ".tokens");
}

BpeTokenizer load_preprocessed_tokenizer(const std::string& output_prefix) {
  std::ifstream in(output_prefix + ".bpe");
  if (!in) throw Error("cannot read tokenizer: " + output_prefix + ".bpe");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return BpeTokenizer::load(buffer.str());
}

}  // namespace caraml::data
