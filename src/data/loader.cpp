#include "data/loader.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace caraml::data {

ShuffledIndexSampler::ShuffledIndexSampler(std::int64_t size,
                                           std::uint64_t base_seed)
    : size_(size), base_seed_(base_seed) {
  CARAML_CHECK_MSG(size >= 1, "sampler needs a non-empty dataset");
  order_.resize(static_cast<std::size_t>(size));
  reshuffle();
}

void ShuffledIndexSampler::reshuffle() {
  std::iota(order_.begin(), order_.end(), 0);
  Rng rng(base_seed_ ^ (0x9E3779B97F4A7C15ULL *
                        static_cast<std::uint64_t>(epoch_ + 1)));
  std::shuffle(order_.begin(), order_.end(), rng);
  position_ = 0;
}

std::int64_t ShuffledIndexSampler::next() {
  if (position_ >= size_) {
    ++epoch_;
    reshuffle();
  }
  return order_[static_cast<std::size_t>(position_++)];
}

std::vector<std::int64_t> ShuffledIndexSampler::next_batch(std::int64_t n) {
  CARAML_CHECK_MSG(n >= 1, "batch must be positive");
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

void ShuffledIndexSampler::seek_epoch(std::int64_t epoch) {
  CARAML_CHECK_MSG(epoch >= 0, "epoch must be non-negative");
  epoch_ = epoch;
  reshuffle();
}

ShardedEpochPlan::ShardedEpochPlan(std::int64_t dataset_size, int world_size,
                                   std::uint64_t seed)
    : size_(dataset_size), world_(world_size), seed_(seed) {
  CARAML_CHECK_MSG(dataset_size >= 1, "empty dataset");
  CARAML_CHECK_MSG(world_size >= 1, "world size must be positive");
}

std::vector<std::int64_t> ShardedEpochPlan::shard(int rank,
                                                  std::int64_t epoch) const {
  CARAML_CHECK_MSG(rank >= 0 && rank < world_, "rank out of range");
  CARAML_CHECK_MSG(epoch >= 0, "epoch must be non-negative");
  std::vector<std::int64_t> order(static_cast<std::size_t>(size_));
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed_ ^ (0x9E3779B97F4A7C15ULL *
                   static_cast<std::uint64_t>(epoch + 1)));
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<std::int64_t> mine;
  for (std::size_t i = static_cast<std::size_t>(rank); i < order.size();
       i += static_cast<std::size_t>(world_)) {
    mine.push_back(order[i]);
  }
  return mine;
}

}  // namespace caraml::data
