// Synthetic dataset generators.
//
// The paper's benchmarks accept real data (OSCAR / ImageNet) or synthetic
// data (the `synthetic` JUBE tag). Without the proprietary corpora we
// generate statistically similar substitutes: a Zipf-distributed word corpus
// standing in for OSCAR text, and label-conditioned Gaussian images standing
// in for ImageNet (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace caraml::data {

/// Generate `num_words` words of OSCAR-like text: a vocabulary of invented
/// words sampled under a Zipf(s≈1.1) law, sentence punctuation included.
std::string synthetic_oscar_text(std::size_t num_words, Rng& rng,
                                 std::size_t vocabulary_words = 512);

/// A contiguous token stream with (input, target) batch sampling for
/// autoregressive training: targets are inputs shifted by one.
class TokenStream {
 public:
  explicit TokenStream(std::vector<std::int32_t> tokens);

  std::size_t size() const { return tokens_.size(); }

  /// Sample a [batch, seq_len] token tensor and the matching batch*seq_len
  /// next-token targets at random offsets.
  struct Batch {
    tensor::Tensor inputs;                  // [B, T] ids as floats
    std::vector<std::int64_t> targets;      // B*T next-token ids
  };
  Batch sample_batch(std::int64_t batch, std::int64_t seq_len, Rng& rng) const;

  /// Largest token id present (for sizing the model's vocabulary).
  std::int32_t max_token() const { return max_token_; }

 private:
  std::vector<std::int32_t> tokens_;
  std::int32_t max_token_ = 0;
};

/// Label-conditioned Gaussian image batches: class k images are N(mu_k, I)
/// per channel, so a real model can actually learn to classify them.
class SyntheticImageDataset {
 public:
  SyntheticImageDataset(std::int64_t num_classes, std::int64_t channels,
                        std::int64_t height, std::int64_t width,
                        std::uint64_t seed);

  struct Batch {
    tensor::Tensor images;                  // [N, C, H, W]
    std::vector<std::int64_t> labels;       // N class ids
  };
  Batch sample_batch(std::int64_t batch, Rng& rng) const;

  std::int64_t num_classes() const { return num_classes_; }

 private:
  std::int64_t num_classes_, channels_, height_, width_;
  std::vector<float> class_means_;  // [num_classes * channels]
};

}  // namespace caraml::data
