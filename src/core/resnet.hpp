// CARAML ResNet50 benchmark (paper §III-A2): trains ResNet50 from scratch
// with Horovod-style data parallelism (TensorFlow path for NVIDIA/AMD,
// Poplar path for Graphcore), reporting images/s, Wh/epoch and images/Wh.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "models/resnet_cost.hpp"
#include "sim/power_model.hpp"

namespace caraml::telemetry {
class Tracer;
}

namespace caraml::core {

struct ResnetRunConfig {
  std::string system_tag = "A100";
  models::ResNetVariant variant = models::ResNetVariant::kResNet50;
  std::int64_t global_batch = 256;
  int devices = 1;        // accelerators used (<= devices_per_node * nodes)
  int num_nodes = 1;
  bool synthetic_data = false;  // synthetic input skips the host-pipeline cap

  // Fault-injection derates (src/fault) — same semantics as LlmRunConfig:
  // time factors >= 1 stretch kernels/transfers, power cap in (0, 1].
  double compute_time_factor = 1.0;
  double power_cap_factor = 1.0;
  double link_time_factor = 1.0;

  /// Extra per-device compute slowdown (device index -> factor >= 1),
  /// multiplied on top of compute_time_factor — see LlmRunConfig.
  std::map<int, double> device_compute_derate;

  /// Trace destination; nullptr = the process-global tracer.
  telemetry::Tracer* trace_sink = nullptr;
};

struct ResnetRunResult {
  std::string system;
  std::int64_t global_batch = 0;
  int devices = 1;
  bool oom = false;
  std::string oom_message;

  double iteration_time_s = 0.0;
  double images_per_s_total = 0.0;      // Fig. 3 / Fig. 4 value
  double images_per_s_per_device = 0.0;
  double avg_power_per_device_w = 0.0;
  double energy_per_epoch_wh = 0.0;     // whole ImageNet epoch (Fig. 3 mid)
  double images_per_wh = 0.0;           // Fig. 3 bottom
  double memory_per_device_bytes = 0.0;

  std::optional<sim::PowerTrace> device0_trace;
};

/// GPU systems (NVIDIA / AMD). `config.devices` spans nodes when
/// devices > devices_per_node (requires the system's inter-node fabric).
ResnetRunResult run_resnet_gpu(const ResnetRunConfig& config);

/// Graphcore (Table III / Fig. 4g): micro-batch capped at 16 by on-chip
/// SRAM; data parallel across IPUs with BSP-synchronized all-reduce.
ResnetRunResult run_resnet_ipu(std::int64_t global_batch, int ipus = 1);

/// Dispatch on the system tag.
ResnetRunResult run_resnet(const ResnetRunConfig& config);

}  // namespace caraml::core
