#include "core/inference.hpp"

#include <algorithm>

#include "sim/memory.hpp"
#include "sim/power_model.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "topo/specs.hpp"
#include "util/error.hpp"

namespace caraml::core {

using topo::NodeSpec;
using topo::SystemRegistry;

double kv_cache_bytes(const models::GptConfig& model, std::int64_t batch,
                      std::int64_t tokens, double bytes_per_value) {
  // K and V, per layer: tokens * hidden values of bytes_per_value each.
  return 2.0 * bytes_per_value * model.num_layers *
         static_cast<double>(model.hidden_size) * static_cast<double>(batch) *
         static_cast<double>(tokens);
}

namespace {

/// Byte widths and tensor-peak scale of one serving precision.
struct ServingDtype {
  double weight_bytes = 2.0;  ///< per parameter
  double kv_bytes = 2.0;      ///< per cached KV element
  double peak_scale = 1.0;    ///< vs DeviceSpec::peak_fp16_flops
};

ServingDtype serving_dtype(const std::string& dtype) {
  if (dtype == "bf16") return {2.0, 2.0, 1.0};
  if (dtype == "fp32") return {4.0, 4.0, 0.5};
  // int8 weights stream at a quarter of fp32 and the int8 tensor pipes run
  // at twice the fp16 rate; the KV cache stays fp16/bf16 — the kernel
  // library's int8 path quantizes weights and activations, not KV history.
  if (dtype == "int8") return {1.0, 2.0, 2.0};
  throw InvalidArgument("unknown inference dtype: '" + dtype +
                        "' (expected fp32, bf16, or int8)");
}

}  // namespace

InferenceResult run_llm_inference(const InferenceConfig& config) {
  TELEMETRY_SPAN("inference/run");
  telemetry::Registry::global().counter("inference/runs").add();
  const NodeSpec& node = SystemRegistry::instance().by_tag(config.system_tag);
  CARAML_CHECK_MSG(node.device.arch == topo::ArchClass::kGpuSimd,
                   "inference model targets GPU systems");
  CARAML_CHECK_MSG(config.batch >= 1 && config.prompt_tokens >= 1 &&
                       config.generate_tokens >= 1,
                   "inference config must be positive");

  const ServingDtype dtype = serving_dtype(config.dtype);

  InferenceResult result;
  result.system = node.display_name;
  result.batch = config.batch;

  const double weight_bytes =
      config.model.total_parameters() * dtype.weight_bytes;
  const double peak_flops = node.device.peak_fp16_flops * dtype.peak_scale;
  const std::int64_t max_context =
      config.prompt_tokens + config.generate_tokens;
  result.kv_cache_bytes = kv_cache_bytes(config.model, config.batch,
                                         max_context, dtype.kv_bytes);
  try {
    sim::MemoryTracker tracker(node.device.name,
                               node.device.mem_capacity_bytes);
    tracker.allocate("weights", weight_bytes);
    tracker.allocate("kv_cache", result.kv_cache_bytes);
    tracker.allocate("workspace", 2.0e9);
  } catch (const OutOfMemory& oom) {
    telemetry::Registry::global().counter("inference/oom").add();
    result.oom = true;
    result.oom_message = oom.what();
    return result;
  }

  // --- prefill: compute-bound over batch * prompt tokens --------------------
  const double prefill_flops = config.model.flops_per_token_forward() *
                               static_cast<double>(config.batch) *
                               static_cast<double>(config.prompt_tokens);
  const double prefill_mfu = node.device.max_mfu_gemm;  // large GEMMs
  result.time_to_first_token_s =
      prefill_flops / (peak_flops * prefill_mfu) +
      node.device.launch_overhead_s * config.model.num_layers;

  // --- decode: bandwidth-bound per step ---------------------------------------
  // Each step reads the weights once (batched across users) plus the live KV
  // cache (average fill: prompt + half the generation).
  const double avg_kv = kv_cache_bytes(
      config.model, config.batch,
      config.prompt_tokens + config.generate_tokens / 2, dtype.kv_bytes);
  const double bytes_per_step = weight_bytes + avg_kv;
  const double decode_flops = config.model.flops_per_token_forward() *
                              static_cast<double>(config.batch);
  const double t_compute =
      decode_flops / (peak_flops * node.device.max_mfu_gemm);
  const double t_memory = bytes_per_step / node.device.mem_bandwidth;
  result.decode_time_per_token_s =
      std::max(t_compute, t_memory) +
      node.device.launch_overhead_s * config.model.num_layers;

  result.tokens_per_s_per_user = 1.0 / result.decode_time_per_token_s;
  result.tokens_per_s_total =
      result.tokens_per_s_per_user * static_cast<double>(config.batch);
  result.request_latency_s =
      result.time_to_first_token_s +
      result.decode_time_per_token_s *
          static_cast<double>(config.generate_tokens);

  // --- power / energy -----------------------------------------------------------
  // Decode runs at low arithmetic utilization; prefill near training MFU.
  const double decode_util =
      node.device.max_mfu_gemm * std::min(1.0, t_compute / t_memory);
  const double decode_fraction =
      result.decode_time_per_token_s * config.generate_tokens /
      result.request_latency_s;
  const double p_prefill =
      sim::busy_power_watts(node.device, node.device.max_mfu_gemm);
  const double p_decode = sim::busy_power_watts(node.device, decode_util);
  result.avg_power_w =
      p_decode * decode_fraction + p_prefill * (1.0 - decode_fraction);

  const double request_energy_wh =
      result.avg_power_w * result.request_latency_s / 3600.0;
  const double generated =
      static_cast<double>(config.batch) * config.generate_tokens;
  result.energy_per_1k_tokens_wh = request_energy_wh / generated * 1000.0;

  // One request on the virtual timeline: a prefill span then a decode span,
  // with the matching power levels as a counter series, so analyse-trace can
  // attribute joules to prefill vs decode.
  if (auto& tracer = telemetry::Tracer::global(); tracer.enabled()) {
    const std::uint32_t dev = tracer.track("dev0");
    tracer.add_span("prefill", dev, 0.0, result.time_to_first_token_s);
    tracer.add_span("decode", dev, result.time_to_first_token_s,
                    result.request_latency_s - result.time_to_first_token_s);
    const std::uint32_t power = tracer.track("power");
    tracer.add_counter("power/dev0_w", "watts", power, 0.0, p_prefill);
    tracer.add_counter("power/dev0_w", "watts", power,
                       result.time_to_first_token_s, p_decode);
    tracer.add_counter("power/dev0_w", "watts", power,
                       result.request_latency_s, p_decode);
  }
  return result;
}

}  // namespace caraml::core
