// CARAML LLM-training benchmark (paper §III-A1): trains a GPT decoder with
// Megatron-LM-style data parallelism (NVIDIA/AMD systems) or Poplar-style
// pipeline parallelism (Graphcore), reporting tokens/s and energy.
//
// The hardware is the simulator (DESIGN.md §2): one training iteration is
// expressed as a task graph — per-device micro-step compute kernels, host
// overhead, gradient ring-all-reduce, optimizer update — executed by the
// discrete-event engine; the resulting busy intervals feed the power model.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "models/gpt_cost.hpp"
#include "sim/power_model.hpp"
#include "topo/specs.hpp"

namespace caraml::telemetry {
class Tracer;
}

namespace caraml::core {

struct LlmRunConfig {
  std::string system_tag = "A100";     // JUBE tag (Table I)
  models::GptConfig model = models::GptConfig::gpt_800m();
  std::int64_t global_batch = 256;     // sequences (GPU) / tokens (IPU)
  std::int64_t micro_batch = 4;        // sequences (paper: 4)
  int data_parallel = -1;              // -1: one rank per device of the node
  int tensor_parallel = 1;
  int pipeline_parallel = 1;
  int num_nodes = 1;
  int devices = -1;                    // -1: all devices of the node
  double exit_duration_min = 60.0;     // paper reports energy for 1 h

  // Fault-injection derates (src/fault): a thermal-throttle or power-cap
  // window overlapping the run slows kernels (time factor >= 1), caps the
  // utilization the power model sees (power factor in (0, 1]), and
  // stretches every ring transfer (link factor >= 1).
  double compute_time_factor = 1.0;
  double power_cap_factor = 1.0;
  double link_time_factor = 1.0;

  /// Extra per-device compute slowdown (device index -> factor >= 1),
  /// multiplied on top of compute_time_factor. Lets tests and the
  /// --derate-device CLI flag build deliberately imbalanced layouts for the
  /// analysis/load-imbalance detector to find.
  std::map<int, double> device_compute_derate;

  /// Where trace events go. nullptr = the process-global tracer (the
  /// --trace-out path); the sweep --analyse hook passes a local tracer so
  /// concurrent workpackages do not interleave events.
  telemetry::Tracer* trace_sink = nullptr;
};

struct LlmRunResult {
  std::string system;
  std::int64_t global_batch = 0;
  int data_parallel = 1;
  bool oom = false;
  std::string oom_message;

  double iteration_time_s = 0.0;
  double tokens_per_s_per_gpu = 0.0;   // the paper's Fig. 2 y-axis
  double tokens_per_s_total = 0.0;
  double mfu = 0.0;                    // achieved / peak FLOP/s
  double avg_power_per_gpu_w = 0.0;
  /// Energy per GPU over exit_duration (Wh) — Fig. 2 middle panel is the
  /// 1-hour value, numerically equal to avg power in W.
  double energy_per_gpu_wh = 0.0;
  double tokens_per_wh = 0.0;          // Fig. 2 bottom panel
  double memory_per_device_bytes = 0.0;

  /// Power trace of device 0 (for jpwr replay / inspection).
  std::optional<sim::PowerTrace> device0_trace;
};

/// Run the GPU/data-parallel (NVIDIA & AMD) LLM benchmark on the simulator.
LlmRunResult run_llm_gpu(const LlmRunConfig& config);

/// Graphcore path (Table II): 117M GPT, layers pipelined over the IPUs of an
/// M2000 POD4, batch counted in tokens, one epoch == one pass over the batch.
struct IpuLlmResult {
  std::int64_t batch_tokens = 0;
  double tokens_per_s = 0.0;        // Table II column 2
  double energy_per_epoch_wh = 0.0; // Table II column 3 (per IPU)
  double tokens_per_wh = 0.0;       // Table II column 4
  double iteration_time_s = 0.0;
  double pipeline_bubble = 0.0;
};
IpuLlmResult run_llm_ipu(std::int64_t batch_tokens,
                         const models::GptConfig& model =
                             models::GptConfig::gpt_117m());

/// True when (global_batch, micro_batch, dp) is a valid Megatron layout —
/// the paper notes batch 16 is impossible at dp=8 with micro-batch 4.
bool llm_layout_valid(std::int64_t global_batch, std::int64_t micro_batch,
                      int data_parallel);

}  // namespace caraml::core
