// The `caraml` command-line tool — the user-facing entry point mirroring the
// paper's Appendix-A jube workflow:
//
//   caraml systems                                     # Table I overview
//   caraml run --script configs/llm_benchmark_nvidia_amd.yaml --tag GH200
//   caraml llm --system GH200 --batch 512              # one Fig. 2 point
//   caraml resnet --system MI250 --batch 256 --devices 2
//   caraml inference --system GH200 --batch 16         # extension benchmark
//   caraml tts --system JEDI --loss 2.2                # time-to-solution
//   caraml combine --dir energy_meas                   # merge per-rank CSVs

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyse.hpp"
#include "chaos/campaign.hpp"
#include "check/layout_model.hpp"
#include "check/lint.hpp"
#include "check/rules.hpp"
#include "core/caraml.hpp"
#include "core/experiments.hpp"
#include "core/inference.hpp"
#include "core/resilient.hpp"
#include "core/time_to_solution.hpp"
#include "fault/fault.hpp"
#include "power/clock.hpp"
#include "power/combine.hpp"
#include "power/methods_sim.hpp"
#include "power/scope.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "util/units.hpp"

namespace {

using namespace caraml;

// ---------------------------------------------------------------------------
// Telemetry plumbing shared by the benchmark subcommands.
// ---------------------------------------------------------------------------

void add_telemetry_options(ArgParser& parser) {
  parser.add_option("metrics-out",
                    "directory for metrics.csv/json, energy CSVs and "
                    "manifest.jsonl ('' = off)",
                    std::string(""));
  parser.add_option("trace-out", "Chrome-trace JSON file ('' = off)",
                    std::string(""));
  parser.add_option("log-format", "log output format: text|json",
                    std::string("text"));
}

// ---------------------------------------------------------------------------
// Fault-injection flags shared by llm / resnet / inference / run.
// ---------------------------------------------------------------------------

void add_fault_options(ArgParser& parser) {
  parser.add_option("fault-plan", "YAML fault-plan file ('' = none)",
                    std::string(""));
  parser.add_option("fault-seed", "fault-injection seed", std::string("0"));
  parser.add_option("fault-rate",
                    "injected faults per simulated minute (0 = off)",
                    std::string("0"));
  parser.add_option("fault-horizon",
                    "simulated seconds the generated plan covers",
                    std::string("60"));
  parser.add_option("fault-steps", "training steps of the resilient run",
                    std::string("50"));
  parser.add_option("checkpoint-every", "steps between checkpoints",
                    std::string("10"));
  parser.add_option("checkpoint-dir",
                    "persist the latest checkpoint here ('' = off)",
                    std::string(""));
  parser.add_option("retries", "max attempts per failure", std::string("3"));
}

bool fault_active(const ArgParser& parser) {
  return !parser.get("fault-plan").empty() ||
         parser.get_double("fault-rate") > 0.0;
}

core::ResilienceOptions resilience_from_parser(const ArgParser& parser,
                                               int num_devices) {
  core::ResilienceOptions options;
  if (!parser.get("fault-plan").empty()) {
    options.plan = fault::FaultPlan::from_yaml_file(parser.get("fault-plan"));
  } else {
    options.plan = fault::FaultPlan::generate(
        static_cast<std::uint64_t>(parser.get_int("fault-seed")),
        parser.get_double("fault-rate"), parser.get_double("fault-horizon"),
        std::max(1, num_devices));
  }
  options.retry.seed = options.plan.seed;
  options.retry.max_attempts = static_cast<int>(parser.get_int("retries"));
  options.steps = parser.get_int("fault-steps");
  options.checkpoint_every = parser.get_int("checkpoint-every");
  options.checkpoint_dir = parser.get("checkpoint-dir");
  return options;
}

std::map<std::string, std::string> fault_config_entries(
    const ArgParser& parser) {
  return {{"fault_plan", parser.get("fault-plan")},
          {"fault_seed", parser.get("fault-seed")},
          {"fault_rate", parser.get("fault-rate")},
          {"retries", parser.get("retries")}};
}

/// Parse a --derate-device spec "d:f[,d:f]" into {device -> factor}.
std::map<int, double> parse_device_derates(const std::string& spec) {
  std::map<int, double> derates;
  if (spec.empty()) return derates;
  for (const auto& entry : str::split(spec, ',')) {
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      throw InvalidArgument("--derate-device expects d:f[,d:f], got '" +
                            spec + "'");
    }
    derates[static_cast<int>(str::parse_int(entry.substr(0, colon)))] =
        str::parse_double(entry.substr(colon + 1));
  }
  return derates;
}

void print_report(const fault::RunReport& report,
                  const fault::FaultPlan& plan) {
  std::cout << "  fault plan    : seed " << plan.seed << ", "
            << plan.events.size() << " event(s), fingerprint "
            << report.fault_fingerprint << "\n"
            << "  steps         : " << report.steps_completed << "/"
            << report.steps_total << " (replayed " << report.steps_replayed
            << ")\n"
            << "  recovery      : " << report.restarts << " restart(s), "
            << report.oom_retries << " OOM retr(y/ies), "
            << report.checkpoints_saved << " checkpoint(s), "
            << units::format_fixed(report.lost_time_s, 2) << " s lost\n";
  for (const auto& incident : report.incidents) {
    std::cout << "  incident      : " << incident << "\n";
  }
}

struct TelemetryCli {
  std::string metrics_out;
  std::string trace_out;
  std::string command;
  /// Compute precision the run used ("fp32"/"bf16"/"int8"); stamped into the
  /// manifest when non-empty. Commands with a --dtype flag set this after
  /// parsing; commands without one leave it out of their manifest lines.
  std::string dtype;

  /// Apply the parsed telemetry flags: set the log format and enable the
  /// global tracer when any output was requested (spans cost nothing
  /// otherwise).
  static TelemetryCli from_parser(const ArgParser& parser,
                                  std::string command) {
    TelemetryCli t;
    t.metrics_out = parser.get("metrics-out");
    t.trace_out = parser.get("trace-out");
    t.command = std::move(command);
    log::set_format(log::format_from_name(parser.get("log-format")));
    if (!t.trace_out.empty()) telemetry::Tracer::global().set_enabled(true);
    return t;
  }

  bool active() const { return !metrics_out.empty() || !trace_out.empty(); }

  /// Failed runs must still leave their telemetry behind: when the command
  /// throws before it could call finish(), this flushes whatever the global
  /// tracer and metrics registry accumulated and appends a failed-status
  /// manifest row. Best-effort — a flush error never masks the original one.
  ~TelemetryCli() {
    if (finished_ || !active()) return;
    try {
      auto& tracer = telemetry::Tracer::global();
      if (!trace_out.empty() && tracer.enabled()) {
        tracer.write_chrome_trace(trace_out);
        std::cerr << "telemetry: trace written to " << trace_out
                  << " (run did not finish)\n";
      }
      if (!metrics_out.empty()) {
        telemetry::Registry::global().write_files(metrics_out);
        telemetry::Manifest manifest;
        manifest.command = command;
        manifest.timestamp = telemetry::iso8601_utc_now();
        manifest.git_revision = telemetry::git_describe();
        manifest.dtype = dtype;
        manifest.status = "failed";
        telemetry::append_manifest_line(manifest,
                                        metrics_out + "/manifest.jsonl");
        std::cerr << "telemetry: metrics + failed manifest written to "
                  << metrics_out << "/\n";
      }
    } catch (...) {
    }
  }

  TelemetryCli() = default;
  TelemetryCli(TelemetryCli&& other) noexcept
      : metrics_out(std::move(other.metrics_out)),
        trace_out(std::move(other.trace_out)),
        command(std::move(other.command)),
        dtype(std::move(other.dtype)),
        finished_(other.finished_) {
    other.finished_ = true;  // the source must not flush again
  }
  TelemetryCli(const TelemetryCli&) = delete;
  TelemetryCli& operator=(const TelemetryCli&) = delete;
  TelemetryCli& operator=(TelemetryCli&&) = delete;

  /// Post-run export: replay the simulated device power trace through a
  /// PowerScope (fast-forwarded with a ScaledClock, as jpwr would sample the
  /// real device), write energy/power CSVs + metrics files + a manifest line
  /// into --metrics-out, and the combined Chrome trace to --trace-out.
  /// Sweep execution provenance for the manifest's "sweep" block.
  struct SweepInfo {
    std::int64_t workpackages = 0;
    int jobs = 0;
    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;
  };

  void finish(const std::string& command, const std::string& system_tag,
              const std::map<std::string, std::string>& config,
              const std::map<std::string, double>& results,
              const std::optional<sim::PowerTrace>& device_trace,
              const fault::RunReport* report = nullptr,
              const SweepInfo* sweep = nullptr) const {
    finished_ = true;  // a deliberate export supersedes the destructor flush
    telemetry::Manifest manifest;
    manifest.command = command;
    manifest.timestamp = telemetry::iso8601_utc_now();
    manifest.system_tag = system_tag;
    manifest.git_revision = telemetry::git_describe();
    manifest.config = config;
    manifest.results = results;
    manifest.num_threads =
        static_cast<std::int64_t>(ThreadPool::global().size());
    manifest.dtype = dtype;
    if (sweep != nullptr) {
      manifest.sweep_workpackages = sweep->workpackages;
      manifest.sweep_jobs = sweep->jobs;
      manifest.sweep_cache_hits = sweep->cache_hits;
      manifest.sweep_cache_misses = sweep->cache_misses;
    }
    if (report != nullptr) {
      manifest.status = report->status;
      manifest.fault_seed = report->fault_seed;
      manifest.fault_fingerprint = report->fault_fingerprint;
      manifest.fault_events = report->fault_events;
      manifest.oom_retries = report->oom_retries;
      manifest.restarts = report->restarts;
      manifest.checkpoints = report->checkpoints_saved;
      manifest.steps_replayed = report->steps_replayed;
    }

    auto& tracer = telemetry::Tracer::global();
    if (!metrics_out.empty() && device_trace.has_value()) {
      // Sample the virtual trace at ~50 points, compressed to <= 0.2 wall
      // seconds. interval_ms is a wall period, so the clock-time spacing is
      // horizon / 50 once the ScaledClock speed-up is applied.
      const double horizon = std::max(device_trace->horizon(), 1e-6);
      const double speed = std::max(1.0, horizon / 0.2);
      const double wall_interval_ms = 1000.0 * horizon / (50.0 * speed);
      power::PowerScope scope(
          {power::make_pynvml_sim({*device_trace})}, wall_interval_ms,
          std::make_shared<power::ScaledClock>(speed));
      std::this_thread::sleep_for(
          std::chrono::duration<double>(horizon / speed));
      scope.stop();

      power::ExportOptions options;
      options.out_dir = metrics_out;
      power::export_results(scope, options);
      if (tracer.enabled()) power::append_counter_track(scope, tracer);

      const auto diag = scope.diagnostics();
      manifest.power_samples = diag.samples;
      manifest.sample_overruns = diag.overruns;
      manifest.sample_jitter_ms_mean = diag.jitter_ms_mean;
      manifest.sample_jitter_ms_max = diag.jitter_ms_max;
      manifest.method_errors = diag.method_errors;
      manifest.methods_quarantined = diag.methods_quarantined;
    }
    if (!metrics_out.empty()) {
      telemetry::Registry::global().write_files(metrics_out);
      telemetry::append_manifest_line(manifest,
                                      metrics_out + "/manifest.jsonl");
      std::cout << "telemetry: metrics + manifest written to " << metrics_out
                << "/\n";
    }
    if (!trace_out.empty()) {
      tracer.write_chrome_trace(trace_out);
      std::cout << "telemetry: trace written to " << trace_out << " ("
                << tracer.num_events() << " events)\n";
    }
  }

 private:
  mutable bool finished_ = false;
};

int cmd_systems() {
  TextTable table({"tag", "system", "devices", "accelerator", "peak FP16",
                   "memory", "TDP", "peer link"});
  for (const auto& node : topo::SystemRegistry::instance().all()) {
    table.add_row({node.jube_tag, node.display_name,
                   std::to_string(node.devices_per_node), node.device.name,
                   units::format_flops(node.device.peak_fp16_flops),
                   units::format_bytes(node.device.mem_capacity_bytes),
                   units::format_watts(node.device.tdp_watts),
                   node.peer_link.name});
  }
  std::cout << "Systems (paper Table I):\n" << table.render();
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  ArgParser parser("caraml run", "run a JUBE benchmark script");
  parser.add_option("script", "YAML script path");
  parser.add_option("tag", "system tag", std::string(""));
  parser.add_option("step-timeout", "seconds per step attempt (0 = none)",
                    std::string("0"));
  parser.add_option("sweep-jobs",
                    "concurrent workpackages (1 = sequential, 0 = one per "
                    "hardware thread)",
                    std::string("1"));
  parser.add_option("sweep-cache",
                    "JSONL result-cache file; re-runs skip cached "
                    "workpackages ('' = off)",
                    std::string(""));
  parser.add_flag("analyse",
                  "run bottleneck analysis per workpackage; annotates every "
                  "manifest row with the ranked top bottlenecks");
  parser.add_flag("skip-doomed",
                  "statically analyze each workpackage's parallel layout "
                  "before dispatch and skip those the layout analyzer proves "
                  "cannot run (invalid layout or certain OOM)");
  add_telemetry_options(parser);
  add_fault_options(parser);
  if (!parser.parse(args)) return 0;
  const TelemetryCli telemetry = TelemetryCli::from_parser(parser, "run");

  jube::Benchmark benchmark =
      jube::Benchmark::from_yaml_file(parser.get("script"));
  for (const auto& pattern : core::caraml_patterns()) {
    benchmark.add_pattern(pattern);
  }
  jube::ActionRegistry registry;
  core::register_caraml_actions(registry);
  std::set<std::string> tags;
  if (!parser.get("tag").empty()) tags.insert(parser.get("tag"));

  const bool analyse = parser.get_flag("analyse");
  if (analyse) {
    // Thread the flag into every workpackage context, same as the fault
    // flags below; the train actions emit bottlenecks/top_bottleneck lines
    // the analyse patterns lift into the manifest rows.
    jube::ParameterSet analyse_set;
    analyse_set.name = "analysis";
    analyse_set.parameters = {jube::Parameter{"analyse", {"1"}, ""}};
    benchmark.add_parameter_set(std::move(analyse_set));
  }

  jube::SweepOptions sweep;
  sweep.jobs = static_cast<int>(parser.get_int("sweep-jobs"));
  sweep.cache_path = parser.get("sweep-cache");
  if (parser.get_flag("skip-doomed")) {
    sweep.static_gate = [](const jube::Context& context,
                           const std::vector<std::string>& actions) {
      return check::workpackage_doom_reason(context, actions);
    };
  }
  if (!parser.get("fault-plan").empty()) {
    // A fault-plan file changes what workpackages experience without leaving
    // a trace in their contexts' values alone — fold its fingerprint into
    // the cache identity so cached results never cross fault schedules.
    // (Generated plans are covered by the fault_* context parameters below.)
    sweep.fault_fingerprint =
        fault::FaultPlan::from_yaml_file(parser.get("fault-plan"))
            .fingerprint();
  }

  const bool resilient =
      fault_active(parser) || parser.get_double("step-timeout") > 0.0;
  jube::RunResult result;
  if (resilient) {
    if (fault_active(parser)) {
      // Thread the fault flags into every workpackage context so the train
      // actions pick them up (see fault_requested in caraml.cpp).
      const auto single = [](const std::string& name,
                             const std::string& value) {
        return jube::Parameter{name, {value}, ""};
      };
      jube::ParameterSet fault_set;
      fault_set.name = "fault_injection";
      fault_set.parameters = {
          single("fault_plan", parser.get("fault-plan")),
          single("fault_seed", parser.get("fault-seed")),
          single("fault_rate", parser.get("fault-rate")),
          single("fault_horizon_s", parser.get("fault-horizon")),
          single("fault_steps", parser.get("fault-steps")),
          single("checkpoint_every", parser.get("checkpoint-every")),
          single("checkpoint_dir", parser.get("checkpoint-dir")),
          single("fault_retries", parser.get("retries")),
      };
      benchmark.add_parameter_set(std::move(fault_set));
    }
    jube::RunOptions options;
    options.retry.max_attempts = static_cast<int>(parser.get_int("retries"));
    options.retry.seed =
        static_cast<std::uint64_t>(parser.get_int("fault-seed"));
    options.step_timeout_s = parser.get_double("step-timeout");
    result = benchmark.run(registry, tags, options, sweep);
  } else {
    result = benchmark.run(registry, tags, sweep);
  }
  std::cout << "benchmark '" << benchmark.name() << "': "
            << result.workpackages.size() << " workpackages";
  if (sweep.jobs != 1) std::cout << " (jobs=" << sweep.jobs << ")";
  if (result.skipped > 0) {
    std::cout << ", " << result.skipped << " skipped as statically doomed";
  }
  std::cout << "\n";
  if (!sweep.cache_path.empty()) {
    std::cout << "sweep cache " << sweep.cache_path << ": "
              << result.cache_hits << " hit(s), " << result.cache_misses
              << " miss(es)\n";
  }
  const bool llm = benchmark.name().find("llm") != std::string::npos;
  const bool smoke = benchmark.name().find("smoke") != std::string::npos;
  std::vector<std::string> columns =
      smoke ? std::vector<std::string>{"shard", "sleep_ms", "slept_ms",
                                       "status"}
      : llm ? std::vector<std::string>{"system", "global_batch", "dtype",
                                       "tokens_per_s", "energy_wh",
                                       "tokens_per_wh", "status"}
            : std::vector<std::string>{"system", "global_batch", "devices",
                                       "images_per_s", "energy_wh",
                                       "images_per_wh", "status"};
  if (analyse) columns.push_back("top_bottleneck");
  std::cout << result.table(columns).render();
  int failed = 0;
  for (const auto& wp : result.workpackages) {
    if (wp.status == "failed") ++failed;
  }

  if (telemetry.active()) {
    TelemetryCli::SweepInfo info;
    info.workpackages =
        static_cast<std::int64_t>(result.workpackages.size());
    info.jobs = sweep.jobs;
    info.cache_hits = static_cast<std::int64_t>(result.cache_hits);
    info.cache_misses = static_cast<std::int64_t>(result.cache_misses);
    telemetry.finish(
        "run", parser.get("tag"),
        {{"script", parser.get("script")},
         {"sweep_jobs", parser.get("sweep-jobs")},
         {"sweep_cache", parser.get("sweep-cache")}},
        {{"workpackages",
          static_cast<double>(result.workpackages.size())},
         {"failed", static_cast<double>(failed)}},
        std::nullopt, nullptr, &info);
  }

  if (failed > 0) {
    std::cout << failed << " workpackage(s) failed\n";
    return 1;
  }
  return 0;
}

int cmd_llm(const std::vector<std::string>& args) {
  ArgParser parser("caraml llm", "one LLM-training benchmark point");
  parser.add_option("system", "system tag", std::string("A100"));
  parser.add_option("batch", "global batch (sequences; tokens for GC200)",
                    std::string("256"));
  parser.add_option("micro-batch", "micro batch", std::string("4"));
  parser.add_option("devices", "devices (-1 = full node)", std::string("-1"));
  parser.add_option("tp", "tensor parallel", std::string("1"));
  parser.add_option("pp", "pipeline parallel", std::string("1"));
  parser.add_option("nodes", "number of nodes", std::string("1"));
  parser.add_option("model", "117M|800M|13B|175B", std::string("800M"));
  parser.add_option("dtype",
                    "training precision: bf16 (mixed precision, default) | "
                    "fp32 (int8 is inference-only)",
                    std::string("bf16"));
  parser.add_option("derate-device",
                    "per-device compute slowdown d:f[,d:f] (factor >= 1) — "
                    "builds an imbalanced layout for analyse-trace",
                    std::string(""));
  add_telemetry_options(parser);
  add_fault_options(parser);
  if (!parser.parse(args)) return 0;
  TelemetryCli telemetry = TelemetryCli::from_parser(parser, "llm");

  if (parser.get("system") == "GC200") {
    const auto result = core::run_llm_ipu(parser.get_int("batch"));
    std::cout << "IPU GC200 (POD4), " << result.batch_tokens
              << "-token batch:\n"
              << "  tokens/s      : "
              << units::format_fixed(result.tokens_per_s, 2) << "\n"
              << "  Wh/epoch/IPU  : "
              << units::format_fixed(result.energy_per_epoch_wh, 2) << "\n"
              << "  tokens/Wh     : "
              << units::format_fixed(result.tokens_per_wh, 2) << "\n"
              << "  bubble        : "
              << units::format_fixed(result.pipeline_bubble, 3) << "\n";
    if (telemetry.active()) {
      telemetry.finish(
          "llm", "GC200",
          {{"batch_tokens", std::to_string(result.batch_tokens)}},
          {{"tokens_per_s", result.tokens_per_s},
           {"energy_per_epoch_wh", result.energy_per_epoch_wh},
           {"tokens_per_wh", result.tokens_per_wh}},
          std::nullopt);
    }
    return 0;
  }

  core::LlmRunConfig config;
  config.system_tag = parser.get("system");
  config.global_batch = parser.get_int("batch");
  config.micro_batch = parser.get_int("micro-batch");
  config.devices = static_cast<int>(parser.get_int("devices"));
  config.tensor_parallel = static_cast<int>(parser.get_int("tp"));
  config.pipeline_parallel = static_cast<int>(parser.get_int("pp"));
  config.num_nodes = static_cast<int>(parser.get_int("nodes"));
  config.device_compute_derate =
      parse_device_derates(parser.get("derate-device"));
  const std::string model = parser.get("model");
  if (model == "117M") config.model = models::GptConfig::gpt_117m();
  else if (model == "800M") config.model = models::GptConfig::gpt_800m();
  else if (model == "13B") config.model = models::GptConfig::gpt_13b();
  else if (model == "175B") config.model = models::GptConfig::gpt_175b();
  else throw caraml::InvalidArgument("unknown model: " + model);
  const std::string dtype = parser.get("dtype");
  if (dtype == "fp32") {
    config.model.mixed_precision = false;  // 4-byte state, half tensor peak
  } else if (dtype == "int8") {
    throw caraml::InvalidArgument(
        "int8 is inference-only; `caraml llm` trains in bf16 or fp32 "
        "(use `caraml inference --dtype int8`)");
  } else if (dtype != "bf16") {
    throw caraml::InvalidArgument("unknown dtype: '" + dtype +
                                  "' (expected bf16 or fp32)");
  }
  telemetry.dtype = dtype;

  std::map<std::string, std::string> run_config = {
      {"model", config.model.name},
      {"dtype", dtype},
      {"global_batch", std::to_string(config.global_batch)},
      {"micro_batch", std::to_string(config.micro_batch)},
      {"devices", std::to_string(config.devices)},
      {"tp", std::to_string(config.tensor_parallel)},
      {"pp", std::to_string(config.pipeline_parallel)},
      {"nodes", std::to_string(config.num_nodes)}};

  if (fault_active(parser)) {
    const auto& node =
        topo::SystemRegistry::instance().by_tag(config.system_tag);
    const int devices =
        (config.devices > 0 ? config.devices : node.devices_per_node) *
        config.num_nodes;
    const auto options = resilience_from_parser(parser, devices);
    const auto resilient = core::run_llm_resilient(config, options);
    for (const auto& [key, value] : fault_config_entries(parser)) {
      run_config[key] = value;
    }
    std::cout << config.system_tag << ", " << config.model.name
              << ": resilient run -> " << resilient.report.status << "\n";
    print_report(resilient.report, options.plan);
    std::cout << "  micro batch   : " << resilient.final_micro_batch << "\n"
              << "  eff tokens/s  : "
              << units::format_fixed(resilient.effective_tokens_per_s_total, 1)
              << "\n"
              << "  eff power/GPU : "
              << units::format_watts(resilient.effective_avg_power_per_gpu_w)
              << "\n";
    if (telemetry.active()) {
      telemetry.finish(
          "llm", config.system_tag, run_config,
          {{"effective_tokens_per_s", resilient.effective_tokens_per_s_total},
           {"effective_avg_power_per_gpu_w",
            resilient.effective_avg_power_per_gpu_w},
           {"effective_energy_per_gpu_wh",
            resilient.effective_energy_per_gpu_wh},
           {"steps_completed",
            static_cast<double>(resilient.report.steps_completed)},
           {"final_micro_batch",
            static_cast<double>(resilient.final_micro_batch)}},
          resilient.base.device0_trace, &resilient.report);
    }
    return resilient.report.status == "failed" ? 1 : 0;
  }

  const auto result = core::run_llm_gpu(config);
  if (result.oom) {
    std::cout << "OOM: " << result.oom_message << "\n";
    if (telemetry.active()) {
      telemetry.finish("llm", config.system_tag, run_config, {{"oom", 1.0}},
                       std::nullopt);
    }
    return 1;
  }
  if (telemetry.active()) {
    telemetry.finish("llm", config.system_tag, run_config,
                     {{"iteration_time_s", result.iteration_time_s},
                      {"tokens_per_s_per_gpu", result.tokens_per_s_per_gpu},
                      {"tokens_per_s_total", result.tokens_per_s_total},
                      {"mfu", result.mfu},
                      {"avg_power_per_gpu_w", result.avg_power_per_gpu_w},
                      {"tokens_per_wh", result.tokens_per_wh}},
                     result.device0_trace);
  }
  std::cout << result.system << ", " << config.model.name << ", batch "
            << result.global_batch << " (dp=" << result.data_parallel
            << ", tp=" << config.tensor_parallel
            << ", pp=" << config.pipeline_parallel << "):\n"
            << "  tokens/s/GPU  : "
            << units::format_fixed(result.tokens_per_s_per_gpu, 1) << "\n"
            << "  tokens/s total: "
            << units::format_fixed(result.tokens_per_s_total, 1) << "\n"
            << "  MFU           : "
            << units::format_fixed(result.mfu * 100, 1) << " %\n"
            << "  avg power/GPU : "
            << units::format_watts(result.avg_power_per_gpu_w) << "\n"
            << "  tokens/Wh     : "
            << units::format_fixed(result.tokens_per_wh, 0) << "\n"
            << "  memory/device : "
            << units::format_bytes(result.memory_per_device_bytes) << "\n";
  return 0;
}

int cmd_resnet(const std::vector<std::string>& args) {
  ArgParser parser("caraml resnet", "one ResNet50 benchmark point");
  parser.add_option("system", "system tag", std::string("A100"));
  parser.add_option("batch", "global batch", std::string("256"));
  parser.add_option("devices", "accelerator count", std::string("1"));
  parser.add_flag("synthetic", "use synthetic data (skip host pipeline)");
  parser.add_option("variant", "resnet18|resnet34|resnet50",
                    std::string("resnet50"));
  parser.add_option("derate-device",
                    "per-device compute slowdown d:f[,d:f] (factor >= 1)",
                    std::string(""));
  add_telemetry_options(parser);
  add_fault_options(parser);
  if (!parser.parse(args)) return 0;
  const TelemetryCli telemetry = TelemetryCli::from_parser(parser, "resnet");

  core::ResnetRunConfig config;
  config.system_tag = parser.get("system");
  config.global_batch = parser.get_int("batch");
  config.devices = static_cast<int>(parser.get_int("devices"));
  config.synthetic_data = parser.get_flag("synthetic");
  config.device_compute_derate =
      parse_device_derates(parser.get("derate-device"));
  const std::string variant = parser.get("variant");
  if (variant == "resnet18") config.variant = models::ResNetVariant::kResNet18;
  else if (variant == "resnet34") config.variant = models::ResNetVariant::kResNet34;
  else if (variant == "resnet50") config.variant = models::ResNetVariant::kResNet50;
  else throw caraml::InvalidArgument("unknown variant: " + variant);
  std::map<std::string, std::string> run_config = {
      {"variant", variant},
      {"global_batch", std::to_string(config.global_batch)},
      {"devices", std::to_string(config.devices)},
      {"synthetic", config.synthetic_data ? "1" : "0"}};

  if (fault_active(parser)) {
    const auto options =
        resilience_from_parser(parser, std::max(1, config.devices));
    const auto resilient = core::run_resnet_resilient(config, options);
    for (const auto& [key, value] : fault_config_entries(parser)) {
      run_config[key] = value;
    }
    std::cout << config.system_tag << ", ResNet: resilient run -> "
              << resilient.report.status << "\n";
    print_report(resilient.report, options.plan);
    std::cout << "  global batch  : " << resilient.final_global_batch << "\n"
              << "  eff images/s  : "
              << units::format_fixed(resilient.effective_images_per_s_total, 1)
              << "\n"
              << "  eff power/dev : "
              << units::format_watts(
                     resilient.effective_avg_power_per_device_w)
              << "\n";
    if (telemetry.active()) {
      telemetry.finish(
          "resnet", config.system_tag, run_config,
          {{"effective_images_per_s", resilient.effective_images_per_s_total},
           {"effective_avg_power_per_device_w",
            resilient.effective_avg_power_per_device_w},
           {"effective_energy_per_device_wh",
            resilient.effective_energy_per_device_wh},
           {"steps_completed",
            static_cast<double>(resilient.report.steps_completed)},
           {"final_global_batch",
            static_cast<double>(resilient.final_global_batch)}},
          resilient.base.device0_trace, &resilient.report);
    }
    return resilient.report.status == "failed" ? 1 : 0;
  }

  const auto result = core::run_resnet(config);
  if (result.oom) {
    std::cout << "OOM: " << result.oom_message << "\n";
    if (telemetry.active()) {
      telemetry.finish("resnet", config.system_tag, run_config,
                       {{"oom", 1.0}}, std::nullopt);
    }
    return 1;
  }
  if (telemetry.active()) {
    telemetry.finish(
        "resnet", config.system_tag, run_config,
        {{"iteration_time_s", result.iteration_time_s},
         {"images_per_s_total", result.images_per_s_total},
         {"avg_power_per_device_w", result.avg_power_per_device_w},
         {"energy_per_epoch_wh", result.energy_per_epoch_wh},
         {"images_per_wh", result.images_per_wh}},
        result.device0_trace);
  }
  std::cout << result.system << ", batch " << result.global_batch << " on "
            << result.devices << " device(s):\n"
            << "  images/s      : "
            << units::format_fixed(result.images_per_s_total, 1) << "\n"
            << "  avg power/dev : "
            << units::format_watts(result.avg_power_per_device_w) << "\n"
            << "  Wh/epoch      : "
            << units::format_fixed(result.energy_per_epoch_wh, 1) << "\n"
            << "  images/Wh     : "
            << units::format_fixed(result.images_per_wh, 0) << "\n";
  return 0;
}

int cmd_inference(const std::vector<std::string>& args) {
  ArgParser parser("caraml inference", "LLM inference extension benchmark");
  parser.add_option("system", "system tag", std::string("GH200"));
  parser.add_option("batch", "concurrent sequences", std::string("8"));
  parser.add_option("prompt", "prompt tokens", std::string("512"));
  parser.add_option("generate", "generated tokens", std::string("128"));
  parser.add_option("dtype",
                    "serving precision: bf16 (default) | fp32 | int8 "
                    "(quantized weights, 2x prefill peak)",
                    std::string("bf16"));
  add_telemetry_options(parser);
  add_fault_options(parser);
  if (!parser.parse(args)) return 0;
  TelemetryCli telemetry = TelemetryCli::from_parser(parser, "inference");

  core::InferenceConfig config;
  config.system_tag = parser.get("system");
  config.batch = parser.get_int("batch");
  config.prompt_tokens = parser.get_int("prompt");
  config.generate_tokens = parser.get_int("generate");
  config.dtype = parser.get("dtype");
  telemetry.dtype = config.dtype;

  // Inference has no step timeline to checkpoint; fault flags stamp the
  // manifest with the plan's provenance and retry a flaky run.
  std::optional<core::ResilienceOptions> resilience;
  fault::RunReport report;
  if (fault_active(parser)) {
    resilience = resilience_from_parser(parser, 1);
    report.fault_seed = resilience->plan.seed;
    report.fault_fingerprint = resilience->plan.fingerprint();
    report.fault_events =
        static_cast<std::int64_t>(resilience->plan.events.size());
  }
  std::map<std::string, std::string> run_config = {
      {"batch", std::to_string(config.batch)},
      {"dtype", config.dtype},
      {"prompt_tokens", std::to_string(config.prompt_tokens)},
      {"generate_tokens", std::to_string(config.generate_tokens)}};
  if (resilience.has_value()) {
    for (const auto& [key, value] : fault_config_entries(parser)) {
      run_config[key] = value;
    }
  }

  core::InferenceResult result;
  if (resilience.has_value()) {
    const fault::RetryOutcome outcome = fault::retry_with_backoff(
        "inference", resilience->retry,
        [&]() { result = core::run_llm_inference(config); });
    if (!outcome.succeeded) {
      report.status = "failed";
      report.incidents.push_back(outcome.last_error);
      std::cout << "inference failed after " << outcome.attempts
                << " attempt(s): " << outcome.last_error << "\n";
      if (telemetry.active()) {
        telemetry.finish("inference", config.system_tag, run_config,
                         {{"attempts", static_cast<double>(outcome.attempts)}},
                         std::nullopt, &report);
      }
      return 1;
    }
    if (outcome.attempts > 1) report.status = "degraded";
  } else {
    result = core::run_llm_inference(config);
  }

  if (result.oom) {
    if (resilience.has_value()) report.status = "failed";
    std::cout << "OOM: " << result.oom_message << "\n";
    if (telemetry.active()) {
      telemetry.finish("inference", config.system_tag, run_config,
                       {{"oom", 1.0}}, std::nullopt,
                       resilience.has_value() ? &report : nullptr);
    }
    return 1;
  }
  if (telemetry.active()) {
    telemetry.finish(
        "inference", config.system_tag, run_config,
        {{"time_to_first_token_s", result.time_to_first_token_s},
         {"tokens_per_s_per_user", result.tokens_per_s_per_user},
         {"tokens_per_s_total", result.tokens_per_s_total},
         {"energy_per_1k_tokens_wh", result.energy_per_1k_tokens_wh}},
        std::nullopt, resilience.has_value() ? &report : nullptr);
  }
  std::cout << result.system << ", batch " << result.batch << ", "
            << config.dtype << ":\n"
            << "  time-to-first-token : "
            << units::format_seconds(result.time_to_first_token_s) << "\n"
            << "  tokens/s/user       : "
            << units::format_fixed(result.tokens_per_s_per_user, 1) << "\n"
            << "  tokens/s total      : "
            << units::format_fixed(result.tokens_per_s_total, 1) << "\n"
            << "  Wh / 1k tokens      : "
            << units::format_fixed(result.energy_per_1k_tokens_wh, 3) << "\n"
            << "  KV cache            : "
            << units::format_bytes(result.kv_cache_bytes) << "\n";
  return 0;
}

int cmd_lint(const std::vector<std::string>& args) {
  ArgParser parser("caraml lint",
                   "statically validate suite inputs (JUBE scripts, fault "
                   "plans, calibration tables) without running anything");
  parser.add_option("format", "report format: human|json",
                    std::string("human"));
  parser.add_option("json-out",
                    "also write the JSON report here ('' = off)",
                    std::string(""));
  parser.add_flag("strict", "treat warnings as errors for the exit code");
  parser.add_flag("list-rules", "print the rule catalogue and exit");
  parser.set_collect_positionals(true);  // paths and options interleave
  if (!parser.parse(args)) return 0;

  if (parser.get_flag("list-rules")) {
    // Deterministically sorted by rule id, independent of registration
    // order, so the output is diff-stable as rule families grow.
    std::vector<const check::RuleInfo*> rules;
    for (const auto& rule : check::rule_catalogue()) rules.push_back(&rule);
    std::sort(rules.begin(), rules.end(),
              [](const check::RuleInfo* a, const check::RuleInfo* b) {
                return a->id < b->id;
              });
    TextTable table({"rule", "severity", "summary"});
    for (const check::RuleInfo* rule : rules) {
      table.add_row(
          {rule->id, check::severity_name(rule->severity), rule->summary});
    }
    std::cout << table.render();
    return 0;
  }

  const std::vector<std::string>& paths = parser.rest();
  if (paths.empty()) {
    std::cerr << "caraml lint: no paths given (try: caraml lint configs)\n";
    return 2;
  }

  // The registered action names give jube/unknown-action its universe.
  jube::ActionRegistry registry;
  core::register_caraml_actions(registry);
  check::LintOptions options;
  options.known_action = [&registry](const std::string& name) {
    return registry.has(name);
  };

  check::DiagnosticList diags = check::lint_paths(paths, options);
  const std::string format = parser.get("format");
  if (format == "json") {
    std::cout << diags.render_json() << "\n";
  } else if (format == "human") {
    std::cout << diags.render_human();
  } else {
    std::cerr << "caraml lint: unknown format '" << format << "'\n";
    return 2;
  }
  if (!parser.get("json-out").empty()) {
    std::ofstream out(parser.get("json-out"));
    if (!out) {
      std::cerr << "caraml lint: cannot write " << parser.get("json-out")
                << "\n";
      return 2;
    }
    out << diags.render_json() << "\n";
  }
  const bool failed =
      diags.has_errors() ||
      (parser.get_flag("strict") &&
       diags.count(check::Severity::kWarning) > 0);
  return failed ? 1 : 0;
}

int cmd_analyse_trace(const std::vector<std::string>& args) {
  ArgParser parser("caraml analyse-trace",
                   "automated bottleneck analysis over a Chrome trace: "
                   "critical path, pipeline bubbles, collective patterns, "
                   "load imbalance, queue wait, energy attribution");
  parser.add_option("format", "report format: human|json",
                    std::string("human"));
  parser.add_option("json-out",
                    "also write the JSON report here ('' = off)",
                    std::string(""));
  parser.add_option("top", "findings kept in the bottleneck summary",
                    std::string("5"));
  parser.add_option("metrics",
                    "telemetry dir whose manifest.jsonl names the run "
                    "('' = off)",
                    std::string(""));
  parser.add_flag("list-detectors", "print the detector catalogue and exit");
  parser.set_collect_positionals(true);  // trace paths and options interleave
  if (!parser.parse(args)) return 0;

  if (parser.get_flag("list-detectors")) {
    TextTable table({"detector", "rule", "severity", "summary"});
    for (const auto& info : analysis::detector_catalogue()) {
      const check::RuleInfo* rule = check::find_rule(info.rule_id);
      table.add_row({info.name, info.rule_id,
                     rule != nullptr ? check::severity_name(rule->severity)
                                     : "?",
                     info.summary});
    }
    std::cout << table.render();
    return 0;
  }

  const std::string format = parser.get("format");
  if (format != "human" && format != "json") {
    std::cerr << "caraml analyse-trace: unknown format '" << format << "'\n";
    return 2;
  }
  const std::vector<std::string>& paths = parser.rest();
  if (paths.empty()) {
    std::cerr << "caraml analyse-trace: no trace file given (run a benchmark "
                 "with --trace-out first)\n";
    return 2;
  }

  analysis::AnalyseOptions options;
  options.top_n = static_cast<int>(parser.get_int("top"));
  options.metrics_dir = parser.get("metrics");

  int failed = 0;
  for (const auto& path : paths) {
    std::string rendered;
    std::string json_doc;  // --json-out always gets JSON, whatever --format
    try {
      const analysis::AnalysisReport report =
          analysis::analyse_file(path, options);
      json_doc = analysis::render_json(report) + "\n";
      rendered =
          format == "json" ? json_doc : analysis::render_human(report);
    } catch (const ParseError& e) {
      // Malformed trace: report through the diagnostics engine in the chosen
      // format (message carries the byte offset), exit nonzero.
      std::string message = e.what();
      const std::string prefix = path + ": ";
      if (message.rfind(prefix, 0) == 0) message = message.substr(prefix.size());
      check::DiagnosticList diags;
      check::Diagnostic diagnostic;
      diagnostic.rule_id = "analysis/trace-error";
      diagnostic.severity = check::Severity::kError;
      diagnostic.location.file = path;
      diagnostic.message = message;
      diags.add(std::move(diagnostic));
      json_doc = diags.render_json() + "\n";
      rendered = format == "json" ? json_doc : diags.render_human();
      ++failed;
    }
    std::cout << rendered;
    if (!parser.get("json-out").empty()) {
      std::ofstream out(parser.get("json-out"));
      if (!out) {
        std::cerr << "caraml analyse-trace: cannot write "
                  << parser.get("json-out") << "\n";
        return 2;
      }
      out << json_doc;
    }
  }
  return failed > 0 ? 1 : 0;
}

int cmd_chaos(const std::vector<std::string>& args) {
  ArgParser parser("caraml chaos",
                   "systematic fault-space campaign: enumerate fault kind x "
                   "time x device x severity, run each scenario through the "
                   "resilient runners, verify the recovery invariants");
  parser.add_option("campaign", "campaign YAML (top-level `campaign:` map)",
                    std::string(""));
  parser.add_option("jobs", "parallel scenarios (0 = one per hardware thread)",
                    std::string("0"));
  parser.add_option("cache",
                    "sweep-style scenario result cache JSONL ('' = off)",
                    std::string(""));
  parser.add_option("out",
                    "directory for manifests + checkpoints (default: temp)",
                    std::string(""));
  parser.add_option("format", "report format: human|json",
                    std::string("human"));
  parser.add_option("json-out",
                    "also write the JSON report here ('' = off)",
                    std::string(""));
  parser.add_flag("verbose", "log each scenario outcome as it lands");
  if (!parser.parse(args)) return 0;

  const std::string format = parser.get("format");
  if (format != "human" && format != "json") {
    std::cerr << "caraml chaos: unknown format '" << format << "'\n";
    return 2;
  }
  const std::string campaign_path = parser.get("campaign");
  if (campaign_path.empty()) {
    std::cerr << "caraml chaos: no campaign given (try: caraml chaos "
                 "--campaign configs/chaos_smoke.yaml)\n";
    return 2;
  }

  const chaos::CampaignConfig config =
      chaos::CampaignConfig::from_yaml_file(campaign_path);
  chaos::CampaignOptions options;
  options.jobs = static_cast<int>(parser.get_int("jobs"));
  options.cache_path = parser.get("cache");
  options.out_dir = parser.get("out");
  options.verbose = parser.get_flag("verbose");

  const chaos::CampaignReport report = chaos::run_campaign(config, options);
  const std::string json_doc = report.render_json() + "\n";
  std::cout << (format == "json" ? json_doc : report.render_human());
  if (format == "human" && report.violated() > 0) {
    // Violations as located diagnostics against the campaign file, so the
    // failure mode reads like every other caraml lint/check report.
    check::DiagnosticList diags;
    report.to_diagnostics(campaign_path, diags);
    diags.sort();
    std::cout << diags.render_human();
  }
  if (!parser.get("json-out").empty()) {
    std::ofstream out(parser.get("json-out"));
    if (!out) {
      std::cerr << "caraml chaos: cannot write " << parser.get("json-out")
                << "\n";
      return 2;
    }
    out << json_doc;
  }
  return report.violated() > 0 ? 1 : 0;
}

int cmd_tts(const std::vector<std::string>& args) {
  ArgParser parser("caraml tts", "time/energy to a target loss");
  parser.add_option("system", "system tag", std::string("JEDI"));
  parser.add_option("loss", "target loss", std::string("2.2"));
  parser.add_option("batch", "global batch", std::string("1024"));
  if (!parser.parse(args)) return 0;

  core::LlmRunConfig config;
  config.system_tag = parser.get("system");
  config.global_batch = parser.get_int("batch");
  const auto result = core::estimate_time_to_solution(
      config, parser.get_double("loss"));
  std::cout << result.system << " to loss " << result.target_loss << ":\n"
            << "  tokens needed : "
            << units::format_fixed(result.tokens_needed / 1e9, 2) << " B\n"
            << "  wall time     : "
            << units::format_fixed(result.hours_to_solution, 1) << " h\n"
            << "  energy        : "
            << units::format_fixed(result.node_energy_kwh, 1) << " kWh\n";
  return 0;
}

int cmd_export(const std::vector<std::string>& args) {
  ArgParser parser("caraml export", "write every experiment as CSV");
  parser.add_option("out", "output directory", std::string("experiments_csv"));
  if (!parser.parse(args)) return 0;
  const int written = core::export_all_experiments(parser.get("out"));
  std::cout << "wrote " << written << " CSV files to " << parser.get("out")
            << "/\n";
  return 0;
}

int cmd_combine(const std::vector<std::string>& args) {
  ArgParser parser("caraml combine", "merge per-rank jpwr energy CSVs");
  parser.add_option("dir", "directory with energy_<rank>.csv files");
  parser.add_option("stem", "file stem", std::string("energy"));
  if (!parser.parse(args)) return 0;

  const auto combined =
      power::combine_rank_csvs(parser.get("dir"), parser.get("stem"));
  std::cout << "combined (" << combined.num_rows() << " rows):\n"
            << combined.to_string(20) << "\naggregated per channel:\n"
            << power::aggregate_energy(combined).to_string(20);
  return 0;
}

void print_usage() {
  std::cout <<
      "caraml — CARAML benchmark suite (C++ reproduction)\n"
      "usage: caraml <command> [options]\n\n"
      "commands:\n"
      "  systems     list the Table-I systems and their JUBE tags\n"
      "  run         run a JUBE YAML script (--script, --tag)\n"
      "  llm         one LLM-training point (--system, --batch, ...)\n"
      "  resnet      one ResNet50 point (--system, --batch, --devices)\n"
      "  inference   LLM inference extension (--system, --batch)\n"
      "  lint        statically validate configs / fault plans / calibration\n"
      "              tables (options, then paths; --format human|json,\n"
      "              --json-out FILE, --strict, --list-rules)\n"
      "  analyse-trace\n"
      "              automated bottleneck analysis over a --trace-out file:\n"
      "              critical path, pipeline bubbles, collective patterns,\n"
      "              load imbalance, queue wait, energy attribution\n"
      "              (--format human|json, --json-out FILE, --top N,\n"
      "              --metrics DIR, --list-detectors)\n"
      "  chaos       fault-space campaign with recovery-invariant checks\n"
      "              (--campaign FILE, --jobs N, --cache FILE, --out DIR,\n"
      "              --format human|json, --json-out FILE, --verbose)\n"
      "  tts         time/energy-to-solution estimate (--system, --loss)\n"
      "  combine     merge per-rank jpwr CSVs (--dir)\n"
      "  export      write every experiment's data as CSV (--out)\n\n"
      "telemetry (llm / resnet / inference):\n"
      "  --metrics-out DIR   metrics.csv/json, energy CSVs, manifest.jsonl\n"
      "  --trace-out FILE    Chrome-trace JSON (open in Perfetto, or feed to\n"
      "                      caraml analyse-trace); written even when the\n"
      "                      run fails\n"
      "  --log-format FMT    text (default) or json structured logs\n"
      "  --derate-device d:f[,d:f]\n"
      "                      (llm / resnet) slow device d's compute by factor\n"
      "                      f >= 1 — deliberate load imbalance for analysis\n"
      "  --analyse           (run) per-workpackage bottleneck analysis; adds\n"
      "                      bottlenecks/top_bottleneck to manifest rows\n\n"
      "fault injection (llm / resnet / inference / run):\n"
      "  --fault-plan FILE   YAML fault schedule (device/throttle/link/sensor)\n"
      "  --fault-seed N --fault-rate R\n"
      "                      generate a deterministic plan instead (R faults\n"
      "                      per simulated minute over --fault-horizon s)\n"
      "  --fault-steps N --checkpoint-every K --checkpoint-dir DIR\n"
      "                      resilient training timeline: N steps with a\n"
      "                      checkpoint every K (persisted to DIR when set)\n"
      "  --retries N         bounded retry budget (restarts, step attempts)\n"
      "  --step-timeout S    per-step attempt timeout for `caraml run`\n"
      "exit code is nonzero when the run (or any workpackage) ends failed;\n"
      "the manifest line is still written with status/fault annotations.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace caraml;
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  try {
    // Fail fast on a malformed CARAML_NUM_THREADS even for subcommands that
    // never touch the pool, so a typo is never silently ignored.
    ThreadPool::parse_env_threads(std::getenv("CARAML_NUM_THREADS"));
    if (command == "systems") return cmd_systems();
    if (command == "run") return cmd_run(args);
    if (command == "llm") return cmd_llm(args);
    if (command == "resnet") return cmd_resnet(args);
    if (command == "inference") return cmd_inference(args);
    if (command == "lint") return cmd_lint(args);
    if (command == "analyse-trace") return cmd_analyse_trace(args);
    if (command == "chaos") return cmd_chaos(args);
    if (command == "tts") return cmd_tts(args);
    if (command == "combine") return cmd_combine(args);
    if (command == "export") return cmd_export(args);
    if (command == "--help" || command == "-h" || command == "help") {
      print_usage();
      return 0;
    }
    std::cerr << "caraml: unknown command '" << command << "'\n";
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "caraml: " << e.what() << "\n";
    return 1;
  }
}
