// LLM *inference* benchmark — the paper's future work ("We also aim to
// expand the suite by including additional AI training and inference
// benchmarks", §VI), built on the same simulator substrate.
//
// Model: a request processes a prompt of `prompt_tokens` (prefill —
// compute-bound batched GEMMs) and generates `generate_tokens`
// autoregressively (decode — memory-bandwidth-bound: every generated token
// streams the weights, at the serving dtype, plus the KV cache). Reported
// metrics follow the common serving figures: time-to-first-token, decode rate,
// aggregate throughput, energy per 1k generated tokens.
#pragma once

#include <string>

#include "models/gpt_cost.hpp"

namespace caraml::core {

struct InferenceConfig {
  std::string system_tag = "GH200";
  models::GptConfig model = models::GptConfig::gpt_800m();
  std::int64_t batch = 8;            // concurrent sequences
  std::int64_t prompt_tokens = 512;
  std::int64_t generate_tokens = 128;

  /// Serving precision (mirrors the tensor library's dtype axis):
  ///   "bf16" — 2-byte weights and KV cache, full tensor peak (default;
  ///            identical to the pre-dtype fp16 model);
  ///   "fp32" — 4-byte weights and KV cache, half the tensor peak;
  ///   "int8" — 1-byte weights (symmetric per-channel quantization), 2x the
  ///            tensor peak on prefill GEMMs; the KV cache stays 2-byte (KV
  ///            quantization is out of scope, as in the int8 kernel path).
  /// Anything else makes run_llm_inference throw InvalidArgument.
  std::string dtype = "bf16";
};

struct InferenceResult {
  std::string system;
  std::int64_t batch = 0;
  bool oom = false;
  std::string oom_message;

  double time_to_first_token_s = 0.0;   // prefill latency
  double decode_time_per_token_s = 0.0; // steady-state step latency
  double tokens_per_s_per_user = 0.0;   // 1 / decode step latency
  double tokens_per_s_total = 0.0;      // batch * per-user rate
  double request_latency_s = 0.0;       // prefill + all decode steps
  double avg_power_w = 0.0;
  double energy_per_1k_tokens_wh = 0.0;
  double kv_cache_bytes = 0.0;
};

/// KV-cache bytes for `tokens` cached positions of `batch` sequences, at
/// `bytes_per_value` per cached element (2 = fp16/bf16 default, 4 = fp32).
double kv_cache_bytes(const models::GptConfig& model, std::int64_t batch,
                      std::int64_t tokens, double bytes_per_value = 2.0);

InferenceResult run_llm_inference(const InferenceConfig& config);

}  // namespace caraml::core
