// CARAML facade: the benchmark-suite entry points that glue the workload
// runners to the JUBE engine (registered actions + result patterns), plus
// the standard experiment definitions of the paper's evaluation section.
#pragma once

#include <string>
#include <vector>

#include "core/llm.hpp"
#include "core/resnet.hpp"
#include "jube/jube.hpp"

namespace caraml::core {

/// Register the CARAML step actions on a JUBE registry:
///  * "llm_train"     — params: system, global_batch, micro_batch, devices
///  * "resnet_train"  — params: system, global_batch, devices
///  * "harness_sleep" — params: sleep_ms; wall-clock stand-in for real job
///    time, used by the sweep-parallelism smoke config
/// Each emits "key: value" lines that the standard patterns extract.
void register_caraml_actions(jube::ActionRegistry& registry);

/// The figure-of-merit patterns matching the actions' output.
std::vector<jube::Pattern> caraml_patterns();

/// One plotted series of Fig. 2 / Fig. 3: a system tag plus the device
/// subset ("MI250:GCD" uses 4 GCDs, "MI250:GPU" all 8).
struct SystemSeries {
  std::string label;
  std::string tag;
  int devices;  // -1 = all of the node
};

/// The series of Fig. 2 (LLM), in the paper's plotting order.
std::vector<SystemSeries> fig2_series();
/// The series of Fig. 3 (ResNet50 single device; MI250 plotted as GCD & GPU).
std::vector<SystemSeries> fig3_series();

/// Batch-size sweeps used in the evaluation.
std::vector<std::int64_t> fig2_batches();    // 16 .. 4096
std::vector<std::int64_t> fig3_batches();    // 16 .. 2048
std::vector<std::int64_t> table2_batches();  // 64 .. 16384
std::vector<std::int64_t> table3_batches();  // 16 .. 4096
std::vector<std::int64_t> fig4_batches();    // 16 .. 2048

/// Device counts per system for the Fig. 4 heatmaps (incl. multi-node rows).
std::vector<int> fig4_device_counts(const std::string& tag);

}  // namespace caraml::core
