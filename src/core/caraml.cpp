#include "core/caraml.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "analysis/analyse.hpp"
#include "core/resilient.hpp"
#include "fault/fault.hpp"
#include "telemetry/span.hpp"
#include "topo/specs.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace caraml::core {

namespace {

std::string context_get(const jube::Context& context, const std::string& key,
                        const std::string& fallback) {
  const auto it = context.find(key);
  return it != context.end() ? it->second : fallback;
}

// ---------------------------------------------------------------------------
// Fault-injection parameters: when a workpackage context carries a fault plan
// (file) or a nonzero fault rate, the train actions run resiliently and
// annotate their output with status/restart/checkpoint lines the result
// patterns pick up.
// ---------------------------------------------------------------------------

bool fault_requested(const jube::Context& context) {
  return !context_get(context, "fault_plan", "").empty() ||
         str::parse_double(context_get(context, "fault_rate", "0")) > 0.0;
}

ResilienceOptions resilience_from_context(const jube::Context& context,
                                          int num_devices) {
  ResilienceOptions options;
  const std::string plan_file = context_get(context, "fault_plan", "");
  if (!plan_file.empty()) {
    options.plan = fault::FaultPlan::from_yaml_file(plan_file);
  } else {
    options.plan = fault::FaultPlan::generate(
        static_cast<std::uint64_t>(
            str::parse_int(context_get(context, "fault_seed", "0"))),
        str::parse_double(context_get(context, "fault_rate", "0")),
        str::parse_double(context_get(context, "fault_horizon_s", "60")),
        std::max(1, num_devices));
  }
  options.retry.seed = options.plan.seed;
  options.retry.max_attempts = static_cast<int>(
      str::parse_int(context_get(context, "fault_retries", "3")));
  options.steps = str::parse_int(context_get(context, "fault_steps", "50"));
  options.checkpoint_every =
      str::parse_int(context_get(context, "checkpoint_every", "10"));
  options.checkpoint_dir = context_get(context, "checkpoint_dir", "");
  return options;
}

void append_report(std::ostream& os, const fault::RunReport& report) {
  os << "status: " << report.status << "\n"
     << "fault_fingerprint: " << report.fault_fingerprint << "\n"
     << "fault_events: " << report.fault_events << "\n"
     << "oom_retries: " << report.oom_retries << "\n"
     << "restarts: " << report.restarts << "\n"
     << "checkpoints: " << report.checkpoints_saved << "\n"
     << "steps_replayed: " << report.steps_replayed << "\n";
}

// ---------------------------------------------------------------------------
// Sweep --analyse hook: when the workpackage context carries analyse=1, the
// train actions run their simulation against a local tracer (concurrent
// workpackages must not interleave events in the global one), run the
// bottleneck detectors over the snapshot, and emit the ranked summary as
// output lines the analyse patterns lift into the manifest row.
// ---------------------------------------------------------------------------

bool analyse_requested(const jube::Context& context) {
  return context_get(context, "analyse", "0") == "1";
}

void append_analysis(std::ostream& os, const telemetry::Tracer& tracer) {
  const analysis::AnalysisReport report =
      analysis::analyse(analysis::snapshot(tracer));
  const std::string summary = analysis::bottleneck_summary(report);
  os << "bottlenecks: " << summary << "\n"
     << "top_bottleneck: " << summary.substr(0, summary.find(';')) << "\n";
}

std::string llm_train_action(const jube::Context& context) {
  LlmRunConfig config;
  config.system_tag = context_get(context, "system", "A100");
  config.global_batch = str::parse_int(context_get(context, "global_batch", "256"));
  config.micro_batch = str::parse_int(context_get(context, "micro_batch", "4"));
  config.devices =
      static_cast<int>(str::parse_int(context_get(context, "devices", "-1")));
  const std::string model = context_get(context, "model", "800M");
  if (model == "117M") config.model = models::GptConfig::gpt_117m();
  else if (model == "800M") config.model = models::GptConfig::gpt_800m();
  else if (model == "13B") config.model = models::GptConfig::gpt_13b();
  else if (model == "175B") config.model = models::GptConfig::gpt_175b();
  else throw InvalidArgument("unknown model tag: " + model);
  config.tensor_parallel =
      static_cast<int>(str::parse_int(context_get(context, "tp", "1")));
  config.pipeline_parallel =
      static_cast<int>(str::parse_int(context_get(context, "pp", "1")));
  const std::string dtype = context_get(context, "dtype", "bf16");
  if (dtype == "fp32") config.model.mixed_precision = false;
  else if (dtype != "bf16") {
    throw InvalidArgument("llm_train dtype must be bf16 or fp32 (int8 is "
                          "inference-only), got '" + dtype + "'");
  }

  std::ostringstream os;
  if (config.system_tag == "GC200") {
    // The IPU path only traces through the global tracer; no --analyse hook.
    const IpuLlmResult r = run_llm_ipu(config.global_batch);
    os << "tokens_per_s: " << r.tokens_per_s << "\n"
       << "energy_wh: " << r.energy_per_epoch_wh << "\n"
       << "tokens_per_wh: " << r.tokens_per_wh << "\n";
    return os.str();
  }
  telemetry::Tracer analysis_tracer;
  const bool analyse = analyse_requested(context);
  if (analyse) {
    analysis_tracer.set_enabled(true);
    config.trace_sink = &analysis_tracer;
  }
  if (fault_requested(context)) {
    const int devices_for_plan =
        config.devices > 0
            ? config.devices
            : topo::SystemRegistry::instance().by_tag(config.system_tag)
                  .devices_per_node;
    const ResilientLlmResult rr = run_llm_resilient(
        config, resilience_from_context(context, devices_for_plan));
    append_report(os, rr.report);
    os << "effective_tokens_per_s: " << rr.effective_tokens_per_s_total
       << "\n"
       << "effective_avg_power_w: " << rr.effective_avg_power_per_gpu_w
       << "\n";
    if (!rr.base.oom) {
      os << "tokens_per_s: " << rr.base.tokens_per_s_per_gpu << "\n"
         << "energy_wh: " << rr.base.energy_per_gpu_wh << "\n"
         << "tokens_per_wh: " << rr.base.tokens_per_wh << "\n"
         << "avg_power_w: " << rr.base.avg_power_per_gpu_w << "\n";
      if (analyse) append_analysis(os, analysis_tracer);
    }
    return os.str();
  }
  const LlmRunResult r = run_llm_gpu(config);
  if (r.oom) {
    os << "status: OOM\n";
    return os.str();
  }
  os << "tokens_per_s: " << r.tokens_per_s_per_gpu << "\n"
     << "energy_wh: " << r.energy_per_gpu_wh << "\n"
     << "tokens_per_wh: " << r.tokens_per_wh << "\n"
     << "avg_power_w: " << r.avg_power_per_gpu_w << "\n";
  if (analyse) append_analysis(os, analysis_tracer);
  return os.str();
}

std::string resnet_train_action(const jube::Context& context) {
  ResnetRunConfig config;
  config.system_tag = context_get(context, "system", "A100");
  config.global_batch =
      str::parse_int(context_get(context, "global_batch", "256"));
  config.devices =
      static_cast<int>(str::parse_int(context_get(context, "devices", "1")));
  config.synthetic_data =
      context_get(context, "synthetic", "false") == "true";
  const std::string variant = context_get(context, "variant", "resnet50");
  if (variant == "resnet18") config.variant = models::ResNetVariant::kResNet18;
  else if (variant == "resnet34") config.variant = models::ResNetVariant::kResNet34;
  else if (variant == "resnet50") config.variant = models::ResNetVariant::kResNet50;
  else throw InvalidArgument("unknown resnet variant: " + variant);

  std::ostringstream os;
  telemetry::Tracer analysis_tracer;
  const bool analyse = analyse_requested(context);
  if (analyse) {
    analysis_tracer.set_enabled(true);
    config.trace_sink = &analysis_tracer;
  }
  if (fault_requested(context)) {
    const ResilientResnetResult rr = run_resnet_resilient(
        config, resilience_from_context(context, std::max(1, config.devices)));
    append_report(os, rr.report);
    os << "effective_images_per_s: " << rr.effective_images_per_s_total
       << "\n"
       << "effective_avg_power_w: " << rr.effective_avg_power_per_device_w
       << "\n";
    if (!rr.base.oom) {
      os << "images_per_s: " << rr.base.images_per_s_total << "\n"
         << "energy_wh: " << rr.base.energy_per_epoch_wh << "\n"
         << "images_per_wh: " << rr.base.images_per_wh << "\n"
         << "avg_power_w: " << rr.base.avg_power_per_device_w << "\n";
      if (analyse) append_analysis(os, analysis_tracer);
    }
    return os.str();
  }
  const ResnetRunResult r = run_resnet(config);
  if (r.oom) {
    os << "status: OOM\n";
    return os.str();
  }
  os << "images_per_s: " << r.images_per_s_total << "\n"
     << "energy_wh: " << r.energy_per_epoch_wh << "\n"
     << "images_per_wh: " << r.images_per_wh << "\n"
     << "avg_power_w: " << r.avg_power_per_device_w << "\n";
  if (analyse) append_analysis(os, analysis_tracer);
  return os.str();
}

/// Harness-turnaround calibration action: sleeps `sleep_ms` wall-clock
/// milliseconds and reports how long it actually slept. The analytic train
/// actions above finish in microseconds, so they cannot exercise (or
/// demonstrate) sweep-level parallelism and caching — this action stands in
/// for a real job's wall time in the sweep smoke config and tests.
std::string harness_sleep_action(const jube::Context& context) {
  const std::int64_t sleep_ms =
      str::parse_int(context_get(context, "sleep_ms", "100"));
  CARAML_CHECK_MSG(sleep_ms >= 0, "sleep_ms must be >= 0");
  const auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  const auto slept = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  std::ostringstream os;
  os << "slept_ms: " << slept.count() << "\n"
     << "status: ok\n";
  return os.str();
}

}  // namespace

void register_caraml_actions(jube::ActionRegistry& registry) {
  registry.register_action("llm_train", llm_train_action);
  registry.register_action("resnet_train", resnet_train_action);
  registry.register_action("harness_sleep", harness_sleep_action);
}

std::vector<jube::Pattern> caraml_patterns() {
  // \b keeps the base metrics from matching inside the "effective_*" lines
  // a resilient run emits ("_" is a word character, so there is no boundary
  // after the prefix).
  return {
      {"tokens_per_s", R"(\btokens_per_s:\s*([0-9.eE+-]+))"},
      {"images_per_s", R"(\bimages_per_s:\s*([0-9.eE+-]+))"},
      {"energy_wh", R"(\benergy_wh:\s*([0-9.eE+-]+))"},
      {"tokens_per_wh", R"(\btokens_per_wh:\s*([0-9.eE+-]+))"},
      {"images_per_wh", R"(\bimages_per_wh:\s*([0-9.eE+-]+))"},
      {"avg_power_w", R"(\bavg_power_w:\s*([0-9.eE+-]+))"},
      {"status", R"(status:\s*(\w+))"},
      {"fault_fingerprint", R"(fault_fingerprint:\s*([0-9a-f]+))"},
      {"fault_events", R"(fault_events:\s*([0-9]+))"},
      {"oom_retries", R"(oom_retries:\s*([0-9]+))"},
      {"restarts", R"(\brestarts:\s*([0-9]+))"},
      {"checkpoints", R"(checkpoints:\s*([0-9]+))"},
      {"steps_replayed", R"(steps_replayed:\s*([0-9]+))"},
      {"effective_tokens_per_s",
       R"(effective_tokens_per_s:\s*([0-9.eE+-]+))"},
      {"effective_images_per_s",
       R"(effective_images_per_s:\s*([0-9.eE+-]+))"},
      {"slept_ms", R"(\bslept_ms:\s*([0-9]+))"},
      {"bottlenecks", R"(\bbottlenecks:\s*(\S+))"},
      {"top_bottleneck", R"(top_bottleneck:\s*(\S+))"},
  };
}

std::vector<SystemSeries> fig2_series() {
  return {
      {"GH200 (JEDI)", "JEDI", -1},   {"GH200 (JRDC)", "GH200", -1},
      {"H100 (JRDC)", "H100", -1},    {"H100 (WestAI)", "WAIH100", -1},
      {"A100", "A100", -1},           {"MI250:GCD", "MI250", 4},
      {"MI250:GPU", "MI250", 8},
  };
}

std::vector<SystemSeries> fig3_series() {
  return {
      {"GH200 (JEDI)", "JEDI", 1},    {"GH200 (JRDC)", "GH200", 1},
      {"H100 (JRDC)", "H100", 1},     {"H100 (WestAI)", "WAIH100", 1},
      {"A100", "A100", 1},            {"MI250:GCD", "MI250", 1},
      {"MI250:GPU", "MI250", 2},
  };
}

namespace {
std::vector<std::int64_t> doubling(std::int64_t lo, std::int64_t hi) {
  std::vector<std::int64_t> out;
  for (std::int64_t b = lo; b <= hi; b *= 2) out.push_back(b);
  return out;
}
}  // namespace

std::vector<std::int64_t> fig2_batches() { return doubling(16, 4096); }
std::vector<std::int64_t> fig3_batches() { return doubling(16, 2048); }
std::vector<std::int64_t> table2_batches() { return doubling(64, 16384); }
std::vector<std::int64_t> table3_batches() { return doubling(16, 4096); }
std::vector<std::int64_t> fig4_batches() { return doubling(16, 2048); }

std::vector<int> fig4_device_counts(const std::string& tag) {
  const auto& node = topo::SystemRegistry::instance().by_tag(tag);
  std::vector<int> counts;
  for (int d = 1; d <= node.devices_per_node; d *= 2) counts.push_back(d);
  for (int nodes = 2; nodes <= node.max_nodes; nodes *= 2) {
    counts.push_back(nodes * node.devices_per_node);
  }
  return counts;
}

}  // namespace caraml::core
