// Time-/energy-to-solution estimation on top of the throughput benchmark —
// bridging CARAML's throughput metrics to the MLPerf-style time-to-solution
// view the paper contrasts them with (§II-D: time-to-solution avoids
// throughput gaming but costs a full training run; CARAML measures
// throughput and lets the user extrapolate).
//
// The extrapolation uses a Chinchilla-style loss scaling law in trained
// tokens: L(T) = L_inf + (T_c / T)^alpha.
#pragma once

#include <string>

#include "core/llm.hpp"

namespace caraml::core {

/// Loss curve parameters (defaults roughly Chinchilla-shaped for small GPT).
struct LossScalingLaw {
  double l_inf = 1.7;      // irreducible loss
  double t_c = 2.6e9;      // token scale
  double alpha = 0.35;

  /// Loss after training on `tokens` tokens.
  double loss_at(double tokens) const;
  /// Tokens needed to reach `target_loss` (> l_inf); throws otherwise.
  double tokens_to_reach(double target_loss) const;
};

struct TimeToSolutionResult {
  std::string system;
  double target_loss = 0.0;
  double tokens_needed = 0.0;
  double hours_to_solution = 0.0;
  double node_energy_kwh = 0.0;   // all devices of the run
  double tokens_per_s_total = 0.0;
};

/// Estimate wall time and energy to train `config.model` to `target_loss`
/// on the given system/layout, using the simulated steady-state throughput.
TimeToSolutionResult estimate_time_to_solution(const LlmRunConfig& config,
                                               double target_loss,
                                               const LossScalingLaw& law = {});

}  // namespace caraml::core
