#include "core/llm.hpp"

#include <algorithm>
#include <cmath>

#include "sim/cluster.hpp"
#include "sim/layout_analytic.hpp"
#include "sim/memory.hpp"
#include "sim/trace_export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/span.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace caraml::core {

using sim::ClusterSim;
using sim::TaskGraph;
using sim::TaskId;
using topo::NodeSpec;
using topo::SystemRegistry;

bool llm_layout_valid(std::int64_t global_batch, std::int64_t micro_batch,
                      int data_parallel) {
  if (global_batch <= 0 || micro_batch <= 0 || data_parallel <= 0) return false;
  return global_batch % (micro_batch * data_parallel) == 0;
}

LlmRunResult run_llm_gpu(const LlmRunConfig& config) {
  TELEMETRY_SPAN("llm/run_gpu");
  telemetry::Registry::global().counter("llm/runs").add();
  const NodeSpec& node = SystemRegistry::instance().by_tag(config.system_tag);
  CARAML_CHECK_MSG(node.device.arch == topo::ArchClass::kGpuSimd,
                   "run_llm_gpu targets GPU systems; use run_llm_ipu for " +
                       node.display_name);

  const int devices_per_node =
      config.devices > 0 ? config.devices : node.devices_per_node;
  const int num_devices = devices_per_node * config.num_nodes;
  const int tp = config.tensor_parallel;
  const int pp = config.pipeline_parallel;
  CARAML_CHECK_MSG(num_devices % (tp * pp) == 0,
                   "devices must divide by tensor*pipeline parallel");
  const int dp = config.data_parallel > 0 ? config.data_parallel
                                          : num_devices / (tp * pp);
  CARAML_CHECK_MSG(dp * tp * pp == num_devices,
                   "dp*tp*pp must equal the device count");
  CARAML_CHECK_MSG(
      llm_layout_valid(config.global_batch, config.micro_batch, dp),
      "global batch " + std::to_string(config.global_batch) +
          " is not divisible by micro-batch x data-parallel (" +
          std::to_string(config.micro_batch) + " x " + std::to_string(dp) +
          ") — cf. paper §IV-A for MI250 dp=8, batch 16");

  LlmRunResult result;
  result.system = node.display_name;
  result.global_batch = config.global_batch;
  result.data_parallel = dp;

  // ---- memory accounting (OOM detection) ----------------------------------
  models::GptMemoryModel memory;
  memory.config = config.model;
  memory.tensor_parallel = tp;
  memory.pipeline_parallel = pp;
  memory.data_parallel = dp;
  memory.micro_batch = static_cast<int>(config.micro_batch);
  result.memory_per_device_bytes = memory.total_bytes();
  try {
    sim::MemoryTracker tracker(node.device.name,
                               node.device.mem_capacity_bytes);
    tracker.allocate("model+optimizer", memory.model_state_bytes());
    tracker.allocate("activations", memory.activation_bytes());
    tracker.allocate("workspace", memory.workspace_bytes());
  } catch (const OutOfMemory& oom) {
    telemetry::Registry::global().counter("llm/oom").add();
    result.oom = true;
    result.oom_message = oom.what();
    return result;
  }

  // ---- per-iteration task graph --------------------------------------------
  const std::int64_t b_dev = config.global_batch / dp;
  const std::int64_t n_micro = b_dev / config.micro_batch;

  CARAML_CHECK_MSG(config.compute_time_factor >= 1.0 &&
                       config.link_time_factor >= 1.0,
                   "derate time factors must be >= 1");
  // Per-micro-step cost (contention-degraded MFU, Megatron TP all-reduces,
  // PP activation exchange) comes from the shared analytic hook so the static
  // layout analyzer (`caraml lint` layout/* rules) cannot drift from the
  // simulated hot path.
  sim::LlmLayoutCost layout;
  layout.model = config.model;
  layout.tensor_parallel = tp;
  layout.pipeline_parallel = pp;
  layout.data_parallel = dp;
  layout.micro_batch = config.micro_batch;
  layout.global_batch = config.global_batch;
  layout.devices_per_node = devices_per_node;
  layout.num_nodes = config.num_nodes;
  const sim::LlmMicroCost micro_cost =
      sim::llm_micro_cost(node, layout, config.power_cap_factor);
  const double power_util = micro_cost.power_util;
  const double t_micro = micro_cost.t_micro_s;

  ClusterSim cluster(node, devices_per_node, config.num_nodes);
  for (int d = 0; d < num_devices; ++d) {
    cluster.set_compute_derate(d, config.compute_time_factor);
    cluster.set_link_derate(d, config.link_time_factor);
  }
  for (const auto& [d, factor] : config.device_compute_derate) {
    CARAML_CHECK_MSG(d >= 0 && d < num_devices,
                     "device_compute_derate index out of range");
    CARAML_CHECK_MSG(factor >= 1.0, "device derate factor must be >= 1");
    cluster.set_compute_derate(d, config.compute_time_factor * factor);
  }
  TaskGraph& graph = cluster.graph();

  // Host-side fixed per-iteration work (data prep, launch storm, logging).
  std::vector<TaskId> host_done(static_cast<std::size_t>(num_devices));
  for (int d = 0; d < num_devices; ++d) {
    host_done[static_cast<std::size_t>(d)] = graph.add_task(
        cluster.host(d), node.fixed_iter_overhead_s, 0.0, "host");
  }

  // Gradient-accumulation micro-steps, serialized per device. With pipeline
  // parallelism each device additionally idles for the (pp - 1) fill/drain
  // slots of the 1F1B schedule (the "pipeline bubble", paper §IV-A).
  const std::int64_t bubble_slots = pp - 1;
  std::vector<TaskId> compute_done(static_cast<std::size_t>(num_devices));
  for (int d = 0; d < num_devices; ++d) {
    TaskId prev = host_done[static_cast<std::size_t>(d)];
    for (std::int64_t m = 0; m < n_micro + bubble_slots; ++m) {
      const bool bubble = m >= n_micro;
      const TaskId task = graph.add_task(
          cluster.compute(d), t_micro * cluster.compute_derate(d),
          bubble ? 0.0 : power_util, bubble ? "bubble" : "micro");
      graph.add_dependency(prev, task);
      prev = task;
    }
    compute_done[static_cast<std::size_t>(d)] = prev;
  }

  // Gradient reduce-scatter/all-gather (distributed optimizer) as a ring
  // all-reduce of the gradient bytes.
  const double grad_bytes = memory.gradient_comm_bytes();
  std::vector<TaskId> reduced =
      dp > 1 ? cluster.hierarchical_all_reduce(grad_bytes, compute_done,
                                               "allreduce")
             : compute_done;

  // Optimizer update: touches the (sharded) optimizer state at memory
  // bandwidth; low compute utilization.
  const double opt_bytes = memory.model_state_bytes();
  const double t_opt = opt_bytes / node.device.mem_bandwidth;
  for (int d = 0; d < num_devices; ++d) {
    const TaskId opt = graph.add_task(
        cluster.compute(d), t_opt * cluster.compute_derate(d), 0.08,
        "optimizer");
    graph.add_dependency(
        reduced[static_cast<std::size_t>(d % static_cast<int>(reduced.size()))],
        opt);
  }

  const double iteration_time = graph.run();

  // ---- metrics --------------------------------------------------------------
  result.iteration_time_s = iteration_time;
  const double tokens_per_iter =
      static_cast<double>(config.global_batch) * config.model.seq_length;
  result.tokens_per_s_total = tokens_per_iter / iteration_time;
  result.tokens_per_s_per_gpu = result.tokens_per_s_total / num_devices;
  result.mfu = result.tokens_per_s_per_gpu *
               config.model.flops_per_token_train() /
               (node.device.peak_fp16_flops * config.model.peak_flops_scale());

  sim::PowerTrace trace(node.device, cluster.compute(0)->busy_intervals(),
                        iteration_time);
  if (auto& tracer = config.trace_sink ? *config.trace_sink
                                       : telemetry::Tracer::global();
      tracer.enabled()) {
    sim::append_chrome_events(graph, tracer);
    sim::append_power_counters(trace, "power/dev0_w", tracer);
    sim::append_queue_wait_counters(graph, tracer);
  }
  result.avg_power_per_gpu_w = trace.average_power();
  result.energy_per_gpu_wh =
      result.avg_power_per_gpu_w * (config.exit_duration_min / 60.0);
  result.tokens_per_wh =
      result.tokens_per_s_per_gpu * 3600.0 / result.avg_power_per_gpu_w;
  result.device0_trace = std::move(trace);
  return result;
}

// ---------------------------------------------------------------------------
// Graphcore path (Table II).
// ---------------------------------------------------------------------------

namespace {

// Calibrated against Table II (see EXPERIMENTS.md "Calibration / IPU GPT"):
// the pipeline has the 4 IPU stages plus one host I/O stage, micro-batches
// of 32 tokens, and per-stage time dominated by streaming the stage's
// weights from the M2000's chip-external DRAM (fwd read + bwd read + write).
constexpr int kIpuPipelineExtraStages = 1;  // host I/O stage
constexpr std::int64_t kIpuMicroTokens = 32;
// Fixed per-epoch host/data/setup energy and the effective attributed power
// of one IPU slice of the M2000 during training (fitted; the paper's per-IPU
// energy evidently includes chassis + host shares).
constexpr double kIpuEpochFixedWh = 17.68;
constexpr double kIpuAttributedWatts = 656.0;

}  // namespace

IpuLlmResult run_llm_ipu(std::int64_t batch_tokens,
                         const models::GptConfig& model) {
  TELEMETRY_SPAN("llm/run_ipu");
  telemetry::Registry::global().counter("llm/runs").add();
  const NodeSpec& node = SystemRegistry::instance().by_tag("GC200");
  const int ipus = node.devices_per_node;

  IpuLlmResult result;
  result.batch_tokens = batch_tokens;
  CARAML_CHECK_MSG(batch_tokens >= kIpuMicroTokens &&
                       batch_tokens % kIpuMicroTokens == 0,
                   "IPU batch must be a multiple of " +
                       std::to_string(kIpuMicroTokens) + " tokens");

  const int micro = static_cast<int>(batch_tokens / kIpuMicroTokens);
  const int stages = ipus + kIpuPipelineExtraStages;

  // Per-stage service time: weight streaming from chip-external DRAM.
  const double stage_params = model.total_parameters() / ipus;
  const double stream_bytes = 3.0 * stage_params * 2.0;  // fp16, fwd+bwd+wr
  const double t_stage = stream_bytes / node.device.mem_bandwidth;

  // Pipeline fill/drain: (m + s - 1) slots of t_stage.
  TaskGraph graph;
  std::vector<sim::Resource*> stage_res;
  for (int s = 0; s < stages; ++s) {
    stage_res.push_back(graph.add_resource("stage" + std::to_string(s)));
  }
  // Micro m on stage s depends on micro m on stage s-1; stage resources
  // serialize micro-batches (classic pipeline).
  std::vector<TaskId> prev_stage_task;
  for (int m = 0; m < micro; ++m) {
    TaskId prev = sim::kInvalidTask;
    for (int s = 0; s < stages; ++s) {
      const TaskId task = graph.add_task(
          stage_res[static_cast<std::size_t>(s)], t_stage,
          node.device.max_mfu_gemm, "m" + std::to_string(m));
      if (prev != sim::kInvalidTask) graph.add_dependency(prev, task);
      prev = task;
    }
  }
  const double iteration_time = graph.run();
  if (auto& tracer = telemetry::Tracer::global(); tracer.enabled()) {
    sim::append_chrome_events(graph, tracer);
  }
  result.iteration_time_s = iteration_time;
  result.tokens_per_s = static_cast<double>(batch_tokens) / iteration_time;
  result.pipeline_bubble =
      1.0 - static_cast<double>(micro) * t_stage * stages /
                (iteration_time * stages);

  // One epoch == one pass over the global batch (paper §III-A1 for IPU).
  result.energy_per_epoch_wh =
      kIpuEpochFixedWh +
      kIpuAttributedWatts * iteration_time / 3600.0;
  result.tokens_per_wh =
      static_cast<double>(batch_tokens) / result.energy_per_epoch_wh;
  return result;
}

}  // namespace caraml::core
