#include "core/time_to_solution.hpp"

#include <cmath>

#include "util/error.hpp"

namespace caraml::core {

double LossScalingLaw::loss_at(double tokens) const {
  CARAML_CHECK_MSG(tokens > 0.0, "tokens must be positive");
  return l_inf + std::pow(t_c / tokens, alpha);
}

double LossScalingLaw::tokens_to_reach(double target_loss) const {
  CARAML_CHECK_MSG(target_loss > l_inf,
                   "target loss must exceed the irreducible loss " +
                       std::to_string(l_inf));
  // target = l_inf + (t_c / T)^alpha  =>  T = t_c / (target - l_inf)^(1/alpha)
  return t_c / std::pow(target_loss - l_inf, 1.0 / alpha);
}

TimeToSolutionResult estimate_time_to_solution(const LlmRunConfig& config,
                                               double target_loss,
                                               const LossScalingLaw& law) {
  const LlmRunResult run = run_llm_gpu(config);
  CARAML_CHECK_MSG(!run.oom, "configuration does not fit: " + run.oom_message);

  TimeToSolutionResult result;
  result.system = run.system;
  result.target_loss = target_loss;
  result.tokens_needed = law.tokens_to_reach(target_loss);
  result.tokens_per_s_total = run.tokens_per_s_total;
  const double seconds = result.tokens_needed / run.tokens_per_s_total;
  result.hours_to_solution = seconds / 3600.0;
  const double devices =
      run.tokens_per_s_total / run.tokens_per_s_per_gpu;
  result.node_energy_kwh =
      run.avg_power_per_gpu_w * devices * seconds / 3600.0 / 1000.0;
  return result;
}

}  // namespace caraml::core
