// Experiment data as DataFrames — the machine-readable counterpart of the
// bench binaries' tables, for plotting and regression tracking. Long format:
// one row per (system, configuration) point with all figure-of-merit
// columns. `caraml export` writes them as CSVs.
#pragma once

#include <string>

#include "df/dataframe.hpp"

namespace caraml::core {

/// Fig. 2: columns system, devices, global_batch, tokens_per_s_per_gpu,
/// energy_wh_per_gpu_1h, tokens_per_wh, status ("ok"/"oom"/"invalid").
df::DataFrame fig2_dataframe();

/// Fig. 3: columns system, devices, global_batch, images_per_s,
/// energy_wh_per_epoch, images_per_wh, status.
df::DataFrame fig3_dataframe();

/// Table II: columns batch_tokens, tokens_per_s, energy_wh_per_epoch_ipu,
/// tokens_per_wh, pipeline_bubble.
df::DataFrame table2_dataframe();

/// Table III: columns batch, images_per_s, energy_wh_per_epoch, images_per_wh.
df::DataFrame table3_dataframe();

/// One Fig. 4 heatmap: columns devices, global_batch, images_per_s, status.
df::DataFrame fig4_dataframe(const std::string& system_tag);

/// Write every experiment frame as CSV files into `directory`
/// (fig2.csv, fig3.csv, table2.csv, table3.csv, fig4_<tag>.csv).
/// Returns the number of files written.
int export_all_experiments(const std::string& directory);

}  // namespace caraml::core
